"""Tests for repro.common.heap: both top-k designs and the locked heap."""

import numpy as np
import pytest

from repro.common.heap import BoundedMaxHeap, LockedGlobalHeap, NaiveTopK, exact_topk


class TestBoundedMaxHeap:
    def test_keeps_k_smallest(self):
        heap = BoundedMaxHeap(3)
        for i, d in enumerate([9.0, 1.0, 5.0, 3.0, 7.0, 2.0]):
            heap.push(d, i)
        assert [n.distance for n in heap.results()] == [1.0, 2.0, 3.0]

    def test_results_sorted_ascending(self):
        heap = BoundedMaxHeap(4)
        for i, d in enumerate([4.0, 2.0, 8.0, 6.0]):
            heap.push(d, i)
        dists = [n.distance for n in heap.results()]
        assert dists == sorted(dists)

    def test_worst_distance_inf_until_full(self):
        heap = BoundedMaxHeap(2)
        assert heap.worst_distance == float("inf")
        heap.push(1.0, 0)
        assert heap.worst_distance == float("inf")
        heap.push(2.0, 1)
        assert heap.worst_distance == 2.0

    def test_rejections_counted(self):
        heap = BoundedMaxHeap(1)
        heap.push(1.0, 0)
        assert not heap.push(5.0, 1)
        assert heap.rejections == 1

    def test_equal_distance_rejected_when_full(self):
        heap = BoundedMaxHeap(1)
        heap.push(1.0, 0)
        assert not heap.push(1.0, 1)
        assert heap.results()[0].vector_id == 0

    def test_fewer_items_than_k(self):
        heap = BoundedMaxHeap(10)
        heap.push(3.0, 7)
        results = heap.results()
        assert len(results) == 1
        assert results[0].vector_id == 7

    def test_merge_equivalent_to_single_heap(self, rng):
        dists = rng.random(60).tolist()
        single = BoundedMaxHeap(5)
        a, b = BoundedMaxHeap(5), BoundedMaxHeap(5)
        for i, d in enumerate(dists):
            single.push(d, i)
            (a if i % 2 else b).push(d, i)
        a.merge(b)
        assert [n.vector_id for n in a.results()] == [n.vector_id for n in single.results()]

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            BoundedMaxHeap(0)


class TestNaiveTopK:
    def test_same_answer_as_bounded(self, rng):
        dists = rng.random(100).tolist()
        naive = NaiveTopK(7)
        bounded = BoundedMaxHeap(7)
        for i, d in enumerate(dists):
            naive.push(d, i)
            bounded.push(d, i)
        assert [n.vector_id for n in naive.results()] == [
            n.vector_id for n in bounded.results()
        ]

    def test_never_rejects(self):
        heap = NaiveTopK(1)
        for i in range(50):
            assert heap.push(float(i), i)
        assert len(heap) == 50  # RC#6: the heap holds all n candidates

    def test_results_pop_is_destructive(self):
        heap = NaiveTopK(2)
        for i, d in enumerate([3.0, 1.0, 2.0]):
            heap.push(d, i)
        first = heap.results()
        assert [n.distance for n in first] == [1.0, 2.0]
        assert len(heap) == 1  # only the un-popped candidate remains

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            NaiveTopK(-1)


class TestLockedGlobalHeap:
    def test_counts_lock_acquisitions(self):
        heap = LockedGlobalHeap(3)
        for i in range(10):
            heap.push(float(i), i)
        assert heap.lock_acquisitions == 10

    def test_results_correct(self):
        heap = LockedGlobalHeap(2)
        for i, d in enumerate([5.0, 1.0, 3.0]):
            heap.push(d, i)
        assert [n.vector_id for n in heap.results()] == [1, 2]

    def test_thread_safety(self):
        import threading

        heap = LockedGlobalHeap(10)

        def worker(base: int) -> None:
            for i in range(200):
                heap.push(float((base * 200 + i) % 97), base * 200 + i)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        results = heap.results()
        assert len(results) == 10
        assert heap.lock_acquisitions == 800
        assert all(n.distance == 0.0 for n in results[:1])


class TestExactTopK:
    def test_matches_argsort(self, rng):
        dists = rng.random(40)
        got = [n.vector_id for n in exact_topk(dists, 6)]
        want = np.argsort(dists, kind="stable")[:6].tolist()
        assert got == want

    def test_k_larger_than_n(self, rng):
        dists = rng.random(4)
        assert len(exact_topk(dists, 10)) == 4

    def test_k_equal_to_n(self, rng):
        dists = rng.random(5)
        assert len(exact_topk(dists, 5)) == 5
