"""Direct tests for small helpers exercised only indirectly elsewhere."""

import numpy as np
import pytest

from repro.common import graph
from repro.common.datasets import generate_clustered
from repro.common.rng import make_rng
from repro.pgsim.constants import MAXALIGN, maxalign
from repro.pgsim.expr import coerce_vector, ExpressionError
from repro.pgsim.sql import ast
from repro.specialized.hnsw import ArrayGraphStore


class TestMaxAlign:
    @pytest.mark.parametrize(
        "size,expected",
        [(0, 0), (1, 8), (7, 8), (8, 8), (9, 16), (24, 24)],
    )
    def test_rounding(self, size, expected):
        assert maxalign(size) == expected

    def test_always_multiple_of_maxalign(self):
        for size in range(0, 100):
            assert maxalign(size) % MAXALIGN == 0
            assert maxalign(size) >= size


class TestCoerceVector:
    def test_from_list(self):
        vec = coerce_vector([1, 2, 3])
        assert vec.dtype == np.float32
        np.testing.assert_array_equal(vec, [1, 2, 3])

    def test_from_tuple(self):
        np.testing.assert_array_equal(coerce_vector((0.5, 1.5)), [0.5, 1.5])

    def test_from_ndarray_float64(self):
        vec = coerce_vector(np.array([1.0, 2.0]))
        assert vec.dtype == np.float32

    def test_from_string(self):
        np.testing.assert_array_equal(coerce_vector("1,2"), [1.0, 2.0])

    def test_invalid_type(self):
        with pytest.raises(ExpressionError):
            coerce_vector(42)


class TestAstWalk:
    def test_walks_all_subexpressions(self):
        expr = ast.BinaryOp(
            "+",
            ast.FuncCall("abs", (ast.ColumnRef("x"),)),
            ast.Cast(ast.ArrayLiteral((ast.Literal(1), ast.Literal(2))), "pase"),
        )
        nodes = list(ast.walk(expr))
        kinds = [type(n).__name__ for n in nodes]
        assert kinds.count("Literal") == 2
        assert "ColumnRef" in kinds
        assert "Cast" in kinds
        assert "ArrayLiteral" in kinds

    def test_walk_single_literal(self):
        assert len(list(ast.walk(ast.Literal(5)))) == 1


class TestGreedyDescend:
    @pytest.fixture(scope="class")
    def built(self):
        data = generate_clustered(200, 8, n_components=4, seed=5)
        store = ArrayGraphStore(dim=8)
        params = graph.HNSWParams(bnn=6, efb=16)
        rng = make_rng(2)
        for row in data:
            graph.insert(store, params, row, rng)
        return data, store

    def test_descend_improves_distance(self, built):
        data, store = built
        query = data[100] + 0.01
        entry = store.entry_point
        entry_dist = float(((store.vector(entry) - query) ** 2).sum())
        if store.max_level > 0:
            best_dist, best_node = graph.greedy_descend(
                store, query, (entry_dist, entry), store.max_level, 1
            )
            assert best_dist <= entry_dist

    def test_descend_single_level_noop(self, built):
        data, store = built
        query = data[0]
        dist = float(((store.vector(3) - query) ** 2).sum())
        # Descending level 0..0 just greedy-walks level 0.
        best_dist, __ = graph.greedy_descend(store, query, (dist, 3), 0, 0)
        assert best_dist <= dist


class TestWalRecordFields:
    def test_decoded_record_roundtrip(self):
        from repro.pgsim.wal import WriteAheadLog

        wal = WriteAheadLog()
        lsn = wal.log_insert(9, "some.rel", 17, b"payload")
        rec = wal.records()[0]
        assert rec.lsn == lsn
        assert rec.xid == 9
        assert rec.rel == "some.rel"
        assert rec.blkno == 17
        assert rec.payload == b"payload"
