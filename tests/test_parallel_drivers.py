"""Tests for the engine-level parallel drivers (RC#3 apparatus)."""

import numpy as np
import pytest

from repro.common.parallel import speedups
from repro.core.study import ComparativeStudy
from repro.pase import parallel as pase_parallel
from repro.specialized import parallel as spec_parallel
from repro.specialized.ivf_flat import IVFFlatIndex


@pytest.fixture(scope="module")
def study(medium_dataset):
    s = ComparativeStudy(
        medium_dataset, "ivf_flat", {"clusters": 16, "sample_ratio": 0.3, "seed": 4}
    )
    s.compare_build()
    return s


class TestSpecializedParallel:
    def test_build_units_cover_all_vectors(self, medium_dataset):
        index = IVFFlatIndex(medium_dataset.dim, n_clusters=8, sample_ratio=0.3, seed=1)
        index.train(medium_dataset.base)
        units = spec_parallel.build_work_units(index, medium_dataset.base, n_chunks=8)
        assert len(units) == 8
        assert index.ntotal == medium_dataset.n
        assert all(u.serial_ops == 0 for u in units)

    def test_build_requires_training(self, medium_dataset):
        index = IVFFlatIndex(medium_dataset.dim, n_clusters=8)
        with pytest.raises(RuntimeError):
            spec_parallel.build_work_units(index, medium_dataset.base)

    def test_simulated_build_curve_monotone(self, medium_dataset):
        index = IVFFlatIndex(medium_dataset.dim, n_clusters=8, sample_ratio=0.3, seed=1)
        index.train(medium_dataset.base)
        curve = spec_parallel.simulate_parallel_build(
            index, medium_dataset.base, [1, 2, 4, 8]
        )
        assert curve[1] >= curve[2] >= curve[4] >= curve[8]

    def test_parallel_search_matches_serial(self, study):
        query = study.dataset.queries[0]
        result, curve = spec_parallel.parallel_search(
            study.specialized.index, query, 10, 8, [1, 4]
        )
        serial = study.specialized.search(query, 10, nprobe=8)
        assert result.ids == serial.ids
        assert set(curve) == {1, 4}

    def test_local_heap_design_scales(self, study):
        query = study.dataset.queries[1]
        __, curve = spec_parallel.parallel_search(
            study.specialized.index, query, 10, 16, [1, 8]
        )
        assert speedups(curve)[8] > 2.0


class TestPaseParallel:
    def test_results_match_serial_scan(self, study):
        query = study.dataset.queries[0]
        result, __ = pase_parallel.parallel_search(
            study.generalized.am, query, 10, 8, [1, 2]
        )
        # Serial AM scan at the same nprobe must return identical
        # distances (ids are packed TIDs on the parallel side, so the
        # distance sequence is the robust comparison).
        study.generalized.db.execute("SET pase.nprobe = 8")
        serial = list(study.generalized.am.scan(query, 10))
        assert [round(n.distance, 4) for n in result.neighbors] == [
            round(d, 4) for __, d in serial
        ]

    def test_lock_ops_counted_per_candidate(self, study):
        query = study.dataset.queries[2]
        __, curve = pase_parallel.parallel_search(
            study.generalized.am, query, 10, 8, [1]
        )
        result = curve[1]
        # Every scanned candidate acquired the global lock once.
        assert result.serial_seconds > 0

    def test_global_heap_scales_worse_than_local(self, study):
        query = study.dataset.queries[3]
        __, spec_curve = spec_parallel.parallel_search(
            study.specialized.index, query, 10, 16, [1, 8]
        )
        __, pase_curve = pase_parallel.parallel_search(
            study.generalized.am, query, 10, 16, [1, 8]
        )
        assert speedups(pase_curve)[8] < speedups(spec_curve)[8]
