"""Tests for product quantization and the two ADC-table builders (RC#7)."""

import numpy as np
import pytest

from repro.common import pq
from repro.common.datasets import generate_clustered


@pytest.fixture(scope="module")
def training():
    return generate_clustered(500, 16, n_components=6, seed=77, spread=0.15)


@pytest.fixture(scope="module")
def codebook(training):
    return pq.train_codebook(training, m=4, c_pq=32, seed=1)


class TestCodebook:
    def test_dimensions(self, codebook):
        assert codebook.m == 4
        assert codebook.c_pq == 32
        assert codebook.d_sub == 4
        assert codebook.dim == 16

    def test_norms_cached_at_train_time(self, codebook):
        expected = (codebook.codebooks.astype(np.float64) ** 2).sum(axis=2)
        np.testing.assert_allclose(codebook.codeword_sq_norms, expected, rtol=1e-3)

    def test_nbytes(self, codebook):
        assert codebook.nbytes() == 4 * 32 * 4 * 4

    def test_indivisible_dim_rejected(self, training):
        with pytest.raises(ValueError):
            pq.train_codebook(training, m=5)

    def test_too_large_cpq_rejected(self, training):
        with pytest.raises(ValueError):
            pq.train_codebook(training, m=4, c_pq=512)

    def test_pase_style_codebook_differs(self, training):
        other = pq.train_codebook(training, m=4, c_pq=32, seed=1, style="pase")
        assert not np.allclose(other.codebooks, pq.train_codebook(training, m=4, c_pq=32, seed=1).codebooks)

    def test_unknown_style_rejected(self, training):
        with pytest.raises(ValueError):
            pq.train_codebook(training, m=4, c_pq=16, style="milvus")


class TestEncodeDecode:
    def test_codes_shape_and_dtype(self, codebook, training):
        codes = pq.encode(codebook, training[:50])
        assert codes.shape == (50, 4)
        assert codes.dtype == np.uint8

    def test_codes_within_codebook_range(self, codebook, training):
        codes = pq.encode(codebook, training)
        assert codes.max() < codebook.c_pq

    def test_decode_reduces_error_vs_random(self, codebook, training, rng):
        codes = pq.encode(codebook, training[:100])
        approx = pq.decode(codebook, codes)
        err = float(((approx - training[:100]) ** 2).sum())
        scrambled = pq.decode(codebook, codes[::-1])
        err_scrambled = float(((scrambled - training[:100]) ** 2).sum())
        assert err < err_scrambled

    def test_encode_picks_nearest_codeword(self, codebook, training):
        codes = pq.encode(codebook, training[:10])
        subs = pq.split_subvectors(training[:10], codebook.m)
        for i in range(10):
            for j in range(codebook.m):
                dists = ((codebook.codebooks[j] - subs[i, j]) ** 2).sum(axis=1)
                assert dists[codes[i, j]] == pytest.approx(dists.min(), rel=1e-3, abs=1e-4)

    def test_decode_rejects_wrong_m(self, codebook):
        with pytest.raises(ValueError):
            pq.decode(codebook, np.zeros((3, 7), dtype=np.uint8))


class TestADCTables:
    def test_naive_and_optimized_agree(self, codebook, training):
        """RC#7 is a performance difference, never a semantic one."""
        for query in training[:5]:
            naive = pq.naive_adc_table(codebook, query)
            fast = pq.optimized_adc_table(codebook, query)
            np.testing.assert_allclose(naive, fast, rtol=1e-3, atol=1e-3)

    def test_table_shape(self, codebook, training):
        table = pq.optimized_adc_table(codebook, training[0])
        assert table.shape == (codebook.m, codebook.c_pq)

    def test_adc_distance_matches_decoded_distance(self, codebook, training):
        query = training[0]
        codes = pq.encode(codebook, training[1:20])
        table = pq.optimized_adc_table(codebook, query)
        adc = pq.adc_distances(table, codes)
        decoded = pq.decode(codebook, codes)
        exact = ((decoded - query) ** 2).sum(axis=1)
        np.testing.assert_allclose(adc, exact, rtol=1e-3, atol=1e-2)

    def test_single_and_batch_adc_agree(self, codebook, training):
        query = training[3]
        codes = pq.encode(codebook, training[10:30])
        table = pq.optimized_adc_table(codebook, query)
        batch = pq.adc_distances(table, codes)
        for i in range(codes.shape[0]):
            assert pq.adc_distance_single(table, codes[i]) == pytest.approx(
                float(batch[i]), rel=1e-4, abs=1e-4
            )

    def test_adc_rejects_wrong_m(self, codebook):
        table = np.zeros((4, 32), dtype=np.float32)
        with pytest.raises(ValueError):
            pq.adc_distances(table, np.zeros((2, 3), dtype=np.uint8))


class TestSplit:
    def test_split_roundtrip(self, training):
        subs = pq.split_subvectors(training[:8], 4)
        assert subs.shape == (8, 4, 4)
        np.testing.assert_array_equal(subs.reshape(8, 16), training[:8])

    def test_split_rejects_bad_m(self, training):
        with pytest.raises(ValueError):
            pq.split_subvectors(training, 3)
