"""Tests for the specialized engine's collection facade."""

import numpy as np
import pytest

from repro.common.types import DistanceType
from repro.specialized import SpecializedDatabase


@pytest.fixture()
def db(small_dataset):
    db = SpecializedDatabase()
    db.create_collection("vectors", small_dataset.dim)
    db.insert("vectors", small_dataset.base)
    return db


class TestCollections:
    def test_create_and_list(self):
        db = SpecializedDatabase()
        db.create_collection("a", 4)
        db.create_collection("b", 8)
        assert db.list_collections() == ["a", "b"]

    def test_duplicate_rejected(self):
        db = SpecializedDatabase()
        db.create_collection("a", 4)
        with pytest.raises(ValueError):
            db.create_collection("a", 4)

    def test_drop(self):
        db = SpecializedDatabase()
        db.create_collection("a", 4)
        db.drop_collection("a")
        assert db.list_collections() == []
        with pytest.raises(KeyError):
            db.drop_collection("a")

    def test_insert_dim_checked(self, db):
        with pytest.raises(ValueError):
            db.insert("vectors", np.zeros((2, 3), dtype=np.float32))

    def test_insert_returns_count(self, small_dataset):
        db = SpecializedDatabase()
        db.create_collection("v", small_dataset.dim)
        assert db.insert("v", small_dataset.base[:10]) == 10
        assert db.insert("v", small_dataset.base[10:20]) == 20


class TestIndexing:
    def test_exact_search_without_index(self, db, small_dataset):
        gt = small_dataset.ground_truth(5)
        result = db.search("vectors", small_dataset.queries[0], 5)
        assert result.ids == gt[0].tolist()

    def test_ivf_index_search(self, db, small_dataset):
        db.create_index("vectors", "ivf_flat", n_clusters=8, sample_ratio=0.5, seed=1)
        result = db.search("vectors", small_dataset.queries[0], 5, nprobe=8)
        assert result.ids == small_dataset.ground_truth(5)[0].tolist()

    def test_unknown_index_type(self, db):
        with pytest.raises(ValueError):
            db.create_index("vectors", "lsh")

    def test_index_on_empty_collection(self):
        db = SpecializedDatabase()
        db.create_collection("e", 4)
        with pytest.raises(RuntimeError):
            db.create_index("e", "flat")

    def test_insert_after_index_keeps_consistency(self, db, small_dataset):
        db.create_index("vectors", "flat")
        extra = small_dataset.base[:1] + 100.0
        db.insert("vectors", extra)
        result = db.search("vectors", extra[0], 1, index_type="flat")
        assert result.ids == [small_dataset.n]

    def test_multiple_indexes_need_explicit_type(self, db):
        db.create_index("vectors", "flat")
        db.create_index("vectors", "ivf_flat", n_clusters=4, sample_ratio=0.5, seed=1)
        with pytest.raises(ValueError):
            db.search("vectors", np.zeros(16, dtype=np.float32), 1)

    def test_missing_index_type(self, db):
        db.create_index("vectors", "flat")
        with pytest.raises(KeyError):
            db.search("vectors", np.zeros(16, dtype=np.float32), 1, index_type="hnsw")

    def test_unknown_collection(self):
        db = SpecializedDatabase()
        with pytest.raises(KeyError):
            db.search("nope", np.zeros(4, dtype=np.float32), 1)


class TestFacadeAllIndexTypes:
    def test_sq8_via_facade(self, db, small_dataset):
        db.create_index("vectors", "ivf_sq8", n_clusters=8, sample_ratio=0.8, seed=1)
        result = db.search("vectors", small_dataset.queries[0], 5, nprobe=8)
        truth = small_dataset.ground_truth(5)[0].tolist()
        assert len(set(result.ids) & set(truth)) >= 4  # SQ8 near-lossless

    def test_hnsw_via_facade(self, db, small_dataset):
        db.create_index("vectors", "hnsw", bnn=6, efb=16, seed=2)
        result = db.search("vectors", small_dataset.queries[0], 5, efs=40)
        assert len(result.neighbors) == 5

    def test_pq_via_facade(self, db, small_dataset):
        db.create_index("vectors", "ivf_pq", n_clusters=8, m=4, c_pq=16, sample_ratio=0.9, seed=1)
        result = db.search("vectors", small_dataset.queries[0], 5, nprobe=8)
        assert len(result.neighbors) == 5
