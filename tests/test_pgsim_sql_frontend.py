"""Tests for the SQL lexer, parser, and expression evaluator."""

import numpy as np
import pytest

from repro.pgsim import expr as E
from repro.pgsim.sql import ast, parse_sql
from repro.pgsim.sql.lexer import SqlSyntaxError, TokenType, tokenize


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT id FROM t;")
        kinds = [t.type for t in tokens]
        assert kinds == [
            TokenType.KEYWORD,
            TokenType.IDENT,
            TokenType.KEYWORD,
            TokenType.IDENT,
            TokenType.PUNCT,
            TokenType.EOF,
        ]

    def test_distance_operators(self):
        tokens = tokenize("a <-> b <#> c <=> d")
        ops = [t.value for t in tokens if t.type == TokenType.OPERATOR]
        assert ops == ["<->", "<#>", "<=>"]

    def test_operator_greediness(self):
        ops = [t.value for t in tokenize("a <= b <> c :: d") if t.type == TokenType.OPERATOR]
        assert ops == ["<=", "<>", "::"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 3.1e-2") if t.type == TokenType.NUMBER]
        assert values == ["1", "2.5", "1e3", "3.1e-2"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- a comment\n;")
        assert len(tokens) == 4  # SELECT, 1, ;, EOF

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].value == "select"
        assert tokenize("SeLeCt")[0].value == "select"

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestParser:
    def test_create_table(self):
        (stmt,) = parse_sql("CREATE TABLE t (id int, vec float[])")
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.name == "t"
        assert stmt.columns[1].type_name == "float[]"

    def test_create_table_if_not_exists(self):
        (stmt,) = parse_sql("CREATE TABLE IF NOT EXISTS t (id int)")
        assert stmt.if_not_exists

    def test_create_index_with_options(self):
        (stmt,) = parse_sql(
            "CREATE INDEX ix ON t USING ivfflat_fun (vec) "
            "WITH (clustering_params = '10,256', distance_type = 0)"
        )
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.am == "ivfflat_fun"
        assert dict(stmt.options) == {"clustering_params": "10,256", "distance_type": 0}

    def test_paper_query_shape(self):
        """The exact query form from the paper's Sec. II-E."""
        (stmt,) = parse_sql(
            "SELECT id FROM t ORDER BY vec <-> '0.1,0.2,0.3'::PASE ASC LIMIT 10"
        )
        assert isinstance(stmt, ast.Select)
        assert stmt.limit == 10
        order = stmt.order_by
        assert order is not None and order.ascending
        assert isinstance(order.expr, ast.BinaryOp) and order.expr.op == "<->"
        assert isinstance(order.expr.right, ast.Cast)
        assert order.expr.right.type_name == "pase"

    def test_insert_multi_row(self):
        (stmt,) = parse_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.Insert)
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        (stmt,) = parse_sql("INSERT INTO t (id, vec) VALUES (1, ARRAY[1.0, 2.0])")
        assert stmt.columns == ("id", "vec")
        assert isinstance(stmt.rows[0][1], ast.ArrayLiteral)

    def test_where_and_or_precedence(self):
        (stmt,) = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        where = stmt.where
        assert isinstance(where, ast.BinaryOp) and where.op == "or"
        assert isinstance(where.right, ast.BinaryOp) and where.right.op == "and"

    def test_arithmetic_precedence(self):
        (stmt,) = parse_sql("SELECT 1 + 2 * 3")
        expr = stmt.targets[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_set_show(self):
        stmts = parse_sql("SET pase.nprobe = 20; SHOW pase.nprobe")
        assert isinstance(stmts[0], ast.SetStatement)
        assert stmts[0].name == "pase.nprobe"
        assert stmts[0].value == 20
        assert isinstance(stmts[1], ast.ShowStatement)

    def test_explain(self):
        (stmt,) = parse_sql("EXPLAIN SELECT * FROM t")
        assert isinstance(stmt, ast.Explain)

    def test_multiple_statements(self):
        stmts = parse_sql("CREATE TABLE a (x int); CREATE TABLE b (y int);")
        assert len(stmts) == 2

    def test_alias(self):
        (stmt,) = parse_sql("SELECT id AS key FROM t")
        assert stmt.targets[0].alias == "key"

    def test_count_star(self):
        (stmt,) = parse_sql("SELECT count(*) FROM t")
        call = stmt.targets[0].expr
        assert isinstance(call, ast.FuncCall)
        assert isinstance(call.args[0], ast.Star)

    def test_qualified_column(self):
        (stmt,) = parse_sql("SELECT t.id FROM t")
        ref = stmt.targets[0].expr
        assert ref.name == "id" and ref.table == "t"

    def test_negative_number(self):
        (stmt,) = parse_sql("SELECT -3.5")
        expr = stmt.targets[0].expr
        assert isinstance(expr, ast.UnaryOp)

    def test_syntax_errors(self):
        for bad in (
            "SELECT FROM",
            "CREATE t",
            "INSERT INTO",
            "SELECT * FROM t LIMIT x",
            "CREATE INDEX i ON t USING am",
        ):
            with pytest.raises(SqlSyntaxError):
                parse_sql(bad)


class TestExprEval:
    def test_literals(self):
        assert E.evaluate(ast.Literal(5)) == 5
        assert E.evaluate(ast.Literal(None)) is None

    def test_column_lookup(self):
        assert E.evaluate(ast.ColumnRef("x"), {"x": 3}) == 3
        with pytest.raises(E.ExpressionError):
            E.evaluate(ast.ColumnRef("y"), {"x": 3})
        with pytest.raises(E.ExpressionError):
            E.evaluate(ast.ColumnRef("x"), None)

    def test_vector_cast(self):
        expr = ast.Cast(ast.Literal("1.0,2.0,3.0"), "pase")
        vec = E.evaluate(expr)
        np.testing.assert_array_equal(vec, np.array([1, 2, 3], dtype=np.float32))

    def test_pgvector_bracket_literal(self):
        vec = E.parse_vector_text("[0.5, 1.5]")
        np.testing.assert_array_equal(vec, np.array([0.5, 1.5], dtype=np.float32))

    def test_bad_vector_literal(self):
        with pytest.raises(E.ExpressionError):
            E.parse_vector_text("a,b")
        with pytest.raises(E.ExpressionError):
            E.parse_vector_text("")

    def test_distance_operators(self):
        a = np.array([0.0, 0.0], dtype=np.float32)
        b = np.array([3.0, 4.0], dtype=np.float32)
        row = {"a": a, "b": b}
        l2 = E.evaluate(ast.BinaryOp("<->", ast.ColumnRef("a"), ast.ColumnRef("b")), row)
        assert l2 == pytest.approx(25.0)  # squared L2, like Faiss
        ip = E.evaluate(ast.BinaryOp("<#>", ast.ColumnRef("a"), ast.ColumnRef("b")), row)
        assert ip == pytest.approx(0.0)

    def test_distance_dim_mismatch(self):
        row = {"a": np.zeros(2, dtype=np.float32), "b": np.zeros(3, dtype=np.float32)}
        with pytest.raises(E.ExpressionError):
            E.evaluate(ast.BinaryOp("<->", ast.ColumnRef("a"), ast.ColumnRef("b")), row)

    def test_comparisons_and_logic(self):
        row = {"x": 5}
        t = ast.BinaryOp(
            "and",
            ast.BinaryOp(">", ast.ColumnRef("x"), ast.Literal(1)),
            ast.BinaryOp("<=", ast.ColumnRef("x"), ast.Literal(5)),
        )
        assert E.evaluate(t, row) is True

    def test_division_by_zero(self):
        with pytest.raises(E.ExpressionError):
            E.evaluate(ast.BinaryOp("/", ast.Literal(1), ast.Literal(0)))

    def test_functions(self):
        assert E.evaluate(ast.FuncCall("abs", (ast.Literal(-2),))) == 2
        assert E.evaluate(ast.FuncCall("sqrt", (ast.Literal(9),))) == 3.0
        dims = ast.FuncCall("vector_dims", (ast.Cast(ast.Literal("1,2"), "pase"),))
        assert E.evaluate(dims) == 2
        with pytest.raises(E.ExpressionError):
            E.evaluate(ast.FuncCall("nope", ()))

    def test_array_literal(self):
        arr = E.evaluate(ast.ArrayLiteral((ast.Literal(1), ast.Literal(2))))
        np.testing.assert_array_equal(arr, np.array([1, 2], dtype=np.float32))

    def test_is_constant(self):
        assert E.is_constant(ast.Cast(ast.Literal("1,2"), "pase"))
        assert not E.is_constant(ast.BinaryOp("+", ast.ColumnRef("x"), ast.Literal(1)))

    def test_vector_equality(self):
        a = np.array([1.0, 2.0], dtype=np.float32)
        assert E.evaluate(ast.BinaryOp("=", ast.Literal(a), ast.Literal(a.copy())))
