"""Tests for the disk manager and buffer manager (RC#2 substrate)."""

import pytest

from repro.pgsim.buffer import BufferManager, BufferPoolExhaustedError
from repro.pgsim.page import Page
from repro.pgsim.storage import FileDisk, MemoryDisk, RelationNotFoundError


@pytest.fixture()
def disk():
    d = MemoryDisk(page_size=1024)
    d.create_relation("r")
    return d


@pytest.fixture()
def buffer(disk):
    return BufferManager(disk, capacity=4)


def _blank_page(size=1024) -> bytes:
    return bytes(Page.init(size).buf)


class TestMemoryDisk:
    def test_extend_and_read(self, disk):
        blk = disk.extend("r", _blank_page())
        assert blk == 0
        assert disk.n_blocks("r") == 1
        assert len(disk.read_block("r", 0)) == 1024

    def test_write_block(self, disk):
        disk.extend("r", _blank_page())
        data = bytearray(_blank_page())
        data[100] = 7
        disk.write_block("r", 0, bytes(data))
        assert disk.read_block("r", 0)[100] == 7

    def test_out_of_range(self, disk):
        with pytest.raises(IndexError):
            disk.read_block("r", 0)
        with pytest.raises(IndexError):
            disk.write_block("r", 5, _blank_page())

    def test_wrong_page_size_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.extend("r", b"tiny")

    def test_unknown_relation(self, disk):
        with pytest.raises(RelationNotFoundError):
            disk.read_block("nope", 0)

    def test_duplicate_relation(self, disk):
        with pytest.raises(ValueError):
            disk.create_relation("r")

    def test_drop(self, disk):
        disk.drop_relation("r")
        assert not disk.relation_exists("r")

    def test_relation_bytes(self, disk):
        disk.extend("r", _blank_page())
        disk.extend("r", _blank_page())
        assert disk.relation_bytes("r") == 2048

    def test_io_counters(self, disk):
        disk.extend("r", _blank_page())
        disk.read_block("r", 0)
        assert disk.reads == 1
        assert disk.writes == 1


class TestFileDisk:
    def test_roundtrip(self, tmp_path):
        disk = FileDisk(tmp_path, page_size=1024)
        disk.create_relation("t")
        blk = disk.extend("t", _blank_page())
        data = bytearray(_blank_page())
        data[50] = 9
        disk.write_block("t", blk, bytes(data))
        assert disk.read_block("t", blk)[50] == 9
        assert disk.list_relations() == ["t"]

    def test_persists_across_instances(self, tmp_path):
        disk = FileDisk(tmp_path, page_size=1024)
        disk.create_relation("t")
        disk.extend("t", _blank_page())
        fresh = FileDisk(tmp_path, page_size=1024)
        assert fresh.n_blocks("t") == 1

    def test_path_traversal_rejected(self, tmp_path):
        disk = FileDisk(tmp_path)
        with pytest.raises(ValueError):
            disk.create_relation("../evil")


class TestBufferManager:
    def test_miss_then_hit(self, buffer, disk):
        disk.extend("r", _blank_page())
        before = buffer.stats.snapshot()
        frame = buffer.pin("r", 0)
        buffer.unpin(frame)
        frame = buffer.pin("r", 0)
        buffer.unpin(frame)
        delta = buffer.stats.delta(before)
        assert delta.misses == 1
        assert delta.hits == 1
        assert buffer.stats.hit_ratio == 0.5

    def test_new_page_is_pinned_dirty(self, buffer):
        blkno, frame = buffer.new_page("r")
        assert blkno == 0
        assert frame.pin_count == 1
        assert frame.dirty
        buffer.unpin(frame)

    def test_dirty_writeback_on_eviction(self, buffer, disk):
        blkno, frame = buffer.new_page("r")
        frame.page.insert_item(b"persist-me")
        buffer.unpin(frame, dirty=True)
        # Fill the pool to force eviction of block 0.
        for __ in range(6):
            __, f = buffer.new_page("r")
            buffer.unpin(f)
        raw = disk.read_block("r", blkno)
        assert b"persist-me" in raw

    def test_eviction_respects_pins(self, buffer):
        frames = []
        for __ in range(4):
            __, f = buffer.new_page("r")
            frames.append(f)  # keep pinned
        with pytest.raises(BufferPoolExhaustedError):
            buffer.new_page("r")
        for f in frames:
            buffer.unpin(f)
        __, f = buffer.new_page("r")  # now succeeds
        buffer.unpin(f)

    def test_capacity_respected(self, buffer):
        before = buffer.stats.snapshot()
        for __ in range(16):
            __, f = buffer.new_page("r")
            buffer.unpin(f)
        assert buffer.cached_pages <= 4
        assert buffer.stats.delta(before).evictions >= 12

    def test_page_context_manager(self, buffer, disk):
        disk.extend("r", _blank_page())
        with buffer.page("r", 0) as page:
            assert page.item_count == 0
        assert buffer.pinned_pages() == 0

    def test_unpin_unpinned_rejected(self, buffer, disk):
        disk.extend("r", _blank_page())
        frame = buffer.pin("r", 0)
        buffer.unpin(frame)
        with pytest.raises(RuntimeError):
            buffer.unpin(frame)

    def test_flush_all(self, buffer, disk):
        __, frame = buffer.new_page("r")
        frame.page.insert_item(b"flushed")
        buffer.unpin(frame, dirty=True)
        buffer.flush_all()
        assert b"flushed" in disk.read_block("r", 0)

    def test_drop_relation_invalidates(self, buffer, disk):
        __, frame = buffer.new_page("r")
        buffer.unpin(frame)
        buffer.drop_relation("r")
        assert buffer.cached_pages == 0

    def test_drop_pinned_relation_rejected(self, buffer):
        __, frame = buffer.new_page("r")
        with pytest.raises(RuntimeError):
            buffer.drop_relation("r")
        buffer.unpin(frame)

    def test_checksum_verified_on_read(self, buffer, disk):
        blkno, frame = buffer.new_page("r")
        frame.page.insert_item(b"x")
        buffer.unpin(frame, dirty=True)
        buffer.flush_all()
        buffer.drop_relation("r")
        # Corrupt on disk, then re-read through the buffer manager.
        raw = bytearray(disk.read_block("r", blkno))
        raw[700] ^= 0x1
        disk._relations["r"][blkno] = bytes(raw)
        from repro.pgsim.page import PageCorruptError

        with pytest.raises(PageCorruptError):
            buffer.pin("r", blkno)

    def test_invalid_capacity(self, disk):
        with pytest.raises(ValueError):
            BufferManager(disk, capacity=0)


class TestClockSweepFairness:
    def test_swapped_in_frame_not_inspected_out_of_turn(self):
        """Regression: after a swap-remove eviction the clock hand must
        advance past the frame swapped in from the tail, or that frame
        gets an out-of-turn inspection and the ring order degrades."""
        disk = MemoryDisk(page_size=1024)
        disk.create_relation("r")
        for __ in range(5):
            disk.extend("r", _blank_page())
        buffer = BufferManager(disk, capacity=3)
        for blkno in range(3):
            buffer.unpin(buffer.pin("r", blkno))
        # Pool full, all usage counts 1.  Pinning block 3 sweeps a full
        # lap (decrementing every usage count) and evicts block 0; the
        # swap-remove moves block 2's key into the hand position.
        buffer.unpin(buffer.pin("r", 3))
        assert ("r", 0) not in buffer._frames
        # Next eviction must pick block 1 — the frame after the evicted
        # one in ring order — not block 2, which was merely swapped into
        # the hand slot.
        buffer.unpin(buffer.pin("r", 4))
        assert ("r", 2) in buffer._frames
        assert ("r", 1) not in buffer._frames
        assert buffer.stats.evictions == 2


class TestNoStealEviction:
    def test_uncommitted_dirty_page_survives_eviction_pressure(self):
        from repro.pgsim.wal import WriteAheadLog

        disk = MemoryDisk(page_size=1024)
        disk.create_relation("r")
        wal = WriteAheadLog()
        buffer = BufferManager(disk, capacity=2, wal=wal)
        b0, f0 = buffer.new_page("r")
        f0.page.lsn = wal.log_insert(1, "r", b0, b"x")  # in-flight statement
        buffer.unpin(f0, dirty=True)
        b1, f1 = buffer.new_page("r")
        buffer.unpin(f1, dirty=True)  # dirty but lsn 0: committed state
        disk.extend("r", _blank_page())
        buffer.unpin(buffer.pin("r", 2))
        # The uncommitted page was skipped; the other dirty frame went.
        assert ("r", b0) in buffer._frames
        assert ("r", b1) not in buffer._frames
        # Once the WAL is flushed (commit), the page becomes evictable:
        # with block 2 pinned, block 0 is the only candidate left.
        wal.log_commit(1)
        f2 = buffer.pin("r", 2)
        disk.extend("r", _blank_page())
        f3 = buffer.pin("r", 3)
        assert ("r", b0) not in buffer._frames
        buffer.unpin(f2)
        buffer.unpin(f3)

    def test_pool_of_uncommitted_pages_exhausts(self):
        from repro.pgsim.wal import WriteAheadLog

        disk = MemoryDisk(page_size=1024)
        disk.create_relation("r")
        wal = WriteAheadLog()
        buffer = BufferManager(disk, capacity=2, wal=wal)
        for __ in range(2):
            blkno, frame = buffer.new_page("r")
            frame.page.lsn = wal.log_insert(1, "r", blkno, b"x")
            buffer.unpin(frame, dirty=True)
        with pytest.raises(BufferPoolExhaustedError):
            buffer.new_page("r")
