"""Tests for the specialized (Faiss-like) engine's indexes."""

import numpy as np
import pytest

from repro.common.metrics import mean_recall_at_k
from repro.common.profiling import Profiler
from repro.common.types import DistanceType
from repro.specialized import FlatIndex, HNSWIndex, IVFFlatIndex, IVFPQIndex


class TestFlatIndex:
    def test_exact_results(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base)
        gt = small_dataset.ground_truth(5)
        for qi, q in enumerate(small_dataset.queries):
            assert index.search(q, 5).ids == gt[qi].tolist()

    def test_incremental_add(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base[:100])
        index.add(small_dataset.base[100:])
        assert index.ntotal == small_dataset.n
        gt = small_dataset.ground_truth(3)
        assert index.search(small_dataset.queries[0], 3).ids == gt[0].tolist()

    def test_reconstruct(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base)
        np.testing.assert_array_equal(index.reconstruct(17), small_dataset.base[17])
        with pytest.raises(IndexError):
            index.reconstruct(small_dataset.n)

    def test_empty_search_rejected(self):
        index = FlatIndex(4)
        with pytest.raises(RuntimeError):
            index.search(np.zeros(4, dtype=np.float32), 1)

    def test_dim_mismatch_rejected(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        with pytest.raises(ValueError):
            index.add(np.zeros((3, small_dataset.dim + 1), dtype=np.float32))

    def test_distance_computations_counted(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base)
        result = index.search(small_dataset.queries[0], 3)
        assert result.distance_computations == small_dataset.n

    def test_inner_product_metric(self, small_dataset):
        index = FlatIndex(small_dataset.dim, distance_type=DistanceType.INNER_PRODUCT)
        index.add(small_dataset.base)
        result = index.search(small_dataset.queries[0], 3)
        ips = small_dataset.base @ small_dataset.queries[0]
        assert result.ids[0] == int(np.argmax(ips))


class TestIVFFlatIndex:
    @pytest.fixture(scope="class")
    def index(self, small_dataset):
        ix = IVFFlatIndex(small_dataset.dim, n_clusters=16, sample_ratio=0.5, seed=3)
        ix.train(small_dataset.base)
        ix.add(small_dataset.base)
        return ix

    def test_good_recall(self, index, small_dataset):
        gt = small_dataset.ground_truth(10)
        res = [index.search(q, 10, nprobe=8).ids for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) > 0.85

    def test_full_probe_is_exact(self, index, small_dataset):
        gt = small_dataset.ground_truth(10)
        res = [index.search(q, 10, nprobe=16).ids for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) == 1.0

    def test_recall_monotone_in_nprobe(self, index, small_dataset):
        gt = small_dataset.ground_truth(10)
        recalls = []
        for nprobe in (1, 4, 16):
            res = [index.search(q, 10, nprobe=nprobe).ids for q in small_dataset.queries]
            recalls.append(mean_recall_at_k(res, gt, 10))
        assert recalls[0] <= recalls[1] + 1e-9 <= recalls[2] + 2e-9

    def test_every_vector_in_exactly_one_bucket(self, index, small_dataset):
        sizes = index.bucket_sizes()
        assert sizes.sum() == small_dataset.n
        all_ids = np.concatenate([index.bucket_members(b) for b in range(16)])
        assert sorted(all_ids.tolist()) == list(range(small_dataset.n))

    def test_untrained_add_rejected(self, small_dataset):
        ix = IVFFlatIndex(small_dataset.dim, n_clusters=4)
        with pytest.raises(RuntimeError):
            ix.add(small_dataset.base)

    def test_set_centroids_transplant(self, index, small_dataset):
        other = IVFFlatIndex(small_dataset.dim, n_clusters=16)
        other.set_centroids(index.centroids)
        other.add(small_dataset.base)
        np.testing.assert_array_equal(other.bucket_sizes(), index.bucket_sizes())

    def test_set_centroids_after_add_rejected(self, index):
        with pytest.raises(RuntimeError):
            index.set_centroids(index.centroids)

    def test_no_sgemm_same_results(self, small_dataset):
        a = IVFFlatIndex(small_dataset.dim, n_clusters=8, sample_ratio=0.5, seed=3, use_sgemm=True)
        b = IVFFlatIndex(small_dataset.dim, n_clusters=8, sample_ratio=0.5, seed=3, use_sgemm=False)
        for ix in (a, b):
            ix.train(small_dataset.base)
            ix.add(small_dataset.base)
        q = small_dataset.queries[0]
        assert a.search(q, 5, nprobe=4).ids == b.search(q, 5, nprobe=4).ids

    def test_build_stats_recorded(self, index, small_dataset):
        assert index.build_stats.train_seconds > 0
        assert index.build_stats.add_seconds > 0
        assert index.build_stats.vectors_added == small_dataset.n

    def test_size_info(self, index, small_dataset):
        info = index.size_info()
        assert info.detail["vectors"] == small_dataset.n * small_dataset.dim * 4
        assert info.allocated_bytes == info.used_bytes

    def test_invalid_nprobe(self, index, small_dataset):
        with pytest.raises(ValueError):
            index.search(small_dataset.queries[0], 5, nprobe=0)


class TestIVFPQIndex:
    @pytest.fixture(scope="class")
    def index(self, small_dataset):
        ix = IVFPQIndex(
            small_dataset.dim, n_clusters=12, m=4, c_pq=32, sample_ratio=0.9, seed=3
        )
        ix.train(small_dataset.base)
        ix.add(small_dataset.base)
        return ix

    def test_reasonable_recall(self, index, small_dataset):
        gt = small_dataset.ground_truth(10)
        res = [index.search(q, 10, nprobe=12).ids for q in small_dataset.queries]
        # PQ is lossy; just demand far-better-than-random.
        assert mean_recall_at_k(res, gt, 10) > 0.3

    def test_pctable_toggle_same_results(self, small_dataset):
        results = {}
        for flag in (True, False):
            ix = IVFPQIndex(
                small_dataset.dim,
                n_clusters=8,
                m=4,
                c_pq=16,
                sample_ratio=0.9,
                seed=3,
                optimized_pctable=flag,
            )
            ix.train(small_dataset.base)
            ix.add(small_dataset.base)
            results[flag] = ix.search(small_dataset.queries[0], 5, nprobe=8).ids
        assert results[True] == results[False]

    def test_indivisible_dim_rejected(self):
        with pytest.raises(ValueError):
            IVFPQIndex(10, n_clusters=4, m=3)

    def test_size_smaller_than_flat(self, index, small_dataset):
        flat = IVFFlatIndex(small_dataset.dim, n_clusters=12, sample_ratio=0.9, seed=3)
        flat.train(small_dataset.base)
        flat.add(small_dataset.base)
        assert index.size_info().detail["codes"] < flat.size_info().detail["vectors"]

    def test_bucket_partition(self, index, small_dataset):
        assert index.bucket_sizes().sum() == small_dataset.n


class TestHNSWIndex:
    @pytest.fixture(scope="class")
    def index(self, small_dataset):
        ix = HNSWIndex(small_dataset.dim, bnn=8, efb=30, efs=60, seed=5)
        ix.add(small_dataset.base)
        return ix

    def test_good_recall(self, index, small_dataset):
        gt = small_dataset.ground_truth(10)
        res = [index.search(q, 10, efs=80).ids for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) > 0.8

    def test_no_training_required(self, small_dataset):
        assert not HNSWIndex(small_dataset.dim).requires_training

    def test_profiled_search(self, small_dataset):
        prof = Profiler()
        ix = HNSWIndex(small_dataset.dim, bnn=8, efb=20, seed=5, profiler=prof)
        ix.add(small_dataset.base[:200])
        ix.search(small_dataset.queries[0], 5)
        assert prof.inclusive_seconds("SearchNbToAdd") > 0
        assert prof.exclusive_seconds("fvec_L2sqr") > 0

    def test_size_info_neighbor_bytes(self, index):
        info = index.size_info()
        assert info.detail["neighbors"] == index.store.edge_count() * 4

    def test_distance_computations_counted(self, index, small_dataset):
        before = index.store.counters.distance_computations
        result = index.search(small_dataset.queries[0], 5)
        assert result.distance_computations > 0
        assert index.store.counters.distance_computations > before
