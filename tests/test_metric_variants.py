"""End-to-end tests for the inner-product and cosine metrics.

PASE's ``distance_type`` option (0 = L2, 1 = inner product,
2 = cosine — Sec. II-E) must flow from CREATE INDEX through the
planner's operator matching down to the scan kernels, on both engines.
"""

import numpy as np
import pytest

from repro.common.types import DistanceType
from repro.specialized import FlatIndex, IVFFlatIndex


@pytest.fixture()
def ip_db(loaded_db):
    loaded_db.execute(
        "CREATE INDEX ipx ON items USING pase_ivfflat (vec) "
        "WITH (clusters = 8, sample_ratio = 0.5, seed = 1, distance_type = 1)"
    )
    loaded_db.execute("SET pase.nprobe = 8")
    return loaded_db


class TestInnerProductSQL:
    def test_planner_matches_operator_to_metric(self, ip_db, small_dataset, vec_lit):
        lit = vec_lit(small_dataset.queries[0])
        plan = ip_db.explain(
            f"SELECT id FROM items ORDER BY vec <#> '{lit}'::PASE LIMIT 5"
        )
        assert "Index Scan using ipx" in plan
        # The L2 operator must NOT use the IP index.
        plan = ip_db.explain(
            f"SELECT id FROM items ORDER BY vec <-> '{lit}'::PASE LIMIT 5"
        )
        assert "Index Scan" not in plan

    def test_ip_results_match_brute_force(self, ip_db, small_dataset, vec_lit):
        q = small_dataset.queries[0]
        rows = ip_db.query(
            f"SELECT id FROM items ORDER BY vec <#> '{vec_lit(q)}'::PASE LIMIT 5"
        )
        got = [r[0] for r in rows]
        truth = np.argsort(-(small_dataset.base @ q), kind="stable")[:5].tolist()
        # IVF with IP is approximate; the top hit must match and
        # overlap must be strong with all buckets probed.
        assert got[0] == truth[0]
        assert len(set(got) & set(truth)) >= 4

    def test_seqscan_ip_ordering(self, ip_db, small_dataset, vec_lit):
        q = small_dataset.queries[1]
        ip_db.execute("SET enable_indexscan = false")
        rows = ip_db.query(
            f"SELECT id FROM items ORDER BY vec <#> '{vec_lit(q)}'::PASE LIMIT 5"
        )
        truth = np.argsort(-(small_dataset.base @ q), kind="stable")[:5].tolist()
        assert [r[0] for r in rows] == truth


class TestSpecializedMetrics:
    def test_flat_cosine(self, small_dataset):
        index = FlatIndex(small_dataset.dim, distance_type=DistanceType.COSINE)
        index.add(small_dataset.base)
        q = small_dataset.queries[0]
        got = index.search(q, 5).ids
        norms = np.linalg.norm(small_dataset.base, axis=1) * np.linalg.norm(q)
        sims = (small_dataset.base @ q) / norms
        truth = np.argsort(-sims, kind="stable")[:5].tolist()
        assert got == truth

    def test_ivf_inner_product(self, small_dataset):
        index = IVFFlatIndex(
            small_dataset.dim,
            n_clusters=8,
            sample_ratio=0.5,
            seed=1,
            distance_type=DistanceType.INNER_PRODUCT,
        )
        index.train(small_dataset.base)
        index.add(small_dataset.base)
        q = small_dataset.queries[2]
        got = index.search(q, 5, nprobe=8).ids
        truth = np.argsort(-(small_dataset.base @ q), kind="stable")[:5].tolist()
        assert got[0] == truth[0]
        assert len(set(got) & set(truth)) >= 3

    def test_engines_agree_on_ip(self, ip_db, small_dataset, vec_lit):
        """Cross-engine agreement with transplanted centroids + IP."""
        am = ip_db.catalog.find_index("ipx").am
        centroids = np.vstack([c.copy() for __, __, c in am._iter_centroids()])
        spec = IVFFlatIndex(
            small_dataset.dim,
            n_clusters=centroids.shape[0],
            distance_type=DistanceType.INNER_PRODUCT,
        )
        spec.set_centroids(centroids)
        spec.add(small_dataset.base)
        q = small_dataset.queries[3]
        rows = ip_db.query(
            f"SELECT id FROM items ORDER BY vec <#> '{vec_lit(q)}'::PASE LIMIT 5"
        )
        assert [r[0] for r in rows] == spec.search(q, 5, nprobe=8).ids
