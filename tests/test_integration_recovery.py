"""Crash-recovery integration tests for file-backed databases."""

import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.wal import WriteAheadLog


@pytest.fixture()
def datadir(tmp_path):
    return tmp_path / "db"


def _load(db, dataset, n=200):
    db.execute("CREATE TABLE items (id int, vec float[])")
    for i in range(n):
        lit = ",".join(f"{x:.6f}" for x in dataset.base[i])
        db.execute(f"INSERT INTO items VALUES ({i}, '{lit}'::PASE)")


class TestWalFilePersistence:
    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.log_insert(5, "t.heap", 0, b"tuple-bytes")
        wal.log_commit(5)
        reopened = WriteAheadLog(path)
        records = reopened.records()
        assert len(records) == 2
        assert records[0].payload == b"tuple-bytes"
        assert reopened.flushed_lsn == 2

    def test_unflushed_records_lost_on_crash(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.log_insert(5, "t.heap", 0, b"a")
        wal.log_commit(5)  # flushes
        wal.log_insert(6, "t.heap", 0, b"b")  # never flushed
        reopened = WriteAheadLog(path)
        assert len(reopened.records()) == 2

    def test_torn_tail_ignored(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.log_insert(5, "t.heap", 0, b"good")
        wal.log_commit(5)
        with path.open("ab") as f:
            f.write(b"\xff\xff\xff\x7f partial garbage")
        reopened = WriteAheadLog(path)
        assert len(reopened.records()) == 2

    def test_lsn_continues_after_reopen(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        first = wal.log_insert(5, "t.heap", 0, b"a")
        wal.log_commit(5)
        reopened = WriteAheadLog(path)
        assert reopened.log_insert(6, "t.heap", 0, b"b") > first + 1

    def test_torn_tail_mid_record_dropped(self, tmp_path):
        """A frame whose header promises more bytes than the file holds
        (a genuinely torn record, not trailing garbage) is discarded."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.log_insert(5, "t.heap", 0, b"good")
        wal.log_commit(5)
        intact = path.read_bytes()
        # Frame the third record correctly, then tear it in half.
        record = intact[WriteAheadLog._FRAME.size :]
        torn = WriteAheadLog._FRAME.pack(len(record)) + record[: len(record) // 2]
        path.write_bytes(intact + torn)
        reopened = WriteAheadLog(path)
        assert len(reopened.records()) == 2
        assert reopened.flushed_lsn == 2
        # The next append continues cleanly past the ignored tail.
        assert reopened.log_insert(6, "t.heap", 0, b"b") == 3

    def test_duplicate_records_from_retried_flush_skipped(self, tmp_path):
        """A flush retried after a partial failure can append the same
        records twice; ``_load`` keeps only the first copy of each LSN."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.log_insert(5, "t.heap", 0, b"a")
        wal.log_commit(5)
        path.write_bytes(path.read_bytes() * 2)
        reopened = WriteAheadLog(path)
        assert [r.lsn for r in reopened.records()] == [1, 2]

    def test_replay_twice_is_idempotent(self, tmp_path):
        from repro.pgsim.storage import MemoryDisk
        from repro.pgsim.wal import replay

        wal = WriteAheadLog(tmp_path / "wal.log")
        for i in range(3):
            wal.log_insert(7, "t.heap", 0, b"tuple-%d" % i)
        wal.log_commit(7)
        disk = MemoryDisk()
        assert replay(wal, disk) == 3
        after_first = disk.read_block("t.heap", 0)
        assert replay(wal, disk) == 0  # page LSNs already cover the log
        assert disk.read_block("t.heap", 0) == after_first


class TestDatabaseRecovery:
    def test_rows_survive_crash(self, datadir, small_dataset):
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        _load(db, small_dataset, n=150)
        del db  # crash: dirty buffer pages never flushed
        db2 = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        assert db2.execute("SELECT count(*) FROM items").scalar() == 150

    def test_index_rebuilt_and_consistent(self, datadir, small_dataset, vec_lit):
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=64)
        _load(db, small_dataset, n=200)
        db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 6, sample_ratio = 0.5, seed = 1)"
        )
        db.execute("SET pase.nprobe = 6")
        sql = (
            f"SELECT id FROM items ORDER BY vec <-> "
            f"'{vec_lit(small_dataset.queries[0])}'::PASE LIMIT 5"
        )
        before = db.query(sql)
        del db
        db2 = PgSimDatabase(data_dir=datadir, buffer_pool_pages=64)
        db2.execute("SET pase.nprobe = 6")
        assert db2.query(sql) == before
        assert "Index Scan using ix" in db2.explain(sql)

    def test_deletes_survive_crash(self, datadir, small_dataset):
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        _load(db, small_dataset, n=100)
        db.execute("DELETE FROM items WHERE id < 40")
        del db
        db2 = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        assert db2.execute("SELECT count(*) FROM items").scalar() == 60

    def test_dropped_table_stays_dropped(self, datadir, small_dataset):
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        _load(db, small_dataset, n=20)
        db.execute("DROP TABLE items")
        del db
        db2 = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        assert not db2.catalog.has_table("items")

    def test_updates_survive_crash(self, datadir, small_dataset):
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        _load(db, small_dataset, n=50)
        db.execute("UPDATE items SET id = 900 WHERE id = 9")
        del db
        db2 = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        assert db2.query("SELECT id FROM items WHERE id = 900") == [(900,)]
        assert db2.query("SELECT id FROM items WHERE id = 9") == []

    def test_second_recovery_idempotent(self, datadir, small_dataset):
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        _load(db, small_dataset, n=60)
        del db
        PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        db3 = PgSimDatabase(data_dir=datadir, buffer_pool_pages=32)
        assert db3.execute("SELECT count(*) FROM items").scalar() == 60

    def test_in_memory_database_has_no_ddl_log(self, small_dataset):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        assert db._catalog_log is None
