"""MVCC visibility: snapshots, BEGIN/COMMIT/ROLLBACK, vacuum horizon.

Covers the transaction-visibility semantics end to end: uncommitted
work is invisible to other sessions, rollback leaves no trace,
deleted-then-rolled-back rows resurrect, repeatable-read snapshots
hold inside a transaction block, write-write conflicts raise
serialization errors, and the vacuum horizon protects tuples still
visible to an open snapshot.
"""

import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.executor import ExecutionError
from repro.pgsim.xact import (
    Snapshot,
    SerializationError,
    TransactionManager,
    tuple_visible,
)


@pytest.fixture()
def db():
    database = PgSimDatabase()
    database.execute("CREATE TABLE t (id int, val int)")
    for i in range(3):
        database.execute(f"INSERT INTO t VALUES ({i}, {i * 10})")
    return database


def ids(session) -> list[int]:
    return sorted(r[0] for r in session.query("SELECT id FROM t"))


class TestSnapshotIsolation:
    def test_uncommitted_insert_invisible_to_others(self, db):
        writer, reader = db.session("w"), db.session("r")
        writer.execute("BEGIN")
        writer.execute("INSERT INTO t VALUES (7, 70)")
        assert ids(writer) == [0, 1, 2, 7]  # own changes visible
        assert ids(reader) == [0, 1, 2]
        writer.execute("COMMIT")
        assert ids(reader) == [0, 1, 2, 7]

    def test_uncommitted_delete_invisible_to_others(self, db):
        writer, reader = db.session("w"), db.session("r")
        writer.execute("BEGIN")
        writer.execute("DELETE FROM t WHERE id = 1")
        assert ids(writer) == [0, 2]
        assert ids(reader) == [0, 1, 2]
        writer.execute("COMMIT")
        assert ids(reader) == [0, 2]

    def test_repeatable_read_within_block(self, db):
        reader, writer = db.session("r"), db.session("w")
        reader.execute("BEGIN")
        assert ids(reader) == [0, 1, 2]
        writer.execute("INSERT INTO t VALUES (9, 90)")  # autocommit
        writer.execute("DELETE FROM t WHERE id = 0")
        # The block's snapshot was pinned at BEGIN: no phantom, no loss.
        assert ids(reader) == [0, 1, 2]
        reader.execute("COMMIT")
        assert ids(reader) == [1, 2, 9]

    def test_count_stable_within_block(self, db):
        reader, writer = db.session("r"), db.session("w")
        reader.execute("BEGIN")
        before = reader.execute("SELECT count(*) FROM t").scalar()
        writer.execute("INSERT INTO t VALUES (100, 0)")
        assert reader.execute("SELECT count(*) FROM t").scalar() == before
        reader.execute("ROLLBACK")


class TestRollback:
    def test_rollback_undoes_insert(self, db):
        s = db.session()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (5, 50)")
        s.execute("ROLLBACK")
        assert ids(s) == [0, 1, 2]
        # The optimistic counters were reversed too.
        heap = db.catalog.table("t").heap
        assert heap.tuple_count == 3
        assert heap.n_dead_tup == 1  # the aborted insert awaits vacuum

    def test_delete_then_rollback_resurrects(self, db):
        s, other = db.session(), db.session("other")
        s.execute("BEGIN")
        s.execute("DELETE FROM t WHERE id = 1")
        assert ids(s) == [0, 2]
        s.execute("ROLLBACK")
        assert ids(s) == [0, 1, 2]
        assert ids(other) == [0, 1, 2]
        # A later transaction can delete the resurrected row (the
        # aborted xmax stamp is overwritten, not a conflict).
        other.execute("DELETE FROM t WHERE id = 1")
        assert ids(other) == [0, 2]

    def test_failed_statement_poisons_block(self, db):
        s = db.session()
        s.execute("BEGIN")
        with pytest.raises(Exception):
            s.execute("INSERT INTO nonexistent VALUES (1)")
        with pytest.raises(ExecutionError, match="current transaction is aborted"):
            s.execute("SELECT id FROM t")
        # COMMIT of a failed block rolls back, reporting ROLLBACK.
        assert s.execute("COMMIT").command == "ROLLBACK"
        assert ids(s) == [0, 1, 2]

    def test_close_rolls_back_open_transaction(self, db):
        with db.session() as s:
            s.execute("BEGIN")
            s.execute("INSERT INTO t VALUES (5, 50)")
        assert ids(db.session()) == [0, 1, 2]


class TestTransactionControlEdges:
    def test_nested_begin_warns(self, db):
        s = db.session()
        assert s.execute("BEGIN").warnings == []
        result = s.execute("BEGIN")
        assert result.command == "BEGIN"
        assert result.warnings == ["there is already a transaction in progress"]
        s.execute("ROLLBACK")

    def test_commit_outside_block_warns(self, db):
        result = db.session().execute("COMMIT")
        assert result.command == "COMMIT"
        assert result.warnings == ["there is no transaction in progress"]

    def test_rollback_outside_block_warns(self, db):
        result = db.session().execute("ROLLBACK")
        assert result.warnings == ["there is no transaction in progress"]

    def test_work_and_transaction_noise_words(self, db):
        s = db.session()
        assert s.execute("BEGIN TRANSACTION").command == "BEGIN"
        assert s.execute("COMMIT WORK").command == "COMMIT"
        assert s.execute("BEGIN WORK").command == "BEGIN"
        assert s.execute("ROLLBACK TRANSACTION").command == "ROLLBACK"


class TestWriteConflicts:
    def test_concurrent_delete_raises_serialization_error(self, db):
        a, b = db.session("a"), db.session("b")
        a.execute("BEGIN")
        b.execute("BEGIN")
        a.execute("DELETE FROM t WHERE id = 1")
        with pytest.raises(SerializationError):
            b.execute("DELETE FROM t WHERE id = 1")
        # b's block is now failed; a commits cleanly.
        a.execute("COMMIT")
        assert b.execute("COMMIT").command == "ROLLBACK"
        assert ids(a) == [0, 2]

    def test_retry_after_conflict_succeeds(self, db):
        a, b = db.session("a"), db.session("b")
        a.execute("BEGIN")
        a.execute("DELETE FROM t WHERE id = 2")
        a.execute("COMMIT")
        # After a's commit the row is gone; b's fresh statement simply
        # matches nothing (no conflict on an already-dead row).
        assert b.execute("DELETE FROM t WHERE id = 2").command == "DELETE 0"


class TestVacuumHorizon:
    def test_vacuum_spares_tuples_visible_to_open_snapshot(self, db):
        reader, writer = db.session("r"), db.session("w")
        reader.execute("BEGIN")
        assert ids(reader) == [0, 1, 2]
        writer.execute("DELETE FROM t WHERE id = 1")
        # The deleter committed, but reader's snapshot predates it.
        assert writer.execute("VACUUM t").command == "VACUUM 0"
        assert ids(reader) == [0, 1, 2]
        reader.execute("COMMIT")
        assert writer.execute("VACUUM t").command == "VACUUM 1"
        assert ids(reader) == [0, 2]

    def test_vacuum_reclaims_aborted_inserts(self, db):
        s = db.session()
        s.execute("BEGIN")
        s.execute("INSERT INTO t VALUES (5, 50)")
        s.execute("ROLLBACK")
        heap = db.catalog.table("t").heap
        assert heap.n_dead_tup == 1
        assert s.execute("VACUUM t").command == "VACUUM 1"
        assert heap.n_dead_tup == 0
        assert ids(s) == [0, 1, 2]


class TestPlannerDeadTupleAccounting:
    def test_table_shape_discounts_post_analyze_deaths(self, db):
        from repro.pgsim.analyze import table_shape

        db.execute("ANALYZE t")
        table = db.catalog.table("t")
        assert table_shape(table)[0] == 3.0
        db.execute("DELETE FROM t WHERE id < 2")
        # Stats are stale (ANALYZE saw 3 rows) but the estimate is not.
        assert table.stats.reltuples == 3.0
        assert table_shape(table)[0] == 1.0

    def test_vacuum_rebases_the_discount(self, db):
        from repro.pgsim.analyze import table_shape

        db.execute("ANALYZE t")
        db.execute("DELETE FROM t WHERE id < 2")
        db.execute("VACUUM t")
        table = db.catalog.table("t")
        assert table.heap.n_dead_tup == 0
        assert table.stats.reltuples == 1.0
        assert table_shape(table)[0] == 1.0

    def test_n_dead_tup_in_pg_stat_user_tables(self, db):
        db.execute("DELETE FROM t WHERE id = 0")
        rows = db.query("SELECT relname, n_live_tup, n_dead_tup FROM pg_stat_user_tables")
        assert ("t", 2, 1) in rows
        db.execute("VACUUM t")
        rows = db.query("SELECT relname, n_live_tup, n_dead_tup FROM pg_stat_user_tables")
        assert ("t", 2, 0) in rows


class TestVisibilityPredicate:
    """Unit tests for the HeapTupleSatisfiesMVCC-style predicate."""

    def test_own_changes_visible(self):
        xact = TransactionManager()
        txn = xact.begin()
        snap = xact.snapshot(txn.xid)
        assert tuple_visible(xact, snap, txn.xid, 0)  # own insert
        assert not tuple_visible(xact, snap, txn.xid, txn.xid)  # own delete

    def test_in_progress_invisible(self):
        xact = TransactionManager()
        other = xact.begin()
        snap = xact.snapshot()
        assert not tuple_visible(xact, snap, other.xid, 0)
        # An in-progress deleter leaves the row visible.
        assert tuple_visible(xact, snap, 1, other.xid)

    def test_future_xids_invisible(self):
        xact = TransactionManager()
        snap = xact.snapshot()
        later = xact.begin()
        assert not tuple_visible(xact, snap, later.xid, 0)
        assert tuple_visible(xact, snap, 1, later.xid)

    def test_aborted_invisible_forever(self):
        xact = TransactionManager()
        txn = xact.begin()
        xact.abort(txn)
        snap = xact.snapshot()
        assert not tuple_visible(xact, snap, txn.xid, 0)
        assert tuple_visible(xact, snap, 1, txn.xid)  # aborted delete

    def test_latest_committed_without_snapshot(self):
        xact = TransactionManager()
        txn = xact.begin()
        assert not tuple_visible(xact, None, txn.xid, 0)
        xact.commit(txn)
        assert tuple_visible(xact, None, txn.xid, 0)
        assert not tuple_visible(xact, None, 1, txn.xid)

    def test_no_manager_reproduces_xmax_test(self):
        assert tuple_visible(None, None, 1, 0)
        assert not tuple_visible(None, None, 1, 2)

    def test_safe_horizon_tracks_open_snapshots(self):
        xact = TransactionManager()
        txn = xact.begin()
        txn.snapshot = xact.snapshot(txn.xid)
        later = xact.begin()
        xact.commit(later)
        assert xact.safe_horizon() == txn.xid
        xact.commit(txn)
        assert xact.safe_horizon() == xact.next_xid

    def test_snapshot_excludes_own_xid(self):
        xact = TransactionManager()
        txn = xact.begin()
        snap = xact.snapshot(txn.xid)
        assert txn.xid not in snap.xip
        assert isinstance(snap, Snapshot)
