"""Tests for PASE IVF_FLAT and IVF_PQ access methods."""

import numpy as np
import pytest

from repro.common.metrics import mean_recall_at_k
from repro.common.profiling import Profiler
from repro.pase.options import (
    IndexOptionError,
    parse_hnsw_options,
    parse_ivf_options,
    parse_ivfpq_options,
)
from repro.pgsim.heapam import TID


def _search_am(am, query, k):
    return [tid for tid, __ in am.scan(np.asarray(query, dtype=np.float32), k)]


def _ids(db, am, query, k):
    table = db.catalog.table("items")
    return [table.heap.fetch_column(tid, 0) for tid in _search_am(am, query, k)]


@pytest.fixture()
def flat_am(loaded_db):
    loaded_db.execute(
        "CREATE INDEX fx ON items USING pase_ivfflat (vec) "
        "WITH (clusters = 10, sample_ratio = 0.6, seed = 2)"
    )
    return loaded_db.catalog.find_index("fx").am


@pytest.fixture()
def pq_am(loaded_db):
    loaded_db.execute(
        "CREATE INDEX px ON items USING pase_ivfpq (vec) "
        "WITH (clusters = 10, m = 4, c_pq = 32, sample_ratio = 0.9, seed = 2)"
    )
    return loaded_db.catalog.find_index("px").am


class TestOptions:
    def test_paper_style_clustering_params(self):
        opts = parse_ivf_options({"clustering_params": "10,256", "distance_type": 0})
        assert opts.sample_ratio == pytest.approx(0.01)
        assert opts.clusters == 256

    def test_named_options(self):
        opts = parse_ivf_options({"clusters": 32, "sample_ratio": 0.5})
        assert opts.clusters == 32
        assert opts.sample_ratio == 0.5

    def test_bad_clustering_params(self):
        with pytest.raises(IndexOptionError):
            parse_ivf_options({"clustering_params": "10"})
        with pytest.raises(IndexOptionError):
            parse_ivf_options({"clustering_params": "a,b"})

    def test_bad_distance_type(self):
        with pytest.raises(IndexOptionError):
            parse_ivf_options({"distance_type": "euclid"})

    def test_sample_ratio_bounds(self):
        with pytest.raises(IndexOptionError):
            parse_ivf_options({"sample_ratio": 0.0})

    def test_pq_options(self):
        opts = parse_ivfpq_options({"m": 8, "c_pq": 64})
        assert opts.m == 8 and opts.c_pq == 64
        with pytest.raises(IndexOptionError):
            parse_ivfpq_options({"c_pq": 1024})

    def test_hnsw_options(self):
        opts = parse_hnsw_options({"bnn": 32, "efb": 80})
        assert opts.bnn == 32 and opts.efb == 80
        with pytest.raises(IndexOptionError):
            parse_hnsw_options({"bnn": -1})


class TestPaseIVFFlat:
    def test_recall(self, loaded_db, flat_am, small_dataset):
        loaded_db.execute("SET pase.nprobe = 10")
        gt = small_dataset.ground_truth(10)
        res = [_ids(loaded_db, flat_am, q, 10) for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) == 1.0  # all buckets probed

    def test_partial_probe_recall(self, loaded_db, flat_am, small_dataset):
        loaded_db.execute("SET pase.nprobe = 4")
        gt = small_dataset.ground_truth(10)
        res = [_ids(loaded_db, flat_am, q, 10) for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) > 0.6

    def test_distances_sorted(self, flat_am, small_dataset):
        dists = [d for __, d in flat_am.scan(small_dataset.queries[0], 20)]
        assert dists == sorted(dists)

    def test_all_vectors_indexed(self, flat_am, small_dataset):
        total = 0
        for __, head, __ in flat_am._iter_centroids():
            total += sum(1 for __ in flat_am._iter_bucket(head))
        assert total == small_dataset.n

    def test_fixed_heap_same_results(self, loaded_db, flat_am, small_dataset):
        q = small_dataset.queries[0]
        loaded_db.execute("SET pase.fixed_heap = false")
        naive = _search_am(flat_am, q, 10)
        loaded_db.execute("SET pase.fixed_heap = true")
        fixed = _search_am(flat_am, q, 10)
        assert naive == fixed

    def test_insert_lands_in_correct_bucket(self, loaded_db, flat_am, small_dataset):
        vec = small_dataset.base[0] + 30.0
        table = loaded_db.catalog.table("items")
        tid = table.heap.insert([7777, vec], xid=1)
        flat_am.insert(tid, vec)
        got = _search_am(flat_am, vec, 1)
        assert got == [tid]

    def test_profiled_scan_sections(self, loaded_db, flat_am, small_dataset):
        prof = Profiler()
        flat_am.profiler = prof
        _search_am(flat_am, small_dataset.queries[0], 5)
        assert prof.exclusive_seconds("fvec_L2sqr") > 0
        assert prof.exclusive_seconds("Tuple Access") > 0
        assert prof.exclusive_seconds("Min-heap") > 0

    def test_size_info_pages(self, flat_am):
        info = flat_am.size_info()
        assert info.page_count > 0
        assert info.allocated_bytes == info.page_count * 8192
        assert 0 < info.used_bytes <= info.allocated_bytes
        assert info.detail["data_pages"] >= 10  # at least one page per bucket chain

    def test_build_stats(self, flat_am, small_dataset):
        assert flat_am.build_stats.vectors_added == small_dataset.n
        assert flat_am.build_stats.train_seconds > 0
        assert flat_am.build_stats.add_seconds > 0

    def test_query_dim_checked(self, flat_am):
        with pytest.raises(ValueError):
            list(flat_am.scan(np.zeros(3, dtype=np.float32), 1))

    def test_relations_listed(self, flat_am):
        assert set(flat_am.relations()) == {"fx.meta", "fx.centroid", "fx.data"}


class TestPaseIVFPQ:
    def test_reasonable_recall(self, loaded_db, pq_am, small_dataset):
        loaded_db.execute("SET pase.nprobe = 10")
        gt = small_dataset.ground_truth(10)
        res = [_ids(loaded_db, pq_am, q, 10) for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) > 0.3

    def test_pctable_toggle_same_results(self, loaded_db, pq_am, small_dataset):
        q = small_dataset.queries[1]
        loaded_db.execute("SET pase.optimized_pctable = false")
        naive = _search_am(pq_am, q, 10)
        loaded_db.execute("SET pase.optimized_pctable = true")
        fast = _search_am(pq_am, q, 10)
        assert naive == fast

    def test_agrees_with_specialized_pq_semantics(self, loaded_db, pq_am, small_dataset):
        # ADC distance of the top hit must equal the decoded-code distance.
        from repro.common import pq as pq_mod

        q = small_dataset.queries[0]
        results = list(pq_am.scan(q, 1))
        tid, dist = results[0]
        codebook = pq_am._load_codebook()
        table = pq_mod.optimized_adc_table(codebook, q)
        vec = loaded_db.catalog.table("items").heap.fetch_column(tid, 1)
        code = pq_mod.encode(codebook, np.asarray(vec).reshape(1, -1))
        assert dist == pytest.approx(float(pq_mod.adc_distances(table, code)[0]), rel=1e-3)

    def test_insert(self, loaded_db, pq_am, small_dataset):
        vec = small_dataset.base[1] + 25.0
        table = loaded_db.catalog.table("items")
        tid = table.heap.insert([8888, vec], xid=1)
        pq_am.insert(tid, vec)
        assert _search_am(pq_am, vec, 1) == [tid]

    def test_codebook_reload_from_pages(self, loaded_db, pq_am, small_dataset):
        cached = pq_am._load_codebook()
        pq_am._codebook = None  # force a reload from codebook pages
        reloaded = pq_am._load_codebook()
        np.testing.assert_allclose(cached.codebooks, reloaded.codebooks, rtol=1e-6)

    def test_size_smaller_than_flat(self, loaded_db, pq_am, small_dataset):
        loaded_db.execute(
            "CREATE INDEX fx2 ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 10, sample_ratio = 0.6, seed = 2)"
        )
        flat = loaded_db.catalog.find_index("fx2").am
        # PQ codes are a fraction of the raw vectors' bytes (page
        # counts may tie at this tiny scale, so compare live payload).
        assert pq_am.size_info().used_bytes < flat.size_info().used_bytes

    def test_indivisible_m_rejected(self, loaded_db):
        with pytest.raises(ValueError):
            loaded_db.execute(
                "CREATE INDEX bad ON items USING pase_ivfpq (vec) WITH (m = 5)"
            )
