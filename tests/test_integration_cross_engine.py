"""Cross-engine integration tests: the study's validity conditions.

The paper's methodology requires that both engines run the *same
algorithm with the same parameters* so measured differences are pure
implementation cost.  These tests pin that equivalence down.
"""

import numpy as np
import pytest

from repro.common.metrics import mean_recall_at_k
from repro.core.study import ComparativeStudy, GeneralizedVectorDB, SpecializedVectorDB
from repro.specialized import HNSWIndex, IVFFlatIndex


class TestIVFEquivalence:
    @pytest.fixture(scope="class")
    def pair(self, medium_dataset):
        gen = GeneralizedVectorDB(buffer_pool_pages=2048)
        gen.load(medium_dataset.base)
        gen.create_index("ivf_flat", clusters=16, sample_ratio=0.4, seed=9)
        spec = IVFFlatIndex(medium_dataset.dim, n_clusters=16)
        spec.set_centroids(gen.pase_centroids())
        spec.add(medium_dataset.base)
        return gen, spec

    def test_identical_results_with_shared_centroids(self, pair, medium_dataset):
        gen, spec = pair
        for q in medium_dataset.queries[:6]:
            gen_result = gen.search(q, 10, nprobe=8)
            spec_result = spec.search(q, 10, nprobe=8)
            assert gen_result.ids == spec_result.ids
            np.testing.assert_allclose(
                gen_result.distances, spec_result.distances, rtol=1e-3, atol=1e-3
            )

    def test_same_bucket_contents(self, pair, medium_dataset):
        gen, spec = pair
        # Rebuild the PASE bucket map from the index pages and compare
        # against the specialized engine's buckets.
        table = gen.db.catalog.table(gen.table_name)
        pase_buckets = {}
        for cent_id, head, __ in gen.am._iter_centroids():
            members = set()
            for tid, __ in gen.am._iter_bucket(head):
                members.add(table.heap.fetch_column(tid, 0))
            pase_buckets[cent_id] = members
        for b in range(16):
            assert pase_buckets[b] == set(spec.bucket_members(b).tolist())


class TestHNSWEquivalence:
    def test_identical_graphs_and_results(self, medium_dataset):
        gen = GeneralizedVectorDB(buffer_pool_pages=4096)
        gen.load(medium_dataset.base[:700])
        gen.create_index("hnsw", bnn=8, efb=24, seed=12)
        spec = HNSWIndex(medium_dataset.dim, bnn=8, efb=24, seed=12)
        spec.add(medium_dataset.base[:700])
        # Same RNG seed + same insertion order = identical graphs, so
        # searches agree exactly.
        for q in medium_dataset.queries[:5]:
            gen_ids = gen.search(q, 10, efs=60).ids
            spec_ids = spec.search(q, 10, efs=60).ids
            assert gen_ids == spec_ids


class TestStudyEndToEnd:
    def test_full_pipeline_all_index_types(self, small_dataset):
        params = {
            "ivf_flat": {"clusters": 8, "sample_ratio": 0.5, "seed": 2},
            "ivf_pq": {"clusters": 8, "m": 4, "c_pq": 16, "sample_ratio": 0.9, "seed": 2},
            "hnsw": {"bnn": 6, "efb": 16, "seed": 2},
        }
        for index_type, p in params.items():
            study = ComparativeStudy(small_dataset, index_type, p)
            build = study.compare_build()
            assert build.gap > 0
            size = study.compare_size()
            assert size.generalized.allocated_bytes > 0
            search = study.compare_search(
                k=5,
                nprobe=8 if index_type != "hnsw" else None,
                efs=40 if index_type == "hnsw" else None,
                n_queries=4,
                recall=True,
            )
            assert search.generalized.count == 4
            # Both engines achieve comparable recall at these settings.
            assert abs(search.generalized_recall - search.specialized_recall) < 0.5

    def test_paper_headline_direction(self, medium_dataset):
        """The qualitative headline: PASE slower to build and search,
        HNSW index much bigger, IVF_FLAT sizes comparable."""
        flat = ComparativeStudy(
            medium_dataset, "ivf_flat", {"clusters": 20, "sample_ratio": 0.3, "seed": 1}
        )
        assert flat.compare_build().gap > 1.0
        assert 0.8 < flat.compare_size().gap < 2.5
        assert flat.compare_search(k=10, nprobe=10, n_queries=5).gap > 1.0

        hnsw = ComparativeStudy(
            medium_dataset, "hnsw", {"bnn": 8, "efb": 20, "seed": 1}
        )
        assert hnsw.compare_build().gap > 1.0
        assert hnsw.compare_size().gap > 2.0  # RC#4

    def test_sql_and_study_agree(self, small_dataset, vec_lit):
        """The SQL surface and the study wrapper return the same hits."""
        gen = GeneralizedVectorDB(buffer_pool_pages=512)
        gen.load(small_dataset.base)
        gen.create_index("ivf_flat", clusters=8, sample_ratio=0.5, seed=2)
        gen.db.execute("SET pase.nprobe = 8")
        q = small_dataset.queries[0]
        api_ids = gen.search(q, 5, nprobe=8).ids
        rows = gen.db.query(
            f"SELECT id FROM vectors ORDER BY vec <-> '{vec_lit(q)}'::PASE LIMIT 5"
        )
        assert [r[0] for r in rows] == api_ids
