"""Property tests: random SQL vs a naive Python oracle, both executors.

Hypothesis drives random INSERT/DELETE/SELECT sequences against a
pgsim database and re-derives every answer from a plain Python list.
Each check runs under both ``enable_batch_exec`` settings, so the
oracle simultaneously validates the engine and the tuple/batch parity
the RC#3 ablation depends on.

Vectors are integer-valued and small, so float32 distance arithmetic
is exact and the oracle can use Python ints.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.pgsim import PgSimDatabase

DIM = 4

small_int = st.integers(min_value=-50, max_value=50)
vec_strategy = st.lists(
    st.integers(min_value=-8, max_value=8), min_size=DIM, max_size=DIM
)


def _vec_lit(vec) -> str:
    return ",".join(f"{x}.0" for x in vec)


def _sq_dist(a, b) -> int:
    return sum((x - y) ** 2 for x, y in zip(a, b))


def _query_both(db: PgSimDatabase, sql: str):
    """Run under both executor paths; assert parity; return the rows."""
    db.execute("SET enable_batch_exec = off")
    tuple_rows = db.query(sql)
    db.execute("SET enable_batch_exec = on")
    batch_rows = db.query(sql)
    db.execute("SET enable_batch_exec = off")
    assert tuple_rows == batch_rows, f"paths diverged for {sql!r}"
    return tuple_rows


class SqlOracleMachine(RuleBasedStateMachine):
    """Random DML + queries vs a list-of-tuples oracle."""

    def __init__(self) -> None:
        super().__init__()
        self.db = PgSimDatabase(buffer_pool_pages=128)
        self.db.execute("CREATE TABLE t (id int, a int, vec float[])")
        #: oracle rows as (id, a, vec-tuple), in heap (insertion) order
        self.oracle: list[tuple[int, int, tuple[int, ...]]] = []
        self.next_id = 0

    @rule(a=small_int, vec=vec_strategy)
    def insert_row(self, a, vec) -> None:
        rid = self.next_id
        self.next_id += 1
        self.db.execute(
            f"INSERT INTO t VALUES ({rid}, {a}, '{_vec_lit(vec)}'::PASE)"
        )
        self.oracle.append((rid, a, tuple(vec)))

    @precondition(lambda self: self.oracle)
    @rule(threshold=small_int)
    def delete_where(self, threshold) -> None:
        self.db.execute(f"DELETE FROM t WHERE a < {threshold}")
        self.oracle = [row for row in self.oracle if not row[1] < threshold]

    @rule()
    def check_full_scan(self) -> None:
        rows = _query_both(self.db, "SELECT id, a FROM t")
        assert rows == [(rid, a) for rid, a, __ in self.oracle]

    @precondition(lambda self: self.oracle)
    @rule(threshold=small_int)
    def check_filter(self, threshold) -> None:
        rows = _query_both(self.db, f"SELECT id FROM t WHERE a >= {threshold}")
        assert rows == [(rid,) for rid, a, __ in self.oracle if a >= threshold]

    @rule(limit=st.integers(min_value=0, max_value=10))
    def check_limit(self, limit) -> None:
        rows = _query_both(self.db, f"SELECT id FROM t LIMIT {limit}")
        assert rows == [(rid,) for rid, __, __ in self.oracle[:limit]]

    @rule()
    def check_aggregates(self) -> None:
        rows = _query_both(self.db, "SELECT count(*) FROM t")
        assert rows == [(len(self.oracle),)]
        if self.oracle:
            rows = _query_both(self.db, "SELECT sum(a) FROM t")
            assert rows == [(sum(a for __, a, __ in self.oracle),)]

    @rule()
    def check_order_by(self) -> None:
        rows = _query_both(self.db, "SELECT id FROM t ORDER BY a")
        expected = [
            (rid,)
            for rid, __, __ in sorted(self.oracle, key=lambda row: row[1])
        ]
        assert rows == expected

    @precondition(lambda self: self.oracle)
    @rule(
        threshold=small_int,
        query=vec_strategy,
        k=st.integers(min_value=1, max_value=8),
    )
    def check_hybrid_knn_seqscan(self, threshold, query, k) -> None:
        """WHERE + ORDER BY distance + LIMIT over the seq-scan shape.

        Filter then stable sort — exactly the oracle's filtered ranking;
        must return exactly k rows whenever at least k rows qualify.
        """
        sql = (
            f"SELECT id FROM t WHERE a >= {threshold} "
            f"ORDER BY vec <-> '{_vec_lit(query)}'::PASE LIMIT {k}"
        )
        rows = _query_both(self.db, sql)
        matching = [row for row in self.oracle if row[1] >= threshold]
        ranked = sorted(matching, key=lambda row: _sq_dist(row[2], tuple(query)))
        assert rows == [(rid,) for rid, __, __ in ranked[:k]]
        assert len(rows) == min(k, len(matching))

    @precondition(lambda self: self.oracle)
    @rule(query=vec_strategy, k=st.integers(min_value=1, max_value=8))
    def check_knn_seqscan(self, query, k) -> None:
        """ORDER BY distance via seq scan: exact ordered match.

        The Sort node is stable, so ties keep heap order — exactly
        what a stable Python sort over the oracle produces.
        """
        sql = (
            f"SELECT id FROM t ORDER BY vec <-> '{_vec_lit(query)}'::PASE "
            f"LIMIT {k}"
        )
        rows = _query_both(self.db, sql)
        ranked = sorted(
            self.oracle, key=lambda row: _sq_dist(row[2], tuple(query))
        )
        assert rows == [(rid,) for rid, __, __ in ranked[:k]]


TestSqlOracle = SqlOracleMachine.TestCase
TestSqlOracle.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)


@settings(max_examples=12, deadline=None)
@given(
    data=st.lists(vec_strategy, min_size=8, max_size=40),
    query=vec_strategy,
    k=st.integers(min_value=1, max_value=10),
)
def test_indexed_knn_matches_oracle(data, query, k) -> None:
    """IVF index with nprobe == clusters is exhaustive: distances must
    match the oracle's k smallest, and both executor paths must agree
    row-for-row (ties included — both break toward the smallest TID
    under the naive top-k default)."""
    db = PgSimDatabase(buffer_pool_pages=128)
    db.execute("CREATE TABLE t (id int, vec float[])")
    for i, vec in enumerate(data):
        db.execute(f"INSERT INTO t VALUES ({i}, '{_vec_lit(vec)}'::PASE)")
    db.execute(
        "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
        "WITH (clusters = 4, sample_ratio = 1.0, seed = 7)"
    )
    db.execute("SET pase.nprobe = 4")

    sql = f"SELECT id FROM t ORDER BY vec <-> '{_vec_lit(query)}'::PASE LIMIT {k}"
    assert "Index Scan using ix" in db.explain(sql)
    rows = _query_both(db, sql)

    got_dists = [_sq_dist(data[rid], tuple(query)) for (rid,) in rows]
    want_dists = sorted(_sq_dist(v, tuple(query)) for v in data)[: len(rows)]
    assert got_dists == want_dists
    assert len(rows) == min(k, len(data))


@settings(max_examples=8, deadline=None)
@given(
    data=st.lists(vec_strategy, min_size=10, max_size=30),
    drop=st.integers(min_value=1, max_value=5),
    query=vec_strategy,
)
def test_indexed_knn_after_deletes(data, drop, query) -> None:
    """Deletes leave dead index entries; the k-widening retry on both
    paths must still return the oracle's nearest live rows."""
    db = PgSimDatabase(buffer_pool_pages=128)
    db.execute("CREATE TABLE t (id int, vec float[])")
    for i, vec in enumerate(data):
        db.execute(f"INSERT INTO t VALUES ({i}, '{_vec_lit(vec)}'::PASE)")
    db.execute(
        "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
        "WITH (clusters = 3, sample_ratio = 1.0, seed = 7)"
    )
    db.execute("SET pase.nprobe = 3")
    db.execute(f"DELETE FROM t WHERE id < {drop}")
    live = [(i, v) for i, v in enumerate(data) if i >= drop]

    k = 5
    sql = f"SELECT id FROM t ORDER BY vec <-> '{_vec_lit(query)}'::PASE LIMIT {k}"
    rows = _query_both(db, sql)
    got_dists = [_sq_dist(data[rid], tuple(query)) for (rid,) in rows]
    want_dists = sorted(_sq_dist(v, tuple(query)) for __, v in live)[: len(rows)]
    assert got_dists == want_dists
    assert len(rows) == min(k, len(live))
    assert all(rid >= drop for (rid,) in rows)


# One spec per SQL-visible index AM for the hybrid property sweep.
_HYBRID_AM_SPECS = {
    "pase_ivfflat": "clusters = 4, sample_ratio = 1.0, seed = 7",
    "pase_ivfpq": "clusters = 4, m = 4, c_pq = 8, sample_ratio = 1.0, seed = 7",
    "pase_hnsw": "bnn = 8, efb = 32, seed = 7",
    "ivfflat": "clusters = 4, sample_ratio = 1.0, seed = 7",
    "bridged_ivfflat": "clusters = 4, sample_ratio = 1.0, seed = 7",
    "bridged_hnsw": "bnn = 8, efb = 32, seed = 7",
}

#: AMs whose forced-exhaustive scan (nprobe == clusters) computes exact
#: distances, so the filtered result must equal the oracle's top-k.
_HYBRID_EXACT = {"pase_ivfflat", "ivfflat", "bridged_ivfflat"}

#: AMs whose reported distances are exact even though the candidate set
#: is best-effort (HNSW beams): output must still be nondecreasing in
#: true distance.  IVF_PQ is excluded — it orders by quantized (ADC)
#: distance, which is not monotone in the true distance, so only the
#: exact-k/predicate/path-parity invariants apply there.
_HYBRID_ORDERED = _HYBRID_EXACT | {"pase_hnsw", "bridged_hnsw"}


@pytest.mark.parametrize("amname", sorted(_HYBRID_AM_SPECS))
@settings(max_examples=6, deadline=None)
@given(
    data=st.lists(
        st.tuples(small_int, vec_strategy), min_size=8, max_size=30
    ),
    threshold=small_int,
    query=vec_strategy,
    k=st.integers(min_value=1, max_value=6),
)
def test_hybrid_filtered_knn_matches_oracle(amname, data, threshold, query, k) -> None:
    """WHERE + ORDER BY distance + LIMIT over every index AM.

    With the seq-scan path disabled the filter is pushed into the index
    scan; the adaptive over-fetch must deliver exactly
    ``min(k, matching)`` predicate-satisfying rows on both executor
    paths — in nondecreasing true-distance order for the AMs that
    report exact distances, and equal to the oracle's exact filtered
    top-k for the exhaustive exact AMs.
    """
    db = PgSimDatabase(buffer_pool_pages=256)
    db.execute("CREATE TABLE t (id int, a int, vec float[])")
    for i, (a, vec) in enumerate(data):
        db.execute(f"INSERT INTO t VALUES ({i}, {a}, '{_vec_lit(vec)}'::PASE)")
    db.execute(
        f"CREATE INDEX ix ON t USING {amname} (vec) WITH ({_HYBRID_AM_SPECS[amname]})"
    )
    db.execute("SET pase.nprobe = 4")
    db.execute("SET pase.efs = 64")
    db.execute("SET enable_seqscan = off")

    sql = (
        f"SELECT id, a FROM t WHERE a >= {threshold} "
        f"ORDER BY vec <-> '{_vec_lit(query)}'::PASE LIMIT {k}"
    )
    assert "Index Scan using ix" in db.explain(sql)
    rows = _query_both(db, sql)

    matching = [(i, a, tuple(v)) for i, (a, v) in enumerate(data) if a >= threshold]
    assert len(rows) == min(k, len(matching))
    assert all(a >= threshold for __, a in rows)
    got_dists = [_sq_dist(data[rid][1], tuple(query)) for rid, __ in rows]
    if amname in _HYBRID_EXACT:
        want_dists = sorted(_sq_dist(v, tuple(query)) for __, __, v in matching)
        assert got_dists == want_dists[: len(rows)]
    elif amname in _HYBRID_ORDERED:
        assert got_dists == sorted(got_dists)


@pytest.mark.parametrize("setting", ["off", "on"])
def test_oracle_harness_smoke(setting) -> None:
    """The harness itself: one deterministic pass per GUC setting."""
    db = PgSimDatabase(buffer_pool_pages=128)
    db.execute("CREATE TABLE t (id int, a int, vec float[])")
    db.execute("INSERT INTO t VALUES (0, 5, '1.0,0.0,0.0,0.0'::PASE)")
    db.execute("INSERT INTO t VALUES (1, -5, '0.0,1.0,0.0,0.0'::PASE)")
    db.execute(f"SET enable_batch_exec = {setting}")
    assert db.query("SELECT count(*) FROM t") == [(2,)]
    assert db.query("SELECT id FROM t WHERE a > 0") == [(0,)]
