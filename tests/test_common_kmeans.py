"""Tests for the two k-means implementations (RC#5)."""

import numpy as np
import pytest

from repro.common.datasets import generate_clustered
from repro.common.kmeans import (
    assign_nearest_batch,
    assign_nearest_loop,
    faiss_kmeans,
    pase_kmeans,
    sample_training_rows,
)


@pytest.fixture(scope="module")
def clustered():
    return generate_clustered(400, 8, n_components=5, seed=31, spread=0.1)


class TestAssignment:
    def test_batch_and_loop_agree(self, clustered):
        centroids = clustered[:10].copy()
        a_batch, d_batch = assign_nearest_batch(clustered, centroids)
        a_loop, d_loop = assign_nearest_loop(clustered, centroids)
        np.testing.assert_array_equal(a_batch, a_loop)
        np.testing.assert_allclose(d_batch, d_loop, rtol=1e-3, atol=1e-3)

    def test_assignment_is_nearest(self, clustered):
        centroids = clustered[::40].copy()
        assignments, dists = assign_nearest_batch(clustered, centroids)
        # Spot-check optimality: no other centroid is closer.
        for i in range(0, clustered.shape[0], 37):
            all_d = ((centroids - clustered[i]) ** 2).sum(axis=1)
            assert all_d[assignments[i]] == pytest.approx(all_d.min(), rel=1e-4, abs=1e-4)
            assert dists[i] == pytest.approx(all_d.min(), rel=1e-3, abs=1e-3)


class TestFaissKMeans:
    def test_shapes_and_inertia(self, clustered):
        result = faiss_kmeans(clustered, 5, seed=1)
        assert result.centroids.shape == (5, 8)
        assert result.assignments.shape == (400,)
        assert result.inertia > 0

    def test_inertia_improves_over_one_iteration(self, clustered):
        quick = faiss_kmeans(clustered, 8, max_iterations=1, seed=1)
        longer = faiss_kmeans(clustered, 8, max_iterations=10, seed=1)
        assert longer.inertia <= quick.inertia * 1.001

    def test_deterministic_for_seed(self, clustered):
        a = faiss_kmeans(clustered, 6, seed=5)
        b = faiss_kmeans(clustered, 6, seed=5)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_no_empty_clusters_on_clustered_data(self, clustered):
        result = faiss_kmeans(clustered, 5, seed=2)
        counts = np.bincount(result.assignments, minlength=5)
        assert (counts > 0).all()

    def test_sgemm_and_loop_paths_equivalent(self, clustered):
        a = faiss_kmeans(clustered, 5, seed=3, use_sgemm=True)
        b = faiss_kmeans(clustered, 5, seed=3, use_sgemm=False)
        np.testing.assert_allclose(a.centroids, b.centroids, rtol=1e-3, atol=1e-4)

    def test_rejects_too_few_rows(self):
        with pytest.raises(ValueError):
            faiss_kmeans(np.ones((3, 4), dtype=np.float32), 5)

    def test_rejects_bad_cluster_count(self, clustered):
        with pytest.raises(ValueError):
            faiss_kmeans(clustered, 0)


class TestPaseKMeans:
    def test_valid_clustering(self, clustered):
        result = pase_kmeans(clustered, 5)
        assert result.centroids.shape == (5, 8)
        # Quality should be in the same ballpark as the faiss variant.
        reference = faiss_kmeans(clustered, 5, seed=1)
        assert result.inertia < reference.inertia * 2.0

    def test_deterministic(self, clustered):
        a = pase_kmeans(clustered, 7)
        b = pase_kmeans(clustered, 7)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_differs_from_faiss_variant(self, clustered):
        """RC#5: the two implementations produce different centroids."""
        pase = pase_kmeans(clustered, 6)
        faiss = faiss_kmeans(clustered, 6, seed=1)
        assert not np.allclose(pase.centroids, faiss.centroids)

    def test_early_stop_on_tolerance(self, clustered):
        loose = pase_kmeans(clustered, 5, max_iterations=50, tolerance=0.5)
        assert loose.iterations < 50

    def test_tiny_input_padding(self):
        data = np.eye(4, dtype=np.float32)
        result = pase_kmeans(data, 4, max_iterations=2)
        assert result.centroids.shape == (4, 4)


class TestSampling:
    def test_respects_ratio(self, clustered):
        sample = sample_training_rows(clustered, 0.25, 5, seed=1)
        assert sample.shape[0] == 100

    def test_guarantees_cluster_minimum(self, clustered):
        sample = sample_training_rows(clustered, 0.001, 50, seed=1)
        assert sample.shape[0] >= 50

    def test_full_ratio_returns_everything(self, clustered):
        sample = sample_training_rows(clustered, 1.0, 5, seed=1)
        assert sample.shape[0] == clustered.shape[0]

    def test_invalid_ratio_rejected(self, clustered):
        with pytest.raises(ValueError):
            sample_training_rows(clustered, 0.0, 5)
        with pytest.raises(ValueError):
            sample_training_rows(clustered, 1.5, 5)

    def test_rows_come_from_input(self, clustered):
        sample = sample_training_rows(clustered, 0.1, 5, seed=3)
        pool = {row.tobytes() for row in clustered}
        assert all(row.tobytes() in pool for row in sample)
