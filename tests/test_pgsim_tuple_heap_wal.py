"""Tests for tuple encoding, the heap access method, and WAL recovery."""

import numpy as np
import pytest

from repro.pgsim.buffer import BufferManager
from repro.pgsim.heapam import TID, HeapTable
from repro.pgsim.storage import MemoryDisk
from repro.pgsim.tuple_format import (
    Column,
    TypeOid,
    decode_column,
    decode_tuple,
    encode_tuple,
)
from repro.pgsim.wal import WriteAheadLog, replay


@pytest.fixture()
def schema():
    return [
        Column.from_sql("id", "int"),
        Column.from_sql("score", "float"),
        Column.from_sql("label", "text"),
        Column.from_sql("vec", "float[]"),
    ]


@pytest.fixture()
def table_env():
    disk = MemoryDisk(page_size=2048)
    buffer = BufferManager(disk, capacity=32)
    wal = WriteAheadLog()
    schema = [Column.from_sql("id", "int"), Column.from_sql("vec", "float[]")]
    table = HeapTable("t", schema, buffer, wal)
    return disk, buffer, wal, table


class TestTupleFormat:
    def test_roundtrip(self, schema):
        row = [7, 3.5, "hello", np.array([1.0, 2.0], dtype=np.float32)]
        data = encode_tuple(schema, row)
        got = decode_tuple(schema, data)
        assert got[0] == 7
        assert got[1] == pytest.approx(3.5)
        assert got[2] == "hello"
        np.testing.assert_array_equal(got[3], row[3])

    def test_nulls(self, schema):
        data = encode_tuple(schema, [None, 1.0, None, np.zeros(2, dtype=np.float32)])
        got = decode_tuple(schema, data)
        assert got[0] is None
        assert got[2] is None
        assert got[1] == 1.0

    def test_unicode_text(self, schema):
        data = encode_tuple(schema, [1, 0.0, "héllo wörld ☃", np.zeros(1, dtype=np.float32)])
        assert decode_tuple(schema, data)[2] == "héllo wörld ☃"

    def test_decode_single_column(self, schema):
        row = [42, 2.5, "skip", np.array([9.0, 8.0, 7.0], dtype=np.float32)]
        data = encode_tuple(schema, row)
        assert decode_column(schema, data, 0) == 42
        np.testing.assert_array_equal(decode_column(schema, data, 3), row[3])
        assert decode_column(schema, data, 2) == "skip"

    def test_decode_column_with_nulls(self, schema):
        data = encode_tuple(schema, [None, None, "x", None])
        assert decode_column(schema, data, 0) is None
        assert decode_column(schema, data, 2) == "x"
        assert decode_column(schema, data, 3) is None

    def test_arity_mismatch(self, schema):
        with pytest.raises(ValueError):
            encode_tuple(schema, [1, 2.0])
        data = encode_tuple(schema, [1, 2.0, "x", np.zeros(1, dtype=np.float32)])
        with pytest.raises(ValueError):
            decode_tuple(schema[:2], data)

    def test_column_index_bounds(self, schema):
        data = encode_tuple(schema, [1, 2.0, "x", np.zeros(1, dtype=np.float32)])
        with pytest.raises(IndexError):
            decode_column(schema, data, 4)

    def test_sql_type_names(self):
        assert Column.from_sql("c", "INTEGER").type_oid == TypeOid.INT4
        assert Column.from_sql("c", "float[]").type_oid == TypeOid.FLOAT4_ARRAY
        assert Column.from_sql("c", "vector").type_oid == TypeOid.FLOAT4_ARRAY
        with pytest.raises(ValueError):
            Column.from_sql("c", "jsonb")

    def test_2d_array_datum_rejected(self, schema):
        with pytest.raises(ValueError):
            encode_tuple(schema, [1, 1.0, "x", np.zeros((2, 2), dtype=np.float32)])


class TestHeapTable:
    def test_insert_fetch(self, table_env):
        __, __, __, table = table_env
        vec = np.array([1.5, 2.5], dtype=np.float32)
        tid = table.insert([1, vec], xid=1)
        row = table.fetch(tid)
        assert row[0] == 1
        np.testing.assert_array_equal(row[1], vec)

    def test_multi_page_growth(self, table_env):
        __, __, __, table = table_env
        vec = np.zeros(64, dtype=np.float32)  # 256B+ tuples on 2KB pages
        tids = [table.insert([i, vec], xid=1) for i in range(50)]
        assert table.n_blocks() > 1
        assert table.fetch(tids[-1])[0] == 49

    def test_scan_order_and_count(self, table_env):
        __, __, __, table = table_env
        vec = np.zeros(4, dtype=np.float32)
        for i in range(20):
            table.insert([i, vec], xid=1)
        rows = list(table.scan())
        assert [r[1][0] for r in rows] == list(range(20))
        assert table.tuple_count == 20

    def test_delete_hides_from_scan(self, table_env):
        __, __, __, table = table_env
        vec = np.zeros(4, dtype=np.float32)
        tids = [table.insert([i, vec], xid=1) for i in range(5)]
        table.delete(tids[2], xid=1)
        assert [r[1][0] for r in table.scan()] == [0, 1, 3, 4]
        with pytest.raises(KeyError):
            table.fetch(tids[2])
        with pytest.raises(KeyError):
            table.delete(tids[2], xid=1)

    def test_vacuum(self, table_env):
        __, __, __, table = table_env
        vec = np.zeros(4, dtype=np.float32)
        tids = [table.insert([i, vec], xid=1) for i in range(10)]
        for tid in tids[::2]:
            table.delete(tid, xid=1)
        assert table.vacuum() == 5
        # Remaining rows still fetchable at their original TIDs.
        assert table.fetch(tids[1])[0] == 1

    def test_fetch_column(self, table_env):
        __, __, __, table = table_env
        tid = table.insert([9, np.array([4.0], dtype=np.float32)], xid=1)
        assert table.fetch_column(tid, 0) == 9

    def test_column_index_lookup(self, table_env):
        __, __, __, table = table_env
        assert table.column_index("vec") == 1
        with pytest.raises(KeyError):
            table.column_index("nope")

    def test_reopen_recounts(self, table_env):
        disk, buffer, wal, table = table_env
        vec = np.zeros(4, dtype=np.float32)
        for i in range(7):
            table.insert([i, vec], xid=1)
        reopened = HeapTable("t", table.schema, buffer, wal)
        assert reopened.tuple_count == 7

    def test_oversized_tuple_rejected(self, table_env):
        __, __, __, table = table_env
        with pytest.raises(ValueError):
            table.insert([1, np.zeros(4096, dtype=np.float32)], xid=1)


class TestWalRecovery:
    def test_committed_inserts_recovered(self, table_env):
        __, __, wal, table = table_env
        vec = np.array([1.0, 2.0], dtype=np.float32)
        for i in range(12):
            table.insert([i, vec], xid=5)
        wal.log_commit(5)
        # Crash: disk never saw the dirty pages.  Recover onto a blank disk.
        recovered_disk = MemoryDisk(page_size=2048)
        applied = replay(wal, recovered_disk)
        assert applied == 12
        table2 = HeapTable("t", table.schema, BufferManager(recovered_disk), None)
        assert table2.tuple_count == 12
        np.testing.assert_array_equal(table2.fetch(TID(0, 1))[1], vec)

    def test_uncommitted_inserts_not_recovered(self, table_env):
        __, __, wal, table = table_env
        vec = np.zeros(2, dtype=np.float32)
        table.insert([1, vec], xid=5)
        wal.log_commit(5)
        table.insert([2, vec], xid=6)  # never committed
        wal.flush()
        recovered = MemoryDisk(page_size=2048)
        replay(wal, recovered)
        table2 = HeapTable("t", table.schema, BufferManager(recovered), None)
        assert table2.tuple_count == 1

    def test_deletes_recovered(self, table_env):
        __, __, wal, table = table_env
        vec = np.zeros(2, dtype=np.float32)
        tids = [table.insert([i, vec], xid=2) for i in range(3)]
        table.delete(tids[1], xid=2)
        wal.log_commit(2)
        recovered = MemoryDisk(page_size=2048)
        replay(wal, recovered)
        table2 = HeapTable("t", table.schema, BufferManager(recovered), None)
        assert table2.tuple_count == 2

    def test_replay_idempotent_on_flushed_pages(self, table_env):
        disk, buffer, wal, table = table_env
        vec = np.zeros(2, dtype=np.float32)
        for i in range(4):
            table.insert([i, vec], xid=3)
        wal.log_commit(3)
        buffer.flush_all()  # pages already on disk
        applied = replay(wal, disk)
        assert applied == 0  # LSN check skips everything
        table2 = HeapTable("t", table.schema, BufferManager(disk), None)
        assert table2.tuple_count == 4

    def test_records_decoded(self, table_env):
        __, __, wal, table = table_env
        table.insert([1, np.zeros(2, dtype=np.float32)], xid=9)
        wal.log_commit(9)
        records = wal.records()
        assert len(records) == 2
        assert records[0].rel == "t.heap"
        assert records[0].xid == 9
        assert records[1].lsn > records[0].lsn
