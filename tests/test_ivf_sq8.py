"""Tests for the IVF_SQ8 index family (both engines) and the SQ codec."""

import numpy as np
import pytest

from repro.common import sq
from repro.common.metrics import mean_recall_at_k
from repro.core.study import ComparativeStudy
from repro.specialized import IVFFlatIndex, IVFSQ8Index


class TestSQ8Codec:
    @pytest.fixture(scope="class")
    def codec(self, small_dataset):
        return sq.train_codec(small_dataset.base)

    def test_roundtrip_error_bounded(self, codec, small_dataset):
        codes = sq.encode(codec, small_dataset.base)
        approx = sq.decode(codec, codes)
        errors = ((approx - small_dataset.base) ** 2).sum(axis=1)
        assert float(errors.max()) <= sq.reconstruction_error_bound(codec) * 1.001

    def test_codes_are_bytes(self, codec, small_dataset):
        codes = sq.encode(codec, small_dataset.base[:10])
        assert codes.dtype == np.uint8

    def test_out_of_range_clamps(self, codec, small_dataset):
        far = small_dataset.base[:1] + 1000.0
        codes = sq.encode(codec, far)
        assert int(codes.max()) == sq.LEVELS

    def test_constant_dimension_exact(self):
        data = np.ones((10, 3), dtype=np.float32)
        data[:, 1] = np.linspace(0, 1, 10)
        codec = sq.train_codec(data)
        approx = sq.decode(codec, sq.encode(codec, data))
        np.testing.assert_allclose(approx[:, 0], 1.0)
        np.testing.assert_allclose(approx[:, 2], 1.0)

    def test_dim_mismatch_rejected(self, codec):
        with pytest.raises(ValueError):
            sq.encode(codec, np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            sq.decode(codec, np.zeros((2, 3), dtype=np.uint8))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            sq.train_codec(np.zeros((0, 4), dtype=np.float32))


class TestSpecializedIVFSQ8:
    @pytest.fixture(scope="class")
    def index(self, small_dataset):
        ix = IVFSQ8Index(small_dataset.dim, n_clusters=12, sample_ratio=0.8, seed=3)
        ix.train(small_dataset.base)
        ix.add(small_dataset.base)
        return ix

    def test_high_recall(self, index, small_dataset):
        gt = small_dataset.ground_truth(10)
        res = [index.search(q, 10, nprobe=12).ids for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) > 0.9  # SQ8 is nearly lossless

    def test_quarter_the_size_of_flat(self, index, small_dataset):
        flat = IVFFlatIndex(small_dataset.dim, n_clusters=12, sample_ratio=0.8, seed=3)
        flat.train(small_dataset.base)
        flat.add(small_dataset.base)
        assert index.size_info().detail["codes"] * 4 == flat.size_info().detail["vectors"]

    def test_partition_total(self, index, small_dataset):
        assert index.bucket_sizes().sum() == small_dataset.n


class TestPaseIVFSQ8:
    @pytest.fixture()
    def am(self, loaded_db):
        loaded_db.execute(
            "CREATE INDEX sx ON items USING pase_ivfsq8 (vec) "
            "WITH (clusters = 10, sample_ratio = 0.8, seed = 2)"
        )
        loaded_db.execute("SET pase.nprobe = 10")
        return loaded_db.catalog.find_index("sx").am

    def _ids(self, db, am, q, k):
        table = db.catalog.table("items")
        return [table.heap.fetch_column(tid, 0) for tid, __ in am.scan(q, k)]

    def test_high_recall(self, loaded_db, am, small_dataset):
        gt = small_dataset.ground_truth(10)
        res = [self._ids(loaded_db, am, q, 10) for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) > 0.9

    def test_paper_alias_registered(self, loaded_db, small_dataset):
        loaded_db.execute(
            "CREATE INDEX sx2 ON items USING ivfsq8_fun (vec) "
            "WITH (clusters = 6, sample_ratio = 0.8, seed = 2)"
        )
        assert loaded_db.catalog.find_index("sx2") is not None

    def test_codec_reload_from_pages(self, loaded_db, am, small_dataset):
        cached = am._load_codec()
        am._codec = None
        reloaded = am._load_codec()
        np.testing.assert_array_equal(cached.vmin, reloaded.vmin)
        np.testing.assert_array_equal(cached.vdiff, reloaded.vdiff)

    def test_insert(self, loaded_db, am, small_dataset):
        vec = small_dataset.base[4] + 12.0
        table = loaded_db.catalog.table("items")
        tid = table.heap.insert([6001, vec], xid=1)
        am.insert(tid, vec)
        assert self._ids(loaded_db, am, vec, 1) == [6001]

    def test_data_pages_smaller_than_flat(self, loaded_db, am, small_dataset):
        loaded_db.execute(
            "CREATE INDEX fx9 ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 10, sample_ratio = 0.8, seed = 2)"
        )
        flat = loaded_db.catalog.find_index("fx9").am
        assert am.size_info().used_bytes < flat.size_info().used_bytes

    def test_fixed_heap_same_results(self, loaded_db, am, small_dataset):
        q = small_dataset.queries[0]
        loaded_db.execute("SET pase.fixed_heap = false")
        a = self._ids(loaded_db, am, q, 10)
        loaded_db.execute("SET pase.fixed_heap = true")
        b = self._ids(loaded_db, am, q, 10)
        assert a == b


class TestSQ8Study:
    def test_full_comparison(self, medium_dataset):
        study = ComparativeStudy(
            medium_dataset, "ivf_sq8", {"clusters": 16, "sample_ratio": 0.4, "seed": 2}
        )
        build = study.compare_build()
        assert build.gap > 1.0
        search = study.compare_search(k=10, nprobe=16, n_queries=6, recall=True)
        assert search.generalized_recall == pytest.approx(
            search.specialized_recall, abs=0.15
        )
        assert search.generalized_recall > 0.85
