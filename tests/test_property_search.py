"""Property-based tests on search semantics and cross-engine invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.datasets import generate_clustered
from repro.common.kmeans import assign_nearest_batch, faiss_kmeans
from repro.common.metrics import mean_recall_at_k, recall_at_k
from repro.specialized import FlatIndex, IVFFlatIndex


@st.composite
def small_corpus(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=40, max_value=120))
    dim = draw(st.sampled_from([4, 8, 12]))
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(n, dim)).astype(np.float32)
    query = rng.normal(size=dim).astype(np.float32)
    return base, query


@given(small_corpus(), st.integers(min_value=1, max_value=15))
@settings(max_examples=25, deadline=None)
def test_flat_search_is_exact(corpus, k):
    base, query = corpus
    index = FlatIndex(base.shape[1])
    index.add(base)
    got = index.search(query, k).ids
    truth = np.argsort(((base - query) ** 2).sum(axis=1), kind="stable")[:k]
    # Distances must match; ids may differ on exact ties.
    got_d = sorted(index.search(query, k).distances)
    truth_d = sorted((((base - query) ** 2).sum(axis=1))[truth].tolist())
    np.testing.assert_allclose(got_d, truth_d, rtol=1e-3, atol=1e-3)
    assert len(got) == min(k, base.shape[0])


@given(small_corpus())
@settings(max_examples=15, deadline=None)
def test_ivf_full_probe_equals_flat(corpus):
    """Probing every bucket makes IVF exact — for any corpus."""
    base, query = corpus
    n_clusters = min(5, base.shape[0])
    ivf = IVFFlatIndex(base.shape[1], n_clusters=n_clusters, sample_ratio=1.0, seed=0)
    ivf.train(base)
    ivf.add(base)
    flat = FlatIndex(base.shape[1])
    flat.add(base)
    got = ivf.search(query, 5, nprobe=n_clusters)
    want = flat.search(query, 5)
    np.testing.assert_allclose(got.distances, want.distances, rtol=1e-3, atol=1e-3)


@given(small_corpus())
@settings(max_examples=15, deadline=None)
def test_ivf_recall_monotone_in_nprobe(corpus):
    base, query = corpus
    n_clusters = min(6, base.shape[0])
    ivf = IVFFlatIndex(base.shape[1], n_clusters=n_clusters, sample_ratio=1.0, seed=0)
    ivf.train(base)
    ivf.add(base)
    truth = np.argsort(((base - query) ** 2).sum(axis=1), kind="stable")[:5].tolist()
    prev = -1.0
    for nprobe in range(1, n_clusters + 1):
        ids = ivf.search(query, 5, nprobe=nprobe).ids
        rec = recall_at_k(ids, truth, 5)
        assert rec >= prev - 1e-9
        prev = rec


@given(st.integers(min_value=0, max_value=5000))
@settings(max_examples=20, deadline=None)
def test_kmeans_partition_is_total(seed):
    """Every vector lands in exactly one bucket for any seed."""
    data = generate_clustered(120, 6, n_components=4, seed=seed)
    result = faiss_kmeans(data, 6, seed=seed)
    assignments, dists = assign_nearest_batch(data, result.centroids)
    assert assignments.shape == (120,)
    assert (assignments >= 0).all() and (assignments < 6).all()
    assert (dists >= 0).all()


@given(st.integers(min_value=0, max_value=5000))
@settings(max_examples=10, deadline=None)
def test_recall_is_one_when_results_equal_truth(seed):
    rng = np.random.default_rng(seed)
    ids = rng.permutation(50)[:10]
    assert recall_at_k(ids.tolist(), ids.tolist(), 10) == 1.0


@given(
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=10, unique=True),
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=10, unique=True),
)
def test_recall_bounds(result_ids, truth_ids):
    k = min(len(result_ids), len(truth_ids))
    value = recall_at_k(result_ids, truth_ids, k)
    assert 0.0 <= value <= 1.0
