"""Tests for the benchmark harness (runner, registry, CLI plumbing)."""

import pytest

from repro.bench import EXPERIMENTS, run_experiment
from repro.bench.runner import (
    ALL_DATASETS,
    HNSW_DATASETS,
    bench_dataset,
    default_params,
    timed,
)

#: Tiny scale so harness smoke tests stay fast.
TINY = 0.0006


class TestRegistry:
    def test_every_paper_artifact_covered(self):
        """Figs. 2-19 (except the architecture diagram Fig. 1) and
        Tables III-V all have an experiment."""
        expected = {f"fig{i}" for i in range(2, 20)} | {
            "tab3",
            "tab4",
            "tab5",
            "ablation",
            "recall",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_dataset_lists(self):
        assert len(ALL_DATASETS) == 6
        assert set(HNSW_DATASETS) <= set(ALL_DATASETS)


class TestRunner:
    def test_timed_protocol(self):
        calls = []
        mean, result = timed(lambda: calls.append(1) or len(calls), repeats=3, warmup=1)
        assert len(calls) == 4  # 1 warmup + 3 timed
        assert result == 4
        assert mean >= 0

    def test_default_params_ivf(self):
        ds = bench_dataset("sift1m", scale=0.001)
        params = default_params(ds, "ivf_flat")
        assert params["clusters"] == pytest.approx(ds.n**0.5, rel=0.1)
        assert 0 < params["sample_ratio"] <= 1

    def test_default_params_pq_uses_profile_m(self):
        ds = bench_dataset("gist1m", scale=0.001)
        params = default_params(ds, "ivf_pq")
        assert params["m"] == 60  # Table II's GIST1M value
        assert ds.dim % params["m"] == 0

    def test_default_params_hnsw(self):
        ds = bench_dataset("sift1m", scale=0.001)
        params = default_params(ds, "hnsw")
        assert params == {"seed": 42, "bnn": 16, "efb": 40}


class TestExperimentSmoke:
    """Each experiment runs end-to-end at micro scale and reports the
    right structure.  (Shape assertions live in benchmarks/.)"""

    def test_fig3_structure(self):
        result = run_experiment("fig3", scale=TINY, datasets=("sift1m",))
        assert result.exp_id == "fig3"
        assert "PASE total" in result.data["series"]
        assert len(result.data["series"]["Faiss add"]) == 1
        assert "gap" in result.rendered

    def test_fig11_structure(self):
        result = run_experiment("fig11", scale=TINY, datasets=("deep1m",))
        assert result.data["series"]["PASE"][0] > 0

    def test_fig14_structure(self):
        result = run_experiment("fig14", scale=TINY, datasets=("sift1m",))
        assert result.data["series"]["PASE"][0] > result.data["series"]["Faiss"][0] * 0

    def test_tab5_structure(self):
        result = run_experiment("tab5", scale=TINY)
        assert "PASE" in result.data and "Faiss" in result.data
        assert "fvec_L2sqr" in result.data["PASE"]

    def test_fig18_structure(self):
        result = run_experiment("fig18", scale=TINY)
        pase = result.data["PASE IVF_FLAT"]
        faiss = result.data["Faiss IVF_FLAT"]
        assert pase[1] == pytest.approx(1.0)
        assert faiss[8] > pase[8]  # the paper's central parallel finding

    def test_cli_list_and_run(self, capsys):
        from repro.bench.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "tab5" in out
        assert main([]) == 2  # no args -> help + error code
        assert main(["--experiment", "bogus"]) == 2


class TestMoreExperimentSmoke:
    def test_fig9_structure(self):
        result = run_experiment("fig9", scale=TINY)
        assert set(result.data) == {
            "IVF_FLAT with SGEMM",
            "IVF_FLAT no SGEMM",
            "IVF_PQ with SGEMM",
            "IVF_PQ no SGEMM",
        }
        for curve in result.data.values():
            assert sorted(curve) == [1, 2, 4, 8]
            assert curve[8] <= curve[1]  # more threads never slower

    def test_ablation_structure(self):
        result = run_experiment("ablation", scale=TINY)
        assert "SGEMM" in result.rendered
        assert result.data["SGEMM"]["metric"] == "build"
        assert result.data["SGEMM"]["without"] < result.data["SGEMM"]["with"]

    def test_fig15_structure(self):
        result = run_experiment("fig15", scale=TINY, datasets=("sift1m",))
        series = result.data["series"]
        assert set(series) == {"PASE", "Faiss", "Faiss*"}
        assert len(series["Faiss*"]) == 1

    def test_fig5_structure(self):
        result = run_experiment("fig5", scale=TINY, datasets=("sift1m",))
        assert result.data["series"]["PASE total"][0] > 0
        assert "gap" in result.rendered

    def test_fig2_structure(self):
        result = run_experiment("fig2", scale=TINY)
        systems = result.data["systems"]
        assert systems["pgvector"][0] > systems["PASE"][0]  # Fig. 2 ordering
