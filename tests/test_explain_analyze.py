"""Tests for EXPLAIN ANALYZE (per-node rows and timing)."""

import pytest

from repro.pgsim import PgSimDatabase


@pytest.fixture()
def db(fresh_db):
    fresh_db.execute("CREATE TABLE t (id int, vec float[])")
    for i in range(40):
        fresh_db.execute(f"INSERT INTO t VALUES ({i}, '{i}.0,{2 * i}.0'::PASE)")
    return fresh_db


def _lines(db, sql):
    return [r[0] for r in db.execute(sql).rows]


class TestExplainAnalyze:
    def test_plain_explain_has_no_actuals(self, db):
        lines = _lines(db, "EXPLAIN SELECT id FROM t")
        assert not any("actual" in line for line in lines)

    def test_seqscan_counts_rows(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT id FROM t")
        scan = next(line for line in lines if "Seq Scan" in line)
        assert "actual rows=40" in scan
        assert lines[-1].startswith("Execution: 40 rows")

    def test_filter_counts_survivors(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT id FROM t WHERE id < 7")
        filt = next(line for line in lines if "Filter" in line)
        assert "actual rows=7" in filt

    def test_limit_stops_early(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT id FROM t LIMIT 3")
        limit = next(line for line in lines if "Limit" in line)
        assert "actual rows=3" in limit
        # The scan below it was only pulled 3 times (pipelined).
        scan = next(line for line in lines if "Seq Scan" in line)
        assert "actual rows=3" in scan

    def test_index_scan_annotated(self, db):
        db.execute(
            "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1.0, seed = 1)"
        )
        lines = _lines(
            db,
            "EXPLAIN ANALYZE SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5",
        )
        scan = next(line for line in lines if "Index Scan" in line)
        assert "actual rows=5" in scan
        assert "time=" in scan

    def test_aggregate_annotated(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT count(*) FROM t")
        agg = next(line for line in lines if "Aggregate" in line)
        assert "actual rows=1" in agg

    def test_timings_are_nested_consistently(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT id FROM t WHERE id < 100 LIMIT 50")

        def time_of(fragment):
            line = next(l for l in lines if fragment in l)
            return float(line.split("time=")[1].split(" ms")[0])

        # A parent's time includes its child's.
        assert time_of("Limit") >= time_of("Filter") * 0.5

    def test_analyze_insert_runs_and_annotates(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE INSERT INTO t VALUES (99, '1.0,1.0'::PASE)")
        assert lines[0].startswith("Insert on t")
        assert "actual rows=1" in lines[0]
        assert lines[-1].startswith("Execution: 1 rows")
        # ANALYZE really executes: the row is in the table.
        assert db.query("SELECT count(*) FROM t WHERE id = 99") == [(1,)]

    def test_analyze_delete_runs(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE DELETE FROM t WHERE id = 3")
        assert lines[0].startswith("Delete on t")
        assert "actual rows=1" in lines[0]
        assert db.query("SELECT count(*) FROM t WHERE id = 3") == [(0,)]

    def test_analyze_on_unsupported_statement_rejected(self, db):
        from repro.pgsim.executor import ExecutionError

        with pytest.raises(ExecutionError):
            db.execute("EXPLAIN ANALYZE CREATE TABLE u (id int)")

    def test_buffers_requires_analyze(self, db):
        from repro.pgsim.executor import ExecutionError

        with pytest.raises(ExecutionError):
            db.execute("EXPLAIN (BUFFERS) SELECT id FROM t")

    def test_analyze_buffers_per_node(self, db):
        lines = _lines(db, "EXPLAIN (ANALYZE, BUFFERS) SELECT id FROM t")
        buffers = [line for line in lines if "Buffers:" in line]
        assert buffers, lines
        assert all("hits=" in line and "misses=" in line for line in buffers)


class TestExplainTiming:
    """``TIMING`` follows PostgreSQL's grammar: it defaults to on under
    ANALYZE, can be switched off, and TIMING *on* without ANALYZE is an
    error (TIMING off without ANALYZE is accepted, as in PG)."""

    def test_timing_off_drops_times(self, db):
        lines = _lines(db, "EXPLAIN (ANALYZE, TIMING off) SELECT id FROM t")
        assert not any("time=" in line for line in lines)
        scan = next(line for line in lines if "Seq Scan" in line)
        assert "(actual rows=40)" in scan
        assert lines[-1] == "Execution: 40 rows"

    def test_timing_defaults_on_under_analyze(self, db):
        lines = _lines(db, "EXPLAIN (ANALYZE) SELECT id FROM t")
        assert any("time=" in line for line in lines)
        assert "ms" in lines[-1]

    def test_timing_on_requires_analyze(self, db):
        from repro.pgsim.executor import ExecutionError

        for sql in (
            "EXPLAIN (TIMING) SELECT id FROM t",
            "EXPLAIN (TIMING on) SELECT id FROM t",
        ):
            with pytest.raises(ExecutionError, match="TIMING"):
                db.execute(sql)

    def test_timing_off_without_analyze_allowed(self, db):
        lines = _lines(db, "EXPLAIN (TIMING off) SELECT id FROM t")
        assert not any("actual" in line for line in lines)

    def test_timing_off_for_dml(self, db):
        lines = _lines(db, "EXPLAIN (ANALYZE, TIMING off) DELETE FROM t WHERE id = 3")
        assert "(actual rows=1)" in lines[0]
        assert not any("time=" in line for line in lines)


class TestExplainTrace:
    """``EXPLAIN (ANALYZE, TRACE)`` — span-backed RC#1–RC#7 attribution."""

    @pytest.fixture()
    def indexed_db(self, db):
        db.execute(
            "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1.0, seed = 1)"
        )
        return db

    KNN_SQL = (
        "EXPLAIN (ANALYZE, TRACE) "
        "SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5"
    )

    def test_trace_requires_analyze(self, db):
        from repro.pgsim.executor import ExecutionError

        with pytest.raises(ExecutionError, match="TRACE"):
            db.execute("EXPLAIN (TRACE) SELECT id FROM t")

    def test_trace_appends_rc_breakdown(self, indexed_db):
        lines = _lines(indexed_db, self.KNN_SQL)
        assert any("Root-cause attribution (spans):" in line for line in lines)
        body = "\n".join(lines)
        # The paper's memory-management cost (RC#2) shows up on any
        # index-backed KNN query; the executor itself books to RC#3.
        assert "RC#2 Memory Management" in body
        assert "RC#3 Parallel Execution" in body
        assert any("Total attributed" in line for line in lines)
        assert lines[-1].startswith("Trace: ")

    def test_trace_on_seqscan_query(self, db):
        """TRACE without a vector index still attributes executor time."""
        lines = _lines(db, "EXPLAIN (ANALYZE, TRACE) SELECT id FROM t WHERE id < 7")
        assert any("RC#3 Parallel Execution" in line for line in lines)
        assert any(line.startswith("Trace: ") for line in lines)

    @pytest.mark.parametrize("batch_mode", ["off", "on"])
    def test_trace_attribution_reconciles_with_elapsed(self, indexed_db, batch_mode):
        """Acceptance bar: bucket times sum to within 5% of elapsed on
        both executor paths."""
        indexed_db.execute(f"SET enable_batch_exec = {batch_mode}")
        try:
            lines = _lines(indexed_db, self.KNN_SQL)
        finally:
            indexed_db.execute("SET enable_batch_exec = off")

        exec_line = next(line for line in lines if line.startswith("Execution: "))
        elapsed_ms = float(exec_line.split(" in ")[1].split(" ms")[0])
        total_line = next(line for line in lines if "Total attributed" in line)
        attributed_ms = float(total_line.split("%")[1].split("ms")[0])
        assert attributed_ms == pytest.approx(elapsed_ms, rel=0.05)
        covered = float(
            next(line for line in lines if line.startswith("Trace: "))
            .split(", ")[1]
            .split("%")[0]
        )
        assert covered > 95.0

    def test_trace_restores_profilers(self, indexed_db):
        """TRACE must not leave the AM or executor instrumented."""
        from repro.common.profiling import NULL_PROFILER

        indexed_db.execute(self.KNN_SQL)
        am = indexed_db.catalog.find_index("ix").am
        assert am.profiler is NULL_PROFILER or not am.profiler.enabled
        assert not indexed_db.executor.trace_profiler.enabled

    def test_last_trace_exposes_spans(self, indexed_db):
        import json

        indexed_db.execute(self.KNN_SQL)
        tracer = indexed_db.executor.last_trace
        assert tracer is not None and tracer.spans
        doc = json.loads(tracer.to_chrome_trace())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "Executor" in names


class TestExplainAnalyzeBatch:
    """Batch-emitting nodes must report the same actual rows as the
    tuple path — counters advance by len(batch) per pull, not by 1."""

    @pytest.fixture()
    def batch_db(self, db):
        db.execute("SET enable_batch_exec = on")
        return db

    def _actual_rows(self, db, sql, fragment):
        lines = _lines(db, sql)
        line = next(line for line in lines if fragment in line)
        return int(line.split("actual rows=")[1].split(" ")[0])

    def test_seqscan_counts_whole_batches(self, batch_db):
        sql = "EXPLAIN ANALYZE SELECT id FROM t"
        assert self._actual_rows(batch_db, sql, "Seq Scan") == 40
        assert _lines(batch_db, sql)[-1].startswith("Execution: 40 rows")

    def test_filter_counts_survivors(self, batch_db):
        sql = "EXPLAIN ANALYZE SELECT id FROM t WHERE id < 7"
        assert self._actual_rows(batch_db, sql, "Filter") == 7

    def test_limit_truncates_final_batch(self, batch_db):
        sql = "EXPLAIN ANALYZE SELECT id FROM t LIMIT 3"
        assert self._actual_rows(batch_db, sql, "Limit") == 3

    def test_aggregate_rows(self, batch_db):
        sql = "EXPLAIN ANALYZE SELECT count(*) FROM t"
        assert self._actual_rows(batch_db, sql, "Aggregate") == 1

    def test_index_scan_batch_annotated(self, batch_db):
        batch_db.execute(
            "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1.0, seed = 1)"
        )
        lines = _lines(
            batch_db,
            "EXPLAIN ANALYZE SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5",
        )
        scan = next(line for line in lines if "Index Scan" in line)
        assert "batch" in scan
        assert "actual rows=5" in scan
        assert "time=" in scan

    def test_limit_overshoot_is_at_most_one_batch(self, batch_db):
        """Unlike the tuple path, a batch scan below a Limit emits its
        current batch in full before truncation — the Limit node must
        still report exactly the limit."""
        lines = _lines(batch_db, "EXPLAIN ANALYZE SELECT id FROM t LIMIT 3")
        limit = next(line for line in lines if "Limit" in line)
        assert "actual rows=3" in limit
        scan = next(line for line in lines if "Seq Scan" in line)
        scanned = int(scan.split("actual rows=")[1].split(" ")[0])
        assert 3 <= scanned <= 40
        assert lines[-1].startswith("Execution: 3 rows")

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT id FROM t",
            "SELECT id FROM t WHERE id < 7",
            "SELECT id FROM t ORDER BY id",
            "SELECT count(*) FROM t",
        ],
    )
    def test_counters_match_tuple_path(self, db, sql):
        """Every per-node 'actual rows=' figure is identical on both
        executor paths (modulo the batch annotation itself). Nodes
        directly below a LIMIT are exempt: the batch path overshoots
        by up to one batch (see test_limit_overshoot_is_at_most_one_batch)."""

        def counters(mode):
            db.execute(f"SET enable_batch_exec = {mode}")
            out = []
            for line in _lines(db, f"EXPLAIN ANALYZE {sql}"):
                if "actual rows=" in line:
                    node = line.split("(actual")[0].strip().replace(" (batch)", "")
                    rows = int(line.split("actual rows=")[1].split(" ")[0])
                    out.append((node, rows))
            return out

        try:
            assert counters("off") == counters("on")
        finally:
            db.execute("SET enable_batch_exec = off")
