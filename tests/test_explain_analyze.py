"""Tests for EXPLAIN ANALYZE (per-node rows and timing)."""

import pytest

from repro.pgsim import PgSimDatabase


@pytest.fixture()
def db(fresh_db):
    fresh_db.execute("CREATE TABLE t (id int, vec float[])")
    for i in range(40):
        fresh_db.execute(f"INSERT INTO t VALUES ({i}, '{i}.0,{2 * i}.0'::PASE)")
    return fresh_db


def _lines(db, sql):
    return [r[0] for r in db.execute(sql).rows]


class TestExplainAnalyze:
    def test_plain_explain_has_no_actuals(self, db):
        lines = _lines(db, "EXPLAIN SELECT id FROM t")
        assert not any("actual" in line for line in lines)

    def test_seqscan_counts_rows(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT id FROM t")
        scan = next(line for line in lines if "Seq Scan" in line)
        assert "actual rows=40" in scan
        assert lines[-1].startswith("Execution: 40 rows")

    def test_filter_counts_survivors(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT id FROM t WHERE id < 7")
        filt = next(line for line in lines if "Filter" in line)
        assert "actual rows=7" in filt

    def test_limit_stops_early(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT id FROM t LIMIT 3")
        limit = next(line for line in lines if "Limit" in line)
        assert "actual rows=3" in limit
        # The scan below it was only pulled 3 times (pipelined).
        scan = next(line for line in lines if "Seq Scan" in line)
        assert "actual rows=3" in scan

    def test_index_scan_annotated(self, db):
        db.execute(
            "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1.0, seed = 1)"
        )
        lines = _lines(
            db,
            "EXPLAIN ANALYZE SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5",
        )
        scan = next(line for line in lines if "Index Scan" in line)
        assert "actual rows=5" in scan
        assert "time=" in scan

    def test_aggregate_annotated(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT count(*) FROM t")
        agg = next(line for line in lines if "Aggregate" in line)
        assert "actual rows=1" in agg

    def test_timings_are_nested_consistently(self, db):
        lines = _lines(db, "EXPLAIN ANALYZE SELECT id FROM t WHERE id < 100 LIMIT 50")

        def time_of(fragment):
            line = next(l for l in lines if fragment in l)
            return float(line.split("time=")[1].split(" ms")[0])

        # A parent's time includes its child's.
        assert time_of("Limit") >= time_of("Filter") * 0.5

    def test_analyze_on_non_select_rejected(self, db):
        from repro.pgsim.executor import ExecutionError

        with pytest.raises(ExecutionError):
            db.execute("EXPLAIN ANALYZE INSERT INTO t VALUES (99, '1.0,1.0'::PASE)")
