"""Tests for DELETE/UPDATE statements and dead-tuple index behavior."""

import numpy as np
import pytest

from repro.pgsim import PgSimDatabase


@pytest.fixture()
def db(fresh_db):
    fresh_db.execute("CREATE TABLE t (id int, score float, vec float[])")
    for i in range(30):
        vec = ",".join(str(float(i + j)) for j in range(4))
        fresh_db.execute(f"INSERT INTO t VALUES ({i}, {i * 0.5}, '{vec}'::PASE)")
    return fresh_db


class TestDelete:
    def test_delete_with_where(self, db):
        result = db.execute("DELETE FROM t WHERE id >= 20")
        assert result.command == "DELETE 10"
        assert db.execute("SELECT count(*) FROM t").scalar() == 20

    def test_delete_all(self, db):
        db.execute("DELETE FROM t")
        assert db.execute("SELECT count(*) FROM t").scalar() == 0

    def test_delete_none_matching(self, db):
        result = db.execute("DELETE FROM t WHERE id > 1000")
        assert result.command == "DELETE 0"

    def test_delete_then_vacuum(self, db):
        db.execute("DELETE FROM t WHERE id < 10")
        result = db.execute("VACUUM t")
        assert result.command == "VACUUM 10"

    def test_deleted_rows_invisible_to_expressions(self, db):
        db.execute("DELETE FROM t WHERE id = 5")
        assert db.query("SELECT id FROM t WHERE id = 5") == []


class TestUpdate:
    def test_update_with_where(self, db):
        result = db.execute("UPDATE t SET score = 100.0 WHERE id < 3")
        assert result.command == "UPDATE 3"
        rows = db.query("SELECT score FROM t WHERE id < 3")
        assert all(r[0] == 100.0 for r in rows)

    def test_update_expression_references_old_row(self, db):
        db.execute("UPDATE t SET score = score + 1 WHERE id = 4")
        assert db.query("SELECT score FROM t WHERE id = 4") == [(3.0,)]

    def test_update_multiple_columns(self, db):
        db.execute("UPDATE t SET id = 1000, score = -1.0 WHERE id = 7")
        assert db.query("SELECT id, score FROM t WHERE id = 1000") == [(1000, -1.0)]

    def test_update_unknown_column_rejected(self, db):
        from repro.pgsim.executor import ExecutionError

        with pytest.raises(ExecutionError):
            db.execute("UPDATE t SET ghost = 1")

    def test_update_vector_column(self, db):
        db.execute("UPDATE t SET vec = '9,9,9,9'::PASE WHERE id = 2")
        (vec,) = db.query("SELECT vec FROM t WHERE id = 2")[0]
        np.testing.assert_array_equal(vec, np.array([9, 9, 9, 9], dtype=np.float32))


class TestDeadTuplesAndIndexes:
    @pytest.fixture()
    def indexed(self, loaded_db, small_dataset):
        loaded_db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 8, sample_ratio = 0.5, seed = 1)"
        )
        loaded_db.execute("SET pase.nprobe = 8")
        return loaded_db

    def _top(self, db, q, k, vec_lit):
        rows = db.query(
            f"SELECT id FROM items ORDER BY vec <-> '{vec_lit(q)}'::PASE LIMIT {k}"
        )
        return [r[0] for r in rows]

    def test_index_scan_skips_deleted(self, indexed, small_dataset, vec_lit):
        q = small_dataset.queries[0]
        before = self._top(indexed, q, 10, vec_lit)
        indexed.execute(f"DELETE FROM items WHERE id = {before[0]}")
        after = self._top(indexed, q, 10, vec_lit)
        assert before[0] not in after
        assert len(after) == 10  # widened re-scan compensates
        assert after[:9] == before[1:10]

    def test_mass_delete_still_fills_k(self, indexed, small_dataset, vec_lit):
        q = small_dataset.queries[1]
        top = self._top(indexed, q, 20, vec_lit)
        victims = ", ".join(str(i) for i in top[:15])
        for vid in top[:15]:
            indexed.execute(f"DELETE FROM items WHERE id = {vid}")
        after = self._top(indexed, q, 10, vec_lit)
        assert len(after) == 10
        assert not set(after) & set(top[:15])

    def test_delete_more_than_table_has(self, indexed, small_dataset, vec_lit):
        indexed.execute("DELETE FROM items WHERE id >= 10")
        after = self._top(indexed, small_dataset.queries[0], 50, vec_lit)
        # Only 10 live rows remain; the scan returns all of them.
        assert sorted(after) == list(range(10))

    def test_update_moves_row_in_index(self, indexed, small_dataset, vec_lit):
        q = small_dataset.queries[2]
        target = self._top(indexed, q, 1, vec_lit)[0]
        far = ",".join("99.0" for __ in range(small_dataset.dim))
        indexed.execute(f"UPDATE items SET vec = '{far}'::PASE WHERE id = {target}")
        assert self._top(indexed, q, 1, vec_lit)[0] != target
        # And its new location is findable.
        rows = indexed.query(
            f"SELECT id FROM items ORDER BY vec <-> '{far}'::PASE LIMIT 1"
        )
        assert rows[0][0] == target

    def test_seqscan_agrees_after_dml(self, indexed, small_dataset, vec_lit):
        q = small_dataset.queries[3]
        indexed.execute("DELETE FROM items WHERE id < 50")
        fast = self._top(indexed, q, 10, vec_lit)
        indexed.execute("SET enable_indexscan = false")
        slow = self._top(indexed, q, 10, vec_lit)
        assert fast == slow


class TestReindexAndShowAll:
    def test_reindex_drops_dead_entries(self, loaded_db, small_dataset, vec_lit):
        loaded_db.execute(
            "CREATE INDEX rx ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 8, sample_ratio = 0.5, seed = 1)"
        )
        loaded_db.execute("SET pase.nprobe = 8")
        loaded_db.execute("DELETE FROM items WHERE id < 300")
        loaded_db.execute("VACUUM items")
        loaded_db.execute("REINDEX rx")
        am = loaded_db.catalog.find_index("rx").am
        # After reindex, the index holds only live rows.
        total = 0
        for __, head, __ in am._iter_centroids():
            total += sum(1 for __ in am._iter_bucket(head))
        assert total == small_dataset.n - 300
        rows = loaded_db.query(
            f"SELECT id FROM items ORDER BY vec <-> "
            f"'{vec_lit(small_dataset.queries[0])}'::PASE LIMIT 10"
        )
        assert all(r[0] >= 300 for r in rows)

    def test_reindex_unknown_index(self, fresh_db):
        from repro.pgsim.catalog import CatalogError

        with pytest.raises(CatalogError):
            fresh_db.execute("REINDEX ghost")

    def test_reindex_preserves_options(self, loaded_db):
        loaded_db.execute(
            "CREATE INDEX rx2 ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 5, sample_ratio = 0.5, seed = 9)"
        )
        loaded_db.execute("REINDEX rx2")
        info = loaded_db.catalog.find_index("rx2")
        assert info.options["clusters"] == 5
        assert info.options["seed"] == 9

    def test_show_all_lists_settings(self, fresh_db):
        result = fresh_db.execute("SHOW ALL")
        names = [r[0] for r in result.rows]
        assert "pase.nprobe" in names
        assert "enable_indexscan" in names
        assert result.columns == ["name", "setting"]
