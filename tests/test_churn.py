"""Streaming-churn suite: UPDATE/DELETE/INSERT under every vector AM.

Three layers of coverage for the incremental-maintenance path:

- **Differential churn oracle** — a random interleaved
  INSERT/UPDATE/DELETE/k-NN stream runs against every SQL-visible AM
  with a brute-force Python oracle recomputing each answer, on both
  executor paths, with a VACUUM mid-stream.  Searches must never
  surface a dead row, and recall against the oracle must stay above
  the AM's quantization-appropriate floor.
- **VACUUM recall restoration** — the paper-style acceptance check:
  after a 20% delete + 20% update churn phase, VACUUM (chain
  compaction, graph repair, re-centering) must restore recall@10 to
  within 2 points of a fresh index rebuild over the same data.
- **MVCC accounting and visibility** — ``n_dead_tup`` bookkeeping for
  UPDATE, VACUUM's stats rebase, and a Hypothesis property that a
  pinned repeatable-read snapshot never observes half an update and
  that ROLLBACK resurrects the old versions exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgsim import PgSimDatabase

DIM = 8

#: SQL-visible AMs with their CREATE INDEX options and the recall@10
#: floor the oracle holds them to under exhaustive probing.  The
#: quantizing AMs (PQ/SQ8) legitimately trade recall for space, so
#: their floors are lower; everything else stores exact vectors.
AMS = {
    "pase_ivfflat": ("WITH (clusters = 6, seed = 3)", 0.9),
    "pase_ivfpq": ("WITH (clusters = 6, m = 4, seed = 3)", 0.6),
    "pase_ivfsq8": ("WITH (clusters = 6, seed = 3)", 0.4),
    "pase_hnsw": ("WITH (bnn = 8, efb = 40, seed = 3)", 0.9),
    "ivfflat": ("WITH (clusters = 6, seed = 3)", 0.9),
    "bridged_ivfflat": ("WITH (clusters = 6, seed = 3)", 0.9),
    "bridged_hnsw": ("WITH (bnn = 8, efb = 40, seed = 3)", 0.9),
}


def _lit(vec: np.ndarray) -> str:
    return "[" + ",".join(f"{x:.5f}" for x in np.asarray(vec, dtype=np.float32)) + "]"


def _knn_oracle(live: dict[int, np.ndarray], q: np.ndarray, k: int) -> list[int]:
    ids = sorted(
        live, key=lambda i: (float(np.sum((live[i] - q) ** 2)), i)
    )
    return ids[:k]


def _query_both_paths(db: PgSimDatabase, sql: str) -> list[int]:
    """Run a k-NN query under both executor paths; assert parity."""
    db.execute("SET enable_batch_exec = off")
    tuple_ids = [r[0] for r in db.query(sql)]
    db.execute("SET enable_batch_exec = on")
    batch_ids = [r[0] for r in db.query(sql)]
    db.execute("SET enable_batch_exec = off")
    assert tuple_ids == batch_ids, f"executor paths diverged for {sql!r}"
    return tuple_ids


class TestChurnOracle:
    """Random interleaved DML + search vs a brute-force oracle."""

    @pytest.mark.parametrize("am", sorted(AMS))
    def test_churn_stream_matches_oracle(self, am: str) -> None:
        opts, floor = AMS[am]
        rng = np.random.default_rng(11)
        db = PgSimDatabase(buffer_pool_pages=256)
        db.execute("CREATE TABLE t (id INT4, v FLOAT4[])")
        live: dict[int, np.ndarray] = {}
        next_id = 0
        for __ in range(150):
            vec = rng.normal(size=DIM).astype(np.float32)
            db.execute(f"INSERT INTO t VALUES ({next_id}, '{_lit(vec)}')")
            live[next_id] = vec
            next_id += 1
        db.execute(f"CREATE INDEX ix ON t USING {am} (v) {opts}")
        db.execute("ANALYZE t")
        # Exhaustive probing: recall differences now come only from
        # quantization (PQ/SQ8) or graph approximation, not pruning.
        db.execute("SET pase.nprobe = 6")
        db.execute("SET enable_seqscan = off")

        def check_search() -> None:
            q = rng.normal(size=DIM).astype(np.float32)
            got = _query_both_paths(
                db, f"SELECT id FROM t ORDER BY v <-> '{_lit(q)}' LIMIT 10"
            )
            dead = [g for g in got if g not in live]
            assert not dead, f"{am}: search surfaced dead rows {dead}"
            truth = _knn_oracle(live, q, 10)
            recall = len(set(got) & set(truth)) / 10
            assert recall >= floor, f"{am}: recall {recall} below floor {floor}"

        for step in range(120):
            op = rng.integers(0, 4)
            if op == 0 or not live:  # INSERT
                vec = rng.normal(size=DIM).astype(np.float32)
                db.execute(f"INSERT INTO t VALUES ({next_id}, '{_lit(vec)}')")
                live[next_id] = vec
                next_id += 1
            elif op == 1:  # UPDATE
                target = int(rng.choice(list(live)))
                vec = rng.normal(size=DIM).astype(np.float32)
                db.execute(f"UPDATE t SET v = '{_lit(vec)}' WHERE id = {target}")
                live[target] = vec
            elif op == 2:  # DELETE
                target = int(rng.choice(list(live)))
                db.execute(f"DELETE FROM t WHERE id = {target}")
                del live[target]
            else:  # k-NN
                check_search()
            if step == 60:
                db.execute("VACUUM t")
                assert db.catalog.table("t").heap.n_dead_tup == 0
                check_search()

        db.execute("VACUUM t")
        heap = db.catalog.table("t").heap
        assert heap.n_dead_tup == 0
        assert heap.tuple_count == len(live)
        for __ in range(5):
            check_search()


class TestVacuumRecallRestore:
    """Acceptance: VACUUM restores recall to ~fresh-rebuild levels."""

    @pytest.mark.parametrize(
        "am, opts",
        [
            ("pase_ivfflat", "WITH (clusters = 12, seed = 5)"),
            ("pase_hnsw", "WITH (bnn = 8, efb = 40, seed = 5)"),
        ],
    )
    def test_recall_within_two_points_of_rebuild(self, am: str, opts: str) -> None:
        rng = np.random.default_rng(23)
        db = PgSimDatabase(buffer_pool_pages=512)
        db.execute("CREATE TABLE t (id INT4, v FLOAT4[])")
        table = db.catalog.table("t")
        live: dict[int, np.ndarray] = {}
        for i in range(400):
            vec = rng.normal(size=DIM).astype(np.float32)
            table.heap.insert([i, vec], xid=1)
            live[i] = vec
        db.wal.log_commit(1)
        db.execute(f"CREATE INDEX ix ON t USING {am} (v) {opts}")
        db.execute("ANALYZE t")
        db.execute("SET pase.nprobe = 4")
        db.execute("SET enable_seqscan = off")

        # Churn phase: 20% deleted, a further 20% updated in place.
        ids = list(live)
        doomed = [int(i) for i in rng.choice(ids, size=80, replace=False)]
        for i in doomed:
            db.execute(f"DELETE FROM t WHERE id = {i}")
            del live[i]
        refreshed = [int(i) for i in rng.choice(list(live), size=80, replace=False)]
        for i in refreshed:
            vec = rng.normal(size=DIM).astype(np.float32)
            db.execute(f"UPDATE t SET v = '{_lit(vec)}' WHERE id = {i}")
            live[i] = vec

        db.execute("VACUUM t")
        queries = [rng.normal(size=DIM).astype(np.float32) for __ in range(30)]

        def recall_at_10() -> float:
            hits = 0
            for q in queries:
                got = [
                    r[0]
                    for r in db.query(
                        f"SELECT id FROM t ORDER BY v <-> '{_lit(q)}' LIMIT 10"
                    )
                ]
                hits += len(set(got) & set(_knn_oracle(live, q, 10)))
            return hits / (10 * len(queries))

        vacuumed = recall_at_10()
        db.execute("DROP INDEX ix")
        db.execute(f"CREATE INDEX ix ON t USING {am} (v) {opts}")
        fresh = recall_at_10()
        assert vacuumed >= fresh - 0.02, (
            f"{am}: post-VACUUM recall {vacuumed:.3f} trails "
            f"fresh rebuild {fresh:.3f} by more than 2 points"
        )


class TestDeadTupleAccounting:
    """``n_dead_tup`` must count UPDATE old versions, and VACUUM must
    reset it and rebase the planner stats (the satellite fix)."""

    def test_update_counts_dead_tuples(self, fresh_db: PgSimDatabase) -> None:
        db = fresh_db
        db.execute("CREATE TABLE t (id INT4, v FLOAT4[])")
        for i in range(10):
            db.execute(f"INSERT INTO t VALUES ({i}, '[{i}.0, 1.0]')")
        db.execute("UPDATE t SET v = '[9.5, 9.5]' WHERE id < 4")
        row = db.query("SELECT * FROM pg_stat_user_tables")[0]
        relname, reltuples, __, n_live, n_dead, n_upd = row[:6]
        assert relname == "t"
        assert n_live == 10  # update is delete+insert: net live unchanged
        assert n_dead == 4  # the four old versions
        assert n_upd == 4

    def test_vacuum_resets_dead_count_and_rebases_stats(
        self, fresh_db: PgSimDatabase
    ) -> None:
        db = fresh_db
        db.execute("CREATE TABLE t (id INT4, v FLOAT4[])")
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ({i}, '[{i}.0, 1.0]')")
        db.execute("ANALYZE t")
        db.execute("UPDATE t SET v = '[0.0, 0.0]' WHERE id < 5")
        db.execute("DELETE FROM t WHERE id >= 15")
        table = db.catalog.table("t")
        assert table.heap.n_dead_tup == 10
        db.execute("VACUUM t")
        assert table.heap.n_dead_tup == 0
        assert table.heap.vacuum_count == 1
        # Planner stats rebased: reltuples reflects the live count so
        # cost estimates stop charging for reclaimed tuples.
        assert table.stats.reltuples == 15.0
        assert table.stats.dead_at_analyze == 0.0
        row = db.query("SELECT * FROM pg_stat_user_tables")[0]
        assert row[3] == 15 and row[4] == 0  # n_live, n_dead

    def test_rolled_back_update_balances_counters(
        self, fresh_db: PgSimDatabase
    ) -> None:
        db = fresh_db
        db.execute("CREATE TABLE t (id INT4, v FLOAT4[])")
        for i in range(6):
            db.execute(f"INSERT INTO t VALUES ({i}, '[{i}.0, 1.0]')")
        heap = db.catalog.table("t").heap
        session = db.session("w")
        session.execute("BEGIN")
        session.execute("UPDATE t SET v = '[7.0, 7.0]'")
        session.execute("ROLLBACK")
        # Abort undoes the inserts' live count; the aborted new
        # versions are the only dead tuples left behind.
        assert heap.tuple_count == 6
        assert heap.n_dead_tup == 6
        db.execute("VACUUM t")
        assert heap.n_dead_tup == 0
        assert sorted(r[0] for r in db.query("SELECT id FROM t")) == list(range(6))

    def test_autovacuum_triggers_on_update_churn(self) -> None:
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id INT4, v FLOAT4[])")
        for i in range(30):
            db.execute(f"INSERT INTO t VALUES ({i}, '[{i}.0, 1.0]')")
        db.execute("SET autovacuum = on")
        db.execute("SET autovacuum_vacuum_threshold = 5")
        db.execute("SET autovacuum_vacuum_scale_factor = 0.1")
        heap = db.catalog.table("t").heap
        # The launcher hook lives in the session layer, firing after
        # each statement while the GUC is on.
        session = db.session("churn")
        session.execute("UPDATE t SET v = '[0.0, 0.0]' WHERE id < 20")
        # The after-statement hook fired: 20 > 5 + 0.1 * 30.
        assert heap.n_dead_tup == 0
        assert heap.autovacuum_count == 1


class TestUpdateSnapshotProperty:
    """Hypothesis: pinned snapshots never see a half-applied UPDATE."""

    @settings(max_examples=25, deadline=None)
    @given(
        initial=st.lists(
            st.integers(min_value=-20, max_value=20), min_size=2, max_size=5
        ),
        updated=st.integers(min_value=-20, max_value=20),
        commit=st.booleans(),
    )
    def test_pinned_snapshot_atomicity(
        self, initial: list[int], updated: int, commit: bool
    ) -> None:
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id INT4, x INT4)")
        for i, x in enumerate(initial):
            db.execute(f"INSERT INTO t VALUES ({i}, {x})")
        expected_before = [(i, x) for i, x in enumerate(initial)]

        reader = db.session("reader")
        reader.execute("BEGIN")  # pins the snapshot for the block
        assert reader.query("SELECT id, x FROM t ORDER BY id") == expected_before

        writer = db.session("writer")
        writer.execute("BEGIN")
        writer.execute(f"UPDATE t SET x = {updated}")
        # Writer sees its own update; the pinned reader sees none of it.
        assert writer.query("SELECT id, x FROM t ORDER BY id") == [
            (i, updated) for i in range(len(initial))
        ]
        assert reader.query("SELECT id, x FROM t ORDER BY id") == expected_before
        # A third session (latest-committed view) also sees all-old: an
        # uncommitted update is invisible in its entirety.
        assert db.query("SELECT id, x FROM t ORDER BY id") == expected_before

        if commit:
            writer.execute("COMMIT")
            # Repeatable read: the pinned reader STILL sees all-old.
            assert reader.query("SELECT id, x FROM t ORDER BY id") == expected_before
            reader.execute("COMMIT")
            # With the block over, the update is visible in full.
            assert db.query("SELECT id, x FROM t ORDER BY id") == [
                (i, updated) for i in range(len(initial))
            ]
        else:
            writer.execute("ROLLBACK")
            # Rollback resurrects the old versions exactly.
            assert reader.query("SELECT id, x FROM t ORDER BY id") == expected_before
            reader.execute("COMMIT")
            assert db.query("SELECT id, x FROM t ORDER BY id") == expected_before
            # And VACUUM of the aborted versions changes nothing visible.
            db.execute("VACUUM t")
            assert db.query("SELECT id, x FROM t ORDER BY id") == expected_before
