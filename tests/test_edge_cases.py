"""Edge-case tests across modules (failure paths and boundaries)."""

import numpy as np
import pytest

from repro.common.datasets import tiny_dataset
from repro.common.graph import HNSWParams
from repro.common.heap import BoundedMaxHeap
from repro.common.profiling import Profiler
from repro.pgsim import PgSimDatabase
from repro.pgsim.page import Page, PageFullError
from repro.pgsim.sql.lexer import SqlSyntaxError
from repro.pgsim.wal import REC_CHECKPOINT, WriteAheadLog, replay
from repro.pgsim.storage import MemoryDisk
from repro.specialized import HNSWIndex, IVFFlatIndex


class TestSqlEdgeCases:
    def test_empty_sql_rejected(self, fresh_db):
        with pytest.raises(ValueError):
            fresh_db.execute("   ")

    def test_semicolons_only(self, fresh_db):
        with pytest.raises(ValueError):
            fresh_db.execute(";;;")

    def test_missing_semicolon_between_statements(self, fresh_db):
        with pytest.raises(SqlSyntaxError):
            fresh_db.execute("SELECT 1 SELECT 2")

    def test_insert_into_missing_table(self, fresh_db):
        from repro.pgsim.catalog import CatalogError

        with pytest.raises(CatalogError):
            fresh_db.execute("INSERT INTO ghost VALUES (1)")

    def test_select_unknown_column(self, fresh_db):
        from repro.pgsim.expr import ExpressionError

        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ExpressionError):
            fresh_db.execute("SELECT nope FROM t")

    def test_quoted_identifier(self, fresh_db):
        fresh_db.execute('CREATE TABLE "weird" (id int)')
        fresh_db.execute("INSERT INTO weird VALUES (3)")
        assert fresh_db.query("SELECT id FROM weird") == [(3,)]

    def test_null_handling_in_where(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, name text)")
        fresh_db.execute("INSERT INTO t VALUES (1, NULL), (2, 'x')")
        rows = fresh_db.query("SELECT id FROM t WHERE name = 'x'")
        assert rows == [(2,)]

    def test_vector_dim_mismatch_in_query(self, loaded_db, small_dataset):
        loaded_db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 0.5, seed = 1)"
        )
        with pytest.raises(ValueError):
            loaded_db.query(
                "SELECT id FROM items ORDER BY vec <-> '1.0,2.0'::PASE LIMIT 3"
            )

    def test_limit_zero(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (1)")
        assert fresh_db.query("SELECT id FROM t LIMIT 0") == []


class TestWalEdgeCases:
    def test_checkpoint_record_ignored_by_replay(self):
        wal = WriteAheadLog()
        wal.log_checkpoint()
        wal.flush()
        disk = MemoryDisk()
        assert replay(wal, disk) == 0
        assert wal.records()[0].rec_type == REC_CHECKPOINT

    def test_replay_empty_wal(self):
        assert replay(WriteAheadLog(), MemoryDisk()) == 0

    def test_len(self):
        wal = WriteAheadLog()
        wal.log_insert(1, "r", 0, b"x")
        assert len(wal) == 1


class TestIndexEdgeCases:
    def test_single_vector_corpus(self):
        index = HNSWIndex(4, bnn=2, efb=4, seed=1)
        index.add(np.ones((1, 4), dtype=np.float32))
        result = index.search(np.ones(4, dtype=np.float32), 1)
        assert result.ids == [0]

    def test_clusters_capped_at_corpus_size(self, loaded_db):
        # 600 rows, 10000 clusters requested: the AM caps at n.
        loaded_db.execute(
            "CREATE INDEX big ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 10000, sample_ratio = 1.0, seed = 1)"
        )
        am = loaded_db.catalog.find_index("big").am
        count = sum(1 for __ in am._iter_centroids())
        assert count <= 600

    def test_ivf_k_larger_than_bucket_contents(self, small_dataset):
        index = IVFFlatIndex(small_dataset.dim, n_clusters=50, sample_ratio=0.5, seed=1)
        index.train(small_dataset.base)
        index.add(small_dataset.base)
        result = index.search(small_dataset.queries[0], 500, nprobe=1)
        assert 0 < len(result.neighbors) <= 500

    def test_duplicate_vectors_all_retrievable(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(10):
            fresh_db.execute(f"INSERT INTO t VALUES ({i}, '1.0,1.0'::PASE)")
        fresh_db.execute(
            "CREATE INDEX dup ON t USING pase_ivfflat (vec) "
            "WITH (clusters = 2, sample_ratio = 1.0, seed = 1)"
        )
        fresh_db.execute("SET pase.nprobe = 2")
        rows = fresh_db.query(
            "SELECT id FROM t ORDER BY vec <-> '1.0,1.0'::PASE LIMIT 10"
        )
        assert sorted(r[0] for r in rows) == list(range(10))

    def test_hnsw_params_validation(self):
        with pytest.raises(ValueError):
            HNSWParams(bnn=1)

    def test_empty_table_index_rejected(self, fresh_db):
        fresh_db.execute("CREATE TABLE empty (id int, vec float[])")
        with pytest.raises(RuntimeError):
            fresh_db.execute("CREATE INDEX e ON empty USING pase_ivfflat (vec)")


class TestPageEdgeCases:
    def test_minimum_page_size(self):
        page = Page.init(256)
        off = page.insert_item(b"x" * 100)
        assert page.get_item(off) == b"x" * 100
        with pytest.raises(PageFullError):
            page.insert_item(b"y" * 300)

    def test_exactly_fitting_item(self):
        page = Page.init(256)
        item = b"z" * page.free_space
        page.insert_item(item)
        assert page.free_space == 0


class TestProfilerEdgeCases:
    def test_deep_nesting(self):
        prof = Profiler()
        with prof.section("a"):
            with prof.section("b"):
                with prof.section("c"):
                    with prof.section("b"):  # repeated name at depth
                        pass
        assert prof.call_count("b") == 2
        assert prof.inclusive_seconds("a") >= prof.inclusive_seconds("c")

    def test_breakdown_within_missing_name(self):
        prof = Profiler()
        with prof.section("x"):
            pass
        assert prof.breakdown(within="ghost") == []


class TestHeapEdgeCases:
    def test_inf_distance(self):
        heap = BoundedMaxHeap(2)
        heap.push(float("inf"), 0)
        heap.push(1.0, 1)
        heap.push(2.0, 2)
        assert [n.vector_id for n in heap.results()] == [1, 2]

    def test_negative_distances(self):
        # Inner-product "distances" are negative; ordering must hold.
        heap = BoundedMaxHeap(2)
        for i, d in enumerate([-1.0, -5.0, -3.0]):
            heap.push(d, i)
        assert [n.vector_id for n in heap.results()] == [1, 2]
