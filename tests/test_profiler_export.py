"""Tests for profiler exports, NULL_PROFILER, and counter snapshots."""

import json
import re

import pytest

from repro.common.obs import (
    CounterDeltaMixin,
    IndexScanStats,
    LatencyHistogram,
    latency_summary,
    write_bench_json,
)
from repro.common.profiling import NULL_PROFILER, Profiler

#: flamegraph.pl accepts ``frame[;frame...] <count>`` — frames split on
#: semicolons, the weight split off at the *last* whitespace run, so
#: frame names may contain spaces.
_COLLAPSED_LINE = re.compile(r"^(?P<stack>.+) (?P<weight>\d+)$")


def _busy(profiler):
    with profiler.section("build"):
        with profiler.section("Distance"):
            pass
        with profiler.section("Tuple Access"):
            pass
    with profiler.section("search"):
        with profiler.section("Distance"):
            pass


class TestNullProfiler:
    def test_enable_raises(self):
        with pytest.raises(TypeError):
            NULL_PROFILER.enabled = True

    def test_disable_is_idempotent(self):
        NULL_PROFILER.enabled = False
        assert not NULL_PROFILER.enabled

    def test_merge_into_it_raises(self):
        with pytest.raises(TypeError):
            NULL_PROFILER.merge(Profiler())

    def test_sections_stay_no_ops(self):
        with NULL_PROFILER.section("anything"):
            pass
        assert NULL_PROFILER.total_seconds() == 0.0


class TestProfilerEdgeCases:
    def test_exception_exit_closes_section(self):
        prof = Profiler()
        with pytest.raises(ValueError):
            with prof.section("outer"):
                with prof.section("inner"):
                    raise ValueError("boom")
        # Both sections were closed; reset succeeds and counts recorded.
        assert prof.call_count("inner") == 1
        prof.reset()
        assert prof.total_seconds() == 0.0

    def test_reset_with_open_section_rejected(self):
        prof = Profiler()
        section = prof.section("open")
        section.__enter__()
        with pytest.raises(RuntimeError):
            prof.reset()
        section.__exit__(None, None, None)
        prof.reset()

    def test_merge_preserves_nested_paths(self):
        a, b = Profiler(), Profiler()
        _busy(a)
        _busy(b)
        a.merge(b)
        assert a.call_count("Distance") == 4
        assert a.call_count("build") == 2
        # Nested paths stay distinct: Distance under build vs search.
        assert ("build", "Distance") in a._exclusive
        assert ("search", "Distance") in a._exclusive


class TestCollapsedExport:
    def test_empty_profiler_exports_empty(self):
        assert Profiler().to_collapsed() == ""

    def test_grammar_and_frames(self):
        prof = Profiler()
        _busy(prof)
        out = prof.to_collapsed()
        assert out.endswith("\n")
        lines = out.splitlines()
        assert lines  # every recorded path appears
        for line in lines:
            match = _COLLAPSED_LINE.match(line)
            assert match, f"not collapsed-stack grammar: {line!r}"
            assert int(match.group("weight")) >= 1
        stacks = {_COLLAPSED_LINE.match(line).group("stack") for line in lines}
        assert "build;Tuple Access" in stacks  # space inside a frame survives
        assert "search;Distance" in stacks

    def test_zero_time_called_paths_kept_with_weight_one(self):
        prof = Profiler()
        with prof.section("instant"):
            pass
        prof._exclusive[("instant",)] = 0.0  # force the rounding edge
        out = prof.to_collapsed()
        assert out == "instant 1\n"


class TestChromeTraceExport:
    def test_valid_json_with_events(self):
        prof = Profiler()
        _busy(prof)
        doc = json.loads(prof.to_chrome_trace())
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 1
            assert {"calls", "exclusive_us"} <= set(event["args"])

    def test_children_nest_inside_parents(self):
        prof = Profiler()
        _busy(prof)
        events = json.loads(prof.to_chrome_trace())["traceEvents"]
        by_name = {e["name"]: e for e in events}
        build = by_name["build"]
        tuple_access = by_name["Tuple Access"]
        assert build["ts"] <= tuple_access["ts"]
        assert tuple_access["ts"] + tuple_access["dur"] <= build["ts"] + build["dur"]

    def test_deterministic(self):
        prof = Profiler()
        _busy(prof)
        assert prof.to_chrome_trace() == prof.to_chrome_trace()


class TestCounterSnapshots:
    def test_index_scan_stats_delta(self):
        stats = IndexScanStats()
        stats.scans, stats.candidates = 2, 100
        before = stats.snapshot()
        stats.scans, stats.candidates = 5, 160
        delta = stats.delta(before)
        assert (delta.scans, delta.candidates) == (3, 60)
        # The snapshot is independent of the live counters.
        assert (before.scans, before.candidates) == (2, 100)

    def test_delta_requires_same_type(self):
        from repro.pgsim.buffer import BufferStats

        with pytest.raises(TypeError):
            BufferStats().delta(IndexScanStats())

    def test_buffer_stats_mixin(self):
        from repro.pgsim.buffer import BufferStats

        stats = BufferStats()
        stats.hits = 7
        stats.misses = 3
        delta = stats.delta(BufferStats())
        assert (delta.hits, delta.misses) == (7, 3)
        assert isinstance(stats, CounterDeltaMixin)
        assert stats.as_dict()["hits"] == 7

    def test_wal_stats_flush_accounting(self):
        from repro.pgsim.wal import WriteAheadLog

        wal = WriteAheadLog()
        before = wal.stats.snapshot()
        wal.log_insert(1, "t", 0, b"payload")
        assert wal.stats.delta(before).records == 1
        assert wal.stats.records_flushed == before.records_flushed
        wal.flush()
        delta = wal.stats.delta(before)
        assert delta.records_flushed == 1
        assert delta.bytes_flushed == delta.bytes_written > 0
        assert delta.flushes == 1
        # Flushing with nothing pending does not inflate the counters.
        wal.flush()
        assert wal.stats.delta(before).flushes == 1


class TestLatencyHistogram:
    def test_percentiles_ordered_and_bounded(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):
            hist.record(ms / 1e3)
        assert hist.count == 100
        assert 0 < hist.p50 <= hist.p95 <= hist.p99 <= hist.max_seconds
        assert hist.p50 == pytest.approx(0.050, rel=0.15)
        assert hist.p99 == pytest.approx(0.100, rel=0.15)

    def test_negative_clamps_empty_is_zero(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.5) == 0.0
        hist.record(-1.0)
        assert hist.count == 1
        assert hist.total_seconds == 0.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(0.001)
        b.record(0.1)
        a.merge(b)
        assert a.count == 2
        assert a.max_seconds == pytest.approx(0.1)


class TestBenchJson:
    def test_schema_and_roundtrip(self, tmp_path):
        path = write_bench_json(
            "unit_test",
            params={"k": 10},
            latencies_seconds=[0.001, 0.002, 0.003],
            counters={"index": IndexScanStats(scans=3, candidates=90)},
            extra={"note": "roundtrip"},
            out_dir=tmp_path,
        )
        assert path.name == "BENCH_unit_test.json"
        doc = json.loads(path.read_text())
        assert doc["schema"] == "repro-bench/v1"
        assert doc["workload"] == "unit_test"
        assert doc["latency"]["count"] == 3
        assert doc["latency"]["p50_ms"] == pytest.approx(2.0)
        assert doc["counters"]["index"] == {"scans": 3, "candidates": 90}
        assert doc["extra"]["note"] == "roundtrip"

    def test_env_var_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path / "out"))
        path = write_bench_json("env_test", latencies_seconds=[0.001])
        assert path.parent == tmp_path / "out"

    def test_empty_latency_summary(self):
        assert latency_summary([]) == {"count": 0}
