"""Tests for metrics, the profiler, and the parallel scheduler."""

import time

import numpy as np
import pytest

from repro.common import parallel
from repro.common.metrics import LatencyStats, latency_stats, mean_recall_at_k, recall_at_k
from repro.common.profiling import NULL_PROFILER, Profiler
from repro.common.rng import derive_seed, make_rng


class TestRecall:
    def test_perfect_recall(self):
        assert recall_at_k([1, 2, 3], [1, 2, 3], 3) == 1.0

    def test_partial_recall(self):
        assert recall_at_k([1, 9, 8], [1, 2, 3], 3) == pytest.approx(1 / 3)

    def test_order_does_not_matter(self):
        assert recall_at_k([3, 2, 1], [1, 2, 3], 3) == 1.0

    def test_only_first_k_considered(self):
        assert recall_at_k([9, 9, 1, 2], [1, 2, 7], 2) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            recall_at_k([1], [1], 0)

    def test_mean_recall(self):
        truth = np.array([[1, 2], [3, 4]])
        assert mean_recall_at_k([[1, 2], [9, 9]], truth, 2) == pytest.approx(0.5)

    def test_mean_recall_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_recall_at_k([[1]], np.array([[1], [2]]), 1)


class TestLatencyStats:
    def test_basic_stats(self):
        stats = latency_stats([0.001, 0.002, 0.003, 0.004])
        assert stats.count == 4
        assert stats.mean == pytest.approx(0.0025)
        assert stats.total == pytest.approx(0.010)
        assert stats.p50 in (0.002, 0.003)

    def test_qps(self):
        stats = LatencyStats(count=10, mean=0.1, p50=0.1, p95=0.1, p99=0.1, total=1.0)
        assert stats.qps == 10.0
        assert stats.mean_ms == pytest.approx(100.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_stats([])


class TestProfiler:
    def test_exclusive_vs_inclusive(self):
        prof = Profiler()
        with prof.section("outer"):
            time.sleep(0.002)
            with prof.section("inner"):
                time.sleep(0.002)
        assert prof.inclusive_seconds("outer") >= prof.exclusive_seconds("outer")
        assert prof.exclusive_seconds("inner") >= 0.001
        assert prof.inclusive_seconds("outer") >= 0.003

    def test_breakdown_top_level(self):
        prof = Profiler()
        with prof.section("a"):
            with prof.section("b"):
                pass
        with prof.section("c"):
            pass
        names = {row.name for row in prof.breakdown()}
        assert names == {"a", "c"}

    def test_breakdown_within(self):
        prof = Profiler()
        with prof.section("phase"):
            with prof.section("x"):
                time.sleep(0.001)
            time.sleep(0.001)
        rows = {r.name: r for r in prof.breakdown(within="phase")}
        assert "x" in rows
        assert "Others" in rows
        assert sum(r.fraction for r in rows.values()) == pytest.approx(1.0)

    def test_fractions_sum_to_one(self):
        prof = Profiler()
        for name in ("a", "b", "a"):
            with prof.section(name):
                pass
        assert sum(r.fraction for r in prof.breakdown()) == pytest.approx(1.0)

    def test_call_counts(self):
        prof = Profiler()
        for __ in range(3):
            with prof.section("s"):
                pass
        assert prof.call_count("s") == 3

    def test_breakdown_calls_exclude_nested_children(self):
        """Regression: nested-child entries must not inflate the parent
        bucket's "calls" column (Table III/V over-reporting)."""
        prof = Profiler()
        with prof.section("top"):
            for __ in range(5):
                with prof.section("child"):
                    pass
        rows = {r.name: r for r in prof.breakdown()}
        assert rows["top"].calls == 1

    def test_breakdown_within_calls_exclude_grandchildren(self):
        prof = Profiler()
        with prof.section("top"):
            with prof.section("child"):
                for __ in range(7):
                    with prof.section("grandchild"):
                        pass
        rows = {r.name: r for r in prof.breakdown(within="top")}
        assert rows["child"].calls == 1

    def test_breakdown_within_self_label_calls(self):
        prof = Profiler()
        for __ in range(4):
            with prof.section("top"):
                with prof.section("child"):
                    pass
        rows = {r.name: r for r in prof.breakdown(within="top")}
        assert rows["child"].calls == 4
        assert rows["Others"].calls == 4

    def test_disabled_profiler_records_nothing(self):
        prof = Profiler(enabled=False)
        with prof.section("x"):
            pass
        assert prof.total_seconds() == 0.0

    def test_null_profiler_shared(self):
        with NULL_PROFILER.section("anything"):
            pass
        assert NULL_PROFILER.total_seconds() == 0.0

    def test_merge(self):
        a, b = Profiler(), Profiler()
        with a.section("x"):
            pass
        with b.section("x"):
            pass
        a.merge(b)
        assert a.call_count("x") == 2

    def test_reset_rejects_open_sections(self):
        prof = Profiler()
        ctx = prof.section("open")
        ctx.__enter__()
        with pytest.raises(RuntimeError):
            prof.reset()
        ctx.__exit__(None, None, None)
        prof.reset()
        assert prof.total_seconds() == 0.0

    def test_report_renders(self):
        prof = Profiler()
        with prof.section("alpha"):
            pass
        text = prof.report(title="T")
        assert "T" in text and "alpha" in text


class TestParallelScheduler:
    def test_lpt_balanced(self):
        makespan, loads = parallel.lpt_makespan([1.0] * 8, 4)
        assert makespan == pytest.approx(2.0)
        assert loads == [2.0] * 4

    def test_lpt_single_thread_is_sum(self):
        makespan, __ = parallel.lpt_makespan([0.5, 0.25, 0.25], 1)
        assert makespan == pytest.approx(1.0)

    def test_lpt_empty(self):
        makespan, loads = parallel.lpt_makespan([], 3)
        assert makespan == 0.0

    def test_lpt_invalid_threads(self):
        with pytest.raises(ValueError):
            parallel.lpt_makespan([1.0], 0)

    def test_lock_free_scales_nearly_linearly(self):
        units = [parallel.WorkUnit(0.01) for __ in range(64)]
        curve = parallel.scaling_curve(units, [1, 8])
        speed = parallel.speedups(curve)
        assert speed[8] > 6.0

    def test_lock_heavy_does_not_scale(self):
        # 50k lock ops of 250 ns each vs 10 ms compute: the serial
        # section dominates and grows with contention.
        units = [parallel.WorkUnit(0.0005, serial_ops=2500) for __ in range(20)]
        curve = parallel.scaling_curve(units, [1, 2, 4, 8])
        speed = parallel.speedups(curve)
        assert speed[8] < 2.0
        assert speed[8] <= speed[2] * 1.5

    def test_serial_seconds_grow_with_threads(self):
        units = [parallel.WorkUnit(0.001, serial_ops=1000)]
        r1 = parallel.simulate_schedule(units, 1)
        r8 = parallel.simulate_schedule(units, 8)
        assert r8.serial_seconds > r1.serial_seconds

    def test_speedups_require_baseline(self):
        units = [parallel.WorkUnit(0.001)]
        curve = parallel.scaling_curve(units, [2, 4])
        with pytest.raises(ValueError):
            parallel.speedups(curve)


class TestRng:
    def test_default_seed_stable(self):
        assert make_rng().random() == make_rng().random()

    def test_derive_seed_stable_across_processes(self):
        # crc32-based: this exact value must never change.
        assert derive_seed(7, "base") == derive_seed(7, "base")
        assert derive_seed(7, "base") != derive_seed(7, "query")

    def test_derive_seed_int_salt(self):
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
