"""Differential tests: tuple-at-a-time vs batch executor paths.

Every supported SELECT shape is run through both executor paths
(``enable_batch_exec`` off and on) and must produce bit-identical
rows in identical order.  The batch path is the RC#3 ablation, so any
divergence — even a last-ulp distance difference that reorders two
rows — is a bug, not noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pgsim import PgSimDatabase


def _rows_equal(a, b) -> bool:
    """Bit-identical row comparison that tolerates numpy payloads."""
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for va, vb in zip(row_a, row_b):
            if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
                va, vb = np.asarray(va), np.asarray(vb)
                if va.dtype != vb.dtype or not np.array_equal(va, vb):
                    return False
            elif va != vb or type(va) is not type(vb):
                return False
    return True


def both_paths(db: PgSimDatabase, sql: str):
    """Run ``sql`` under both executor paths and assert identical rows."""
    db.execute("SET enable_batch_exec = off")
    tuple_rows = db.query(sql)
    db.execute("SET enable_batch_exec = on")
    try:
        batch_rows = db.query(sql)
    finally:
        db.execute("SET enable_batch_exec = off")
    assert _rows_equal(tuple_rows, batch_rows), (
        f"executor paths diverged for {sql!r}:\n"
        f"  tuple: {tuple_rows[:5]}...\n  batch: {batch_rows[:5]}..."
    )
    return tuple_rows


class TestSeqScanShapes:
    """Non-indexed SELECT shapes through both paths."""

    @pytest.fixture()
    def db(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, name text, score float)")
        for i in range(50):
            fresh_db.execute(
                f"INSERT INTO t VALUES ({i}, 'n{i % 7}', {i * 0.5})"
            )
        return fresh_db

    def test_full_scan(self, db):
        assert len(both_paths(db, "SELECT id, name, score FROM t")) == 50

    def test_star(self, db):
        both_paths(db, "SELECT * FROM t")

    def test_projection_expressions(self, db):
        both_paths(db, "SELECT id * 2 + 1, score / 2 FROM t")

    def test_filter(self, db):
        assert len(both_paths(db, "SELECT id FROM t WHERE id < 7")) == 7

    def test_filter_no_matches(self, db):
        assert both_paths(db, "SELECT id FROM t WHERE id > 999") == []

    def test_compound_filter(self, db):
        both_paths(db, "SELECT id FROM t WHERE id >= 10 AND name = 'n3'")

    def test_order_by_column(self, db):
        both_paths(db, "SELECT id FROM t ORDER BY score DESC")

    def test_order_by_expression_with_ties(self, db):
        # id % 7 collides; stable sort order must match exactly.
        both_paths(db, "SELECT id, name FROM t ORDER BY name")

    def test_limit(self, db):
        assert len(both_paths(db, "SELECT id FROM t LIMIT 3")) == 3

    def test_limit_zero(self, db):
        assert both_paths(db, "SELECT id FROM t LIMIT 0") == []

    def test_limit_past_end(self, db):
        assert len(both_paths(db, "SELECT id FROM t LIMIT 999")) == 50

    def test_filter_then_limit(self, db):
        both_paths(db, "SELECT id FROM t WHERE id >= 20 LIMIT 5")

    def test_order_by_then_limit(self, db):
        both_paths(db, "SELECT id FROM t ORDER BY score DESC LIMIT 4")

    @pytest.mark.parametrize("agg", ["count(*)", "count(id)", "sum(id)",
                                     "min(score)", "max(score)", "avg(id)"])
    def test_aggregates(self, db, agg):
        both_paths(db, f"SELECT {agg} FROM t")

    def test_aggregate_with_filter(self, db):
        both_paths(db, "SELECT count(*) FROM t WHERE id < 25")

    def test_select_without_table(self, db):
        assert both_paths(db, "SELECT 1 + 1") == [(2,)]

    def test_vector_column_roundtrip(self, fresh_db):
        fresh_db.execute("CREATE TABLE v (id int, vec float[])")
        fresh_db.execute("INSERT INTO v VALUES (1, '0.5,1.5,2.5'::PASE)")
        rows = both_paths(fresh_db, "SELECT vec FROM v")
        assert rows[0][0].dtype == np.float32

    def test_post_delete_scan(self, db):
        db.execute("DELETE FROM t WHERE id < 10")
        assert len(both_paths(db, "SELECT id FROM t")) == 40

    def test_empty_table(self, fresh_db):
        fresh_db.execute("CREATE TABLE e (id int)")
        assert both_paths(fresh_db, "SELECT id FROM e") == []

    def test_empty_table_aggregate(self, fresh_db):
        fresh_db.execute("CREATE TABLE e (id int)")
        assert both_paths(fresh_db, "SELECT count(*) FROM e") == [(0,)]


# One spec per index AM: (amname, WITH-clause options).
AM_SPECS = {
    "pase_ivfflat": "clusters = 10, sample_ratio = 0.6, seed = 2",
    "pase_ivfpq": "clusters = 10, m = 4, c_pq = 16, sample_ratio = 0.6, seed = 2",
    "pase_hnsw": "bnn = 8, efb = 24, seed = 4",
    "ivfflat": "clusters = 10, sample_ratio = 0.6, seed = 2",
    "bridged_ivfflat": "clusters = 10, sample_ratio = 0.6, seed = 2",
    "bridged_hnsw": "bnn = 8, efb = 24, seed = 4",
}


@pytest.fixture(scope="module")
def indexed_dbs():
    """One database per AM, each with the small dataset + one index.

    Module-scoped: index builds (HNSW especially) dominate runtime and
    every test here is read-only apart from GUC toggles.
    """
    from repro.common.datasets import tiny_dataset

    dataset = tiny_dataset(n=600, dim=16, n_queries=8, seed=101)
    dbs = {}
    for amname, opts in AM_SPECS.items():
        db = PgSimDatabase(buffer_pool_pages=512)
        db.execute("CREATE TABLE items (id int, vec float[])")
        table = db.catalog.table("items")
        for i, vec in enumerate(dataset.base):
            table.heap.insert([i, vec], xid=1)
        db.wal.log_commit(1)
        db.execute(f"CREATE INDEX ix ON items USING {amname} (vec) WITH ({opts})")
        dbs[amname] = db
    return dataset, dbs


def _knn_sql(lit: str, k: int) -> str:
    return f"SELECT id FROM items ORDER BY vec <-> '{lit}'::PASE LIMIT {k}"


class TestIndexScanDifferential:
    @pytest.mark.parametrize("amname", sorted(AM_SPECS))
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_knn_identical(self, indexed_dbs, vec_lit, amname, k):
        dataset, dbs = indexed_dbs
        db = dbs[amname]
        db.execute("SET pase.nprobe = 6")
        db.execute("SET pase.efs = 40")
        for q in dataset.queries[:4]:
            both_paths(db, _knn_sql(vec_lit(q), k))

    @pytest.mark.parametrize("amname", sorted(AM_SPECS))
    def test_plan_uses_index_on_both_paths(self, indexed_dbs, vec_lit, amname):
        dataset, dbs = indexed_dbs
        db = dbs[amname]
        sql = _knn_sql(vec_lit(dataset.queries[0]), 5)
        db.execute("SET enable_batch_exec = on")
        try:
            plan = db.explain(sql)
        finally:
            db.execute("SET enable_batch_exec = off")
        assert "Index Scan using ix" in plan
        assert "batch" in plan
        assert "batch" not in db.explain(sql)

    @pytest.mark.parametrize("nprobe", [1, 3, 8, 12])
    def test_nprobe_sweep(self, indexed_dbs, vec_lit, nprobe):
        dataset, dbs = indexed_dbs
        for amname in ("pase_ivfflat", "pase_ivfpq", "ivfflat", "bridged_ivfflat"):
            db = dbs[amname]
            db.execute(f"SET pase.nprobe = {nprobe}")
            for q in dataset.queries[:3]:
                both_paths(db, _knn_sql(vec_lit(q), 10))

    @pytest.mark.parametrize("efs", [10, 40, 80])
    def test_ef_search_sweep(self, indexed_dbs, vec_lit, efs):
        dataset, dbs = indexed_dbs
        for amname in ("pase_hnsw", "bridged_hnsw"):
            db = dbs[amname]
            db.execute(f"SET pase.efs = {efs}")
            for q in dataset.queries[:3]:
                both_paths(db, _knn_sql(vec_lit(q), 10))

    def test_knn_with_projection(self, indexed_dbs, vec_lit):
        dataset, dbs = indexed_dbs
        db = dbs["pase_ivfflat"]
        db.execute("SET pase.nprobe = 6")
        lit = vec_lit(dataset.queries[0])
        both_paths(
            db, f"SELECT id, vec FROM items ORDER BY vec <-> '{lit}'::PASE LIMIT 5"
        )
        both_paths(
            db, f"SELECT id * 10 FROM items ORDER BY vec <-> '{lit}'::PASE LIMIT 5"
        )


class TestDistanceOperators:
    """``<->`` / ``<#>`` / ``<=>`` order-by through both paths (seq scan)."""

    @pytest.mark.parametrize("op", ["<->", "<#>", "<=>"])
    def test_seqscan_order_by(self, loaded_db, small_dataset, vec_lit, op):
        lit = vec_lit(small_dataset.queries[0])
        both_paths(
            loaded_db,
            f"SELECT id FROM items ORDER BY vec {op} '{lit}'::PASE LIMIT 10",
        )

    @pytest.mark.parametrize("dtype,op", [(1, "<#>"), (2, "<=>")])
    def test_indexed_non_l2_metric(self, loaded_db, small_dataset, vec_lit, dtype, op):
        loaded_db.execute(
            "CREATE INDEX mx ON items USING pase_ivfflat (vec) "
            f"WITH (clusters = 10, sample_ratio = 0.6, seed = 2, distance_type = {dtype})"
        )
        loaded_db.execute("SET pase.nprobe = 6")
        lit = vec_lit(small_dataset.queries[1])
        sql = f"SELECT id FROM items ORDER BY vec {op} '{lit}'::PASE LIMIT 10"
        assert "Index Scan using mx" in loaded_db.explain(sql)
        both_paths(loaded_db, sql)


class TestDegenerateIndexScans:
    def test_single_row_table(self, fresh_db, vec_lit):
        fresh_db.execute("CREATE TABLE items (id int, vec float[])")
        fresh_db.execute("INSERT INTO items VALUES (1, '1.0,2.0,3.0'::PASE)")
        fresh_db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 1, sample_ratio = 1.0, seed = 1)"
        )
        rows = both_paths(
            fresh_db,
            "SELECT id FROM items ORDER BY vec <-> '1.0,2.0,3.0'::PASE LIMIT 5",
        )
        assert rows == [(1,)]

    def test_k_larger_than_table(self, indexed_dbs, vec_lit):
        dataset, dbs = indexed_dbs
        db = dbs["pase_ivfflat"]
        db.execute("SET pase.nprobe = 12")
        lit = vec_lit(dataset.queries[0])
        rows = both_paths(db, _knn_sql(lit, 5000))
        assert len(rows) <= 600

    def test_post_delete_index_scan(self, loaded_db, small_dataset, vec_lit):
        """Dead heap tuples force the k-widening retry on both paths."""
        loaded_db.execute(
            "CREATE INDEX dx ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 10, sample_ratio = 0.6, seed = 2)"
        )
        loaded_db.execute("SET pase.nprobe = 12")
        lit = vec_lit(small_dataset.queries[2])
        before = both_paths(loaded_db, _knn_sql(lit, 10))
        victims = ", ".join(str(r[0]) for r in before[:4])
        loaded_db.execute(f"DELETE FROM items WHERE id = {before[0][0]}")
        for vid in [r[0] for r in before[1:4]]:
            loaded_db.execute(f"DELETE FROM items WHERE id = {vid}")
        after = both_paths(loaded_db, _knn_sql(lit, 10))
        assert len(after) == 10
        survivors = {r[0] for r in after}
        assert not survivors & {int(v) for v in victims.split(", ")}

    def test_delete_everything_then_scan(self, fresh_db, vec_lit):
        fresh_db.execute("CREATE TABLE items (id int, vec float[])")
        for i in range(20):
            fresh_db.execute(f"INSERT INTO items VALUES ({i}, '{i}.0,{i}.0'::PASE)")
        fresh_db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 2, sample_ratio = 1.0, seed = 1)"
        )
        fresh_db.execute("SET pase.nprobe = 2")
        fresh_db.execute("DELETE FROM items")
        rows = both_paths(
            fresh_db,
            "SELECT id FROM items ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5",
        )
        assert rows == []


class TestGucSurface:
    def test_string_off_disables_batch(self, fresh_db):
        """``SET x = off`` lexes as a string; get_bool must coerce it."""
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (1)")
        fresh_db.execute("SET enable_batch_exec = on")
        assert "batch" in fresh_db.explain("SELECT id FROM t")
        fresh_db.execute("SET enable_batch_exec = off")
        assert "batch" not in fresh_db.explain("SELECT id FROM t")

    def test_default_is_tuple_path(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        assert "batch" not in fresh_db.explain("SELECT id FROM t")

    @pytest.mark.parametrize("value", ["true", "1", "yes"])
    def test_truthy_spellings(self, fresh_db, value):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute(f"SET enable_batch_exec = {value}")
        assert "batch" in fresh_db.explain("SELECT id FROM t")
