"""Property-based tests (hypothesis) on core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import pq
from repro.common.distance import l2_sqr, l2_sqr_batch
from repro.common.heap import BoundedMaxHeap, NaiveTopK, exact_topk
from repro.pgsim.page import Page, PageFullError
from repro.pgsim.tuple_format import Column, decode_column, decode_tuple, encode_tuple

# ----------------------------------------------------------------------
# heaps
# ----------------------------------------------------------------------
distances = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


@given(distances, st.integers(min_value=1, max_value=50))
def test_bounded_heap_equals_sorted_prefix(dists, k):
    """The k-heap's survivors are exactly the k smallest values."""
    heap = BoundedMaxHeap(k)
    for i, d in enumerate(dists):
        heap.push(d, i)
    got = [n.distance for n in heap.results()]
    assert got == sorted(dists)[: min(k, len(dists))]


@given(distances, st.integers(min_value=1, max_value=50))
def test_naive_and_bounded_heaps_agree(dists, k):
    """RC#6 is a cost difference, never a result difference.

    Identical distance values may tie-break to different ids, so the
    invariant is on distances (and on ids when all distances differ).
    """
    naive, bounded = NaiveTopK(k), BoundedMaxHeap(k)
    for i, d in enumerate(dists):
        naive.push(d, i)
        bounded.push(d, i)
    n_res, b_res = naive.results(), bounded.results()
    assert [n.distance for n in n_res] == [n.distance for n in b_res]
    if len(set(dists)) == len(dists):
        assert [n.vector_id for n in n_res] == [n.vector_id for n in b_res]


@given(distances, st.integers(min_value=1, max_value=20))
def test_exact_topk_matches_heap(dists, k):
    arr = np.asarray(dists, dtype=np.float64)
    heap = BoundedMaxHeap(k)
    for i, d in enumerate(arr.tolist()):
        heap.push(d, i)
    top = exact_topk(arr, k)
    assert [n.distance for n in top] == [n.distance for n in heap.results()]
    if len(set(dists)) == len(dists):
        assert [n.vector_id for n in top] == [n.vector_id for n in heap.results()]


# ----------------------------------------------------------------------
# distance kernels
# ----------------------------------------------------------------------
@st.composite
def vector_pairs(draw):
    dim = draw(st.integers(min_value=1, max_value=32))
    elems = st.floats(min_value=-100, max_value=100, allow_nan=False, width=32)
    a = draw(st.lists(elems, min_size=dim, max_size=dim))
    b = draw(st.lists(elems, min_size=dim, max_size=dim))
    return np.asarray(a, dtype=np.float32), np.asarray(b, dtype=np.float32)


@given(vector_pairs())
def test_l2_symmetry_and_nonnegativity(pair):
    a, b = pair
    assert l2_sqr(a, b) >= 0.0
    assert l2_sqr(a, b) == pytest.approx(l2_sqr(b, a), rel=1e-5, abs=1e-4)
    assert l2_sqr(a, a) == 0.0


@given(vector_pairs())
def test_batch_kernel_matches_scalar(pair):
    a, b = pair
    batch = l2_sqr_batch(a.reshape(1, -1), b.reshape(1, -1))[0, 0]
    # The SGEMM decomposition loses precision to cancellation when the
    # operands' norms dwarf their distance (a real property of the
    # trick, present in Faiss too) — tolerate error proportional to
    # the norms, not the distance.
    cancellation = float((a * a).sum() + (b * b).sum())
    assert batch == pytest.approx(l2_sqr(a, b), rel=1e-3, abs=1e-4 * cancellation + 1e-3)


# ----------------------------------------------------------------------
# slotted pages
# ----------------------------------------------------------------------
@given(st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=30))
@settings(max_examples=50)
def test_page_insert_roundtrip(items):
    page = Page.init(4096)
    stored = []
    for item in items:
        try:
            off = page.insert_item(item)
        except PageFullError:
            break
        stored.append((off, item))
    for off, item in stored:
        assert page.get_item(off) == item
    assert page.item_count == len(stored)


@given(
    st.lists(st.binary(min_size=1, max_size=64), min_size=2, max_size=20),
    st.data(),
)
@settings(max_examples=50)
def test_page_delete_then_defragment_preserves_live(items, data):
    page = Page.init(4096)
    offs = [page.insert_item(item) for item in items]
    n_delete = data.draw(st.integers(min_value=1, max_value=len(offs) - 1))
    victims = set(offs[:n_delete])
    for off in victims:
        page.delete_item(off)
    page.defragment()
    for off, item in zip(offs, items):
        if off in victims:
            assert page.is_dead(off)
        else:
            assert page.get_item(off) == item


# ----------------------------------------------------------------------
# tuple codec
# ----------------------------------------------------------------------
_schema = [
    Column.from_sql("a", "int"),
    Column.from_sql("b", "float"),
    Column.from_sql("c", "text"),
    Column.from_sql("v", "float[]"),
]


@st.composite
def rows(draw):
    a = draw(st.one_of(st.none(), st.integers(min_value=-(2**31), max_value=2**31 - 1)))
    b = draw(st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False)))
    c = draw(st.one_of(st.none(), st.text(max_size=40)))
    v_list = draw(
        st.one_of(
            st.none(),
            st.lists(
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
                min_size=1,
                max_size=16,
            ),
        )
    )
    v = None if v_list is None else np.asarray(v_list, dtype=np.float32)
    return [a, b, c, v]


@given(rows())
@settings(max_examples=100)
def test_tuple_roundtrip(row):
    data = encode_tuple(_schema, row)
    got = decode_tuple(_schema, data)
    assert got[0] == row[0]
    if row[1] is None:
        assert got[1] is None
    else:
        assert got[1] == pytest.approx(row[1], rel=1e-12)
    assert got[2] == row[2]
    if row[3] is None:
        assert got[3] is None
    else:
        np.testing.assert_array_equal(got[3], row[3])


@given(rows(), st.integers(min_value=0, max_value=3))
@settings(max_examples=100)
def test_decode_column_agrees_with_full_decode(row, idx):
    data = encode_tuple(_schema, row)
    full = decode_tuple(_schema, data)
    single = decode_column(_schema, data, idx)
    if isinstance(full[idx], np.ndarray):
        np.testing.assert_array_equal(single, full[idx])
    else:
        assert single == full[idx]


# ----------------------------------------------------------------------
# product quantization
# ----------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_pq_adc_tables_always_agree(seed):
    """naive vs optimized ADC tables agree for any seed (RC#7 invariant)."""
    rng = np.random.default_rng(seed)
    training = rng.normal(size=(80, 8)).astype(np.float32)
    codebook = pq.train_codebook(training, m=2, c_pq=8, seed=int(seed % 1000))
    query = rng.normal(size=8).astype(np.float32)
    np.testing.assert_allclose(
        pq.naive_adc_table(codebook, query),
        pq.optimized_adc_table(codebook, query),
        rtol=1e-3,
        atol=1e-3,
    )


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_pq_codes_in_range(seed):
    rng = np.random.default_rng(seed)
    training = rng.normal(size=(50, 8)).astype(np.float32)
    codebook = pq.train_codebook(training, m=4, c_pq=16, seed=3)
    codes = pq.encode(codebook, rng.normal(size=(20, 8)).astype(np.float32))
    assert codes.shape == (20, 4)
    assert int(codes.max()) < 16
