"""Tests for the pg_stat-style views and per-query QueryStats."""

import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.catalog import CatalogError
from repro.pgsim.sql.parser import SqlSyntaxError
from repro.pgsim.stats import normalize_sql


@pytest.fixture()
def db(fresh_db):
    fresh_db.execute("CREATE TABLE t (id int, vec float[])")
    for i in range(30):
        fresh_db.execute(f"INSERT INTO t VALUES ({i}, '{i}.0,{2 * i}.0'::PASE)")
    return fresh_db


@pytest.fixture()
def indexed_db(db):
    db.execute(
        "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
        "WITH (clusters = 4, sample_ratio = 1.0, seed = 1)"
    )
    return db


class TestNormalizeSql:
    def test_literals_collapse(self):
        assert normalize_sql("SELECT id FROM t WHERE id < 7") == [
            "select id from t where id < ?"
        ]

    def test_strings_collapse(self):
        one = normalize_sql("INSERT INTO t VALUES (1, '1.0,2.0'::PASE)")
        two = normalize_sql("INSERT INTO t VALUES (2, '9.0,8.0'::PASE)")
        assert one == two

    def test_statement_split_matches_parser(self):
        texts = normalize_sql("SELECT 1; SELECT id FROM t; ")
        assert len(texts) == 2
        assert texts[1] == "select id from t"


class TestQueryStatsOnResults:
    def test_select_carries_stats(self, db):
        result = db.execute("SELECT id FROM t WHERE id < 5")
        assert result.stats is not None
        assert result.stats.buffer_hits + result.stats.buffer_misses > 0
        assert result.stats.heap_tuples_fetched >= 30  # full scan under the filter
        assert result.stats.elapsed_seconds > 0

    def test_insert_counts_wal_and_heap(self, db):
        result = db.execute("INSERT INTO t VALUES (99, '1.0,1.0'::PASE)")
        assert result.stats.heap.tuples_inserted == 1
        assert result.stats.wal.records >= 1
        assert result.stats.wal.bytes_written > 0

    def test_delete_counts_heap(self, db):
        result = db.execute("DELETE FROM t WHERE id = 3")
        assert result.stats.heap.tuples_deleted == 1

    def test_tracking_can_be_disabled(self, db):
        db.execute("SET track_query_stats = off")
        result = db.execute("SELECT id FROM t")
        assert result.stats is None
        before = len(db.query("SELECT query FROM pg_stat_statements"))
        db.execute("SELECT id FROM t WHERE id < 9")
        assert len(db.query("SELECT query FROM pg_stat_statements")) == before

    def test_index_scan_attributes_candidates(self, indexed_db):
        result = indexed_db.execute(
            "SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5"
        )
        assert result.stats.index.scans == 1
        assert result.stats.index_candidates > 0


class TestStatViews:
    def test_pg_stat_buffers_tracks_totals(self, db):
        hits0, misses0 = db.query("SELECT hits, misses FROM pg_stat_buffers")[0]
        db.execute("SELECT id FROM t")
        hits1, misses1 = db.query("SELECT hits, misses FROM pg_stat_buffers")[0]
        assert hits1 + misses1 > hits0 + misses0

    def test_pg_stat_wal_tracks_appends(self, db):
        records0 = db.query("SELECT records FROM pg_stat_wal")[0][0]
        db.execute("INSERT INTO t VALUES (77, '1.0,1.0'::PASE)")
        records1 = db.query("SELECT records FROM pg_stat_wal")[0][0]
        assert records1 > records0

    def test_pg_stat_indexes_row_shape(self, indexed_db):
        indexed_db.execute("SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5")
        rows = indexed_db.query("SELECT * FROM pg_stat_indexes")
        assert len(rows) == 1
        name, table, am, scans, candidates, per_scan = rows[0]
        assert (name, table, am) == ("ix", "t", "pase_ivfflat")
        assert scans >= 1
        assert candidates > 0
        assert per_scan == pytest.approx(candidates / scans)

    def test_pg_stat_statements_aggregates_calls(self, db):
        for i in range(5):
            db.execute(f"SELECT id FROM t WHERE id < {i}")
        rows = db.query(
            "SELECT query, calls, p50_ms, p95_ms, p99_ms FROM pg_stat_statements "
            "WHERE calls >= 5"
        )
        entry = next(r for r in rows if "where id < ?" in r[0])
        __, calls, p50, p95, p99 = entry
        assert calls == 5
        assert 0 <= p50 <= p95 <= p99

    def test_views_support_where_order_limit(self, db):
        db.execute("SELECT id FROM t")
        rows = db.query(
            "SELECT query, calls FROM pg_stat_statements ORDER BY calls LIMIT 1"
        )
        assert len(rows) == 1
        count = db.query("SELECT count(*) FROM pg_stat_buffers")
        assert count == [(1,)]

    def test_views_work_on_batch_path(self, db):
        db.execute("SET enable_batch_exec = on")
        try:
            rows = db.query("SELECT hits, misses FROM pg_stat_buffers")
            assert len(rows) == 1
        finally:
            db.execute("SET enable_batch_exec = off")

    def test_view_names_are_reserved(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE pg_stat_buffers (id int)")

    def test_unknown_view_or_table_still_errors(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM pg_stat_nonexistent")

    def test_explain_shows_virtual_scan(self, db):
        plan = db.explain("SELECT hits FROM pg_stat_buffers")
        assert "Virtual Scan on pg_stat_buffers" in plan


class TestExplainBuffersDifferential:
    """EXPLAIN (ANALYZE, BUFFERS) per-node counters must sum to the
    pg_stat_buffers delta the same statement produces — the acceptance
    check tying the per-node and cumulative views together."""

    @staticmethod
    def _node_totals(lines):
        hits = misses = 0
        for line in lines:
            if "Buffers:" in line:
                hits += int(line.split("hits=")[1].split(" ")[0])
                misses += int(line.split("misses=")[1].split(" ")[0].rstrip())
        return hits, misses

    @pytest.mark.parametrize("batch", [False, True])
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT id FROM t",
            "SELECT id FROM t WHERE id < 7",
            "SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5",
        ],
    )
    def test_per_node_sums_to_cumulative_delta(self, indexed_db, sql, batch):
        db = indexed_db
        db.execute(f"SET enable_batch_exec = {'on' if batch else 'off'}")
        try:
            before = db.buffer.stats.snapshot()
            lines = [r[0] for r in db.execute(f"EXPLAIN (ANALYZE, BUFFERS) {sql}").rows]
            delta = db.buffer.stats.delta(before)
            hits, misses = self._node_totals(lines)
            assert (hits, misses) == (delta.hits, delta.misses)
        finally:
            db.execute("SET enable_batch_exec = off")


class TestExplainOptionParsing:
    def test_unknown_option_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("EXPLAIN (VERBOSE) SELECT id FROM t")

    def test_option_values(self, db):
        lines = [
            r[0]
            for r in db.execute(
                "EXPLAIN (ANALYZE on, BUFFERS off) SELECT id FROM t"
            ).rows
        ]
        assert any("actual rows=" in line for line in lines)
        assert not any("Buffers:" in line for line in lines)

    def test_plain_explain_insert(self, db):
        lines = [r[0] for r in db.execute("EXPLAIN INSERT INTO t VALUES (1, '1.0,1.0'::PASE)").rows]
        assert lines[0].startswith("Insert on t")
        # Plain EXPLAIN must not execute.
        assert db.query("SELECT count(*) FROM t") == [(30,)]

    def test_plain_explain_delete(self, db):
        lines = [r[0] for r in db.execute("EXPLAIN DELETE FROM t WHERE id = 1").rows]
        assert lines[0].startswith("Delete on t")
        assert db.query("SELECT count(*) FROM t") == [(30,)]


class TestStatementReset:
    def test_reset_statements(self, db):
        db.execute("SELECT id FROM t")
        assert db.query("SELECT count(*) FROM pg_stat_statements") != [(0,)]
        db.stats.reset_statements()
        # The count query itself gets tracked after the reset, so look
        # for the pre-reset entry specifically.
        rows = db.query("SELECT query FROM pg_stat_statements")
        assert ("select id from t",) not in rows
