"""Tests for the pg_stat-style views and per-query QueryStats."""

import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.catalog import CatalogError
from repro.pgsim.sql.parser import SqlSyntaxError
from repro.pgsim.stats import _normalize_cached, normalize_sql


@pytest.fixture()
def db(fresh_db):
    fresh_db.execute("CREATE TABLE t (id int, vec float[])")
    for i in range(30):
        fresh_db.execute(f"INSERT INTO t VALUES ({i}, '{i}.0,{2 * i}.0'::PASE)")
    return fresh_db


@pytest.fixture()
def indexed_db(db):
    db.execute(
        "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
        "WITH (clusters = 4, sample_ratio = 1.0, seed = 1)"
    )
    return db


class TestNormalizeSql:
    def test_literals_collapse(self):
        assert normalize_sql("SELECT id FROM t WHERE id < 7") == [
            "select id from t where id < ?"
        ]

    def test_strings_collapse(self):
        one = normalize_sql("INSERT INTO t VALUES (1, '1.0,2.0'::PASE)")
        two = normalize_sql("INSERT INTO t VALUES (2, '9.0,8.0'::PASE)")
        assert one == two

    def test_statement_split_matches_parser(self):
        texts = normalize_sql("SELECT 1; SELECT id FROM t; ")
        assert len(texts) == 2
        assert texts[1] == "select id from t"

    def test_memo_cache_is_bounded(self):
        """The normalization memo must not grow without bound under a
        stream of distinct statement texts (ad-hoc queries with inlined
        vector literals are exactly that)."""
        maxsize = _normalize_cached.cache_info().maxsize
        assert maxsize is not None
        _normalize_cached.cache_clear()
        for i in range(maxsize + 100):
            normalize_sql(f"SELECT id FROM t WHERE id < {i} AND tag = 'q{i}'")
        info = _normalize_cached.cache_info()
        assert info.currsize <= maxsize
        # LRU, not a freeze-once cache: recent entries are retained.
        hits0 = info.hits
        normalize_sql(f"SELECT id FROM t WHERE id < {maxsize + 99} AND tag = 'q{maxsize + 99}'")
        assert _normalize_cached.cache_info().hits == hits0 + 1


class TestQueryStatsOnResults:
    def test_select_carries_stats(self, db):
        result = db.execute("SELECT id FROM t WHERE id < 5")
        assert result.stats is not None
        assert result.stats.buffer_hits + result.stats.buffer_misses > 0
        assert result.stats.heap_tuples_fetched >= 30  # full scan under the filter
        assert result.stats.elapsed_seconds > 0

    def test_insert_counts_wal_and_heap(self, db):
        result = db.execute("INSERT INTO t VALUES (99, '1.0,1.0'::PASE)")
        assert result.stats.heap.tuples_inserted == 1
        assert result.stats.wal.records >= 1
        assert result.stats.wal.bytes_written > 0

    def test_delete_counts_heap(self, db):
        result = db.execute("DELETE FROM t WHERE id = 3")
        assert result.stats.heap.tuples_deleted == 1

    def test_tracking_can_be_disabled(self, db):
        db.execute("SET track_query_stats = off")
        result = db.execute("SELECT id FROM t")
        assert result.stats is None
        before = len(db.query("SELECT query FROM pg_stat_statements"))
        db.execute("SELECT id FROM t WHERE id < 9")
        assert len(db.query("SELECT query FROM pg_stat_statements")) == before

    def test_index_scan_attributes_candidates(self, indexed_db):
        result = indexed_db.execute(
            "SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5"
        )
        assert result.stats.index.scans == 1
        assert result.stats.index_candidates > 0


class TestStatViews:
    def test_pg_stat_buffers_tracks_totals(self, db):
        hits0, misses0 = db.query("SELECT hits, misses FROM pg_stat_buffers")[0]
        db.execute("SELECT id FROM t")
        hits1, misses1 = db.query("SELECT hits, misses FROM pg_stat_buffers")[0]
        assert hits1 + misses1 > hits0 + misses0

    def test_pg_stat_wal_tracks_appends(self, db):
        records0 = db.query("SELECT records FROM pg_stat_wal")[0][0]
        db.execute("INSERT INTO t VALUES (77, '1.0,1.0'::PASE)")
        records1 = db.query("SELECT records FROM pg_stat_wal")[0][0]
        assert records1 > records0

    def test_pg_stat_indexes_row_shape(self, indexed_db):
        indexed_db.execute("SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5")
        rows = indexed_db.query("SELECT * FROM pg_stat_indexes")
        assert len(rows) == 1
        name, table, am, scans, candidates, per_scan = rows[0]
        assert (name, table, am) == ("ix", "t", "pase_ivfflat")
        assert scans >= 1
        assert candidates > 0
        assert per_scan == pytest.approx(candidates / scans)

    def test_pg_stat_statements_aggregates_calls(self, db):
        for i in range(5):
            db.execute(f"SELECT id FROM t WHERE id < {i}")
        rows = db.query(
            "SELECT query, calls, p50_ms, p95_ms, p99_ms FROM pg_stat_statements "
            "WHERE calls >= 5"
        )
        entry = next(r for r in rows if "where id < ?" in r[0])
        __, calls, p50, p95, p99 = entry
        assert calls == 5
        assert 0 <= p50 <= p95 <= p99

    def test_views_support_where_order_limit(self, db):
        db.execute("SELECT id FROM t")
        rows = db.query(
            "SELECT query, calls FROM pg_stat_statements ORDER BY calls LIMIT 1"
        )
        assert len(rows) == 1
        count = db.query("SELECT count(*) FROM pg_stat_buffers")
        assert count == [(1,)]

    def test_views_work_on_batch_path(self, db):
        db.execute("SET enable_batch_exec = on")
        try:
            rows = db.query("SELECT hits, misses FROM pg_stat_buffers")
            assert len(rows) == 1
        finally:
            db.execute("SET enable_batch_exec = off")

    def test_view_names_are_reserved(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE pg_stat_buffers (id int)")

    def test_unknown_view_or_table_still_errors(self, db):
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM pg_stat_nonexistent")

    def test_explain_shows_virtual_scan(self, db):
        plan = db.explain("SELECT hits FROM pg_stat_buffers")
        assert "Virtual Scan on pg_stat_buffers" in plan


class TestExplainBuffersDifferential:
    """EXPLAIN (ANALYZE, BUFFERS) per-node counters must sum to the
    pg_stat_buffers delta the same statement produces — the acceptance
    check tying the per-node and cumulative views together."""

    @staticmethod
    def _node_totals(lines):
        hits = misses = 0
        for line in lines:
            if "Buffers:" in line:
                hits += int(line.split("hits=")[1].split(" ")[0])
                misses += int(line.split("misses=")[1].split(" ")[0].rstrip())
        return hits, misses

    @pytest.mark.parametrize("batch", [False, True])
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT id FROM t",
            "SELECT id FROM t WHERE id < 7",
            "SELECT id FROM t ORDER BY vec <-> '0.0,0.0'::PASE LIMIT 5",
        ],
    )
    def test_per_node_sums_to_cumulative_delta(self, indexed_db, sql, batch):
        db = indexed_db
        db.execute(f"SET enable_batch_exec = {'on' if batch else 'off'}")
        try:
            before = db.buffer.stats.snapshot()
            lines = [r[0] for r in db.execute(f"EXPLAIN (ANALYZE, BUFFERS) {sql}").rows]
            delta = db.buffer.stats.delta(before)
            hits, misses = self._node_totals(lines)
            assert (hits, misses) == (delta.hits, delta.misses)
        finally:
            db.execute("SET enable_batch_exec = off")


class TestExplainOptionParsing:
    def test_unknown_option_rejected(self, db):
        with pytest.raises(SqlSyntaxError):
            db.execute("EXPLAIN (VERBOSE) SELECT id FROM t")

    def test_option_values(self, db):
        lines = [
            r[0]
            for r in db.execute(
                "EXPLAIN (ANALYZE on, BUFFERS off) SELECT id FROM t"
            ).rows
        ]
        assert any("actual rows=" in line for line in lines)
        assert not any("Buffers:" in line for line in lines)

    def test_plain_explain_insert(self, db):
        lines = [r[0] for r in db.execute("EXPLAIN INSERT INTO t VALUES (1, '1.0,1.0'::PASE)").rows]
        assert lines[0].startswith("Insert on t")
        # Plain EXPLAIN must not execute.
        assert db.query("SELECT count(*) FROM t") == [(30,)]

    def test_plain_explain_delete(self, db):
        lines = [r[0] for r in db.execute("EXPLAIN DELETE FROM t WHERE id = 1").rows]
        assert lines[0].startswith("Delete on t")
        assert db.query("SELECT count(*) FROM t") == [(30,)]


class TestStatementReset:
    def test_reset_statements(self, db):
        db.execute("SELECT id FROM t")
        assert db.query("SELECT count(*) FROM pg_stat_statements") != [(0,)]
        db.stats.reset_statements()
        # The count query itself gets tracked after the reset, so look
        # for the pre-reset entry specifically.
        rows = db.query("SELECT query FROM pg_stat_statements")
        assert ("select id from t",) not in rows

    def test_pg_stat_reset_clears_statements(self, db):
        db.execute("SELECT id FROM t")
        result = db.execute("SELECT pg_stat_reset()")
        assert result.columns == ["pg_stat_reset"]
        assert result.rows == [(None,)]
        rows = db.query("SELECT query FROM pg_stat_statements")
        assert ("select id from t",) not in rows

    def test_pg_stat_reset_clears_wait_events(self, db):
        db.stats.waits.record("DataFileRead", 0.25)
        assert db.query("SELECT count(*) FROM pg_stat_wait_events") != [(0,)]
        db.execute("SELECT pg_stat_reset()")
        assert db.query("SELECT count(*) FROM pg_stat_wait_events") == [(0,)]

    def test_pg_stat_reset_keeps_monotonic_counters(self, db):
        """Like PostgreSQL, pg_stat_reset() zeroes the *statistics*
        accumulators; engine-lifetime counters keep counting."""
        db.execute("SELECT id FROM t")
        hits0, misses0 = db.query("SELECT hits, misses FROM pg_stat_buffers")[0]
        db.execute("SELECT pg_stat_reset()")
        hits1, misses1 = db.query("SELECT hits, misses FROM pg_stat_buffers")[0]
        assert hits1 + misses1 >= hits0 + misses0


class TestWaitEventView:
    def test_wait_events_appear_under_buffer_pressure(self, tmp_path):
        # Tiny pages + a tiny pool force eviction on an ordinary scan.
        db = PgSimDatabase(page_size=512, buffer_pool_pages=8, data_dir=tmp_path)
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(120):
            db.execute(f"INSERT INTO t VALUES ({i}, '{i}.0,{2 * i}.0'::PASE)")
        db.execute("SELECT id FROM t")
        rows = db.query("SELECT * FROM pg_stat_wait_events")
        events = {r[1]: r for r in rows}
        # Eviction pressure: clock sweeps and re-reads from disk.
        assert "LWLockBufferClock" in events
        assert "DataFileRead" in events
        for wait_type, event, count, total_ms in rows:
            assert wait_type in ("IO", "LWLock")
            assert count > 0
            assert total_ms >= 0.0

    def test_wal_flush_records_write_and_sync(self, tmp_path):
        db = PgSimDatabase(data_dir=tmp_path)
        db.execute("CREATE TABLE t (id int)")
        db.execute("INSERT INTO t VALUES (1)")
        db.wal.flush()
        events = {r[1] for r in db.query("SELECT * FROM pg_stat_wait_events")}
        assert {"WALWrite", "WALSync"} <= events

    def test_per_statement_wait_delta(self, tmp_path):
        db = PgSimDatabase(page_size=512, buffer_pool_pages=8, data_dir=tmp_path)
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(120):
            db.execute(f"INSERT INTO t VALUES ({i}, '{i}.0,{2 * i}.0'::PASE)")
        result = db.execute("SELECT id FROM t")
        waits = result.stats.wait_events
        assert waits.counts.get("DataFileRead", 0) > 0
        assert "wait_events" in result.stats.as_dict()

    def test_memory_db_sees_no_io_waits_when_pool_fits(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (1)")
        fresh_db.execute("SELECT id FROM t")
        events = {r[1] for r in fresh_db.query("SELECT * FROM pg_stat_wait_events")}
        assert "DataFileRead" not in events


class TestProgressView:
    def test_ivf_build_phases(self, db):
        db.execute(
            "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1.0, seed = 1)"
        )
        rows = db.query("SELECT * FROM pg_stat_progress_create_index")
        assert len(rows) == 1
        index, am, phase, done, total, status = rows[0]
        assert (index, am) == ("ix", "pase_ivfflat")
        assert status == "done"
        assert done == total == 30  # every heap tuple assigned
        (progress,) = db.stats.builds
        assert progress.phases_seen == ["sample", "kmeans", "assign", "flush"]

    def test_hnsw_build_phases(self, db):
        db.execute(
            "CREATE INDEX hx ON t USING pase_hnsw (vec) "
            "WITH (bnn = 4, efb = 8, seed = 1)"
        )
        (progress,) = db.stats.builds
        assert progress.phases_seen == ["insert", "link"]
        assert progress.tuples_done == 30

    def test_in_progress_status_mid_build(self, db):
        progress = db.stats.start_build("fake", "pase_ivfflat")
        progress.set_phase("kmeans")
        try:
            rows = db.query(
                "SELECT * FROM pg_stat_progress_create_index WHERE status = 'in progress'"
            )
            assert rows[0][:3] == ("fake", "pase_ivfflat", "kmeans")
        finally:
            db.stats.finish_build()

    def test_failed_build_still_finishes_progress(self, fresh_db):
        fresh_db.execute("CREATE TABLE empty_t (id int, vec float[])")
        with pytest.raises(RuntimeError):
            fresh_db.execute("CREATE INDEX ex ON empty_t USING pase_ivfflat (vec)")
        assert fresh_db.stats.current_build is None

    def test_build_history_is_bounded(self, db):
        from repro.pgsim.stats import _BUILD_HISTORY_LIMIT

        for i in range(_BUILD_HISTORY_LIMIT + 5):
            db.stats.start_build(f"ix{i}", "pase_ivfflat")
            db.stats.finish_build()
        assert len(db.stats.builds) == _BUILD_HISTORY_LIMIT


class TestViewsSurviveMaintenance:
    """pg_stat views must stay consistent across checkpoint() and a
    crash-recovery restart (the observability layer sits above the
    durability machinery and must not trip over it)."""

    def _populate(self, db):
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(40):
            db.execute(f"INSERT INTO t VALUES ({i}, '{i}.0,{2 * i}.0'::PASE)")
        db.execute(
            "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1.0, seed = 1)"
        )

    def test_views_after_checkpoint(self, tmp_path):
        db = PgSimDatabase(buffer_pool_pages=16, data_dir=tmp_path)
        self._populate(db)
        before = {r[1]: r[2] for r in db.query("SELECT * FROM pg_stat_wait_events")}
        db.checkpoint()
        after = {r[1]: r[2] for r in db.query("SELECT * FROM pg_stat_wait_events")}
        # Accumulators survive the checkpoint and keep growing (the
        # checkpoint itself fsyncs the WAL).
        for event, count in before.items():
            assert after.get(event, 0) >= count
        assert after.get("WALSync", 0) >= 1
        # The other stat views still answer.
        assert db.query("SELECT count(*) FROM pg_stat_buffers") == [(1,)]
        rows = db.query("SELECT * FROM pg_stat_progress_create_index")
        assert rows and rows[0][-1] == "done"

    def test_views_after_crash_recovery(self, tmp_path):
        db = PgSimDatabase(buffer_pool_pages=16, data_dir=tmp_path)
        self._populate(db)
        db.wal.flush()
        del db  # simulate a crash: no checkpoint, no clean shutdown

        recovered = PgSimDatabase(buffer_pool_pages=16, data_dir=tmp_path)
        # Recovery re-ran CREATE INDEX from the DDL log, so the
        # progress view reflects the rebuild.
        rows = recovered.query("SELECT * FROM pg_stat_progress_create_index")
        assert rows and rows[0][:2] == ("ix", "pase_ivfflat") and rows[0][-1] == "done"
        # Redo + rebuild went through the buffer manager: IO wait
        # events and buffer counters are already non-zero.
        events = {r[1] for r in recovered.query("SELECT * FROM pg_stat_wait_events")}
        assert "DataFileRead" in events
        # Statement stats start fresh but track new work immediately.
        recovered.execute("SELECT id FROM t")
        rows = recovered.query("SELECT query FROM pg_stat_statements")
        assert ("select id from t",) in rows
        assert recovered.query("SELECT count(*) FROM t") == [(40,)]
