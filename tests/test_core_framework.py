"""Tests for root causes, ablations, guidelines, and report rendering."""

import pytest

from repro.common.profiling import BreakdownRow
from repro.core import ablation, guidelines, report
from repro.core.root_causes import ROOT_CAUSES, Phase, RootCause, causes_for, summary_table


class TestRootCauses:
    def test_all_seven_present(self):
        assert len(ROOT_CAUSES) == 7
        assert {c.value for c in ROOT_CAUSES} == set(range(1, 8))

    def test_info_accessor(self):
        info = RootCause.SGEMM.info
        assert info.title == "SGEMM Optimization"
        assert info.affects == Phase.BUILD

    def test_all_bridgeable(self):
        """The paper's headline: no fundamental limitations."""
        assert all(info.bridgeable for info in ROOT_CAUSES.values())

    def test_causes_for_hnsw_size(self):
        causes = causes_for("hnsw", Phase.SIZE)
        assert [c.cause for c in causes] == [RootCause.PAGE_STRUCTURE]

    def test_causes_for_ivf_pq_search(self):
        names = {c.cause for c in causes_for("ivf_pq", Phase.SEARCH)}
        assert RootCause.PRECOMPUTED_TABLE in names
        assert RootCause.HEAP_SIZE in names
        assert RootCause.SGEMM not in names

    def test_summary_table_mentions_every_cause(self):
        text = summary_table()
        for i in range(1, 8):
            assert f"RC#{i}" in text


class TestAblationRegistry:
    def test_togglable_causes(self):
        togglable = set(ablation.SWITCHES)
        assert togglable == {
            RootCause.SGEMM,
            RootCause.KMEANS_IMPLEMENTATION,
            RootCause.HEAP_SIZE,
            RootCause.PRECOMPUTED_TABLE,
        }

    def test_architectural_causes_raise(self, small_dataset):
        with pytest.raises(KeyError):
            ablation.run_ablation(RootCause.MEMORY_MANAGEMENT, small_dataset, {})

    def test_sgemm_ablation_closes_build_gap(self, medium_dataset):
        result = ablation.run_ablation(
            RootCause.SGEMM,
            medium_dataset,
            {"clusters": 20, "sample_ratio": 0.2, "seed": 6},
        )
        assert result.metric == "build"
        assert result.gap_without_cause < result.gap_with_cause
        assert result.gap_closed_fraction > 0.3

    def test_heap_ablation_runs(self, small_dataset):
        result = ablation.run_ablation(
            RootCause.HEAP_SIZE,
            small_dataset,
            {"clusters": 8, "sample_ratio": 0.5, "seed": 1},
            k=10,
            nprobe=8,
            n_queries=4,
        )
        assert result.gap_with_cause > 0
        assert result.gap_without_cause > 0


class TestGuidelines:
    def test_five_steps(self):
        assert [g.step for g in guidelines.GUIDELINES] == [1, 2, 3, 4, 5]

    def test_specialized_profile_scores_full(self):
        result = guidelines.evaluate(guidelines.SPECIALIZED_PROFILE)
        assert result.score == result.total == 5

    def test_pase_profile_scores_zero(self):
        result = guidelines.evaluate(guidelines.PASE_PROFILE)
        assert result.score == 0

    def test_partial_profile(self):
        result = guidelines.evaluate({"uses_sgemm": True, "k_sized_heap": True})
        assert result.score == 2
        missing_steps = {g.step for g in result.missing}
        assert missing_steps == {1, 4, 5}

    def test_every_root_cause_addressed_by_some_step(self):
        covered = {c for g in guidelines.GUIDELINES for c in g.addresses}
        assert covered == set(RootCause)

    def test_report_render(self):
        text = guidelines.evaluate(guidelines.SPECIALIZED_PROFILE).report()
        assert "[x] Step#1" in text
        text = guidelines.evaluate({}).report()
        assert "[ ] Step#2" in text and "RC#1" in text


class TestReport:
    def test_format_seconds(self):
        assert report.format_seconds(5e-7) == "0.5us"
        assert report.format_seconds(2.5e-3) == "2.50ms"
        assert report.format_seconds(3.0) == "3.00s"

    def test_format_bytes(self):
        assert report.format_bytes(512) == "512.0B"
        assert report.format_bytes(2048) == "2.0KiB"
        assert report.format_bytes(3 * 1024**2) == "3.0MiB"

    def test_render_table_alignment(self):
        text = report.render_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")

    def test_grouped_series_with_gap(self):
        text = report.render_grouped_series(
            "t", ["d1", "d2"], {"A": [2.0, 4.0], "B": [1.0, 1.0]}, gap_of=("A", "B")
        )
        assert "2.0x" in text and "4.0x" in text

    def test_grouped_series_length_check(self):
        with pytest.raises(ValueError):
            report.render_grouped_series("t", ["d1"], {"A": [1.0, 2.0]})

    def test_render_breakdown_folds_others(self):
        rows = {
            "sys": [
                BreakdownRow("keep", 0.9, 0.9, 1),
                BreakdownRow("fold", 0.1, 0.1, 1),
            ]
        }
        text = report.render_breakdown("t", rows, columns=("keep",))
        assert "keep" in text and "Others" in text and "90.00%" in text
