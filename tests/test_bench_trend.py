"""Tests for the ``repro-bench trend`` regression gate."""

import json

import pytest

from repro.bench.cli import main as cli_main
from repro.bench.trend import (
    DEFAULT_THRESHOLD,
    MIN_ABS_DELTA_MS,
    compare,
    load_bench_dir,
)
from repro.common.obs import write_bench_json


def emit(directory, workload, mean_ms, p50_ms=None):
    return write_bench_json(
        workload,
        latency={"mean_ms": mean_ms, "p50_ms": p50_ms if p50_ms is not None else mean_ms},
        out_dir=directory,
    )


class TestLoadBenchDir:
    def test_reads_schema_files_by_workload(self, tmp_path):
        emit(tmp_path, "fig14", 2.0)
        docs = load_bench_dir(tmp_path)
        assert set(docs) == {"fig14"}
        assert docs["fig14"]["latency"]["mean_ms"] == 2.0

    def test_skips_foreign_and_broken_files(self, tmp_path):
        emit(tmp_path, "fig14", 2.0)
        (tmp_path / "BENCH_broken.json").write_text("{nope")
        (tmp_path / "BENCH_other.json").write_text(json.dumps({"schema": "else/v9"}))
        assert set(load_bench_dir(tmp_path)) == {"fig14"}


class TestCompare:
    def test_flat_run_passes(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fig14", 10.0)
        emit(cur, "fig14", 10.4)
        report = compare(base, cur)
        assert report.ok
        assert len(report.deltas) == 2  # mean_ms + p50_ms

    def test_large_regression_fails(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fig14", 10.0)
        emit(cur, "fig14", 14.0)
        report = compare(base, cur)
        assert not report.ok
        assert {d.metric for d in report.regressions} == {"mean_ms", "p50_ms"}

    def test_threshold_is_configurable(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fig14", 10.0)
        emit(cur, "fig14", 14.0)
        assert compare(base, cur, threshold=0.50).ok
        assert not compare(base, cur, threshold=0.25).ok

    def test_tiny_absolute_jitter_ignored(self, tmp_path):
        """A big relative change below MIN_ABS_DELTA_MS must not gate."""
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fast", 0.010)
        emit(cur, "fast", 0.010 + MIN_ABS_DELTA_MS / 2)
        assert compare(base, cur).ok

    def test_new_workload_does_not_gate(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fig14", 10.0)
        emit(cur, "fig14", 10.0)
        emit(cur, "brand_new", 99.0)
        report = compare(base, cur)
        assert report.ok
        assert report.only_current == ["brand_new"]

    def test_missing_workload_reported_not_gated(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fig14", 10.0)
        emit(base, "gone", 1.0)
        emit(cur, "fig14", 10.0)
        report = compare(base, cur)
        assert report.ok
        assert report.only_baseline == ["gone"]

    def test_render_flags_regressions(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fig14", 10.0)
        emit(cur, "fig14", 20.0)
        text = compare(base, cur).render()
        assert "REGRESSION" in text
        assert "fig14" in text

    def test_improvement_never_gates(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fig14", 20.0)
        emit(cur, "fig14", 1.0)
        assert compare(base, cur).ok


class TestCli:
    def test_trend_subcommand_exit_codes(self, tmp_path, capsys):
        base, cur = tmp_path / "base", tmp_path / "cur"
        emit(base, "fig14", 10.0)
        emit(cur, "fig14", 10.0)
        args = ["trend", "--baseline", str(base), "--current", str(cur)]
        assert cli_main(args) == 0
        emit(cur, "fig14", 50.0)
        assert cli_main(args) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out

    def test_default_threshold_constant(self):
        assert DEFAULT_THRESHOLD == pytest.approx(0.25)
