"""Tests for the shared HNSW algorithm core."""

import numpy as np
import pytest

from repro.common import graph
from repro.common.datasets import generate_clustered
from repro.common.rng import make_rng
from repro.specialized.hnsw import ArrayGraphStore


@pytest.fixture()
def store():
    return ArrayGraphStore(dim=8)


@pytest.fixture(scope="module")
def built():
    data = generate_clustered(300, 8, n_components=6, seed=11)
    store = ArrayGraphStore(dim=8)
    params = graph.HNSWParams(bnn=8, efb=24, efs=48)
    rng = make_rng(3)
    for row in data:
        graph.insert(store, params, row, rng)
    return data, store, params


class TestParams:
    def test_max_neighbors_doubles_at_level_zero(self):
        params = graph.HNSWParams(bnn=16)
        assert params.max_neighbors(0) == 32
        assert params.max_neighbors(1) == 16
        assert params.max_neighbors(5) == 16

    def test_default_level_mult(self):
        params = graph.HNSWParams(bnn=16)
        assert params.effective_level_mult() == pytest.approx(1 / np.log(16))

    def test_level_sampling_distribution(self):
        params = graph.HNSWParams(bnn=16)
        rng = make_rng(1)
        levels = [params.sample_level(rng) for __ in range(5000)]
        assert min(levels) == 0
        # Roughly (1 - 1/bnn) of nodes should be at level 0.
        frac0 = sum(1 for lv in levels if lv == 0) / len(levels)
        assert 0.85 < frac0 < 0.99

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            graph.HNSWParams(bnn=1)
        with pytest.raises(ValueError):
            graph.HNSWParams(bnn=8, efb=0)


class TestInsert:
    def test_first_node_becomes_entry(self, store):
        params = graph.HNSWParams(bnn=4, efb=8)
        node = graph.insert(store, params, np.zeros(8, dtype=np.float32), make_rng(0))
        assert store.entry_point == node
        assert store.node_count() == 1

    def test_neighbor_capacity_respected(self, built):
        __, store, params = built
        for node in range(store.node_count()):
            for level in range(len(store._neighbors[node])):
                assert len(store.neighbors(node, level)) <= params.max_neighbors(level)

    def test_no_self_loops(self, built):
        __, store, __ = built
        for node in range(store.node_count()):
            assert node not in store.neighbors(node, 0)

    def test_level_zero_lists_nonempty_after_build(self, built):
        __, store, __ = built
        empty = sum(1 for n in range(store.node_count()) if not store.neighbors(n, 0))
        assert empty == 0

    def test_counters_accumulate(self, built):
        __, store, __ = built
        assert store.counters.distance_computations > 0
        assert store.counters.hops > 0


class TestSearch:
    def test_exact_match_found(self, built):
        data, store, params = built
        result = graph.search(store, params, data[42], k=1)
        assert result[0].vector_id == 42
        assert result[0].distance == pytest.approx(0.0, abs=1e-5)

    def test_results_sorted(self, built):
        data, store, params = built
        result = graph.search(store, params, data[0] + 0.01, k=10)
        dists = [n.distance for n in result]
        assert dists == sorted(dists)

    def test_good_recall_at_high_ef(self, built):
        data, store, params = built
        hits = 0
        for qi in range(0, 60, 6):
            query = data[qi] + 0.001
            truth = np.argsort(((data - query) ** 2).sum(axis=1))[:5]
            got = [n.vector_id for n in graph.search(store, params, query, k=5, efs=80)]
            hits += len(set(got) & set(truth.tolist()))
        assert hits / 50 > 0.8

    def test_higher_efs_never_reduces_result_count(self, built):
        data, store, params = built
        small = graph.search(store, params, data[5], k=20, efs=20)
        large = graph.search(store, params, data[5], k=20, efs=60)
        assert len(large) >= len(small) - 1

    def test_empty_graph(self, store):
        params = graph.HNSWParams(bnn=4)
        assert graph.search(store, params, np.zeros(8, dtype=np.float32), k=3) == []

    def test_invalid_k(self, built):
        data, store, params = built
        with pytest.raises(ValueError):
            graph.search(store, params, data[0], k=0)

    def test_k_larger_than_graph(self):
        store = ArrayGraphStore(dim=4)
        params = graph.HNSWParams(bnn=4, efb=8, efs=16)
        rng = make_rng(1)
        data = np.eye(4, dtype=np.float32)
        for row in data:
            graph.insert(store, params, row, rng)
        result = graph.search(store, params, data[0], k=100)
        assert len(result) == 4


class TestSearchLayer:
    def test_seed_always_in_results(self, built):
        data, store, params = built
        entry = store.entry_point
        dist = float(((store.vector(entry) - data[0]) ** 2).sum())
        found = graph.search_layer(store, data[0], [(dist, entry)], ef=5, level=0)
        assert len(found) >= 1
        assert all(d >= 0 for d, __ in found)

    def test_ef_bounds_results(self, built):
        data, store, params = built
        entry = store.entry_point
        dist = float(((store.vector(entry) - data[0]) ** 2).sum())
        found = graph.search_layer(store, data[0], [(dist, entry)], ef=7, level=0)
        assert len(found) <= 7
