"""Tests for the planner's decisions and plan-node utilities."""

import numpy as np
import pytest

from repro.pgsim import plan as P
from repro.pgsim.planner import PlanningError, explain_plan, plan_select
from repro.pgsim.sql import ast, parse_sql


def _plan(db, sql):
    (stmt,) = parse_sql(sql)
    return plan_select(stmt, db.catalog)


@pytest.fixture()
def indexed_db(loaded_db):
    loaded_db.execute(
        "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
        "WITH (clusters = 8, sample_ratio = 0.5, seed = 1)"
    )
    return loaded_db


QUERY_VEC = ",".join(["0.1"] * 16)


class TestPlannerDecisions:
    def test_index_scan_selected(self, indexed_db):
        plan = _plan(
            indexed_db,
            f"SELECT id FROM items ORDER BY vec <-> '{QUERY_VEC}'::PASE LIMIT 5",
        )
        assert isinstance(plan, P.Project)
        limit = plan.child
        assert isinstance(limit, P.Limit)
        assert isinstance(limit.child, P.IndexScan)
        assert limit.child.k == 5
        np.testing.assert_allclose(limit.child.query_vector, [0.1] * 16, rtol=1e-6)

    def test_reversed_operands_also_match(self, indexed_db):
        plan = _plan(
            indexed_db,
            f"SELECT id FROM items ORDER BY '{QUERY_VEC}'::PASE <-> vec LIMIT 5",
        )
        assert isinstance(plan.child.child, P.IndexScan)

    def test_no_limit_no_index(self, indexed_db):
        plan = _plan(
            indexed_db, f"SELECT id FROM items ORDER BY vec <-> '{QUERY_VEC}'::PASE"
        )
        assert isinstance(plan.child, P.Sort)

    def test_metric_mismatch_no_index(self, indexed_db):
        # The index is L2 (distance_type 0); <#> needs inner product.
        plan = _plan(
            indexed_db,
            f"SELECT id FROM items ORDER BY vec <#> '{QUERY_VEC}'::PASE LIMIT 5",
        )
        assert not isinstance(plan.child.child, P.IndexScan)

    def test_order_by_plain_column_not_index(self, indexed_db):
        plan = _plan(indexed_db, "SELECT id FROM items ORDER BY id LIMIT 5")
        assert isinstance(plan.child.child, P.Sort)

    def test_seqscan_fallback_without_index(self, loaded_db):
        plan = _plan(
            loaded_db,
            f"SELECT id FROM items ORDER BY vec <-> '{QUERY_VEC}'::PASE LIMIT 5",
        )
        node = plan.child
        assert isinstance(node, P.Limit)
        assert isinstance(node.child, P.Sort)

    def test_where_pushed_into_index_scan(self, indexed_db):
        # Force the index path; the WHERE clause must ride along as an
        # index-time post-filter with an over-fetched first pass.
        indexed_db.execute("SET enable_seqscan = off")
        plan = _plan(
            indexed_db,
            f"SELECT id FROM items WHERE id > 5 "
            f"ORDER BY vec <-> '{QUERY_VEC}'::PASE LIMIT 5",
        )
        scan = plan.child.child
        assert isinstance(scan, P.IndexScan)
        assert scan.filter is not None
        assert scan.fetch_k >= scan.k

    def test_hybrid_cost_based_fallback_on_tiny_table(self, indexed_db):
        # Unanalyzed 600-row table, default selectivity: the planner is
        # free to pick either shape, but the plan must carry the filter
        # somewhere (pushed into the scan or as a Filter node).
        plan = _plan(
            indexed_db,
            f"SELECT id FROM items WHERE id > 5 "
            f"ORDER BY vec <-> '{QUERY_VEC}'::PASE LIMIT 5",
        )
        nodes = []
        node = plan
        while node is not None:
            nodes.append(node)
            node = getattr(node, "child", None)
        has_pushed = any(
            isinstance(n, (P.IndexScan, P.PreFilterScan)) and n.filter is not None
            for n in nodes
        )
        has_filter_node = any(isinstance(n, P.Filter) for n in nodes)
        assert has_pushed or has_filter_node

    def test_aggregate_plan(self, loaded_db):
        plan = _plan(loaded_db, "SELECT count(*) FROM items")
        assert plan.aggregated
        assert isinstance(plan.child, P.Aggregate)

    def test_aggregate_with_order_by_rejected(self, loaded_db):
        with pytest.raises(PlanningError):
            _plan(loaded_db, "SELECT count(*) FROM items ORDER BY id")

    def test_select_star_without_table_rejected(self, loaded_db):
        with pytest.raises(PlanningError):
            _plan(loaded_db, "SELECT *")

    def test_column_names_resolved(self, indexed_db):
        plan = _plan(indexed_db, "SELECT id AS key, vec FROM items")
        assert plan.columns == ["key", "vec"]
        plan = _plan(indexed_db, "SELECT * FROM items")
        assert plan.columns == ["id", "vec"]
        plan = _plan(indexed_db, "SELECT id + 1 FROM items")
        assert plan.columns == ["column1"]


class TestExplainRendering:
    def test_tree_indentation(self, indexed_db):
        plan = _plan(
            indexed_db,
            f"SELECT id FROM items ORDER BY vec <-> '{QUERY_VEC}'::PASE LIMIT 5",
        )
        text = explain_plan(plan)
        lines = text.splitlines()
        assert lines[0].startswith("Project")
        assert "(cost=" in lines[0]
        assert lines[1].startswith("->  Limit")
        assert "Index Scan using ix" in lines[2]
        bare = explain_plan(plan, costs=False).splitlines()
        assert bare[0] == "Project"
        assert "(cost=" not in bare[0]

    def test_all_nodes_render(self, loaded_db):
        plan = _plan(
            loaded_db,
            "SELECT id FROM items WHERE id > 1 ORDER BY id DESC LIMIT 2",
        )
        text = explain_plan(plan)
        for fragment in ("Project", "Limit", "Sort (DESC)", "Filter", "Seq Scan"):
            assert fragment in text


class TestQueryResult:
    def test_scalar(self):
        result = P.QueryResult(command="SELECT 1", columns=["x"], rows=[(42,)])
        assert result.scalar() == 42
        assert len(result) == 1

    def test_scalar_empty_raises(self):
        with pytest.raises(ValueError):
            P.QueryResult(command="SELECT 0").scalar()

    def test_column_extraction(self):
        result = P.QueryResult(command="", columns=["a", "b"], rows=[(1, 2), (3, 4)])
        assert result.column(0) == [1, 3]
        assert result.column(1) == [2, 4]
