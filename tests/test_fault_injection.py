"""Crash-recovery property harness driven by deterministic fault injection.

The contract under test is the classic durability contract:

- **committed data survives** — every statement the database
  acknowledged before the failure is present after recovery;
- **uncommitted data does not resurrect** — recovery never exposes
  partial effects of the statement that was in flight when the
  failure hit (recovered rows are always a clean prefix of the
  workload).

The harness runs an insert/checkpoint/index-build workload, counts
its durability-relevant I/O operations with a pass-through
:class:`FaultInjector`, then re-runs it once per operation with a
failure scheduled at exactly that boundary — a crash, a torn write,
or a failed fsync — and recovers from the files left behind.
"""

import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.faults import (
    CRASH,
    FAIL_FSYNC,
    TORN_WRITE,
    Fault,
    FaultInjector,
    SimulatedCrash,
    SimulatedIOError,
)
from repro.pgsim.storage import MemoryDisk
from repro.pgsim.wal import WalPanicError, WriteAheadLog, checkpoint_fields, replay

#: Small pool so the workload exercises eviction paths too.
POOL = 16
N_ROWS = 8
CHECKPOINT_AFTER = 3
INDEX_AFTER = 5


def _insert(db: PgSimDatabase, i: int) -> None:
    db.execute(f"INSERT INTO t VALUES ({i}, '{i}.5,1.25'::PASE)")


def _run_workload(datadir, injector: FaultInjector | None) -> tuple[list[int], bool]:
    """Run the workload; returns ``(acknowledged ids, crashed?)``.

    The workload mixes the durability-relevant operations pgsim has:
    per-statement commits, an explicit checkpoint (buffer flush + log
    truncation), an index build, and inserts that maintain the index.
    """
    acked: list[int] = []
    try:
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=POOL, fault_injector=injector)
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(N_ROWS):
            _insert(db, i)
            acked.append(i)
            if i == CHECKPOINT_AFTER:
                db.checkpoint()
            if i == INDEX_AFTER:
                db.execute(
                    "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
                    "WITH (clusters = 2, sample_ratio = 1.0, seed = 1)"
                )
        return acked, False
    except (SimulatedCrash, SimulatedIOError, WalPanicError):
        return acked, True


def _recovered_ids(datadir) -> list[int]:
    db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=POOL)
    if not db.catalog.has_table("t"):
        return []
    return sorted(row[0] for row in db.query("SELECT id FROM t"))


def _assert_contract(recovered: list[int], acked: list[int]) -> None:
    # Committed data survives ...
    assert set(acked) <= set(recovered), (
        f"acknowledged rows lost: acked={acked} recovered={recovered}"
    )
    # ... and nothing partial resurrects: recovered ids are exactly the
    # first k of the workload for some k (a commit may be durable
    # without having been acknowledged, hence >= acked).
    assert recovered == list(range(len(recovered))), f"non-prefix recovery: {recovered}"


def _baseline_ops(tmp_path) -> int:
    counter = FaultInjector()
    acked, crashed = _run_workload(tmp_path / "baseline", counter)
    assert not crashed
    assert acked == list(range(N_ROWS))
    assert counter.ops > 20, "workload too small to be an interesting crash sweep"
    return counter.ops


class TestCrashSweep:
    def test_crash_at_every_write_boundary(self, tmp_path):
        n_ops = _baseline_ops(tmp_path)
        crashes = 0
        for op in range(n_ops):
            datadir = tmp_path / f"crash-{op}"
            injector = FaultInjector.crash_at(op)
            acked, crashed = _run_workload(datadir, injector)
            assert crashed and injector.fired, f"crash at op {op} did not fire"
            crashes += 1
            _assert_contract(_recovered_ids(datadir), acked)
        assert crashes == n_ops

    def test_torn_write_at_every_boundary(self, tmp_path):
        n_ops = _baseline_ops(tmp_path)
        for op in range(n_ops):
            datadir = tmp_path / f"torn-{op}"
            acked, crashed = _run_workload(datadir, FaultInjector.torn_write_at(op))
            assert crashed
            _assert_contract(_recovered_ids(datadir), acked)

    def test_failed_fsync_at_every_boundary(self, tmp_path):
        """FAIL_FSYNC only fires at sync barriers; elsewhere it is inert
        and the workload must complete untouched."""
        n_ops = _baseline_ops(tmp_path)
        fsync_failures = 0
        for op in range(n_ops):
            datadir = tmp_path / f"fsync-{op}"
            injector = FaultInjector.fail_fsync_at(op)
            acked, crashed = _run_workload(datadir, injector)
            if any(kind == FAIL_FSYNC for __, __, kind in injector.fired):
                assert crashed, "a failed fsync must take the instance down"
                fsync_failures += 1
            else:
                assert not crashed and acked == list(range(N_ROWS))
            _assert_contract(_recovered_ids(datadir), acked)
        assert fsync_failures >= 3, "workload exercised too few fsync barriers"


class TestFlushedLsnHonesty:
    """Regression: ``flushed_lsn`` may only advance after a successful
    append + fsync — never before."""

    def test_failed_fsync_does_not_advance_flushed_lsn(self, tmp_path):
        # Ops: 0 = append (insert), 1 = append (commit), 2 = fsync.
        injector = FaultInjector(schedule={2: Fault(FAIL_FSYNC)})
        wal = WriteAheadLog(tmp_path / "wal.log", faults=injector)
        wal.log_insert(1, "t.heap", 0, b"x")
        with pytest.raises(SimulatedIOError):
            wal.log_commit(1)
        assert wal.flushed_lsn == 0
        # And replay must treat nothing as durable.
        assert replay(wal, MemoryDisk()) == 0

    def test_torn_append_does_not_advance_flushed_lsn(self, tmp_path):
        injector = FaultInjector(schedule={0: Fault(TORN_WRITE, keep_fraction=0.4)})
        wal = WriteAheadLog(tmp_path / "wal.log", faults=injector)
        wal.log_insert(1, "t.heap", 0, b"x")
        with pytest.raises(SimulatedCrash):
            wal.log_commit(1)
        assert wal.flushed_lsn == 0

    def test_wal_panics_after_flush_failure(self, tmp_path):
        injector = FaultInjector(schedule={2: Fault(FAIL_FSYNC)})
        wal = WriteAheadLog(tmp_path / "wal.log", faults=injector)
        wal.log_insert(1, "t.heap", 0, b"x")
        with pytest.raises(SimulatedIOError):
            wal.log_commit(1)
        with pytest.raises(WalPanicError):
            wal.log_insert(2, "t.heap", 0, b"y")
        with pytest.raises(WalPanicError):
            wal.flush()

    def test_heap_insert_undone_when_wal_panicked(self, tmp_path):
        """After a WAL panic, a failed insert must not leave a phantom
        tuple visible to in-process readers."""
        # Count the ops of CREATE TABLE + one insert, then fail the
        # *next* fsync barrier (FAIL_FSYNC is inert at write sites, so
        # blanket-scheduling a range pins it to insert 1's commit).
        counter = FaultInjector()
        db0 = PgSimDatabase(
            data_dir=tmp_path / "count", buffer_pool_pages=POOL, fault_injector=counter
        )
        db0.execute("CREATE TABLE t (id int, vec float[])")
        _insert(db0, 0)
        base = counter.ops

        schedule = {base + i: Fault(FAIL_FSYNC) for i in range(20)}
        injector = FaultInjector(schedule=schedule)
        db = PgSimDatabase(
            data_dir=tmp_path / "db", buffer_pool_pages=POOL, fault_injector=injector
        )
        db.execute("CREATE TABLE t (id int, vec float[])")
        _insert(db, 0)
        with pytest.raises(SimulatedIOError):
            _insert(db, 1)  # its commit fsync fails -> WAL panics
        with pytest.raises(WalPanicError):
            _insert(db, 2)  # panicked WAL rejects the transaction's BEGIN record
        # Insert 1's transaction aborted when its commit flush failed,
        # so in-process readers count only row 0; insert 2 never even
        # reached the heap (the WAL rejected its first record).
        table = db.catalog.table("t")
        assert table.heap.tuple_count == 1
        assert [r[0] for r in db.query("SELECT id FROM t")] == [0]
        # After recovery: row 0 was acknowledged and must be there; row
        # 1's records reached the OS before its fsync failed, so it may
        # legitimately be durable too; row 2 must never appear.
        recovered = _recovered_ids(tmp_path / "db")
        _assert_contract(recovered, [0])
        assert 2 not in recovered


class TestCheckpointTruncation:
    def test_checkpoint_bounds_record_count_and_file_size(self, tmp_path):
        db = PgSimDatabase(data_dir=tmp_path / "db", buffer_pool_pages=POOL)
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(20):
            _insert(db, i)
        before_records = len(db.wal)
        before_bytes = db.wal.disk_size()
        assert before_records == 60  # begin + insert + commit per row
        db.checkpoint()
        assert len(db.wal) == 1  # just the checkpoint record
        assert db.wal.disk_size() < before_bytes

    def test_log_stays_bounded_with_periodic_checkpoints(self, tmp_path):
        db = PgSimDatabase(data_dir=tmp_path / "db", buffer_pool_pages=POOL)
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(50):
            _insert(db, i)
            if i % 10 == 9:
                db.checkpoint()
        assert len(db.wal) <= 2 * 10 + 1

    def test_recovery_after_checkpoint_truncation(self, tmp_path):
        datadir = tmp_path / "db"
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=POOL)
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(10):
            _insert(db, i)
        db.checkpoint()
        for i in range(10, 15):
            _insert(db, i)
        del db  # crash: post-checkpoint rows only exist in WAL + buffers
        assert _recovered_ids(datadir) == list(range(15))

    def test_checkpoint_record_carries_durable_horizon(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.log")
        wal.log_insert(1, "t.heap", 0, b"x")
        wal.log_commit(1)
        horizon = wal.flushed_lsn
        wal.log_checkpoint(next_xid=7, in_progress=(5, 6))
        checkpoint = wal.records()[-1]
        flushed, next_xid, in_progress = checkpoint_fields(checkpoint.payload)
        assert flushed == horizon
        assert next_xid == 7
        assert in_progress == (5, 6)
        # A checkpoint record must itself be durable (satellite fix).
        assert wal.flushed_lsn == checkpoint.lsn

    def test_truncate_is_crash_atomic(self, tmp_path):
        """A crash while rewriting the log leaves the old log intact."""
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        for xid in (1, 2, 3):
            wal.log_insert(xid, "t.heap", 0, b"x")
            wal.log_commit(xid)
        # Fail the first rewrite write of truncate_before.
        wal.faults = FaultInjector(schedule={0: Fault(CRASH)})
        with pytest.raises(SimulatedCrash):
            wal.truncate_before(wal.flushed_lsn)
        reopened = WriteAheadLog(path)
        assert len(reopened) == 6
        assert reopened.flushed_lsn == wal.records()[-1].lsn


class TestTransactionRecovery:
    """Recovery must roll back transactions without a durable commit
    record — even when their data records (or flushed pages) are."""

    def _fresh(self, datadir, injector=None) -> PgSimDatabase:
        return PgSimDatabase(
            data_dir=datadir, buffer_pool_pages=POOL, fault_injector=injector
        )

    def test_flushed_but_uncommitted_txn_rolled_back(self, tmp_path):
        datadir = tmp_path / "db"
        db = self._fresh(datadir)
        db.execute("CREATE TABLE t (id int, vec float[])")
        _insert(db, 0)
        session = db.session("client")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, '1.5,1.25'::PASE)")
        session.execute("INSERT INTO t VALUES (2, '2.5,1.25'::PASE)")
        db.wal.flush()  # data + BEGIN records durable; no commit record
        del db  # crash before COMMIT
        assert _recovered_ids(datadir) == [0]

    def test_aborted_insert_does_not_shift_later_commits(self, tmp_path):
        """Redo must re-apply an aborted insert's line pointer so a
        later committed insert recovers at its logged offset."""
        datadir = tmp_path / "db"
        db = self._fresh(datadir)
        db.execute("CREATE TABLE t (id int, vec float[])")
        session = db.session("client")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (99, '9.5,1.25'::PASE)")
        session.execute("ROLLBACK")
        _insert(db, 0)  # committed; lands on the same page, next offset
        del db
        assert _recovered_ids(datadir) == [0]

    def test_checkpoint_mid_transaction_still_rolls_back(self, tmp_path):
        """A checkpoint flushes uncommitted tuples and truncates their
        records; the checkpoint's in-progress list must still identify
        the transaction as a loser after a crash."""
        datadir = tmp_path / "db"
        db = self._fresh(datadir)
        db.execute("CREATE TABLE t (id int, vec float[])")
        _insert(db, 0)
        session = db.session("client")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1, '1.5,1.25'::PASE)")
        db.checkpoint()
        del db  # crash before COMMIT
        assert _recovered_ids(datadir) == [0]

    def test_uncommitted_delete_resurrects_on_recovery(self, tmp_path):
        datadir = tmp_path / "db"
        db = self._fresh(datadir)
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(3):
            _insert(db, i)
        session = db.session("client")
        session.execute("BEGIN")
        session.execute("DELETE FROM t WHERE id = 1")
        db.wal.flush()  # the delete's xmax stamp is durable
        del db  # crash before COMMIT
        assert _recovered_ids(datadir) == [0, 1, 2]

    def test_crash_sweep_between_heap_writes_and_commit(self, tmp_path):
        """Crash at every I/O boundary between a transaction's durable
        data records and its commit record: recovery must be atomic —
        the whole transaction or none of it, never a partial prefix."""

        def run(datadir, injector):
            db = self._fresh(datadir, injector)
            db.execute("CREATE TABLE t (id int, vec float[])")
            _insert(db, 0)
            marks = []
            session = db.session("client")
            try:
                session.execute("BEGIN")
                for i in range(1, 4):
                    session.execute(f"INSERT INTO t VALUES ({i}, '{i}.5,1.25'::PASE)")
                marks.append(injector.ops if injector else 0)  # pre-flush
                db.wal.flush()
                marks.append(injector.ops if injector else 0)  # pre-commit
                session.execute("COMMIT")
                return marks, False
            except (SimulatedCrash, SimulatedIOError, WalPanicError):
                return marks, True

        counter = FaultInjector()
        marks, crashed = run(tmp_path / "baseline", counter)
        assert not crashed
        pre_flush, pre_commit = marks
        assert pre_commit > pre_flush, "transaction flush did no I/O"

        # +2 covers the commit record's own write and fsync ops.
        for op in range(pre_flush, pre_commit + 2):
            datadir = tmp_path / f"crash-{op}"
            __, crashed = run(datadir, FaultInjector.crash_at(op))
            assert crashed, f"crash at op {op} did not fire"
            recovered = _recovered_ids(datadir)
            # Atomicity: all of the transaction or none of it.
            assert recovered in ([0], [0, 1, 2, 3]), f"op {op}: {recovered}"
            if op <= pre_commit:
                # Crash at or before the commit record's write: the
                # commit can never be durable, so recovery must roll
                # the transaction back — no committed-looking phantoms.
                assert recovered == [0], f"op {op}: phantom commit {recovered}"


class TestChurnRecovery:
    """Crash sweeps across the churn path: UPDATE's delete+insert pair
    must recover atomically, and VACUUM's physical reclaim (heap slots
    plus index entries) must never lose committed rows."""

    NEW_VEC = "77.5,1.25"

    def _fresh(self, datadir, injector=None) -> PgSimDatabase:
        return PgSimDatabase(
            data_dir=datadir, buffer_pool_pages=POOL, fault_injector=injector
        )

    def _live_rows(self, datadir) -> dict[int, float]:
        """Recovered ``{id: vec[0]}`` — the first component identifies
        whether a row carries its original or its updated vector."""
        db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=POOL)
        if not db.catalog.has_table("t"):
            return {}
        return {row[0]: float(row[1][0]) for row in db.query("SELECT id, vec FROM t")}

    def test_crash_sweep_mid_update(self, tmp_path):
        """Crash at every I/O boundary of a multi-row UPDATE: recovery
        must expose all old versions or all new ones, never a mix of
        the two (the delete+insert pair shares one transaction)."""

        def run(datadir, injector):
            marks = []
            try:
                db = self._fresh(datadir, injector)
                db.execute("CREATE TABLE t (id int, vec float[])")
                for i in range(4):
                    _insert(db, i)
                db.execute(
                    "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
                    "WITH (clusters = 2, sample_ratio = 1.0, seed = 1)"
                )
                session = db.session("client")
                session.execute("BEGIN")
                marks.append(injector.ops if injector else 0)  # pre-update
                session.execute(
                    f"UPDATE t SET vec = '{self.NEW_VEC}'::PASE WHERE id < 2"
                )
                db.wal.flush()
                marks.append(injector.ops if injector else 0)  # pre-commit
                session.execute("COMMIT")
                return marks, False
            except (SimulatedCrash, SimulatedIOError, WalPanicError):
                return marks, True

        counter = FaultInjector()
        marks, crashed = run(tmp_path / "baseline", counter)
        assert not crashed
        pre_update, pre_commit = marks
        assert pre_commit > pre_update, "UPDATE produced no durable I/O"

        # +2 covers the commit record's own write and fsync ops.
        for op in range(pre_update, pre_commit + 2):
            datadir = tmp_path / f"upd-crash-{op}"
            __, crashed = run(datadir, FaultInjector.crash_at(op))
            assert crashed, f"crash at op {op} did not fire"
            rows = self._live_rows(datadir)
            assert sorted(rows) == [0, 1, 2, 3], f"op {op}: cardinality {rows}"
            updated = sorted(i for i, x in rows.items() if x == 77.5)
            assert updated in ([], [0, 1]), f"op {op}: torn update {rows}"
            if op <= pre_commit:
                # The commit record can never be durable here, so the
                # update must have rolled back in full.
                assert updated == [], f"op {op}: phantom committed update"

    def test_crash_sweep_mid_vacuum_index_reclaim(self, tmp_path):
        """Crash at every I/O boundary while VACUUM's reclaim becomes
        durable (the vacuum pass itself plus the checkpoint that
        flushes the compacted heap and index pages): committed rows
        must all survive with their post-churn values, and the
        recovered index must serve exactly the live set."""

        def run(datadir, injector):
            marks = []
            try:
                db = self._fresh(datadir, injector)
                db.execute("CREATE TABLE t (id int, vec float[])")
                for i in range(N_ROWS):
                    _insert(db, i)
                db.execute(
                    "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
                    "WITH (clusters = 2, sample_ratio = 1.0, seed = 1)"
                )
                db.execute("DELETE FROM t WHERE id >= 6")
                db.execute(
                    f"UPDATE t SET vec = '{self.NEW_VEC}'::PASE WHERE id < 2"
                )
                marks.append(injector.ops if injector else 0)  # pre-vacuum
                db.execute("VACUUM t")
                db.checkpoint()  # flush reclaimed pages, truncate the log
                marks.append(injector.ops if injector else 0)  # post-vacuum
                return marks, False
            except (SimulatedCrash, SimulatedIOError, WalPanicError):
                return marks, True

        counter = FaultInjector()
        marks, crashed = run(tmp_path / "baseline", counter)
        assert not crashed
        pre_vacuum, post_vacuum = marks
        assert post_vacuum > pre_vacuum, "vacuum + checkpoint did no I/O"

        for op in range(pre_vacuum, post_vacuum):
            datadir = tmp_path / f"vac-crash-{op}"
            __, crashed = run(datadir, FaultInjector.crash_at(op))
            assert crashed, f"crash at op {op} did not fire"
            rows = self._live_rows(datadir)
            assert sorted(rows) == [0, 1, 2, 3, 4, 5], f"op {op}: {rows}"
            assert sorted(i for i in rows if rows[i] == 77.5) == [0, 1], (
                f"op {op}: updated values lost {rows}"
            )
            # The recovered index serves the live set and nothing else.
            db = PgSimDatabase(data_dir=datadir, buffer_pool_pages=POOL)
            db.execute("SET enable_seqscan = off")
            got = [
                r[0]
                for r in db.query(
                    "SELECT id FROM t ORDER BY vec <-> '0.5,1.25' LIMIT 10"
                )
            ]
            assert sorted(got) == [0, 1, 2, 3, 4, 5], f"op {op}: index served {got}"


class TestInjector:
    def test_counts_ops_without_faults(self, tmp_path):
        injector = FaultInjector()
        with (tmp_path / "f").open("wb") as f:
            injector.write("site", f, b"abc")
            injector.fsync("site", f)
        assert injector.ops == 2
        assert injector.fired == []
        assert (tmp_path / "f").read_bytes() == b"abc"

    def test_torn_write_keeps_prefix(self, tmp_path):
        injector = FaultInjector.torn_write_at(0, keep_fraction=0.5)
        with (tmp_path / "f").open("wb") as f:
            with pytest.raises(SimulatedCrash):
                injector.write("site", f, b"abcdefgh")
        assert (tmp_path / "f").read_bytes() == b"abcd"
        assert injector.fired == [(0, "site", TORN_WRITE)]

    def test_fail_fsync_inert_on_writes(self, tmp_path):
        injector = FaultInjector(schedule={0: Fault(FAIL_FSYNC), 1: Fault(FAIL_FSYNC)})
        with (tmp_path / "f").open("wb") as f:
            injector.write("site", f, b"abc")  # inert: writes cannot "fail fsync"
            assert injector.fired == []
            with pytest.raises(SimulatedIOError):
                injector.fsync("site", f)
        assert (tmp_path / "f").read_bytes() == b"abc"
        assert injector.fired == [(1, "site", FAIL_FSYNC)]

    def test_invalid_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("power-loss")
        with pytest.raises(ValueError):
            Fault(TORN_WRITE, keep_fraction=1.0)
