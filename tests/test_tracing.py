"""Tests for the span tracer and its profiler integration."""

import json

import pytest

from repro.common.profiling import Profiler
from repro.common.tracing import NULL_TRACER, Span, Tracer


class TestTracerCore:
    def test_nested_spans_record_tree(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("scan"):
                pass
            with tracer.span("scan"):
                pass
        assert [s.name for s in tracer.spans] == ["query", "scan", "scan"]
        root = tracer.spans[0]
        assert root.parent_id == 0
        assert all(s.parent_id == root.span_id for s in tracer.spans[1:])
        assert tracer.spans[1].path == ("query", "scan")

    def test_span_ids_sequential_and_deterministic(self):
        def run():
            tracer = Tracer()
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            return [(s.span_id, s.parent_id, s.name) for s in tracer.spans]

        assert run() == run() == [(1, 0, "a"), (2, 1, "b"), (3, 0, "c")]

    def test_duration_zero_while_open(self):
        tracer = Tracer()
        span = tracer.begin("open", 10.0)
        assert span.duration == 0.0
        tracer.end(12.5)
        assert span.duration == pytest.approx(2.5)

    def test_end_without_open_span_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end(1.0)

    def test_current_tracks_stack(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_events_attach_to_open_span(self):
        tracer = Tracer()
        with tracer.span("scan"):
            tracer.event("cache-miss", blkno=17)
        (span,) = tracer.spans
        assert span.events[0].name == "cache-miss"
        assert span.events[0].attrs == {"blkno": 17}

    def test_event_outside_span_is_noop(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert tracer.spans == []

    def test_total_seconds_sums_roots_only(self):
        tracer = Tracer()
        tracer.begin("a", 0.0)
        tracer.begin("a.child", 0.5)
        tracer.end(1.5)
        tracer.end(2.0)
        tracer.begin("b", 3.0)
        tracer.end(4.0)
        assert tracer.total_seconds() == pytest.approx(3.0)
        assert [s.name for s in tracer.root_spans()] == ["a", "b"]

    def test_reset_clears_and_restarts_ids(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.spans == []
        with tracer.span("y"):
            pass
        assert tracer.spans[0].span_id == 1

    def test_reset_with_open_span_raises(self):
        tracer = Tracer()
        tracer.begin("open", 0.0)
        with pytest.raises(RuntimeError):
            tracer.reset()

    def test_max_spans_drops_but_stays_balanced(self):
        tracer = Tracer(max_spans=2)
        for __ in range(5):
            with tracer.span("work"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped_spans == 3
        assert tracer.current is None  # stack stayed balanced

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored"):
            tracer.event("also-ignored")
        assert tracer.spans == []
        assert tracer.span("x") is tracer.span("y")  # shared null handle

    def test_null_tracer_cannot_be_enabled(self):
        assert not NULL_TRACER.enabled
        with pytest.raises(TypeError):
            NULL_TRACER.enabled = True


class TestAggregation:
    def _sample(self):
        tracer = Tracer()
        tracer.begin("query", 0.0)
        tracer.begin("scan", 1.0)
        tracer.end(4.0)  # scan: 3s
        tracer.begin("scan", 5.0)
        tracer.end(6.0)  # scan: 1s
        tracer.end(10.0)  # query: 10s total, 6s exclusive
        return tracer

    def test_exclusive_subtracts_children(self):
        exclusive, calls = self._sample().aggregate()
        assert exclusive[("query",)] == pytest.approx(6.0)
        assert exclusive[("query", "scan")] == pytest.approx(4.0)
        assert calls == {("query",): 1, ("query", "scan"): 2}

    def test_to_profiler_matches_aggregate(self):
        tracer = self._sample()
        prof = tracer.to_profiler()
        assert prof.total_seconds() == pytest.approx(10.0)
        assert prof.exclusive_seconds("scan") == pytest.approx(4.0)
        assert prof.inclusive_seconds("query") == pytest.approx(10.0)
        assert prof.call_count("scan") == 2

    def test_open_spans_excluded_from_aggregate(self):
        tracer = Tracer()
        tracer.begin("open", 0.0)
        exclusive, calls = tracer.aggregate()
        assert exclusive == {} and calls == {}


class TestExports:
    def test_chrome_trace_real_timeline(self):
        tracer = Tracer()
        tracer.begin("query", 100.0)
        tracer.begin("scan", 100.25)
        tracer.end(100.75)
        tracer.end(101.0)
        doc = json.loads(tracer.to_chrome_trace())
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["query", "scan"]
        assert events[0]["ts"] == 0.0
        assert events[0]["dur"] == pytest.approx(1e6)
        assert events[1]["ts"] == pytest.approx(0.25e6)
        assert events[1]["args"]["parent_id"] == events[0]["args"]["span_id"]

    def test_chrome_trace_emits_instant_events(self):
        tracer = Tracer()
        with tracer.span("scan"):
            tracer.event("pin", blkno=3)
        doc = json.loads(tracer.to_chrome_trace())
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants[0]["name"] == "pin"
        assert instants[0]["args"] == {"blkno": 3}

    def test_chrome_trace_reports_drops(self):
        tracer = Tracer(max_spans=1)
        for __ in range(3):
            with tracer.span("w"):
                pass
        doc = json.loads(tracer.to_chrome_trace())
        assert doc["metadata"]["dropped_spans"] == 2

    def test_collapsed_weights_by_exclusive_micros(self):
        tracer = Tracer()
        tracer.begin("a", 0.0)
        tracer.begin("b", 0.0)
        tracer.end(0.25)
        tracer.end(1.0)
        lines = tracer.to_collapsed().strip().splitlines()
        assert f"a {round(0.75e6)}" in lines
        assert f"a;b {round(0.25e6)}" in lines


class TestProfilerIntegration:
    def test_sections_open_spans(self):
        tracer = Tracer()
        prof = Profiler(tracer=tracer)
        with prof.section("query"):
            with prof.section("scan"):
                pass
        assert [s.path for s in tracer.spans] == [("query",), ("query", "scan")]
        assert all(s.end is not None for s in tracer.spans)

    def test_span_totals_match_profiler_totals(self):
        tracer = Tracer()
        prof = Profiler(tracer=tracer)
        with prof.section("outer"):
            for __ in range(50):
                with prof.section("inner"):
                    sum(range(100))
        assert tracer.to_profiler().total_seconds() == pytest.approx(
            prof.total_seconds(), rel=0.05
        )
        assert tracer.to_profiler().call_count("inner") == prof.call_count("inner")

    def test_disabled_profiler_leaves_tracer_untouched(self):
        tracer = Tracer()
        prof = Profiler(enabled=False, tracer=tracer)
        with prof.section("ignored"):
            pass
        assert tracer.spans == []

    def test_profiler_reset_cascades(self):
        tracer = Tracer()
        prof = Profiler(tracer=tracer)
        with prof.section("x"):
            pass
        prof.reset()
        assert tracer.spans == []

    def test_exports_delegate_to_tracer(self):
        tracer = Tracer()
        prof = Profiler(tracer=tracer)
        with prof.section("a"):
            with prof.section("b"):
                pass
        doc = json.loads(prof.to_chrome_trace())
        names = [e["name"] for e in doc["traceEvents"]]
        assert names == ["a", "b"]
        # Real parent linkage, not the synthetic aggregate layout.
        assert doc["traceEvents"][1]["args"]["parent_id"] == 1
        assert "a;b" in prof.to_collapsed()

    def test_exports_fall_back_without_spans(self):
        prof = Profiler()
        with prof.section("solo"):
            pass
        assert "solo" in prof.to_collapsed()


class TestSpanRepr:
    def test_add_event_returns_event(self):
        span = Span(1, 0, "s", ("s",), 0.0)
        event = span.add_event("e", 1.0, detail="x")
        assert span.events == [event]
