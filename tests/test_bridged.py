"""Tests for the bridged engine (the Sec. IX-C recipe implemented)."""

import numpy as np
import pytest

from repro.common.metrics import mean_recall_at_k
from repro.pgsim import PgSimDatabase


def _ids(db, am, query, k):
    table = db.catalog.table("items")
    return [table.heap.fetch_column(tid, 0) for tid, __ in am.scan(query, k)]


@pytest.fixture()
def bridged_db(loaded_db):
    loaded_db.execute(
        "CREATE INDEX bx ON items USING bridged_ivfflat (vec) "
        "WITH (clusters = 10, sample_ratio = 0.6, seed = 2)"
    )
    loaded_db.execute("SET pase.nprobe = 10")
    return loaded_db


@pytest.fixture()
def bridged_am(bridged_db):
    return bridged_db.catalog.find_index("bx").am


class TestBridgedIVFFlat:
    def test_exact_with_full_probe(self, bridged_db, bridged_am, small_dataset):
        gt = small_dataset.ground_truth(10)
        res = [_ids(bridged_db, bridged_am, q, 10) for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) == 1.0

    def test_pages_persisted_like_pase(self, bridged_db, bridged_am):
        """Step#1 keeps durability: the PASE page layout is written."""
        for fork in ("meta", "centroid", "data"):
            assert bridged_db.disk.relation_exists(f"bx.{fork}")
        assert bridged_db.disk.n_blocks("bx.data") >= 10

    def test_mirror_rebuild_from_pages(self, bridged_db, bridged_am, small_dataset):
        q = small_dataset.queries[0]
        before = _ids(bridged_db, bridged_am, q, 10)
        bridged_am._mirror = None  # simulate restart: memory lost
        after = _ids(bridged_db, bridged_am, q, 10)
        assert before == after

    def test_matches_pase_results_with_same_clusters(self, bridged_db, bridged_am, small_dataset):
        """Bridged changes performance, never answers: a PASE index on
        the same centroids returns identical hits."""
        from repro.specialized import IVFFlatIndex

        centroids = []
        for __, __, vec in bridged_am._iter_centroids():
            centroids.append(vec.copy())
        ref = IVFFlatIndex(small_dataset.dim, n_clusters=10)
        ref.set_centroids(np.vstack(centroids))
        ref.add(small_dataset.base)
        for q in small_dataset.queries[:4]:
            assert _ids(bridged_db, bridged_am, q, 10) == ref.search(q, 10, nprobe=10).ids

    def test_insert_updates_pages_and_mirror(self, bridged_db, bridged_am, small_dataset):
        vec = small_dataset.base[0] + 20.0
        table = bridged_db.catalog.table("items")
        tid = table.heap.insert([31337, vec], xid=1)
        bridged_am.insert(tid, vec)
        assert _ids(bridged_db, bridged_am, vec, 1) == [31337]
        # The durable path got it too.
        bridged_am._mirror = None
        assert _ids(bridged_db, bridged_am, vec, 1) == [31337]

    def test_faster_than_pase(self, bridged_db, bridged_am, small_dataset):
        import time

        bridged_db.execute(
            "CREATE INDEX px ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 10, sample_ratio = 0.6, seed = 2)"
        )
        pase_am = bridged_db.catalog.find_index("px").am
        queries = small_dataset.queries

        def timed(am):
            start = time.perf_counter()
            for q in queries:
                list(am.scan(q, 10))
            return time.perf_counter() - start

        timed(bridged_am)  # warm-up
        timed(pase_am)
        assert timed(bridged_am) < timed(pase_am)

    def test_parallel_units_local_heaps(self, bridged_am, small_dataset):
        results, units = bridged_am.parallel_search_units(small_dataset.queries[0], 10, 8)
        assert len(results) == 10
        assert all(u.serial_ops == 1 for u in units)  # merge only, no per-push lock

    def test_sql_surface_unchanged(self, bridged_db, small_dataset, vec_lit):
        lit = vec_lit(small_dataset.queries[1])
        plan = bridged_db.explain(
            f"SELECT id FROM items ORDER BY vec <-> '{lit}'::PASE LIMIT 5"
        )
        assert "bridged_ivfflat" in plan
        rows = bridged_db.query(
            f"SELECT id FROM items ORDER BY vec <-> '{lit}'::PASE LIMIT 5"
        )
        assert [r[0] for r in rows] == small_dataset.ground_truth(5)[1].tolist()


class TestBridgedHNSW:
    @pytest.fixture()
    def hnsw_db(self, loaded_db):
        loaded_db.execute(
            "CREATE INDEX bh ON items USING bridged_hnsw (vec) "
            "WITH (bnn = 8, efb = 24, seed = 4)"
        )
        return loaded_db

    def test_recall(self, hnsw_db, small_dataset):
        am = hnsw_db.catalog.find_index("bh").am
        hnsw_db.execute("SET pase.efs = 80")
        gt = small_dataset.ground_truth(10)
        res = [_ids(hnsw_db, am, q, 10) for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) > 0.75

    def test_same_graph_as_pase_hnsw(self, hnsw_db, small_dataset):
        """Same seed + same algorithm: bridged == PASE results, faster."""
        hnsw_db.execute(
            "CREATE INDEX ph ON items USING pase_hnsw (vec) "
            "WITH (bnn = 8, efb = 24, seed = 4)"
        )
        bridged = hnsw_db.catalog.find_index("bh").am
        pase = hnsw_db.catalog.find_index("ph").am
        for q in small_dataset.queries[:4]:
            assert _ids(hnsw_db, bridged, q, 10) == _ids(hnsw_db, pase, q, 10)

    def test_size_far_below_pase(self, hnsw_db, small_dataset):
        hnsw_db.execute(
            "CREATE INDEX ph2 ON items USING pase_hnsw (vec) "
            "WITH (bnn = 8, efb = 24, seed = 4)"
        )
        bridged = hnsw_db.catalog.find_index("bh").am.size_info()
        pase = hnsw_db.catalog.find_index("ph2").am.size_info()
        # RC#4 fixed: no fresh-page-per-list, 4-byte neighbor ids.
        assert bridged.allocated_bytes < pase.allocated_bytes / 3

    def test_insert(self, hnsw_db, small_dataset):
        am = hnsw_db.catalog.find_index("bh").am
        vec = small_dataset.base[5] + 15.0
        table = hnsw_db.catalog.table("items")
        tid = table.heap.insert([777, vec], xid=1)
        am.insert(tid, vec)
        assert _ids(hnsw_db, am, vec, 1) == [777]

    def test_drop_cleans_storage(self, hnsw_db):
        assert hnsw_db.disk.relation_exists("bh.data")
        hnsw_db.execute("DROP INDEX bh")
        assert not hnsw_db.disk.relation_exists("bh.data")
