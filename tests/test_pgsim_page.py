"""Tests for the slotted page layout."""

import pytest

from repro.pgsim.constants import PAGE_HEADER_SIZE
from repro.pgsim.page import FLAG_HAS_DEAD, Page, PageCorruptError, PageFullError


@pytest.fixture()
def page():
    return Page.init(1024)


class TestInit:
    def test_fresh_layout(self, page):
        assert page.lower == PAGE_HEADER_SIZE
        assert page.upper == 1024
        assert page.special == 1024
        assert page.item_count == 0
        assert page.version == 4

    def test_special_space_reserved(self):
        page = Page.init(1024, special_size=16)
        assert page.special == 1008
        assert page.upper == 1008
        assert len(page.read_special()) == 16

    def test_too_small_page_rejected(self):
        with pytest.raises(ValueError):
            Page.init(64)

    def test_oversized_special_rejected(self):
        with pytest.raises(ValueError):
            Page.init(1024, special_size=1024)


class TestItems:
    def test_insert_get_roundtrip(self, page):
        off = page.insert_item(b"hello")
        assert off == 1
        assert page.get_item(1) == b"hello"

    def test_offsets_sequential(self, page):
        assert [page.insert_item(bytes([i])) for i in range(5)] == [1, 2, 3, 4, 5]

    def test_items_grow_down_pointers_grow_up(self, page):
        before_lower, before_upper = page.lower, page.upper
        page.insert_item(b"x" * 10)
        assert page.lower == before_lower + 4
        assert page.upper == before_upper - 10

    def test_free_space_accounting(self, page):
        free = page.free_space
        page.insert_item(b"x" * 100)
        assert page.free_space == free - 100 - 4

    def test_page_full(self, page):
        with pytest.raises(PageFullError):
            page.insert_item(b"x" * 2000)

    def test_fill_to_capacity(self, page):
        count = 0
        while page.free_space >= 32:
            page.insert_item(b"y" * 32)
            count += 1
        assert page.item_count == count
        assert count == (1024 - PAGE_HEADER_SIZE) // 36

    def test_empty_item_rejected(self, page):
        with pytest.raises(ValueError):
            page.insert_item(b"")

    def test_out_of_range_offset(self, page):
        page.insert_item(b"a")
        with pytest.raises(IndexError):
            page.get_item(0)
        with pytest.raises(IndexError):
            page.get_item(2)

    def test_item_view_is_zero_copy(self, page):
        page.insert_item(b"abcd")
        view = page.get_item_view(1)
        view[0] = ord("z")
        assert page.get_item(1) == b"zbcd"


class TestDelete:
    def test_delete_marks_dead(self, page):
        page.insert_item(b"a")
        page.insert_item(b"b")
        page.delete_item(1)
        assert page.is_dead(1)
        assert not page.is_dead(2)
        assert page.flags & FLAG_HAS_DEAD
        with pytest.raises(PageCorruptError):
            page.get_item(1)

    def test_live_items(self, page):
        for ch in b"abc":
            page.insert_item(bytes([ch]))
        page.delete_item(2)
        assert page.live_items() == [1, 3]

    def test_defragment_reclaims_space(self, page):
        for __ in range(5):
            page.insert_item(b"x" * 50)
        page.delete_item(2)
        page.delete_item(4)
        free_before = page.free_space
        freed = page.defragment()
        assert freed == 100
        assert page.free_space == free_before + 100

    def test_defragment_preserves_live_offsets(self, page):
        offs = [page.insert_item(bytes([i]) * 8) for i in range(4)]
        page.delete_item(2)
        page.defragment()
        assert page.get_item(1) == bytes([0]) * 8
        assert page.get_item(3) == bytes([2]) * 8
        assert page.get_item(4) == bytes([3]) * 8
        assert page.is_dead(2)


class TestSpecial:
    def test_write_read_special(self):
        page = Page.init(512, special_size=8)
        page.write_special(b"ABCDEFGH")
        assert page.read_special() == b"ABCDEFGH"

    def test_wrong_size_rejected(self):
        page = Page.init(512, special_size=8)
        with pytest.raises(ValueError):
            page.write_special(b"short")

    def test_special_survives_inserts(self):
        page = Page.init(512, special_size=4)
        page.write_special(b"NEXT")
        while page.free_space >= 20:
            page.insert_item(b"z" * 20)
        assert page.read_special() == b"NEXT"


class TestChecksum:
    def test_roundtrip(self, page):
        page.insert_item(b"data")
        page.update_checksum()
        page.verify_checksum()  # must not raise

    def test_detects_corruption(self, page):
        page.insert_item(b"data")
        page.update_checksum()
        page.buf[500] ^= 0xFF
        with pytest.raises(PageCorruptError):
            page.verify_checksum()

    def test_unstamped_page_passes(self, page):
        page.insert_item(b"data")
        page.verify_checksum()  # checksum 0 means "never stamped"

    def test_lsn_roundtrip(self, page):
        page.lsn = 12345678901
        assert page.lsn == 12345678901
