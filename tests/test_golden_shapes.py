"""Golden qualitative-shape tests for the paper's headline claims.

Tiny-scale runs that assert the *shape* of the paper's findings, not
absolute numbers:

1. the specialized engine beats PASE on search (the Fig. 14 gap),
2. the batch execution path (RC#3 ablation) shrinks that gap, and
3. both executor paths return identical neighbors, so the speedup is
   not bought with accuracy.

Timing assertions use best-of-N and lenient thresholds to stay stable
on noisy CI hosts.
"""

from __future__ import annotations

import time

import pytest

from repro.common.datasets import tiny_dataset
from repro.core.study import ComparativeStudy

K = 10
NPROBE = 6
N_QUERIES = 6
REPS = 5


@pytest.fixture(scope="module")
def study() -> ComparativeStudy:
    dataset = tiny_dataset(n=800, dim=24, n_queries=N_QUERIES, seed=31)
    s = ComparativeStudy(
        dataset, "ivf_flat", {"clusters": 16, "sample_ratio": 0.5, "seed": 9}
    )
    s.compare_build()
    return s


def _best_of(fn, reps: int = REPS) -> float:
    best = float("inf")
    for __ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _search_all(engine, queries, **opts) -> list[list[int]]:
    return [[n.vector_id for n in engine.search(q, K, **opts).neighbors] for q in queries]


class TestGoldenSearchGap:
    def test_specialized_beats_pase_and_batch_shrinks_gap(self, study):
        queries = study.dataset.queries[:N_QUERIES]
        gen, spec = study.generalized, study.specialized

        gen.db.execute("SET enable_batch_exec = off")
        tuple_ids = _search_all(gen, queries, nprobe=NPROBE)
        gen.db.execute("SET enable_batch_exec = on")
        batch_ids = _search_all(gen, queries, nprobe=NPROBE)

        # The speedup must not change a single neighbor.
        assert batch_ids == tuple_ids

        spec_t = _best_of(lambda: _search_all(spec, queries, nprobe=NPROBE))
        gen.db.execute("SET enable_batch_exec = off")
        tuple_t = _best_of(lambda: _search_all(gen, queries, nprobe=NPROBE))
        gen.db.execute("SET enable_batch_exec = on")
        batch_t = _best_of(lambda: _search_all(gen, queries, nprobe=NPROBE))
        gen.db.execute("SET enable_batch_exec = off")

        tuple_gap = tuple_t / spec_t
        batch_gap = batch_t / spec_t

        # Shape 1 (Fig. 14): PASE is clearly slower than specialized.
        assert tuple_gap > 1.3, f"expected a search gap, got {tuple_gap:.2f}x"
        # Shape 2 (RC#3): batching recovers a large part of the gap.
        assert batch_gap < tuple_gap * 0.75, (
            f"batch path should shrink the gap: tuple {tuple_gap:.2f}x "
            f"vs batch {batch_gap:.2f}x"
        )

    def test_recall_identical_across_paths(self, study):
        """Recall vs ground truth is a property of the index, not the
        executor path."""
        queries = study.dataset.queries[:N_QUERIES]
        gt = study.dataset.ground_truth(K)
        gen = study.generalized

        def recall(ids_per_query) -> float:
            hits = sum(
                len(set(ids) & set(gt[qi].tolist()))
                for qi, ids in enumerate(ids_per_query)
            )
            return hits / (len(ids_per_query) * K)

        gen.db.execute("SET enable_batch_exec = off")
        r_tuple = recall(_search_all(gen, queries, nprobe=NPROBE))
        gen.db.execute("SET enable_batch_exec = on")
        r_batch = recall(_search_all(gen, queries, nprobe=NPROBE))
        gen.db.execute("SET enable_batch_exec = off")
        assert r_tuple == r_batch
        assert r_tuple > 0.5
