"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.datasets import Dataset, generate_clustered, tiny_dataset
from repro.pgsim import PgSimDatabase


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """A 600-vector clustered dataset shared across read-only tests."""
    return tiny_dataset(n=600, dim=16, n_queries=8, seed=101)


@pytest.fixture(scope="session")
def medium_dataset() -> Dataset:
    """A 2000-vector dataset for the slower integration tests."""
    return tiny_dataset(n=2000, dim=24, n_queries=10, seed=202)


@pytest.fixture()
def fresh_db() -> PgSimDatabase:
    """A brand-new in-memory pgsim database per test."""
    return PgSimDatabase(buffer_pool_pages=512)


@pytest.fixture()
def loaded_db(fresh_db: PgSimDatabase, small_dataset: Dataset) -> PgSimDatabase:
    """Database with the small dataset loaded into table ``items``."""
    fresh_db.execute("CREATE TABLE items (id int, vec float[])")
    table = fresh_db.catalog.table("items")
    for i, vec in enumerate(small_dataset.base):
        table.heap.insert([i, vec], xid=1)
    fresh_db.wal.log_commit(1)
    return fresh_db


def vector_literal(vec: np.ndarray) -> str:
    """Format a vector as a PASE SQL literal."""
    return ",".join(f"{x:.6f}" for x in np.asarray(vec, dtype=np.float32))


@pytest.fixture()
def vec_lit():
    """The :func:`vector_literal` helper as a fixture."""
    return vector_literal


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(7)
