"""Multi-client sessions: threads sharing one database.

Four or more threads drive mixed read/write traffic through their own
`Session` objects against a single `PgSimDatabase`.  Correctness is
checked against a serial oracle rebuilt from the acknowledged
(committed) operations, and snapshot stability is asserted from inside
open transaction blocks while writers churn.
"""

import os
import threading

import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.xact import SerializationError

N_THREADS = 4
#: CI's stress step raises this (CONCURRENT_STRESS_OPS) for a longer soak.
OPS_PER_THREAD = int(os.environ.get("CONCURRENT_STRESS_OPS", "25"))


@pytest.fixture()
def db():
    database = PgSimDatabase()
    database.execute("CREATE TABLE docs (id int, val int)")
    return database


def run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def table_ids(db):
    return sorted(r[0] for r in db.query("SELECT id FROM docs"))


class TestConcurrentWriters:
    def test_autocommit_inserts_from_many_threads(self, db):
        errors = []

        def worker(tid):
            session = db.session(f"client-{tid}")
            try:
                for i in range(OPS_PER_THREAD):
                    row_id = tid * 1000 + i
                    session.execute(f"INSERT INTO docs VALUES ({row_id}, {tid})")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        run_threads([lambda t=t: worker(t) for t in range(N_THREADS)])
        assert not errors
        expected = sorted(t * 1000 + i for t in range(N_THREADS) for i in range(OPS_PER_THREAD))
        assert table_ids(db) == expected
        assert db.catalog.table("docs").heap.tuple_count == N_THREADS * OPS_PER_THREAD

    def test_mixed_traffic_matches_serial_oracle(self, db):
        """Insert/delete/rollback mix; final state == acked commits."""
        acked = [set() for _ in range(N_THREADS)]
        errors = []

        def worker(tid):
            session = db.session(f"client-{tid}")
            mine = acked[tid]
            try:
                for i in range(OPS_PER_THREAD):
                    row_id = tid * 1000 + i
                    kind = i % 5
                    if kind == 3 and mine:
                        victim = min(mine)
                        session.execute(f"DELETE FROM docs WHERE id = {victim}")
                        mine.discard(victim)
                    elif kind == 4:
                        # Explicit transaction that rolls back: no trace.
                        session.execute("BEGIN")
                        session.execute(f"INSERT INTO docs VALUES ({row_id + 500}, -1)")
                        session.execute("ROLLBACK")
                    else:
                        session.execute("BEGIN")
                        session.execute(f"INSERT INTO docs VALUES ({row_id}, {tid})")
                        session.execute("COMMIT")
                        mine.add(row_id)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        run_threads([lambda t=t: worker(t) for t in range(N_THREADS)])
        assert not errors
        oracle = sorted(row_id for mine in acked for row_id in mine)
        assert table_ids(db) == oracle

    def test_conflicting_deletes_one_winner_per_row(self, db):
        for i in range(10):
            db.execute(f"INSERT INTO docs VALUES ({i}, 0)")
        deleted = [[] for _ in range(N_THREADS)]
        conflicts = []
        errors = []

        def worker(tid):
            session = db.session(f"client-{tid}")
            try:
                for i in range(10):
                    try:
                        result = session.execute(f"DELETE FROM docs WHERE id = {i}")
                        if result.command == "DELETE 1":
                            deleted[tid].append(i)
                    except SerializationError:
                        conflicts.append((tid, i))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        run_threads([lambda t=t: worker(t) for t in range(N_THREADS)])
        assert not errors
        # Every row was deleted by exactly one thread; the rest saw
        # either DELETE 0 (already gone) or a serialization conflict.
        winners = sorted(i for mine in deleted for i in mine)
        assert winners == list(range(10))
        assert table_ids(db) == []


class TestSnapshotStabilityUnderLoad:
    def test_pinned_snapshot_stable_while_writers_churn(self, db):
        for i in range(20):
            db.execute(f"INSERT INTO docs VALUES ({i}, 0)")
        stop = threading.Event()
        drift = []
        errors = []

        def reader():
            session = db.session("reader")
            try:
                session.execute("BEGIN")
                baseline = session.execute("SELECT count(*) FROM docs").scalar()
                while not stop.is_set():
                    seen = session.execute("SELECT count(*) FROM docs").scalar()
                    if seen != baseline:
                        drift.append((baseline, seen))
                session.execute("COMMIT")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        def writer(tid):
            session = db.session(f"writer-{tid}")
            try:
                for i in range(OPS_PER_THREAD):
                    session.execute(f"INSERT INTO docs VALUES ({1000 + tid * 100 + i}, {tid})")
                    if i % 3 == 0:
                        session.execute(f"DELETE FROM docs WHERE id = {i % 20}")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        run_threads([lambda t=t: writer(t) for t in range(N_THREADS - 1)])
        stop.set()
        reader_thread.join()
        assert not errors
        assert drift == []

    def test_transaction_state_is_per_session(self, db):
        """One thread's open/failed block never leaks into another's."""
        barrier = threading.Barrier(N_THREADS)
        errors = []

        def worker(tid):
            session = db.session(f"client-{tid}")
            try:
                session.execute("BEGIN")
                barrier.wait(timeout=30)
                assert session.in_transaction
                session.execute(f"INSERT INTO docs VALUES ({tid}, 0)")
                if tid % 2 == 0:
                    session.execute("COMMIT")
                else:
                    session.execute("ROLLBACK")
                assert not session.in_transaction
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        run_threads([lambda t=t: worker(t) for t in range(N_THREADS)])
        assert not errors
        assert table_ids(db) == [t for t in range(N_THREADS) if t % 2 == 0]

    def test_statement_lock_contention_is_accounted(self, db):
        """Heavy multi-thread traffic shows up in the wait-event ledger."""
        def worker(tid):
            session = db.session(f"client-{tid}")
            for i in range(OPS_PER_THREAD):
                session.execute(f"INSERT INTO docs VALUES ({tid * 1000 + i}, 0)")
                session.query("SELECT count(*) FROM docs")

        run_threads([lambda t=t: worker(t) for t in range(N_THREADS)])
        rows = db.query("SELECT wait_event_type, wait_event, count FROM pg_stat_wait_events")
        by_event = {r[1]: r for r in rows}
        # Contention is probabilistic, but the event must at least be a
        # known, classified wait event when it does fire.
        if "SessionStatementLock" in by_event:
            assert by_event["SessionStatementLock"][0] == "Lock"
            assert by_event["SessionStatementLock"][2] >= 1
