"""Tests for the catalog and the index AM registry."""

import pytest

import repro.pase  # noqa: F401  — registers the PASE access methods
import repro.pgvector  # noqa: F401  — registers the pgvector access method
from repro.pgsim.am import AM_REGISTRY, IndexAmRoutine, lookup_am, register_am
from repro.pgsim.catalog import Catalog, CatalogError, IndexInfo, TableInfo
from repro.pgsim.buffer import BufferManager
from repro.pgsim.heapam import HeapTable
from repro.pgsim.storage import MemoryDisk
from repro.pgsim.tuple_format import Column


@pytest.fixture()
def catalog():
    return Catalog()


def _table_info(name="t"):
    disk = MemoryDisk()
    buffer = BufferManager(disk, capacity=16)
    schema = [Column.from_sql("id", "int"), Column.from_sql("vec", "float[]")]
    return TableInfo(name=name, columns=schema, heap=HeapTable(name, schema, buffer))


class TestCatalog:
    def test_table_lifecycle(self, catalog):
        catalog.add_table(_table_info())
        assert catalog.has_table("t")
        assert catalog.table_names() == ["t"]
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_duplicate_table(self, catalog):
        catalog.add_table(_table_info())
        with pytest.raises(CatalogError):
            catalog.add_table(_table_info())

    def test_missing_table(self, catalog):
        with pytest.raises(CatalogError):
            catalog.table("ghost")

    def test_index_bookkeeping(self, catalog):
        catalog.add_table(_table_info())
        info = IndexInfo("ix", "t", "vec", "pase_ivfflat", {}, am=None)
        catalog.add_index(info)
        assert catalog.find_index("ix") is info
        assert catalog.indexes_on("t") == [info]
        assert catalog.indexes_on("t", "vec") == [info]
        assert catalog.indexes_on("t", "id") == []
        catalog.drop_index("ix")
        assert catalog.find_index("ix") is None

    def test_duplicate_index(self, catalog):
        catalog.add_table(_table_info())
        catalog.add_index(IndexInfo("ix", "t", "vec", "a", {}, None))
        with pytest.raises(CatalogError):
            catalog.add_index(IndexInfo("ix", "t", "vec", "a", {}, None))

    def test_drop_missing_index(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop_index("nope")

    def test_settings_case_insensitive(self, catalog):
        catalog.set_setting("PASE.NPROBE", 7)
        assert catalog.get_setting("pase.nprobe") == 7

    def test_default_settings_present(self, catalog):
        assert catalog.get_setting("pase.nprobe") == 20
        assert catalog.get_setting("pase.efs") == 200
        assert catalog.get_setting("enable_indexscan") is True

    def test_unknown_setting(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get_setting("work_mem")


class TestAmRegistry:
    def test_vector_ams_registered(self):
        for name in ("pase_ivfflat", "pase_ivfpq", "pase_hnsw", "ivfflat"):
            assert name in AM_REGISTRY

    def test_paper_aliases_registered(self):
        """The paper's CREATE INDEX uses ivfflat_fun-style names."""
        assert lookup_am("ivfflat_fun") is lookup_am("pase_ivfflat")
        assert lookup_am("hnsw_fun") is lookup_am("pase_hnsw")
        assert lookup_am("ivfpq_fun") is lookup_am("pase_ivfpq")

    def test_unknown_am(self):
        with pytest.raises(KeyError) as err:
            lookup_am("gin")
        assert "known" in str(err.value)

    def test_register_requires_amname(self):
        class Anonymous(IndexAmRoutine):
            def build(self): ...
            def insert(self, tid, value): ...
            def scan(self, query, k): ...
            def size_info(self): ...

        with pytest.raises(ValueError):
            register_am(Anonymous)

    def test_register_rejects_duplicates(self):
        class Clash(IndexAmRoutine):
            amname = "pase_ivfflat"

            def build(self): ...
            def insert(self, tid, value): ...
            def scan(self, query, k): ...
            def size_info(self): ...

        with pytest.raises(ValueError):
            register_am(Clash)

    def test_default_delete_unsupported(self):
        cls = lookup_am("pase_ivfflat")
        assert IndexAmRoutine.delete is not None
        # The base implementation refuses.
        import numpy as np

        from repro.pgsim.heapam import TID

        disk = MemoryDisk()
        buffer = BufferManager(disk, capacity=16)
        schema = [Column.from_sql("id", "int"), Column.from_sql("vec", "float[]")]
        table = HeapTable("x", schema, buffer)
        am = cls("ix", table, 1, buffer, Catalog(), {})
        with pytest.raises(NotImplementedError):
            am.delete(TID(0, 1))
