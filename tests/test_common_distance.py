"""Tests for repro.common.distance: kernel correctness and agreement."""

import numpy as np
import pytest

from repro.common import distance
from repro.common.types import DistanceType


@pytest.fixture(scope="module")
def mats(rng):
    q = rng.normal(size=(7, 12)).astype(np.float32)
    t = rng.normal(size=(23, 12)).astype(np.float32)
    return q, t


class TestPairwiseKernels:
    def test_l2_sqr_known_value(self):
        a = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        b = np.array([4.0, 0.0, 3.0], dtype=np.float32)
        assert distance.l2_sqr(a, b) == pytest.approx(9 + 4 + 0)

    def test_l2_sqr_zero_for_identical(self):
        a = np.arange(8, dtype=np.float32)
        assert distance.l2_sqr(a, a) == 0.0

    def test_inner_product_known_value(self):
        a = np.array([1.0, 2.0], dtype=np.float32)
        b = np.array([3.0, -1.0], dtype=np.float32)
        assert distance.inner_product(a, b) == pytest.approx(1.0)

    def test_cosine_distance_orthogonal(self):
        a = np.array([1.0, 0.0], dtype=np.float32)
        b = np.array([0.0, 5.0], dtype=np.float32)
        assert distance.cosine_distance(a, b) == pytest.approx(1.0)

    def test_cosine_distance_parallel(self):
        a = np.array([2.0, 2.0], dtype=np.float32)
        assert distance.cosine_distance(a, 3 * a) == pytest.approx(0.0, abs=1e-6)

    def test_cosine_distance_zero_vector(self):
        a = np.zeros(4, dtype=np.float32)
        b = np.ones(4, dtype=np.float32)
        assert distance.cosine_distance(a, b) == 1.0


class TestBatchKernels:
    def test_l2_batch_matches_pairwise(self, mats):
        q, t = mats
        batch = distance.l2_sqr_batch(q, t)
        assert batch.shape == (7, 23)
        for i in range(q.shape[0]):
            for j in range(t.shape[0]):
                assert batch[i, j] == pytest.approx(distance.l2_sqr(q[i], t[j]), rel=1e-4, abs=1e-3)

    def test_l2_batch_matches_loop_reference(self, mats):
        q, t = mats
        np.testing.assert_allclose(
            distance.l2_sqr_batch(q, t),
            distance.l2_sqr_pairwise_loop(q, t),
            rtol=1e-4,
            atol=1e-3,
        )

    def test_l2_batch_nonnegative_despite_cancellation(self, rng):
        # Near-identical vectors provoke catastrophic cancellation in
        # the SGEMM decomposition; the kernel must clip at zero.
        base = rng.normal(size=(1, 32)).astype(np.float32) * 1e3
        near = base + rng.normal(size=(5, 32)).astype(np.float32) * 1e-4
        dists = distance.l2_sqr_batch(base, near)
        assert (dists >= 0.0).all()

    def test_l2_batch_precomputed_norms(self, mats):
        q, t = mats
        norms = distance.squared_norms(t)
        np.testing.assert_allclose(
            distance.l2_sqr_batch(q, t, norms),
            distance.l2_sqr_batch(q, t),
            rtol=1e-6,
        )

    def test_inner_product_batch_negated(self, mats):
        q, t = mats
        batch = distance.inner_product_batch(q, t)
        assert batch[0, 0] == pytest.approx(-distance.inner_product(q[0], t[0]), rel=1e-5)

    def test_cosine_batch_matches_pairwise(self, mats):
        q, t = mats
        batch = distance.cosine_distance_batch(q, t)
        for i in (0, 3):
            for j in (0, 11, 22):
                assert batch[i, j] == pytest.approx(
                    distance.cosine_distance(q[i], t[j]), rel=1e-4, abs=1e-5
                )

    def test_squared_norms(self, mats):
        __, t = mats
        np.testing.assert_allclose(
            distance.squared_norms(t), (t.astype(np.float64) ** 2).sum(axis=1), rtol=1e-4
        )


class TestKernelRegistry:
    @pytest.mark.parametrize("dt", list(DistanceType))
    def test_pairwise_kernel_exists(self, dt):
        kernel = distance.pairwise_kernel(dt)
        a = np.ones(4, dtype=np.float32)
        assert isinstance(kernel(a, a), float)

    @pytest.mark.parametrize("dt", list(DistanceType))
    def test_batch_kernel_exists(self, dt):
        kernel = distance.batch_kernel(dt)
        a = np.ones((2, 4), dtype=np.float32)
        assert kernel(a, a).shape == (2, 2)

    def test_unknown_distance_type_rejected(self):
        with pytest.raises(ValueError):
            distance.pairwise_kernel(99)  # type: ignore[arg-type]

    def test_smaller_is_more_similar_for_all_metrics(self, rng):
        # The engines rank ascending for every metric; check that a
        # vector is at least as close to itself as to a random other.
        a = rng.normal(size=16).astype(np.float32)
        b = rng.normal(size=16).astype(np.float32) * 3
        for dt in DistanceType:
            kernel = distance.pairwise_kernel(dt)
            assert kernel(a, a) <= kernel(a, b)
