"""Statistics, cost model and hybrid filtered-search tests.

Covers the three-stage optimizer end to end: ``ANALYZE`` populating
catalog statistics (and the ``pg_stats`` / ``pg_stat_user_tables``
views over them), selectivity estimation, the cost-based plan flip
between the hybrid index scan and seq-scan + sort, EXPLAIN's
``cost=..rows=..`` annotations with ``COSTS off``, and the exact-k
guarantee of the adaptive over-fetch executor.
"""

import numpy as np
import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.analyze import clause_selectivity
from repro.pgsim.sql import parse_sql

DIM = 8
QUERY = ",".join(["0.5"] * DIM)


def _load(db: PgSimDatabase, n: int, n_values: int, seed: int = 0) -> None:
    """Bulk-load ``n`` rows: ``a = i % n_values``, random vector."""
    db.execute("CREATE TABLE t (a INT4, vec FLOAT4[])")
    rng = np.random.default_rng(seed)
    table = db.catalog.table("t")
    for i in range(n):
        table.heap.insert([i % n_values, rng.random(DIM).astype(np.float32)], xid=1)
    db.wal.log_commit(1)


def _where_sel(db: PgSimDatabase, predicate: str) -> float:
    (stmt,) = parse_sql(f"SELECT a FROM t WHERE {predicate}")
    return clause_selectivity(stmt.where, db.catalog.table("t"))


@pytest.fixture()
def analyzed_db():
    db = PgSimDatabase(buffer_pool_pages=256)
    _load(db, n=2000, n_values=1000)
    db.execute("ANALYZE t")
    return db


class TestAnalyze:
    def test_analyze_populates_table_stats(self, analyzed_db):
        stats = analyzed_db.catalog.table("t").stats
        assert stats is not None
        assert stats.reltuples == 2000.0
        assert stats.relpages >= 1
        col = stats.columns["a"]
        assert col.n_distinct == 1000
        assert col.null_frac == 0.0
        # Every value appears twice -> MCVs up to the statistics target,
        # and an equi-depth histogram over the rest.
        assert 0 < len(col.mcv_values) <= 100
        assert len(col.histogram_bounds) >= 2

    def test_analyze_skips_vector_columns(self, analyzed_db):
        stats = analyzed_db.catalog.table("t").stats
        assert "vec" not in stats.columns

    def test_analyze_without_table_analyzes_all(self):
        db = PgSimDatabase()
        _load(db, n=50, n_values=10)
        db.execute("CREATE TABLE u (b INT4)")
        db.execute("INSERT INTO u VALUES (1), (2), (3)")
        result = db.execute("ANALYZE")
        assert result.command == "ANALYZE"
        assert db.catalog.table("t").stats is not None
        assert db.catalog.table("u").stats is not None

    def test_analyze_unknown_table_raises(self):
        db = PgSimDatabase()
        with pytest.raises(Exception):
            db.execute("ANALYZE nope")


class TestSelectivity:
    def test_range_estimates_track_truth(self, analyzed_db):
        # a is uniform over 0..999: true selectivity of a < c is c/1000.
        for cut, truth in ((50, 0.05), (500, 0.5), (900, 0.9)):
            est = _where_sel(analyzed_db, f"a < {cut}")
            assert abs(est - truth) < 0.05, (cut, est)

    def test_range_beyond_bounds_clamps(self, analyzed_db):
        assert _where_sel(analyzed_db, "a < 5000") == 1.0
        assert _where_sel(analyzed_db, "a < -1") == 0.0
        assert abs(_where_sel(analyzed_db, "a >= -1") - 1.0) < 1e-9

    def test_eq_uses_mcv_frequency(self, analyzed_db):
        # Every value appears twice in 2000 rows.
        est = _where_sel(analyzed_db, "a = 0")
        assert abs(est - 2 / 2000) < 1e-6

    def test_boolean_composition(self, analyzed_db):
        s_and = _where_sel(analyzed_db, "a < 500 AND a >= 0")
        s1, s2 = _where_sel(analyzed_db, "a < 500"), _where_sel(analyzed_db, "a >= 0")
        assert abs(s_and - s1 * s2) < 1e-9
        s_or = _where_sel(analyzed_db, "a < 100 OR a >= 900")
        assert 0.15 < s_or < 0.25
        s_not = _where_sel(analyzed_db, "NOT (a < 100)")
        assert abs(s_not - (1.0 - _where_sel(analyzed_db, "a < 100"))) < 1e-9

    def test_unanalyzed_falls_back_to_defaults(self):
        db = PgSimDatabase()
        _load(db, n=100, n_values=50)
        assert abs(_where_sel(db, "a < 10") - 1.0 / 3.0) < 1e-9


@pytest.fixture()
def indexed_analyzed_db(analyzed_db):
    analyzed_db.execute(
        "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
        "WITH (clusters = 16, sample_ratio = 0.5, seed = 1)"
    )
    return analyzed_db


def _hybrid_sql(cut: int, k: int = 10) -> str:
    return (
        f"SELECT a FROM t WHERE a < {cut} "
        f"ORDER BY vec <-> '{QUERY}'::PASE LIMIT {k}"
    )


class TestPlanFlip:
    """The acceptance golden test: cost estimates flip the plan from
    index scan to seq-scan + sort as the estimated selectivity drops."""

    def test_high_selectivity_picks_index_scan(self, indexed_analyzed_db):
        plan = indexed_analyzed_db.explain(_hybrid_sql(900))
        assert "Index Scan using ix" in plan
        assert "Filter: (a < 900)" in plan
        assert "Seq Scan" not in plan

    def test_low_selectivity_picks_seq_scan(self, indexed_analyzed_db):
        plan = indexed_analyzed_db.explain(_hybrid_sql(50))
        assert "Seq Scan on t" in plan
        assert "Index Scan" not in plan

    def test_explain_prints_cost_and_rows(self, indexed_analyzed_db):
        for cut in (50, 900):
            plan = indexed_analyzed_db.explain(_hybrid_sql(cut))
            assert "cost=" in plan and "rows=" in plan

    def test_row_estimates_track_selectivity(self, indexed_analyzed_db):
        plan = indexed_analyzed_db.explain("SELECT a FROM t WHERE a < 50")
        # Filter output estimate: 2000 * 0.05 = 100.
        assert "rows=100" in plan

    def test_costs_off_suppresses_estimates(self, indexed_analyzed_db):
        result = indexed_analyzed_db.execute(
            f"EXPLAIN (COSTS off) {_hybrid_sql(900)}"
        )
        plan = "\n".join(row[0] for row in result.rows)
        assert "Index Scan using ix" in plan
        assert "cost=" not in plan
        assert "rows=" not in plan
        assert "Over-fetch" not in plan
        # The pushed-down filter is structural, not a cost detail.
        assert "Filter: (a < 900)" in plan

    def test_over_fetch_sized_from_selectivity(self, indexed_analyzed_db):
        plan = indexed_analyzed_db.explain(_hybrid_sql(900))
        # fetch_k = ceil(k / 0.9) = 12 for k=10.
        assert "Over-fetch: fetch_k=12" in plan

    def test_pure_knn_still_pins_index(self, indexed_analyzed_db):
        plan = indexed_analyzed_db.explain(
            f"SELECT a FROM t ORDER BY vec <-> '{QUERY}'::PASE LIMIT 10"
        )
        assert "Index Scan using ix" in plan

    def test_enable_indexscan_off_forces_seq(self, indexed_analyzed_db):
        indexed_analyzed_db.execute("SET enable_indexscan = off")
        plan = indexed_analyzed_db.explain(_hybrid_sql(900))
        assert "Seq Scan on t" in plan
        assert "Index Scan" not in plan


class TestExactK:
    """Regression for the paper-adjacent bug: ``WHERE p AND ORDER BY
    vec <-> q LIMIT k`` over an index scan silently returned fewer than
    k rows.  The over-fetch/rescan loop must return exactly k whenever
    at least k rows match, at every selectivity, on both executors."""

    @pytest.mark.parametrize("batch", ["off", "on"])
    @pytest.mark.parametrize("cut", [20, 100, 500, 900])
    def test_exactly_k_rows(self, indexed_analyzed_db, batch, cut):
        db = indexed_analyzed_db
        db.execute("SET enable_seqscan = off")  # pin the index path
        db.execute(f"SET enable_batch_exec = {batch}")
        k = 10
        rows = db.query(_hybrid_sql(cut, k))
        # 2000 rows, a uniform over 0..999: 2*cut rows match, >= k here.
        assert len(rows) == k
        assert all(a < cut for (a,) in rows)

    @pytest.mark.parametrize("batch", ["off", "on"])
    def test_fewer_matches_than_k(self, indexed_analyzed_db, batch):
        db = indexed_analyzed_db
        db.execute("SET enable_seqscan = off")
        db.execute(f"SET enable_batch_exec = {batch}")
        rows = db.query(_hybrid_sql(2, k=10))  # only 4 rows have a < 2
        assert len(rows) == 4
        assert all(a < 2 for (a,) in rows)

    @pytest.mark.parametrize("batch", ["off", "on"])
    def test_paths_agree(self, indexed_analyzed_db, batch):
        db = indexed_analyzed_db
        db.execute("SET enable_seqscan = off")
        db.execute("SET enable_batch_exec = off")
        tuple_rows = db.query(_hybrid_sql(300))
        db.execute("SET enable_batch_exec = on")
        assert db.query(_hybrid_sql(300)) == tuple_rows


class TestStatViews:
    def test_pg_stats_rows(self, analyzed_db):
        rows = analyzed_db.query(
            "SELECT tablename, attname, n_distinct FROM pg_stats"
        )
        assert ("t", "a", 1000) in rows

    def test_pg_stats_renders_arrays(self, analyzed_db):
        rows = analyzed_db.query("SELECT * FROM pg_stats")
        row = next(r for r in rows if r[1] == "a")
        mcvs, freqs, bounds = row[4], row[5], row[6]
        assert mcvs.startswith("{") and mcvs.endswith("}")
        assert freqs.startswith("{") and bounds.startswith("{")

    def test_pg_stat_user_tables(self, analyzed_db):
        (row,) = analyzed_db.query("SELECT * FROM pg_stat_user_tables")
        relpages = analyzed_db.catalog.table("t").stats.relpages
        assert row[:4] == ("t", 2000.0, relpages, 2000)
        assert row[4] is not None  # last_analyze timestamp

    def test_unanalyzed_table_shows_null_stats(self):
        db = PgSimDatabase()
        _load(db, n=10, n_values=5)
        (row,) = db.query("SELECT * FROM pg_stat_user_tables")
        assert row[0] == "t"
        assert row[1] is None and row[2] is None
        assert row[3] == 10  # n_live_tup is live, not stats-derived
        assert db.query("SELECT count(*) FROM pg_stats") == [(0,)]


class TestStatsDurability:
    """ANALYZE is a catalog mutation: it must survive checkpoint and
    crash recovery like CREATE TABLE/INDEX (replayed from the DDL log
    over the recovered heap)."""

    def _populate(self, db):
        db.execute("CREATE TABLE t (a INT4, vec FLOAT4[])")
        for i in range(40):
            db.execute(f"INSERT INTO t VALUES ({i % 10}, '{i}.0,{2 * i}.0'::PASE)")
        db.execute("ANALYZE t")

    def test_stats_survive_checkpoint(self, tmp_path):
        db = PgSimDatabase(buffer_pool_pages=16, data_dir=tmp_path)
        self._populate(db)
        db.checkpoint()
        assert db.query("SELECT tablename, attname FROM pg_stats") == [("t", "a")]
        (row,) = db.query("SELECT relname, reltuples FROM pg_stat_user_tables")
        assert row == ("t", 40.0)

    def test_stats_survive_crash_recovery(self, tmp_path):
        db = PgSimDatabase(buffer_pool_pages=16, data_dir=tmp_path)
        self._populate(db)
        db.wal.flush()
        del db  # crash: no checkpoint, no clean shutdown

        recovered = PgSimDatabase(buffer_pool_pages=16, data_dir=tmp_path)
        stats = recovered.catalog.table("t").stats
        assert stats is not None and stats.reltuples == 40.0
        assert stats.columns["a"].n_distinct == 10
        assert recovered.query("SELECT tablename FROM pg_stats") == [("t",)]
        (row,) = recovered.query(
            "SELECT relname, reltuples, n_live_tup FROM pg_stat_user_tables"
        )
        assert row == ("t", 40.0, 40)

    def test_analyze_all_survives_recovery(self, tmp_path):
        db = PgSimDatabase(buffer_pool_pages=16, data_dir=tmp_path)
        db.execute("CREATE TABLE t (a INT4)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("ANALYZE")
        db.wal.flush()
        del db
        recovered = PgSimDatabase(buffer_pool_pages=16, data_dir=tmp_path)
        assert recovered.catalog.table("t").stats is not None
