"""End-to-end SQL tests against PgSimDatabase (the pgsim surface)."""

import numpy as np
import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.catalog import CatalogError
from repro.pgsim.executor import ExecutionError


class TestDDL:
    def test_create_drop_table(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, name text)")
        assert fresh_db.catalog.has_table("t")
        fresh_db.execute("DROP TABLE t")
        assert not fresh_db.catalog.has_table("t")

    def test_duplicate_table_rejected(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        with pytest.raises(CatalogError):
            fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("CREATE TABLE IF NOT EXISTS t (id int)")  # no error

    def test_drop_missing_table(self, fresh_db):
        with pytest.raises(CatalogError):
            fresh_db.execute("DROP TABLE ghost")
        fresh_db.execute("DROP TABLE IF EXISTS ghost")  # no error

    def test_duplicate_columns_rejected(self, fresh_db):
        with pytest.raises(CatalogError):
            fresh_db.execute("CREATE TABLE t (a int, a int)")

    def test_index_requires_vector_column(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, vec float[])")
        fresh_db.execute("INSERT INTO t VALUES (1, '1,2'::PASE)")
        with pytest.raises(ExecutionError):
            fresh_db.execute("CREATE INDEX ix ON t USING pase_ivfflat (id)")

    def test_unknown_am_rejected(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, vec float[])")
        with pytest.raises(KeyError):
            fresh_db.execute("CREATE INDEX ix ON t USING btree_gin (vec)")

    def test_drop_index_frees_storage(self, loaded_db):
        loaded_db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 8, sample_ratio = 0.5, seed = 1)"
        )
        assert loaded_db.disk.relation_exists("ix.centroid")
        loaded_db.execute("DROP INDEX ix")
        assert not loaded_db.disk.relation_exists("ix.centroid")
        assert loaded_db.catalog.find_index("ix") is None


class TestInsertSelect:
    def test_insert_and_select_star(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, name text)")
        fresh_db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        result = fresh_db.execute("SELECT * FROM t")
        assert result.columns == ["id", "name"]
        assert result.rows == [(1, "a"), (2, "b")]

    def test_insert_column_subset(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, name text, score float)")
        fresh_db.execute("INSERT INTO t (name, id) VALUES ('x', 3)")
        assert fresh_db.query("SELECT id, name, score FROM t") == [(3, "x", None)]

    def test_insert_arity_checked(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int, name text)")
        with pytest.raises(ExecutionError):
            fresh_db.execute("INSERT INTO t VALUES (1)")

    def test_where_filter(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
        assert fresh_db.query("SELECT id FROM t WHERE id > 2") == [(3,), (4,)]

    def test_order_by_and_limit(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (3), (1), (2)")
        assert fresh_db.query("SELECT id FROM t ORDER BY id DESC LIMIT 2") == [(3,), (2,)]

    def test_aggregates(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert fresh_db.execute("SELECT count(*) FROM t").scalar() == 3
        assert fresh_db.execute("SELECT sum(id) FROM t").scalar() == 6
        assert fresh_db.execute("SELECT min(id) FROM t").scalar() == 1
        assert fresh_db.execute("SELECT max(id) FROM t").scalar() == 3
        assert fresh_db.execute("SELECT avg(id) FROM t").scalar() == 2.0

    def test_aggregate_with_filter(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert fresh_db.execute("SELECT count(*) FROM t WHERE id >= 2").scalar() == 2

    def test_expression_targets(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (4)")
        assert fresh_db.query("SELECT id * 2 + 1 FROM t") == [(9,)]

    def test_select_without_table(self, fresh_db):
        assert fresh_db.query("SELECT 1 + 1") == [(2,)]

    def test_vector_roundtrip(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (vec float[])")
        fresh_db.execute("INSERT INTO t VALUES ('0.5,1.5,2.5'::PASE)")
        (vec,) = fresh_db.query("SELECT vec FROM t")[0]
        np.testing.assert_array_equal(vec, np.array([0.5, 1.5, 2.5], dtype=np.float32))

    def test_vacuum_statement(self, fresh_db):
        fresh_db.execute("CREATE TABLE t (id int)")
        fresh_db.execute("INSERT INTO t VALUES (1)")
        result = fresh_db.execute("VACUUM t")
        assert result.command.startswith("VACUUM")


class TestSettings:
    def test_set_show(self, fresh_db):
        fresh_db.execute("SET pase.nprobe = 33")
        assert fresh_db.execute("SHOW pase.nprobe").scalar() == 33

    def test_unknown_setting(self, fresh_db):
        with pytest.raises(CatalogError):
            fresh_db.execute("SHOW pase.bogus")

    def test_boolean_setting(self, fresh_db):
        fresh_db.execute("SET pase.fixed_heap = true")
        assert fresh_db.execute("SHOW pase.fixed_heap").scalar() is True


class TestVectorSearchSQL:
    @pytest.fixture()
    def indexed_db(self, loaded_db):
        loaded_db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 12, sample_ratio = 0.5, seed = 1)"
        )
        loaded_db.execute("SET pase.nprobe = 12")
        return loaded_db

    def test_index_scan_matches_ground_truth(self, indexed_db, small_dataset, vec_lit):
        gt = small_dataset.ground_truth(5)
        for qi in range(3):
            rows = indexed_db.query(
                f"SELECT id FROM items ORDER BY vec <-> '{vec_lit(small_dataset.queries[qi])}'::PASE LIMIT 5"
            )
            assert [r[0] for r in rows] == gt[qi].tolist()

    def test_planner_uses_index(self, indexed_db, small_dataset, vec_lit):
        plan = indexed_db.explain(
            f"SELECT id FROM items ORDER BY vec <-> '{vec_lit(small_dataset.queries[0])}'::PASE LIMIT 3"
        )
        assert "Index Scan using ix" in plan

    def test_seqscan_when_disabled(self, indexed_db, small_dataset, vec_lit):
        indexed_db.execute("SET enable_indexscan = false")
        plan = indexed_db.explain(
            f"SELECT id FROM items ORDER BY vec <-> '{vec_lit(small_dataset.queries[0])}'::PASE LIMIT 3"
        )
        assert "Seq Scan" in plan

    def test_seqscan_and_indexscan_agree(self, indexed_db, small_dataset, vec_lit):
        lit = vec_lit(small_dataset.queries[1])
        sql = f"SELECT id FROM items ORDER BY vec <-> '{lit}'::PASE LIMIT 7"
        fast = indexed_db.query(sql)
        indexed_db.execute("SET enable_indexscan = false")
        slow = indexed_db.query(sql)
        assert fast == slow

    def test_no_index_without_limit(self, indexed_db, small_dataset, vec_lit):
        plan = indexed_db.explain(
            f"SELECT id FROM items ORDER BY vec <-> '{vec_lit(small_dataset.queries[0])}'::PASE"
        )
        assert "Index Scan" not in plan

    def test_desc_order_not_index_assisted(self, indexed_db, small_dataset, vec_lit):
        plan = indexed_db.explain(
            f"SELECT id FROM items ORDER BY vec <-> '{vec_lit(small_dataset.queries[0])}'::PASE DESC LIMIT 3"
        )
        assert "Index Scan" not in plan

    def test_distance_selectable(self, indexed_db, small_dataset, vec_lit):
        lit = vec_lit(small_dataset.queries[0])
        rows = indexed_db.query(
            f"SELECT id, vec <-> '{lit}'::PASE AS dist FROM items "
            f"ORDER BY vec <-> '{lit}'::PASE LIMIT 4"
        )
        dists = [r[1] for r in rows]
        assert dists == sorted(dists)

    def test_where_filter_on_index_scan(self, indexed_db, small_dataset, vec_lit):
        lit = vec_lit(small_dataset.queries[0])
        rows = indexed_db.query(
            f"SELECT id FROM items WHERE id < 100 "
            f"ORDER BY vec <-> '{lit}'::PASE LIMIT 50"
        )
        assert all(r[0] < 100 for r in rows)

    def test_insert_after_index_found_by_search(self, indexed_db, small_dataset, vec_lit):
        probe = small_dataset.base[0] + 50.0
        indexed_db.execute(f"INSERT INTO items VALUES (9999, '{vec_lit(probe)}'::PASE)")
        rows = indexed_db.query(
            f"SELECT id FROM items ORDER BY vec <-> '{vec_lit(probe)}'::PASE LIMIT 1"
        )
        assert rows == [(9999,)]


class TestPersistence:
    def test_file_backed_database(self, tmp_path, small_dataset, vec_lit):
        db = PgSimDatabase(data_dir=tmp_path, buffer_pool_pages=256)
        db.execute("CREATE TABLE t (id int, vec float[])")
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ({i}, '{vec_lit(small_dataset.base[i])}'::PASE)")
        db.checkpoint()
        assert (tmp_path / "t.heap.rel").exists()
        assert db.execute("SELECT count(*) FROM t").scalar() == 20
