"""Tests for the specialized engine's batched query API."""

import numpy as np
import pytest

from repro.specialized import FlatIndex, HNSWIndex, IVFFlatIndex


class TestBatchSearch:
    def test_flat_batch_equals_single(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base)
        batch = index.search_batch(small_dataset.queries, 5)
        for result, q in zip(batch, small_dataset.queries):
            assert result.ids == index.search(q, 5).ids

    def test_flat_batch_matches_ground_truth(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base)
        gt = small_dataset.ground_truth(5)
        batch = index.search_batch(small_dataset.queries, 5)
        for qi, result in enumerate(batch):
            assert result.ids == gt[qi].tolist()

    def test_ivf_batch_equals_single(self, small_dataset):
        index = IVFFlatIndex(small_dataset.dim, n_clusters=8, sample_ratio=0.5, seed=1)
        index.train(small_dataset.base)
        index.add(small_dataset.base)
        batch = index.search_batch(small_dataset.queries, 5, nprobe=4)
        for result, q in zip(batch, small_dataset.queries):
            assert result.ids == index.search(q, 5, nprobe=4).ids

    def test_hnsw_batch_equals_single(self, small_dataset):
        index = HNSWIndex(small_dataset.dim, bnn=6, efb=16, seed=4)
        index.add(small_dataset.base[:300])
        batch = index.search_batch(small_dataset.queries, 5, efs=30)
        for result, q in zip(batch, small_dataset.queries):
            assert result.ids == index.search(q, 5, efs=30).ids

    def test_batch_dim_checked(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base)
        with pytest.raises(ValueError):
            index.search_batch(np.zeros((2, small_dataset.dim + 1), dtype=np.float32), 3)

    def test_flat_batch_rejects_unknown_options(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base)
        with pytest.raises(TypeError):
            index.search_batch(small_dataset.queries, 3, nprobe=5)

    def test_single_row_batch(self, small_dataset):
        index = FlatIndex(small_dataset.dim)
        index.add(small_dataset.base)
        batch = index.search_batch(small_dataset.queries[:1], 3)
        assert len(batch) == 1
        assert batch[0].ids == index.search(small_dataset.queries[0], 3).ids
