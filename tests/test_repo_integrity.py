"""Repository-integrity checks: docs, examples and registry stay in sync."""

import ast
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDocs:
    def test_required_docs_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (REPO / name).is_file(), f"{name} missing"

    def test_design_confirms_paper_text(self):
        text = (REPO / "DESIGN.md").read_text()
        assert "Paper-text check" in text
        assert "PASE" in text and "Faiss" in text

    def test_experiments_covers_every_registered_experiment(self):
        from repro.bench import EXPERIMENTS

        text = (REPO / "EXPERIMENTS.md").read_text()
        for exp_id in EXPERIMENTS:
            assert exp_id in text, f"EXPERIMENTS.md does not mention {exp_id}"

    def test_design_lists_all_root_causes(self):
        text = (REPO / "DESIGN.md").read_text()
        for i in range(1, 8):
            assert f"RC#{i}" in text

    def test_readme_quickstart_commands_valid(self):
        text = (REPO / "README.md").read_text()
        assert "pip install -e ." in text
        assert "pytest tests/" in text
        assert "repro-bench" in text


class TestExamples:
    def test_at_least_three_examples(self):
        examples = list((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3

    @pytest.mark.parametrize(
        "name",
        [p.name for p in sorted((REPO / "examples").glob("*.py"))],
    )
    def test_examples_parse_and_have_main(self, name):
        source = (REPO / "examples" / name).read_text()
        tree = ast.parse(source)
        functions = {n.name for n in tree.body if isinstance(n, ast.FunctionDef)}
        assert "main" in functions, f"{name} has no main()"
        assert ast.get_docstring(tree), f"{name} has no module docstring"


class TestBenchmarkFiles:
    def test_one_bench_file_per_paper_artifact(self):
        bench_dir = REPO / "benchmarks"
        names = {p.name for p in bench_dir.glob("bench_*.py")}
        for needle in (
            "bench_fig02", "bench_fig03", "bench_fig04", "bench_fig05",
            "bench_fig06", "bench_fig07", "bench_fig08", "bench_fig09",
            "bench_fig10", "bench_fig11", "bench_fig12", "bench_fig13",
            "bench_fig14", "bench_fig15", "bench_fig16", "bench_fig17",
            "bench_fig18", "bench_fig19", "bench_tab03", "bench_tab04",
            "bench_tab05",
        ):
            assert any(n.startswith(needle) for n in names), f"missing {needle}*"

    def test_bench_files_have_shape_docstrings(self):
        for path in (REPO / "benchmarks").glob("bench_fig*.py"):
            tree = ast.parse(path.read_text())
            doc = ast.get_docstring(tree) or ""
            assert "Paper shape" in doc or "paper" in doc.lower(), path.name


class TestPublicApiDocstrings:
    def test_every_public_module_documented(self):
        undocumented = []
        for path in (REPO / "src").rglob("*.py"):
            tree = ast.parse(path.read_text())
            if ast.get_docstring(tree) is None:
                undocumented.append(str(path))
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_class_and_function_documented(self):
        undocumented = []
        for path in (REPO / "src").rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, (ast.ClassDef, ast.FunctionDef)):
                    if node.name.startswith("_"):
                        continue
                    if ast.get_docstring(node) is None:
                        undocumented.append(f"{path.name}:{node.name}")
        assert not undocumented, f"public items without docstrings: {undocumented}"
