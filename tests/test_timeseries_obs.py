"""Time-series observability: ASH, stat history, estimation errors.

Three load-bearing properties:

* the ``pg_ash`` / ``pg_wait_profile`` / ``pg_stat_history`` views
  answer through the lock-free virtual path, so a blocked workload is
  diagnosable *while* it is blocked;
* ``pg_stat_estimation_errors`` reconciles **exactly** with the
  ``actual rows=N`` annotations of ``EXPLAIN ANALYZE`` on both
  executor paths (tuple and batch) — they are fed from the same
  per-node instrument dict;
* ``pg_stat_reset()`` clears the rings and entries while the lifetime
  totals survive (exercised in ``test_activity_slowlog.py``'s
  resettable-family matrix, which includes the new views).
"""

import json
import random
import re
import threading
import time

from repro.pgsim import PgSimDatabase
from repro.pgsim.ash import ActiveSessionHistory, StatHistory
from repro.pgsim.estimation import q_error
from repro.pgsim.sql import parse_sql

DIM = 8


def _lit(rng: random.Random) -> str:
    return "[" + ",".join(f"{rng.random():.5f}" for _ in range(DIM)) + "]"


def _load(db: PgSimDatabase, n: int = 60, seed: int = 0) -> random.Random:
    rng = random.Random(seed)
    db.execute("CREATE TABLE items (id int, vec float[])")
    for i in range(n):
        db.execute(f"INSERT INTO items VALUES ({i}, '{_lit(rng)}')")
    db.execute(
        "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
        "WITH (clusters = 4, sample_ratio = 1, seed = 42)"
    )
    db.execute("ANALYZE items")
    return rng


class TestActiveSessionHistory:
    def test_samples_only_active_backends(self):
        db = PgSimDatabase()
        with db.session("worker") as session:
            session.execute("CREATE TABLE t (id int)")
            # Idle backend: nothing sampled.
            assert db.ash.sample_once() == 0
            activity = db.activity.get(session.backend_id)
            activity.begin_statement("select 1", time.time())
            assert db.ash.sample_once() == 1
            activity.end_statement(False, None)
        rows = db.query("SELECT * FROM pg_ash")
        assert len(rows) == 1
        sampled_at, pid, name, state, wtype, wevent, query, xid = rows[0]
        assert (pid, name, state) == (session.backend_id, "worker", "active")
        assert (wtype, wevent) == (None, None)  # on-CPU sample
        assert query == "select 1"

    def test_ring_is_bounded_and_resizable(self):
        from repro.pgsim.activity import SessionRegistry

        registry = SessionRegistry()
        entry = registry.register(registry.next_backend_id(), "s")
        entry.begin_statement("q", 0.0)
        ash = ActiveSessionHistory(registry, ring_size=4)
        for i in range(10):
            ash.sample_once(now=float(i))
        assert len(ash) == 4
        assert ash.total_samples == 10
        assert [row[0] for row in ash.samples()] == [6.0, 7.0, 8.0, 9.0]
        ash.resize(2)  # newest survive a shrink
        assert [row[0] for row in ash.samples()] == [8.0, 9.0]
        ash.reset()
        assert len(ash) == 0 and ash.total_samples == 10

    def test_wait_profile_aggregates_shares(self):
        from repro.pgsim.activity import SessionRegistry

        registry = SessionRegistry()
        a = registry.register(registry.next_backend_id(), "a")
        b = registry.register(registry.next_backend_id(), "b")
        a.begin_statement("select x", 0.0)
        b.begin_statement("insert y", 0.0)
        ash = ActiveSessionHistory(registry)
        ash.sample_once(now=1.0)  # both on CPU
        b.wait_event = "SessionStatementLock"
        ash.sample_once(now=2.0)
        ash.sample_once(now=3.0)
        profile = {(row[0], row[2]): row for row in ash.wait_profile()}
        assert profile[("select x", "CPU")][3] == 3
        assert profile[("insert y", "SessionStatementLock")][3] == 2
        assert profile[("insert y", "SessionStatementLock")][1] == "Lock"
        # Shares sum to 1 over the retained window.
        assert abs(sum(row[4] for row in ash.wait_profile()) - 1.0) < 1e-9

    def test_blocked_session_shows_in_wait_profile(self):
        """The tentpole scenario with the time dimension: while one
        session queues on the statement lock, ASH samples taken from a
        monitor accumulate SessionStatementLock quanta, and the
        pg_wait_profile read itself runs lock-free (the test holds the
        statement lock the entire time)."""
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        blocked = db.session("blocked")
        db._statement_lock.acquire()
        done = threading.Event()

        def run_blocked():
            blocked.execute("INSERT INTO t VALUES (1)")
            done.set()

        thread = threading.Thread(target=run_blocked)
        thread.start()
        try:
            monitor = db.session("monitor")
            got = None
            deadline = time.time() + 5.0
            while time.time() < deadline:
                db.ash.sample_once()
                rows = monitor.query("SELECT * FROM pg_wait_profile")
                hit = [r for r in rows if r[2] == "SessionStatementLock"]
                if hit:
                    got = hit[0]
                    break
                time.sleep(0.002)
            assert got is not None, "lock wait never sampled"
            assert got[1] == "Lock"
            assert "insert into t" in got[0]
            assert got[3] >= 1 and 0.0 < got[4] <= 1.0
        finally:
            db._statement_lock.release()
            thread.join(timeout=5.0)
        assert done.is_set()

    def test_sampler_thread_lifecycle_via_set(self):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        assert not db._sampler.running
        db.execute("SET ash_sampling_interval_ms = 2")
        db.execute("SET stat_history_interval_ms = 5")
        db.execute("SET ash_enable = on")
        assert db._sampler.running
        deadline = time.time() + 5.0
        while db.stat_history.total_ticks < 2 and time.time() < deadline:
            db.execute("INSERT INTO t VALUES (1)")
            time.sleep(0.002)
        db.execute("SET ash_enable = off")
        assert not db._sampler.running
        assert db.stat_history.total_ticks >= 2
        ticks_after_stop = db.stat_history.total_ticks
        time.sleep(0.02)
        assert db.stat_history.total_ticks == ticks_after_stop  # really stopped
        # Restart works.
        db.execute("SET ash_enable = on")
        assert db._sampler.running
        db.execute("SET ash_enable = off")

    def test_ring_size_gucs_apply_live(self):
        db = PgSimDatabase()
        db.execute("SET ash_ring_size = 3")
        with db.session("w") as session:
            activity = db.activity.get(session.backend_id)
            activity.begin_statement("q", time.time())
            for _ in range(5):
                db.ash.sample_once()
            activity.end_statement(False, None)
        assert len(db.ash) == 3
        db.execute("SET stat_history_ring_size = 7")
        for _ in range(3):
            db.stat_history.tick()
        assert len(db.stat_history) == 7


class TestStatHistory:
    def test_deltas_between_ticks(self):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        db.stat_history.tick(now=100.0)
        for _ in range(5):
            db.execute("INSERT INTO t VALUES (1)")
        db.stat_history.tick(now=101.0)
        rows = {
            (r[1], r[2]): r
            for r in db.query("SELECT * FROM pg_stat_history")
            if r[0] == 101.0
        }
        inserted = rows[("heap_tuples_inserted", "")]
        assert inserted[3] >= 5  # cumulative value
        assert inserted[4] == 5  # delta over this window
        assert inserted[5] == 1.0  # window_seconds
        calls = rows[("statement_calls", "")]
        assert calls[4] >= 5

    def test_counter_reset_clamps_delta(self):
        """A family cleared by pg_stat_reset mid-window must not
        produce a negative delta (Prometheus rate() semantics)."""
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        for _ in range(4):
            db.execute("INSERT INTO t VALUES (1)")
        db.stat_history.tick(now=1.0)
        db.execute("SELECT pg_stat_reset()")  # clears pg_stat_statements
        db.execute("INSERT INTO t VALUES (2)")
        db.stat_history.tick(now=2.0)
        second = [
            r for r in db.stat_history.rows() if r[0] == 2.0 and r[1] == "statement_calls"
        ][0]
        assert second[4] >= 0  # clamped: treated as freshly restarted
        assert second[4] == second[3]  # delta == value after restart

    def test_first_tick_window_is_zero(self):
        db = PgSimDatabase()
        n = db.stat_history.tick(now=5.0)
        assert n > 0
        assert all(r[5] == 0.0 for r in db.stat_history.rows())

    def test_per_index_and_quality_series(self):
        db = PgSimDatabase()
        rng = _load(db, n=40)
        db.execute("SET vector_quality_probe_rate = 1.0")
        db.stat_history.tick(now=1.0)
        db.query(f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5")
        db.stat_history.tick(now=2.0)
        rows = {(r[1], r[2]): r for r in db.stat_history.rows() if r[0] == 2.0}
        assert rows[("index_scans", "ix")][4] == 1
        assert rows[("index_candidates", "ix")][4] > 0
        assert rows[("recall_probes", "ix")][4] == 1

    def test_unit_stat_history_reset_keeps_last_snapshot(self):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        history = StatHistory(db.stats, ring_size=8)
        history.tick(now=1.0)
        db.execute("INSERT INTO t VALUES (1)")
        history.reset()
        assert len(history) == 0
        history.tick(now=2.0)
        inserted = [
            r for r in history.rows() if r[1] == "heap_tuples_inserted"
        ][0]
        # _last survived the reset: the post-reset delta is the real
        # one-row movement, not the whole cumulative value.
        assert inserted[4] == 1


class TestEstimationErrors:
    def test_q_error_symmetric_and_clamped(self):
        assert q_error(10, 10) == 1.0
        assert q_error(100, 10) == 10.0
        assert q_error(10, 100) == 10.0
        assert q_error(0, 0) == 1.0  # both clamped to the 1-row floor
        assert q_error(0.5, 8) == 8.0

    def test_explain_analyze_reconciles_tuple_path(self):
        self._reconcile(batch=False)

    def test_explain_analyze_reconciles_batch_path(self):
        self._reconcile(batch=True)

    #: EXPLAIN node head -> plan-node class name in the view.
    _NODE_NAMES = {
        "Seq Scan": "SeqScan",
        "Index Scan": "IndexScan",
        "Filter": "Filter",
        "Limit": "Limit",
        "Sort": "Sort",
        "Project": "Project",
    }

    def _annotated_nodes(self, explain_rows) -> dict[str, int]:
        """Parse ``node head -> actual rows`` from EXPLAIN ANALYZE."""
        out: dict[str, int] = {}
        for (line,) in explain_rows:
            match = re.search(r"actual rows=(\d+)", line)
            if match is None:
                continue
            head = line.strip().lstrip("-> ").split("  (")[0].strip()
            for prefix, node in self._NODE_NAMES.items():
                if head.startswith(prefix):
                    out[node] = int(match.group(1))
                    break
            else:
                raise AssertionError(f"unmapped annotated node: {head!r}")
        return out

    def _reconcile(self, batch: bool) -> None:
        """The acceptance criterion: view actuals == EXPLAIN actuals,
        node for node, on a fresh database (probe rate 0, so EXPLAIN
        ANALYZE is the only recorder)."""
        db = PgSimDatabase()
        rng = _load(db, n=60)
        db.execute(f"SET enable_batch_exec = {'on' if batch else 'off'}")
        for sql, key in (
            (
                "SELECT id FROM items WHERE id < 17",
                "select id from items where id < ?",
            ),
            (
                f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5",
                "select id from items order by vec <-> ? limit ?",
            ),
        ):
            explain = db.execute(f"EXPLAIN ANALYZE {sql}")
            annotated = self._annotated_nodes(explain.rows)
            assert annotated, "EXPLAIN ANALYZE produced no actual-rows nodes"
            recorded = {
                row[1]: row
                for row in db.query("SELECT * FROM pg_stat_estimation_errors")
                if row[0] == key
            }
            # Exact reconciliation: same node set, same actual counts.
            assert set(recorded) == set(annotated), (recorded, annotated)
            for node, actual in annotated.items():
                assert recorded[node][4] == actual, node
                assert recorded[node][2] == 1  # one EXPLAIN, one call

    def test_filter_selectivity_estimate_vs_actual(self):
        db = PgSimDatabase()
        _load(db, n=100)
        db.execute("EXPLAIN ANALYZE SELECT id FROM items WHERE id < 25")
        row = next(
            r
            for r in db.query("SELECT * FROM pg_stat_estimation_errors")
            if r[1] == "Filter"
        )
        est_sel, actual_sel = row[7], row[8]
        assert actual_sel == 0.25  # 25 of 100 rows pass
        assert est_sel is not None and 0.0 < est_sel <= 1.0

    def test_sampled_ordinary_statements_record(self):
        db = PgSimDatabase()
        _load(db, n=40)
        db.execute("SET estimation_probe_rate = 1.0")
        db.query("SELECT id FROM items WHERE id < 9")
        db.execute("SET estimation_probe_rate = 0")
        rows = [
            r
            for r in db.query("SELECT * FROM pg_stat_estimation_errors")
            if r[0] == "select id from items where id < ?"
        ]
        assert {r[1] for r in rows} == {"Filter", "SeqScan"}
        assert all(r[2] == 1 for r in rows)

    def test_probe_rate_zero_records_nothing(self):
        db = PgSimDatabase()
        _load(db, n=40)
        db.query("SELECT id FROM items WHERE id < 9")
        assert db.query("SELECT * FROM pg_stat_estimation_errors") == []

    def test_probe_sampling_deterministic(self):
        def run(seed: int) -> int:
            db = PgSimDatabase()
            _load(db, n=40)
            db.execute("SET estimation_probe_rate = 0.5")
            db.execute(f"SET estimation_probe_seed = {seed}")
            for i in range(12):
                db.query(f"SELECT id FROM items WHERE id < {i + 2}")
            return db.executor.estimation.total_recorded

        assert run(7) == run(7)

    def test_estimation_probes_leave_recall_probe_schedule_alone(self):
        """The estimation probe draws from its own ticket stream, so
        arming it must not perturb the deterministic recall-probe
        sampling (they would otherwise interleave tickets)."""

        def recall_probes(estimation_rate: float) -> int:
            db = PgSimDatabase()
            rng = _load(db, n=40)
            db.execute("SET vector_quality_probe_rate = 0.5")
            db.execute("SET vector_quality_probe_seed = 7")
            db.execute(f"SET estimation_probe_rate = {estimation_rate}")
            queries = random.Random(123)
            for _ in range(12):
                db.query(
                    f"SELECT id FROM items ORDER BY vec <-> '{_lit(queries)}' LIMIT 5"
                )
            rows = db.query("SELECT * FROM pg_stat_vector_quality")
            return rows[0][2] if rows else 0

        assert recall_probes(0.0) == recall_probes(1.0)

    def test_explain_analyze_keys_under_inner_statement(self):
        db = PgSimDatabase()
        _load(db, n=30)
        db.execute("EXPLAIN ANALYZE SELECT id FROM items WHERE id < 5")
        db.execute("EXPLAIN (ANALYZE, BUFFERS) SELECT id FROM items WHERE id < 5")
        keys = {r[0] for r in db.query("SELECT * FROM pg_stat_estimation_errors")}
        assert keys == {"select id from items where id < ?"}
        row = next(
            r
            for r in db.query("SELECT * FROM pg_stat_estimation_errors")
            if r[1] == "Filter"
        )
        assert row[2] == 2  # both EXPLAIN forms accumulated together

    def test_auto_explain_capture_records_estimation(self):
        db = PgSimDatabase()
        _load(db, n=30)
        db.execute("SET auto_explain_log_min_duration = 0")
        db.query("SELECT id FROM items WHERE id < 5")
        db.execute("SET auto_explain_log_min_duration = -1")
        keys = {r[0] for r in db.query("SELECT * FROM pg_stat_estimation_errors")}
        assert "select id from items where id < ?" in keys


class TestVirtualPathRouting:
    def test_virtual_path_rejects_heap_plans(self):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        db.execute("INSERT INTO t VALUES (1)")
        executor = db.executor
        (heap_stmt,) = parse_sql("SELECT id FROM t")
        assert executor.try_execute_virtual(heap_stmt) is None
        (agg_stmt,) = parse_sql("SELECT count(*) FROM t")
        assert executor.try_execute_virtual(agg_stmt) is None
        (view_stmt,) = parse_sql("SELECT * FROM pg_stat_buffers")
        result = executor.try_execute_virtual(view_stmt)
        assert result is not None and result.rows

    def test_virtual_path_rejects_non_selects_and_missing_views(self):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        executor = db.executor
        (insert_stmt,) = parse_sql("INSERT INTO t VALUES (1)")
        assert executor.try_execute_virtual(insert_stmt) is None
        (func_stmt,) = parse_sql("SELECT pg_stat_reset()")
        assert executor.try_execute_virtual(func_stmt) is None

    def test_new_views_served_lock_free(self):
        """All three time-series views answer while the statement lock
        is held by someone else — the diagnosability guarantee."""
        db = PgSimDatabase()
        session = db.session("monitor")
        db.stat_history.tick()
        with db._statement_lock:  # would deadlock on the locked path
            assert session.query("SELECT * FROM pg_stat_history") != []
            session.query("SELECT * FROM pg_ash")
            session.query("SELECT * FROM pg_wait_profile")
            session.query("SELECT * FROM pg_stat_estimation_errors")

    def test_open_transaction_routes_through_locked_path(self):
        """Inside a transaction block even a pure view SELECT takes
        the statement lock (snapshot semantics win over lock-freedom):
        with the lock held elsewhere, the read must queue."""
        db = PgSimDatabase()
        session = db.session("txn")
        session.execute("BEGIN")
        done = threading.Event()

        def read_view():
            session.query("SELECT * FROM pg_stat_activity")
            done.set()

        db._statement_lock.acquire()
        thread = threading.Thread(target=read_view)
        thread.start()
        try:
            assert not done.wait(0.15), "in-txn view read bypassed the lock"
        finally:
            db._statement_lock.release()
            thread.join(timeout=5.0)
        assert done.is_set()
        session.execute("COMMIT")
        session.close()


class TestDatabaseClose:
    def test_close_flushes_and_releases_slowlog_sink(self, tmp_path):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        sink = tmp_path / "slow.jsonl"
        db.execute(f"SET slow_query_log_file = '{sink}'")
        db.execute("SET log_min_duration_statement = 0")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.slowlog._sink_file is not None  # persistent handle open
        handle = db.slowlog._sink_file
        db.close()
        assert handle.closed
        assert db.slowlog._sink_file is None
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert any("insert into t" in rec["query"] for rec in lines)
        db.close()  # idempotent

    def test_close_stops_sampler(self):
        db = PgSimDatabase()
        db.execute("SET ash_enable = on")
        assert db._sampler.running
        db.close()
        assert not db._sampler.running

    def test_sink_reconfigure_closes_previous_handle(self, tmp_path):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        db.execute(f"SET slow_query_log_file = '{first}'")
        db.execute("SET log_min_duration_statement = 0")
        db.execute("INSERT INTO t VALUES (1)")
        handle = db.slowlog._sink_file
        db.execute(f"SET slow_query_log_file = '{second}'")
        db.execute("INSERT INTO t VALUES (2)")
        assert handle.closed  # repointing closed the old handle
        assert second.read_text()  # and the new sink receives records
        db.close()


class TestWorkloadReport:
    def test_build_report_covers_every_surface(self):
        from repro.bench.report import build_report

        db = PgSimDatabase()
        rng = _load(db, n=40)
        db.execute("SET vector_quality_probe_rate = 1.0")
        db.execute("SET estimation_probe_rate = 1.0")
        db.execute("SET log_min_duration_statement = 0")
        with db.session("client") as session:
            for _ in range(4):
                session.query(
                    f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5"
                )
            activity = db.activity.get(session.backend_id)
            activity.begin_statement("select id from items ...", time.time())
            db.ash.sample_once()
            activity.end_statement(False, None)
        db.stat_history.tick(now=1.0)
        text = build_report(db, "unit")
        assert "workload report: unit" in text
        assert "pg_stat_statements" in text
        assert "pg_wait_profile" in text
        assert "pg_stat_history" in text
        assert "pg_slow_queries" in text
        assert "pg_stat_estimation_errors" in text
        assert "pg_stat_vector_quality" in text
        assert "select id from items order by vec <-> ? lim" in text
        assert "ix" in text  # recall quality row made it in
        db.close()

    def test_build_report_handles_empty_database(self):
        from repro.bench.report import build_report

        text = build_report(PgSimDatabase(), "empty")
        assert "(none)" in text

    def test_write_report_lands_in_results_dir(self, tmp_path, monkeypatch):
        from repro.bench.report import write_report

        monkeypatch.setenv("BENCH_RESULTS_DIR", str(tmp_path / "out"))
        db = PgSimDatabase()
        path = write_report(db, "smoke")
        assert path == tmp_path / "out" / "REPORT_smoke.txt"
        assert "workload report: smoke" in path.read_text()

    def test_report_cli_subcommand(self, tmp_path, capsys):
        from repro.bench.cli import main

        out = tmp_path / "REPORT_demo.txt"
        code = main(
            ["report", "--out", str(out), "--rows", "30", "--queries", "4"]
        )
        assert code == 0
        text = out.read_text()
        assert "workload report: demo" in text
        assert "pg_stat_estimation_errors" in text
        assert "wrote report" in capsys.readouterr().out
