"""Tests for the shared value types."""

import numpy as np
import pytest

from repro.common.types import (
    BuildStats,
    DistanceType,
    IndexSizeInfo,
    Neighbor,
    SearchResult,
    as_float32_matrix,
    as_float32_vector,
)


class TestNeighbor:
    def test_ordering_by_distance_then_id(self):
        assert Neighbor(2, 1.0) < Neighbor(1, 2.0)
        assert Neighbor(1, 1.0) < Neighbor(2, 1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Neighbor(1, 1.0).distance = 2.0


class TestSearchResult:
    def test_ids_and_distances(self):
        result = SearchResult(neighbors=[Neighbor(3, 0.5), Neighbor(1, 0.7)])
        assert result.ids == [3, 1]
        assert result.distances == [0.5, 0.7]

    def test_empty(self):
        result = SearchResult(neighbors=[])
        assert result.ids == []


class TestBuildStats:
    def test_total(self):
        stats = BuildStats(train_seconds=1.5, add_seconds=2.5)
        assert stats.total_seconds == 4.0


class TestIndexSizeInfo:
    def test_waste_ratio(self):
        info = IndexSizeInfo(allocated_bytes=1000, used_bytes=250)
        assert info.waste_ratio == 0.75

    def test_zero_allocation(self):
        assert IndexSizeInfo(0, 0).waste_ratio == 0.0

    def test_mib(self):
        info = IndexSizeInfo(allocated_bytes=2 * 1024 * 1024, used_bytes=0)
        assert info.allocated_mib == 2.0


class TestCoercion:
    def test_matrix_from_list(self):
        mat = as_float32_matrix(np.array([[1, 2], [3, 4]]))
        assert mat.dtype == np.float32
        assert mat.flags["C_CONTIGUOUS"]

    def test_vector_promoted_to_matrix(self):
        mat = as_float32_matrix(np.array([1.0, 2.0, 3.0]))
        assert mat.shape == (1, 3)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            as_float32_matrix(np.zeros((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            as_float32_matrix(np.zeros((0, 4)))
        with pytest.raises(ValueError):
            as_float32_vector(np.zeros(0))

    def test_vector_flattened(self):
        vec = as_float32_vector(np.zeros((1, 4)))
        assert vec.shape == (4,)


class TestDistanceType:
    def test_paper_numbering(self):
        """distance_type = 0 is Euclidean in PASE's SQL (Sec. II-E)."""
        assert DistanceType.L2 == 0
        assert DistanceType(0) is DistanceType.L2

    def test_roundtrip(self):
        for dt in DistanceType:
            assert DistanceType(int(dt)) is dt
