"""Tests for the comparative study framework (the paper's apparatus)."""

import numpy as np
import pytest

from repro.common.profiling import Profiler
from repro.core.study import (
    ComparativeStudy,
    GeneralizedVectorDB,
    SpecializedVectorDB,
    make_specialized_index,
)


@pytest.fixture(scope="module")
def flat_study(medium_dataset):
    study = ComparativeStudy(
        medium_dataset,
        "ivf_flat",
        {"clusters": 20, "sample_ratio": 0.3, "seed": 6},
    )
    study.compare_build()
    return study


class TestGeneralizedWrapper:
    def test_load_and_search(self, small_dataset):
        gen = GeneralizedVectorDB(buffer_pool_pages=512)
        gen.load(small_dataset.base)
        gen.create_index("ivf_flat", clusters=8, sample_ratio=0.5, seed=1)
        result = gen.search(small_dataset.queries[0], 5, nprobe=8)
        assert result.ids == small_dataset.ground_truth(5)[0].tolist()
        assert result.tuples_accessed > 0

    def test_search_before_index_rejected(self, small_dataset):
        gen = GeneralizedVectorDB(buffer_pool_pages=512)
        gen.load(small_dataset.base)
        with pytest.raises(RuntimeError):
            gen.search(small_dataset.queries[0], 1)

    def test_rebuild_replaces_index(self, small_dataset):
        gen = GeneralizedVectorDB(buffer_pool_pages=512)
        gen.load(small_dataset.base)
        gen.create_index("ivf_flat", clusters=4, sample_ratio=0.5, seed=1)
        gen.create_index("ivf_flat", clusters=8, sample_ratio=0.5, seed=1)
        assert gen.db.catalog.find_index(gen.index_name) is not None

    def test_centroid_extraction(self, small_dataset):
        gen = GeneralizedVectorDB(buffer_pool_pages=512)
        gen.load(small_dataset.base)
        gen.create_index("ivf_flat", clusters=6, sample_ratio=0.5, seed=1)
        cents = gen.pase_centroids()
        assert cents.shape == (6, small_dataset.dim)

    def test_unknown_index_type(self, small_dataset):
        gen = GeneralizedVectorDB(buffer_pool_pages=512)
        gen.load(small_dataset.base)
        with pytest.raises(ValueError):
            gen.create_index("rtree")

    def test_unknown_param_rejected(self, small_dataset):
        gen = GeneralizedVectorDB(buffer_pool_pages=512)
        gen.load(small_dataset.base)
        with pytest.raises(ValueError):
            gen.create_index("ivf_flat", clusterz=4)


class TestSpecializedWrapper:
    def test_same_interface(self, small_dataset):
        spec = SpecializedVectorDB()
        spec.load(small_dataset.base)
        spec.create_index("ivf_flat", clusters=8, sample_ratio=0.5, seed=1)
        result = spec.search(small_dataset.queries[0], 5, nprobe=8)
        assert result.ids == small_dataset.ground_truth(5)[0].tolist()

    def test_factory_all_types(self, small_dataset):
        for index_type in ("ivf_flat", "ivf_pq", "hnsw"):
            index = make_specialized_index(
                index_type,
                small_dataset.dim,
                {"clusters": 4, "m": 4, "c_pq": 16, "bnn": 4, "sample_ratio": 0.9},
            )
            assert index.dim == small_dataset.dim

    def test_hnsw_ignores_nprobe(self, small_dataset):
        spec = SpecializedVectorDB()
        spec.load(small_dataset.base[:200])
        spec.create_index("hnsw", bnn=4, efb=12, seed=1)
        result = spec.search(small_dataset.queries[0], 3, nprobe=10, efs=30)
        assert len(result.neighbors) == 3


class TestComparativeStudy:
    def test_build_comparison(self, flat_study):
        cmp = flat_study.compare_build()
        assert cmp.generalized.total_seconds > 0
        assert cmp.specialized.total_seconds > 0
        assert cmp.gap > 0
        assert cmp.generalized.vectors_added == flat_study.dataset.n

    def test_size_comparison(self, flat_study):
        cmp = flat_study.compare_size()
        # IVF_FLAT sizes are nearly identical (the paper's Fig. 11).
        assert 0.8 < cmp.gap < 2.0

    def test_search_comparison_with_recall(self, flat_study):
        cmp = flat_study.compare_search(k=10, nprobe=20, n_queries=5, recall=True)
        assert cmp.generalized_recall == pytest.approx(cmp.specialized_recall, abs=0.35)
        assert cmp.generalized_recall == 1.0  # all buckets probed
        assert cmp.gap > 1.0  # PASE is slower

    def test_transplant_makes_buckets_identical(self, medium_dataset):
        study = ComparativeStudy(
            medium_dataset, "ivf_flat", {"clusters": 12, "sample_ratio": 0.3, "seed": 6}
        )
        study.compare_build()
        study.transplant_centroids()
        spec_index = study.specialized.index
        pase_cents = study.generalized.pase_centroids()
        np.testing.assert_allclose(spec_index.centroids, pase_cents, rtol=1e-6)
        # With identical centroids and full probing, results must match.
        q = medium_dataset.queries[0]
        gen_ids = study.generalized.search(q, 10, nprobe=12).ids
        spec_ids = study.specialized.search(q, 10, nprobe=12).ids
        assert gen_ids == spec_ids

    def test_transplant_requires_ivf_flat(self, medium_dataset):
        study = ComparativeStudy(medium_dataset, "hnsw", {"bnn": 4, "efb": 12})
        with pytest.raises(ValueError):
            study.transplant_centroids()

    def test_profilers_attached(self, small_dataset):
        gen_prof, spec_prof = Profiler(), Profiler()
        study = ComparativeStudy(
            small_dataset,
            "ivf_flat",
            {"clusters": 6, "sample_ratio": 0.5, "seed": 1},
            generalized=GeneralizedVectorDB(profiler=gen_prof, buffer_pool_pages=512),
            specialized=SpecializedVectorDB(profiler=spec_prof),
        )
        study.compare_search(k=5, nprobe=6, n_queries=3)
        assert gen_prof.exclusive_seconds("fvec_L2sqr") > 0
        assert spec_prof.exclusive_seconds("fvec_L2sqr") > 0

    def test_invalid_index_type(self, small_dataset):
        with pytest.raises(ValueError):
            ComparativeStudy(small_dataset, "annoy")
