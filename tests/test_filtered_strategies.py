"""Three-way filtered-search strategy tests.

The adaptive optimizer (ROADMAP item 3) costs the hybrid shape
``WHERE p ORDER BY vec <-> q LIMIT k`` across pre-filter, post-filter
and in-filter strategies.  These tests pin:

* **differential correctness** — every forced strategy, over every
  SQL-visible index AM, on both executor paths, returns exactly
  ``min(k, matching)`` predicate-satisfying rows; strategies whose
  candidate generation is exact at this scale must equal the
  brute-force oracle bit-for-bit;
* **property invariance** — Hypothesis sweeps random datasets and
  asserts strategy choice never changes result correctness;
* **the planner surface** — ``Strategy:`` EXPLAIN lines, the
  ``filtered_search_strategy`` forcing GUC, the cost-based flip;
* **the over-fetch cap** — ``max_filtered_overfetch`` triggers the
  mid-query brute-force fallback without losing exact-k;
* **observability** — ``pg_stat_filtered_search`` counters, the
  per-strategy column on ``pg_stat_estimation_errors``, and the
  strategy tag on auto_explain slow-query captures.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pgsim import PgSimDatabase

DIM = 8
N_ROWS = 400
N_VALUES = 100  # a = i % 100 -> WHERE a < cut has selectivity cut/100

STRATEGIES = ("pre-filter", "post-filter", "in-filter")

# One spec per SQL-visible index AM (WITH-clause options sized for a
# 400-row table).  nprobe is raised to the cluster count in the
# fixture, so the IVF AMs probe every list.
AM_SPECS = {
    "pase_ivfflat": "clusters = 4, sample_ratio = 1.0, seed = 7",
    "pase_ivfpq": "clusters = 4, m = 4, c_pq = 16, sample_ratio = 1.0, seed = 7",
    "pase_ivfsq8": "clusters = 4, sample_ratio = 1.0, seed = 7",
    "pase_hnsw": "bnn = 8, efb = 32, seed = 7",
    "ivfflat": "clusters = 4, sample_ratio = 1.0, seed = 7",
    "bridged_ivfflat": "clusters = 4, sample_ratio = 1.0, seed = 7",
    "bridged_hnsw": "bnn = 8, efb = 32, seed = 7",
}

#: AMs that compute exact distances over an exhaustive candidate set
#: when nprobe == clusters: every strategy must equal the oracle.
EXACT_AMS = {"pase_ivfflat", "ivfflat", "bridged_ivfflat"}


def _vec_lit(vec) -> str:
    return ",".join(f"{x:.6f}" for x in np.asarray(vec, dtype=np.float32))


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(31)
    base = rng.random((N_ROWS, DIM)).astype(np.float32)
    query = np.full(DIM, 0.5, dtype=np.float32)
    return base, query


@pytest.fixture(scope="module")
def strategy_dbs(dataset):
    """One analyzed database per AM; index builds dominate, so share."""
    base, _ = dataset
    dbs = {}
    for amname, opts in AM_SPECS.items():
        db = PgSimDatabase(buffer_pool_pages=512)
        db.execute("CREATE TABLE t (id int4, a int4, vec float4[])")
        table = db.catalog.table("t")
        for i, vec in enumerate(base):
            table.heap.insert([i, i % N_VALUES, vec], xid=1)
        db.wal.log_commit(1)
        db.execute(f"CREATE INDEX ix ON t USING {amname} (vec) WITH ({opts})")
        db.execute("ANALYZE t")
        db.execute("SET pase.nprobe = 4")
        db.execute("SET pase.efs = 400")
        dbs[amname] = db
    yield dbs
    for db in dbs.values():
        db.close()


def _oracle(base, query, cut: int, k: int) -> list[int]:
    """Brute-force filtered top-k ids, distance then id order."""
    d = np.linalg.norm(base.astype(np.float64) - query, axis=1)
    cand = sorted(
        (float(d[i] * d[i]), i) for i in range(len(base)) if i % N_VALUES < cut
    )
    return [i for _, i in cand[:k]]


def _hybrid_sql(query, cut: int, k: int) -> str:
    return (
        f"SELECT id FROM t WHERE a < {cut} "
        f"ORDER BY vec <-> '{_vec_lit(query)}'::PASE ASC LIMIT {k}"
    )


def _run(db, sql, strategy: str | None = None, batch: bool = False):
    if strategy is not None:
        db.execute(f"SET filtered_search_strategy = '{strategy}'")
    db.execute(f"SET enable_batch_exec = {'on' if batch else 'off'}")
    try:
        return [row[0] for row in db.query(sql)]
    finally:
        db.execute("SET enable_batch_exec = off")
        db.execute("SET filtered_search_strategy = 'auto'")


class TestDifferential:
    """Forced strategies × all SQL-visible AMs × both executor paths."""

    @pytest.mark.parametrize("amname", sorted(AM_SPECS))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("batch", [False, True], ids=["tuple", "batch"])
    def test_strategy_vs_oracle(self, strategy_dbs, dataset, amname, strategy, batch):
        base, query = dataset
        db = strategy_dbs[amname]
        k = 10
        for cut in (1, 5, 30, 90):
            got = _run(db, _hybrid_sql(query, cut, k), strategy, batch)
            want = _oracle(base, query, cut, k)
            matching = cut * (N_ROWS // N_VALUES)
            # Exact-k whenever >= k rows match; all rows satisfy p.
            assert len(got) == min(k, matching)
            assert all(i % N_VALUES < cut for i in got)
            if strategy == "pre-filter" or amname in EXACT_AMS:
                # No index (pre-filter) or an exhaustive exact index:
                # bit-identical to the brute-force oracle.
                assert got == want, (amname, strategy, cut)

    @pytest.mark.parametrize("amname", sorted(AM_SPECS))
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_paths_agree(self, strategy_dbs, dataset, amname, strategy):
        """Tuple and batch executors return identical rows per strategy."""
        _, query = dataset
        db = strategy_dbs[amname]
        for cut in (5, 50):
            sql = _hybrid_sql(query, cut, 7)
            assert _run(db, sql, strategy, False) == _run(db, sql, strategy, True)

    def test_fewer_than_k_matches(self, strategy_dbs, dataset):
        """Under-populated predicates return every match, no padding."""
        base, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        for strategy in STRATEGIES:
            got = _run(db, _hybrid_sql(query, 2, 50), strategy)
            assert sorted(got) == sorted(_oracle(base, query, 2, 50))
            assert len(got) == 2 * (N_ROWS // N_VALUES)


class TestPlannerSurface:
    def _explain(self, db, query, cut, k=10):
        return db.explain(_hybrid_sql(query, cut, k))

    def test_forced_strategy_lines(self, strategy_dbs, dataset):
        _, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        try:
            for strategy in STRATEGIES:
                db.execute(f"SET filtered_search_strategy = '{strategy}'")
                assert f"Strategy: {strategy}" in self._explain(db, query, 50)
        finally:
            db.execute("SET filtered_search_strategy = 'auto'")

    def test_auto_flips_across_selectivity(self, strategy_dbs, dataset):
        """Cost-based choice: pre-filter at rare predicates, an index
        strategy (post- or in-filter) when nearly everything matches."""
        _, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        rare = self._explain(db, query, 2)
        assert "Strategy: pre-filter" in rare
        assert "Pre-Filter Scan on t" in rare
        # At 400 rows a full scan is nearly free, so give the index
        # path a realistic edge (probe 1 of 4 lists) — the cost model
        # reads the GUC, and the plan flips to an index strategy.
        try:
            db.execute("SET pase.nprobe = 1")
            common = self._explain(db, query, 95)
        finally:
            db.execute("SET pase.nprobe = 4")
        assert "Strategy: post-filter" in common or "Strategy: in-filter" in common
        assert "Index Scan using ix" in common

    def test_strategy_line_survives_costs_off(self, strategy_dbs, dataset):
        _, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        result = db.execute(f"EXPLAIN (COSTS off) {_hybrid_sql(query, 50, 10)}")
        plan = "\n".join(row[0] for row in result.rows)
        assert "Strategy: " in plan
        assert "cost=" not in plan

    def test_force_is_noop_without_matching_path(self, strategy_dbs, dataset):
        """Forcing an index strategy on a pure-KNN query changes nothing."""
        _, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        sql = f"SELECT id FROM t ORDER BY vec <-> '{_vec_lit(query)}'::PASE ASC LIMIT 5"
        try:
            db.execute("SET filtered_search_strategy = 'pre-filter'")
            plan = db.explain(sql)
        finally:
            db.execute("SET filtered_search_strategy = 'auto'")
        assert "Index Scan using ix" in plan
        assert "Strategy:" not in plan


class TestOverfetchCap:
    def test_fallback_preserves_exact_k(self, strategy_dbs, dataset):
        """A tiny cap forces the mid-query brute-force fallback; the
        result must still be exact-k (and exact, on an exact AM)."""
        base, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        db.executor.strategies.reset()
        try:
            db.execute("SET max_filtered_overfetch = 2")
            for batch in (False, True):
                got = _run(db, _hybrid_sql(query, 3, 10), "post-filter", batch)
                assert got == _oracle(base, query, 3, 10)
        finally:
            db.execute("SET max_filtered_overfetch = 32")
        entry = db.executor.strategies.entry("post-filter")
        assert entry is not None and entry.fallbacks >= 1

    def test_planner_clamps_fetch_k(self, strategy_dbs, dataset):
        _, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        try:
            db.execute("SET max_filtered_overfetch = 3")
            db.execute("SET filtered_search_strategy = 'post-filter'")
            plan = db.explain(_hybrid_sql(query, 1, 10))
        finally:
            db.execute("SET max_filtered_overfetch = 32")
            db.execute("SET filtered_search_strategy = 'auto'")
        assert "Over-fetch: fetch_k=30" in plan  # 3 * k, not k / 0.01


class TestObservability:
    def test_strategy_view_counts(self, strategy_dbs, dataset):
        _, query = dataset
        db = strategy_dbs["pase_hnsw"]
        db.executor.strategies.reset()
        for strategy in STRATEGIES:
            _run(db, _hybrid_sql(query, 40, 5), strategy)
        rows = db.query("SELECT * FROM pg_stat_filtered_search")
        by_strategy = {r[0]: r for r in rows}
        assert set(by_strategy) == set(STRATEGIES)
        for strategy in STRATEGIES:
            _, chosen, fallbacks, est_sel, actual_sel = by_strategy[strategy]
            assert chosen == 1
            assert fallbacks == 0
            assert est_sel == pytest.approx(0.4, abs=0.1)
            assert actual_sel == pytest.approx(0.4, abs=0.15)

    def test_estimation_errors_attribute_strategy(self, strategy_dbs, dataset):
        _, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        db.executor.estimation.reset()
        for strategy in STRATEGIES:
            db.execute(f"SET filtered_search_strategy = '{strategy}'")
            db.execute(f"EXPLAIN ANALYZE {_hybrid_sql(query, 40, 5)}")
        db.execute("SET filtered_search_strategy = 'auto'")
        rows = db.query("SELECT * FROM pg_stat_estimation_errors")
        strategies = {r[9] for r in rows}
        assert set(STRATEGIES) <= strategies

    def test_auto_explain_capture_carries_strategy(self, strategy_dbs, dataset):
        _, query = dataset
        db = strategy_dbs["pase_ivfflat"]
        db.slowlog.reset()
        try:
            db.execute("SET auto_explain_log_min_duration = 0")
            db.execute(_hybrid_sql(query, 2, 5))
        finally:
            db.execute("SET auto_explain_log_min_duration = -1")
        rows = db.query("SELECT strategy, plan FROM pg_slow_queries")
        tagged = [r for r in rows if r[0] is not None]
        assert tagged and tagged[0][0] == "pre-filter"
        assert "Strategy: pre-filter" in tagged[0][1]

    def test_pg_stat_reset_clears_strategy_view(self, strategy_dbs, dataset):
        _, query = dataset
        db = strategy_dbs["bridged_ivfflat"]
        _run(db, _hybrid_sql(query, 40, 5), "post-filter")
        assert db.query("SELECT * FROM pg_stat_filtered_search")
        db.execute("SELECT pg_stat_reset()")
        assert db.query("SELECT * FROM pg_stat_filtered_search") == []


# --- Hypothesis: strategy choice never changes correctness -----------

_small_int = st.integers(min_value=0, max_value=20)
_vec = st.lists(st.integers(min_value=-8, max_value=8), min_size=4, max_size=4)


@settings(max_examples=10, deadline=None)
@given(
    data=st.lists(st.tuples(_small_int, _vec), min_size=8, max_size=25),
    threshold=_small_int,
    query=_vec,
    k=st.integers(min_value=1, max_value=6),
)
def test_property_strategy_invariance(data, threshold, query, k) -> None:
    """On an exhaustive exact AM, all three forced strategies (and
    auto) return the identical filtered top-k on both executor paths."""
    db = PgSimDatabase(buffer_pool_pages=256)
    try:
        db.execute("CREATE TABLE t (id int, a int, vec float[])")
        for i, (a, vec) in enumerate(data):
            lit = ",".join(f"{x}.0" for x in vec)
            db.execute(f"INSERT INTO t VALUES ({i}, {a}, '{lit}'::PASE)")
        db.execute(
            "CREATE INDEX ix ON t USING pase_ivfflat (vec) "
            "WITH (clusters = 3, sample_ratio = 1.0, seed = 7)"
        )
        db.execute("ANALYZE t")
        db.execute("SET pase.nprobe = 3")
        lit = ",".join(f"{x}.0" for x in query)
        sql = (
            f"SELECT id FROM t WHERE a >= {threshold} "
            f"ORDER BY vec <-> '{lit}'::PASE LIMIT {k}"
        )
        results = []
        for strategy in ("auto",) + STRATEGIES:
            db.execute(f"SET filtered_search_strategy = '{strategy}'")
            for batch in ("off", "on"):
                db.execute(f"SET enable_batch_exec = {batch}")
                results.append([r[0] for r in db.query(sql)])
        db.execute("SET enable_batch_exec = off")
        db.execute("SET filtered_search_strategy = 'auto'")
        assert all(r == results[0] for r in results[1:])
        matching = [i for i, (a, _) in enumerate(data) if a >= threshold]
        assert len(results[0]) == min(k, len(matching))
        assert all(data[i][0] >= threshold for i in results[0])
    finally:
        db.close()
