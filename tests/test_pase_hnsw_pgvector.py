"""Tests for PASE HNSW (page graph store) and the pgvector comparator."""

import numpy as np
import pytest

from repro.common.metrics import mean_recall_at_k
from repro.common.profiling import Profiler
from repro.pase.hnsw import _NEIGHBOR, PageGraphStore


def _ids(db, am, query, k):
    table = db.catalog.table("items")
    return [table.heap.fetch_column(tid, 0) for tid, __ in am.scan(query, k)]


@pytest.fixture()
def hnsw_am(loaded_db):
    loaded_db.execute(
        "CREATE INDEX hx ON items USING pase_hnsw (vec) WITH (bnn = 8, efb = 24, seed = 4)"
    )
    return loaded_db.catalog.find_index("hx").am


class TestNeighborTupleLayout:
    def test_24_byte_neighbor_tuple(self):
        """Sec. VI-C2: each HNSWNeighborTuple takes 24 bytes."""
        assert _NEIGHBOR.size == 24


class TestPaseHNSW:
    def test_recall(self, loaded_db, hnsw_am, small_dataset):
        loaded_db.execute("SET pase.efs = 80")
        gt = small_dataset.ground_truth(10)
        res = [_ids(loaded_db, hnsw_am, q, 10) for q in small_dataset.queries]
        assert mean_recall_at_k(res, gt, 10) > 0.75

    def test_matches_specialized_hnsw_given_same_seed(self, loaded_db, hnsw_am, small_dataset):
        """Same algorithm + same insertion order + same RNG = same graph."""
        from repro.specialized import HNSWIndex

        spec = HNSWIndex(small_dataset.dim, bnn=8, efb=24, seed=4)
        spec.add(small_dataset.base)
        store = hnsw_am.store
        assert store.node_count() == spec.store.node_count()
        assert store.entry_point == spec.store.entry_point
        for node in range(0, store.node_count(), 97):
            assert store.neighbors(node, 0) == spec.store.neighbors(node, 0)

    def test_one_fresh_page_per_adjacency_list(self, hnsw_am):
        """RC#4: every (node, level) list starts on its own page."""
        store = hnsw_am.store
        lists = sum(len(meta.neighbor_heads) for meta in store._nodes)
        neighbor_pages = hnsw_am.buffer.disk.n_blocks("hx.neighbors")
        assert neighbor_pages >= lists  # chains may add extra pages

    def test_size_dominated_by_neighbor_pages(self, hnsw_am):
        info = hnsw_am.size_info()
        assert info.detail["neighbors_pages"] > info.detail["data_pages"]
        assert info.waste_ratio > 0.5  # RC#4's page waste

    def test_incremental_insert(self, loaded_db, hnsw_am, small_dataset):
        vec = small_dataset.base[3] + 40.0
        table = loaded_db.catalog.table("items")
        tid = table.heap.insert([5555, vec], xid=1)
        hnsw_am.insert(tid, vec)
        assert _ids(loaded_db, hnsw_am, vec, 1) == [5555]

    def test_efs_setting_respected(self, loaded_db, hnsw_am, small_dataset):
        gt = small_dataset.ground_truth(10)
        loaded_db.execute("SET pase.efs = 10")
        low = mean_recall_at_k(
            [_ids(loaded_db, hnsw_am, q, 10) for q in small_dataset.queries], gt, 10
        )
        loaded_db.execute("SET pase.efs = 120")
        high = mean_recall_at_k(
            [_ids(loaded_db, hnsw_am, q, 10) for q in small_dataset.queries], gt, 10
        )
        assert high >= low

    def test_profiled_sections(self, loaded_db, hnsw_am, small_dataset):
        prof = Profiler()
        hnsw_am.profiler = prof
        list(hnsw_am.scan(small_dataset.queries[0], 5))
        assert prof.exclusive_seconds("Tuple Access") > 0
        assert prof.exclusive_seconds("pasepfirst") > 0
        assert prof.exclusive_seconds("HVTGet") > 0

    def test_store_roundtrips_neighbors(self, hnsw_am):
        store = hnsw_am.store
        node = 10
        original = store.neighbors(node, 0)
        store.set_neighbors(node, 0, original[::-1])
        assert store.neighbors(node, 0) == original[::-1]
        store.set_neighbors(node, 0, original)

    def test_vectors_gather(self, hnsw_am, small_dataset):
        store = hnsw_am.store
        mat = store.vectors([0, 5, 9])
        np.testing.assert_allclose(mat[1], store.vector(5), rtol=1e-6)

    def test_heap_tid_roundtrip(self, hnsw_am, loaded_db):
        store = hnsw_am.store
        tid = store.heap_tid(0)
        row = loaded_db.catalog.table("items").heap.fetch(tid)
        assert row[0] == 0  # node 0 was the first row inserted


class TestPgVector:
    @pytest.fixture()
    def pgv_am(self, loaded_db):
        loaded_db.execute(
            "CREATE INDEX gx ON items USING ivfflat (vec) "
            "WITH (clusters = 10, sample_ratio = 0.6, seed = 2)"
        )
        return loaded_db.catalog.find_index("gx").am

    def test_same_results_as_pase(self, loaded_db, pgv_am, small_dataset):
        loaded_db.execute(
            "CREATE INDEX fx3 ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 10, sample_ratio = 0.6, seed = 2)"
        )
        pase_am = loaded_db.catalog.find_index("fx3").am
        loaded_db.execute("SET pase.nprobe = 6")
        for q in small_dataset.queries[:4]:
            assert _ids(loaded_db, pgv_am, q, 10) == _ids(loaded_db, pase_am, q, 10)

    def test_index_much_smaller_than_pase(self, loaded_db, pgv_am, small_dataset):
        loaded_db.execute(
            "CREATE INDEX fx4 ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 10, sample_ratio = 0.6, seed = 2)"
        )
        pase_am = loaded_db.catalog.find_index("fx4").am
        # TID-only entries: pgvector's live index payload is a small
        # fraction of PASE's (which stores the vectors).
        assert pgv_am.size_info().used_bytes < pase_am.size_info().used_bytes / 3

    def test_heap_fetch_per_candidate(self, loaded_db, pgv_am, small_dataset):
        prof = Profiler()
        pgv_am.profiler = prof
        loaded_db.execute("SET pase.nprobe = 6")
        list(pgv_am.scan(small_dataset.queries[0], 5))
        # The defining cost: vector fetched from the base heap per candidate.
        assert prof.exclusive_seconds("Heap Fetch") > 0
        assert prof.call_count("Heap Fetch") > 50

    def test_insert(self, loaded_db, pgv_am, small_dataset):
        vec = small_dataset.base[2] + 60.0
        table = loaded_db.catalog.table("items")
        tid = table.heap.insert([4444, vec], xid=1)
        pgv_am.insert(tid, vec)
        assert _ids(loaded_db, pgv_am, vec, 1) == [4444]
