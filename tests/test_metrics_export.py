"""Prometheus exporter: exposition round-trip, parser strictness,
and agreement between the scrape and the SQL-visible stat views."""

import random

import pytest

from repro.common.metrics_export import MetricsRegistry, parse_exposition
from repro.pgsim import PgSimDatabase

DIM = 8


def _lit(rng: random.Random) -> str:
    return "[" + ",".join(f"{rng.random():.5f}" for _ in range(DIM)) + "]"


def _workload_db() -> PgSimDatabase:
    rng = random.Random(3)
    db = PgSimDatabase()
    db.execute("CREATE TABLE items (id int, vec float[])")
    for i in range(40):
        db.execute(f"INSERT INTO items VALUES ({i}, '{_lit(rng)}')")
    db.execute(
        "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
        "WITH (clusters = 4, sample_ratio = 1, seed = 42)"
    )
    db.execute("SET vector_quality_probe_rate = 1.0")
    db.execute("SET log_min_duration_statement = 0")
    for _ in range(5):
        db.query(f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5")
    db.execute("SET log_min_duration_statement = -1")
    return db


class TestExposition:
    def test_scrape_round_trips_through_strict_parser(self):
        db = _workload_db()
        text = db.metrics_text()
        exp = parse_exposition(text)
        assert exp.samples
        # Every sample belongs to a declared family (HELP + TYPE).
        declared = set(exp.types)
        assert declared == set(exp.helps)
        for sample in exp.samples:
            base = sample.name
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base.removesuffix(suffix) in declared:
                    base = base.removesuffix(suffix)
                    break
            assert base in declared, sample.name

    def test_counters_agree_with_stat_views(self):
        db = _workload_db()
        exp = parse_exposition(db.metrics_text())
        # pg_stat_statements vs statement counters.
        for query, calls, rows in db.query(
            "SELECT query, calls, rows FROM pg_stat_statements"
        ):
            assert exp.value("pgsim_statement_calls_total", query=query) == calls
            assert exp.value("pgsim_statement_rows_total", query=query) == rows
        # pg_stat_vector_quality vs the recall histogram series.
        for row in db.query("SELECT * FROM pg_stat_vector_quality"):
            index, am, probes, _mean, _min, last = row
            assert (
                exp.value("pgsim_index_recall_ratio_count", index=index, am=am)
                == probes
            )
            assert (
                exp.value("pgsim_index_recall_last_ratio", index=index, am=am) == last
            )
        # Slow-query ring vs its gauge/counter pair.
        assert exp.value("pgsim_slow_queries_total") == db.slowlog.total_logged
        assert exp.value("pgsim_slow_queries_retained") == len(db.slowlog.records())
        # Live backends: exactly the facade's default session, idle.
        assert exp.value("pgsim_backends", state="idle") == 1.0

    def test_histogram_series_are_cumulative(self):
        db = _workload_db()
        exp = parse_exposition(db.metrics_text())
        buckets = [
            s
            for s in exp.samples
            if s.name == "pgsim_statement_duration_seconds_bucket"
        ]
        assert buckets
        values = [s.value for s in buckets]  # emitted in ascending-le order
        assert values == sorted(values)
        assert buckets[-1].labels["le"] == "+Inf"
        assert buckets[-1].value == exp.value("pgsim_statement_duration_seconds_count")

    def test_scrape_is_read_only(self):
        db = _workload_db()
        first = db.metrics_text()
        second = db.metrics_text()
        assert first == second

    def test_label_escaping_survives_round_trip(self):
        # Normalized statement texts never carry literals, so exercise
        # the writer's escaping directly with a hostile label value.
        from repro.common.metrics_export import _Writer

        hostile = 'he said "hi"\\and\nmore'
        w = _Writer()
        w.family("pgsim_demo_total", "counter", "demo")
        w.sample("pgsim_demo_total", 1, {"query": hostile})
        exp = parse_exposition(w.render())
        assert exp.samples[0].labels["query"] == hostile

    def test_bare_executor_renders_without_session_families(self):
        """The registry is duck-typed: no activity/slowlog attributes
        means those families are skipped, not an AttributeError."""

        class Shim:
            def __init__(self, db):
                self.stats = db.stats

        db = _workload_db()
        text = MetricsRegistry(Shim(db)).render()
        exp = parse_exposition(text)
        assert exp.value("pgsim_slow_queries_total") is None
        assert "pgsim_buffer_ops_total" in exp.types


class TestParserStrictness:
    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("pgsim_thing one\n".replace("one", "not a number"))

    def test_rejects_unknown_metric_type(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_exposition("# TYPE pgsim_thing timer\npgsim_thing 1\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_exposition("pgsim_thing fast\n")

    def test_rejects_non_cumulative_histogram(self):
        payload = (
            "# HELP h h\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="bucket le=1"):
            parse_exposition(payload)

    def test_rejects_missing_inf_bucket(self):
        payload = (
            "# HELP h h\n"
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match=r"missing \+Inf"):
            parse_exposition(payload)

    def test_rejects_count_mismatch(self):
        payload = (
            "# HELP h h\n"
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1.0\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="!= _count"):
            parse_exposition(payload)

    def test_label_escapes(self):
        exp = parse_exposition('m{q="a\\"b\\\\c\\nd"} 1\n')
        assert exp.samples[0].labels["q"] == 'a"b\\c\nd'


class TestNamingConventions:
    """Prometheus naming rules, enforced at both ends of the pipe."""

    def test_writer_rejects_counter_without_total(self):
        from repro.common.metrics_export import _Writer

        w = _Writer()
        with pytest.raises(ValueError, match="must end in '_total'"):
            w.family("pgsim_requests", "counter", "bad counter name")

    def test_writer_rejects_non_base_unit_suffix(self):
        from repro.common.metrics_export import _Writer

        w = _Writer()
        with pytest.raises(ValueError, match="non-base unit suffix"):
            w.family("pgsim_latency_ms", "gauge", "milliseconds are not a base unit")
        with pytest.raises(ValueError, match="non-base unit suffix"):
            w.family("pgsim_wal_kb_total", "counter", "kilobytes are not a base unit")

    def test_parser_rejects_convention_violations(self):
        with pytest.raises(ValueError, match="must end in '_total'"):
            parse_exposition("# HELP m m\n# TYPE m counter\nm 1\n")
        with pytest.raises(ValueError, match="non-base unit suffix"):
            parse_exposition("# HELP m_ms m\n# TYPE m_ms gauge\nm_ms 1\n")

    def test_every_exported_family_conforms(self):
        from repro.common.metrics_export import check_family_name

        exp = parse_exposition(_workload_db().metrics_text())
        for name, metric_type in exp.types.items():
            check_family_name(name, metric_type)  # raises on violation


class TestLegacyRenames:
    """Dashboards on the pre-rename recall family keep resolving."""

    def test_legacy_names_resolve_to_renamed_series(self):
        db = _workload_db()
        exp = parse_exposition(db.metrics_text())
        # No sample carries the old name any more...
        assert not any(s.name.startswith("pgsim_index_recall_last ") for s in exp.samples)
        new_last = exp.value("pgsim_index_recall_last_ratio", index="ix", am="pase_ivfflat")
        new_count = exp.value("pgsim_index_recall_ratio_count", index="ix", am="pase_ivfflat")
        assert new_last is not None and new_count is not None
        # ...but lookups through the old names still land, including
        # the derived histogram series.
        assert exp.value("pgsim_index_recall_last", index="ix", am="pase_ivfflat") == new_last
        assert exp.value("pgsim_index_recall_count", index="ix", am="pase_ivfflat") == new_count
        assert exp.value("pgsim_index_recall_sum", index="ix", am="pase_ivfflat") is not None

    def test_unknown_names_still_miss(self):
        exp = parse_exposition(_workload_db().metrics_text())
        assert exp.value("pgsim_index_recall_nonsense") is None


class TestCli:
    def test_metrics_subcommand_writes_parseable_file(self, tmp_path, capsys):
        from repro.bench.cli import main

        out = tmp_path / "metrics.prom"
        code = main(
            ["metrics", "--out", str(out), "--rows", "30", "--queries", "4"]
        )
        assert code == 0
        exp = parse_exposition(out.read_text())
        assert exp.value("pgsim_slow_queries_total") > 0
        assert any(s.name == "pgsim_index_recall_ratio_count" for s in exp.samples)
        assert "samples" in capsys.readouterr().out

    def test_metrics_subcommand_stdout(self, capsys):
        from repro.bench.cli import main

        assert main(["metrics", "--rows", "20", "--queries", "2"]) == 0
        exp = parse_exposition(capsys.readouterr().out)
        assert exp.value("pgsim_wal_records_total") > 0
