"""Tests for the dataset registry and generators."""

import numpy as np
import pytest

from repro.common import datasets


class TestProfiles:
    def test_all_paper_datasets_present(self):
        assert set(datasets.PAPER_ORDER) == set(datasets.PROFILES)

    def test_dimensions_match_table_one(self):
        dims = {name: p.dim for name, p in datasets.PROFILES.items()}
        assert dims == {
            "sift1m": 128,
            "gist1m": 960,
            "deep1m": 256,
            "sift10m": 128,
            "deep10m": 96,
            "turing10m": 100,
        }

    def test_paper_counts_match_table_one(self):
        assert datasets.PROFILES["sift1m"].paper_n == 1_000_000
        assert datasets.PROFILES["sift10m"].paper_n == 10_000_000
        assert datasets.PROFILES["gist1m"].paper_queries == 1_000

    def test_m_divides_dim(self):
        for profile in datasets.PROFILES.values():
            assert profile.dim % profile.default_m == 0

    def test_scaled_counts(self):
        profile = datasets.PROFILES["sift1m"]
        assert profile.scaled_n(0.01) == 10_000
        assert profile.scaled_n(1e-9) == 1000  # floor


class TestLoadDataset:
    def test_load_shapes(self):
        ds = datasets.load_dataset("sift1m", scale=0.002)
        assert ds.base.shape == (2000, 128)
        assert ds.base.dtype == np.float32
        assert ds.queries.shape[1] == 128

    def test_case_insensitive(self):
        ds = datasets.load_dataset("SIFT1M", scale=0.001)
        assert ds.name == "sift1m"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            datasets.load_dataset("laion5b")

    def test_deterministic_per_seed(self):
        a = datasets.load_dataset("deep1m", scale=0.001, seed=4)
        b = datasets.load_dataset("deep1m", scale=0.001, seed=4)
        np.testing.assert_array_equal(a.base, b.base)

    def test_different_seeds_differ(self):
        a = datasets.load_dataset("deep1m", scale=0.001, seed=4)
        b = datasets.load_dataset("deep1m", scale=0.001, seed=5)
        assert not np.array_equal(a.base, b.base)

    def test_base_and_queries_independent(self):
        ds = datasets.load_dataset("sift1m", scale=0.001)
        assert not np.array_equal(ds.base[: ds.n_queries], ds.queries)


class TestGroundTruth:
    def test_ground_truth_is_exact(self, small_dataset):
        gt = small_dataset.ground_truth(5)
        q = small_dataset.queries[0]
        dists = ((small_dataset.base - q) ** 2).sum(axis=1)
        expected = np.argsort(dists, kind="stable")[:5]
        np.testing.assert_array_equal(gt[0], expected)

    def test_ground_truth_cached_and_extended(self, small_dataset):
        g5 = small_dataset.ground_truth(5)
        g3 = small_dataset.ground_truth(3)
        np.testing.assert_array_equal(g3, g5[:, :3])
        g8 = small_dataset.ground_truth(8)
        np.testing.assert_array_equal(g8[:, :5], g5)

    def test_k_capped_at_n(self):
        ds = datasets.tiny_dataset(n=30, dim=4, n_queries=2, seed=1)
        assert ds.ground_truth(100).shape == (2, 30)


class TestGenerator:
    def test_clustered_structure(self):
        data = datasets.generate_clustered(500, 12, n_components=4, seed=9, spread=0.05)
        # With tight spread, nearest-neighbor distances are far below
        # the typical inter-point distance.
        d01 = ((data[0] - data[1:]) ** 2).sum(axis=1)
        assert d01.min() < np.median(d01) / 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            datasets.generate_clustered(0, 4, 2, seed=1)
        with pytest.raises(ValueError):
            datasets.generate_clustered(10, 0, 2, seed=1)


class TestFromArrays:
    def test_wraps_arrays(self):
        base = np.random.default_rng(0).random((20, 6)).astype(np.float32)
        ds = datasets.Dataset.from_arrays("custom", base, base[:3])
        assert ds.n == 20
        assert ds.dim == 6
        assert ds.n_queries == 3

    def test_dim_mismatch_rejected(self):
        base = np.zeros((5, 4), dtype=np.float32)
        queries = np.zeros((2, 3), dtype=np.float32)
        with pytest.raises(ValueError):
            datasets.Dataset.from_arrays("bad", base, queries)


class TestVecsIO:
    def test_fvecs_roundtrip(self, tmp_path):
        rng = np.random.default_rng(3)
        mat = rng.random((7, 5)).astype(np.float32)
        path = tmp_path / "x.fvecs"
        with path.open("wb") as f:
            for row in mat:
                np.int32(5).tofile(f)
                row.tofile(f)
        loaded = datasets.read_fvecs(path)
        np.testing.assert_array_equal(loaded, mat)

    def test_ivecs_roundtrip(self, tmp_path):
        mat = np.arange(12, dtype=np.int32).reshape(3, 4)
        path = tmp_path / "x.ivecs"
        with path.open("wb") as f:
            for row in mat:
                np.int32(4).tofile(f)
                row.tofile(f)
        loaded = datasets.read_ivecs(path, max_rows=2)
        np.testing.assert_array_equal(loaded, mat[:2])

    def test_corrupt_fvecs_rejected(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        path.write_bytes(b"\x03\x00\x00\x00\x00\x00")
        with pytest.raises(ValueError):
            datasets.read_fvecs(path)

    def test_empty_fvecs_rejected(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            datasets.read_fvecs(path)
