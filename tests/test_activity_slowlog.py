"""Live serving observability: pg_stat_activity, slow-query capture,
vacuum progress, and online recall probes.

The load-bearing property throughout: the monitoring surfaces answer
*while the system is busy*.  A session stuck behind the statement lock
must be visible as ``active`` + ``SessionStatementLock`` from another
session, which requires the view read path to bypass the lock — the
scenario the blocked-visibility test below stages explicitly.
"""

import json
import random
import threading
import time

import pytest

from repro.pgsim import PgSimDatabase
from repro.pgsim.slowlog import SlowQueryLog, SlowQueryRecord

DIM = 8

ALL_AMS = {
    "pase_ivfflat": "WITH (clusters = 4, sample_ratio = 1, seed = 42)",
    "pase_ivfpq": "WITH (clusters = 4, m = 4, c_pq = 8, sample_ratio = 1, seed = 42)",
    "pase_ivfsq8": "WITH (clusters = 4, sample_ratio = 1, seed = 42)",
    "pase_hnsw": "WITH (bnn = 4, efb = 16, seed = 42)",
    "ivfflat": "WITH (lists = 4, sample_ratio = 1, seed = 42)",
    "bridged_ivfflat": "WITH (clusters = 4, sample_ratio = 1, seed = 42)",
    "bridged_hnsw": "WITH (bnn = 4, efb = 16, seed = 42)",
}


def _lit(rng: random.Random) -> str:
    return "[" + ",".join(f"{rng.random():.5f}" for _ in range(DIM)) + "]"


def _load(db: PgSimDatabase, n: int = 60, seed: int = 0) -> random.Random:
    rng = random.Random(seed)
    db.execute("CREATE TABLE items (id int, vec float[])")
    for i in range(n):
        db.execute(f"INSERT INTO items VALUES ({i}, '{_lit(rng)}')")
    return rng


def _activity_rows(db: PgSimDatabase) -> dict[int, dict]:
    cols = db.catalog.view("pg_stat_activity").column_names()
    return {
        row[0]: dict(zip(cols, row))
        for row in db.query("SELECT * FROM pg_stat_activity")
    }


class TestBackendIdentity:
    def test_backend_ids_unique_and_monotonic(self):
        db = PgSimDatabase()
        sessions = [db.session() for _ in range(5)]
        ids = [s.backend_id for s in sessions]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)
        # The facade's default session minted the first id.
        assert db._default_session.backend_id < min(ids)
        # Default names derive from the backend id — no collisions.
        names = {s.name for s in sessions}
        assert len(names) == len(sessions)

    def test_sessions_appear_and_deregister(self):
        db = PgSimDatabase()
        with db.session("worker") as session:
            session.execute("CREATE TABLE t (id int)")
            rows = _activity_rows(db)
            assert rows[session.backend_id]["name"] == "worker"
            assert rows[session.backend_id]["state"] == "idle"
            assert rows[session.backend_id]["statements"] == 1
        assert session.backend_id not in _activity_rows(db)

    def test_idle_in_transaction_state_and_xid(self):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        session = db.session("txn-holder")
        session.execute("BEGIN")
        session.execute("INSERT INTO t VALUES (1)")
        row = _activity_rows(db)[session.backend_id]
        assert row["state"] == "idle in transaction"
        assert row["backend_xid"] is not None
        session.execute("COMMIT")
        row = _activity_rows(db)[session.backend_id]
        assert row["state"] == "idle"
        assert row["backend_xid"] is None


class TestBlockedSessionVisibility:
    def test_blocked_session_visible_from_another_session(self):
        """The tentpole scenario: while one session is stuck waiting
        for the statement lock, a second session's pg_stat_activity
        read (lock-free) sees it as active with the lock wait event."""
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        blocked = db.session("blocked")
        observer = db.session("observer")
        # Stand in for an in-flight statement of some other backend.
        db._statement_lock.acquire()
        done = threading.Event()

        def run_blocked():
            blocked.execute("INSERT INTO t VALUES (42)")
            done.set()

        thread = threading.Thread(target=run_blocked)
        thread.start()
        try:
            seen = None
            deadline = time.time() + 5.0
            while time.time() < deadline:
                row = _activity_rows(observer.db)[blocked.backend_id]
                if row["wait_event"] == "SessionStatementLock":
                    seen = row
                    break
                time.sleep(0.005)
            assert seen is not None, "blocked session never became visible"
            assert seen["state"] == "active"
            assert seen["wait_event_type"] == "Lock"
            assert "insert into t" in seen["query"]
        finally:
            db._statement_lock.release()
            thread.join(timeout=5.0)
        assert done.is_set()
        row = _activity_rows(db)[blocked.backend_id]
        assert row["state"] == "idle"
        assert row["wait_event"] is None
        assert row["lock_waits"] >= 1
        assert row["lock_wait_ms"] > 0.0
        assert db.query("SELECT count(*) FROM t")[0][0] == 1

    def test_view_reads_skip_the_statement_lock(self):
        """A pure view SELECT never takes the statement lock (it would
        deadlock here, since the test holds the lock)."""
        db = PgSimDatabase()
        session = db.session("monitor")
        with db._statement_lock:
            rows = session.query("SELECT * FROM pg_stat_activity")
        assert any(r[0] == session.backend_id for r in rows)


class TestVacuumProgress:
    def test_vacuum_progress_phases_over_all_ams(self):
        """One vacuum drives every AM's ambulkdelete through the shared
        progress record: all three phases, one index_vacuum_count tick
        per index, and reclaimed index entries reported."""
        db = PgSimDatabase()
        _load(db, n=60)
        for am, opts in ALL_AMS.items():
            db.execute(f"CREATE INDEX ix_{am} ON items USING {am} (vec) {opts}")
        db.execute("DELETE FROM items WHERE id < 20")
        db.execute("VACUUM items")
        rows = db.query("SELECT * FROM pg_stat_progress_vacuum")
        assert len(rows) == 1
        cols = db.catalog.view("pg_stat_progress_vacuum").column_names()
        row = dict(zip(cols, rows[0]))
        assert row["table"] == "items"
        assert row["status"] == "done"
        assert row["phases"].split(",") == [
            "scanning heap",
            "vacuuming indexes",
            "performing final cleanup",
        ]
        assert row["tuples_removed"] == 20
        assert row["heap_blks_scanned"] == row["heap_blks_total"] > 0
        assert row["index_vacuum_count"] == len(ALL_AMS)
        # Every AM reclaimed the 20 dead TIDs' entries.
        assert row["index_entries_removed"] == 20 * len(ALL_AMS)

    def test_vacuum_history_keeps_multiple_runs(self):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("VACUUM t")
        db.execute("VACUUM t")
        rows = db.query("SELECT * FROM pg_stat_progress_vacuum")
        assert len(rows) == 2


class TestSlowQueryLog:
    def test_ring_is_bounded_and_total_monotonic(self):
        log = SlowQueryLog(capacity=3)
        for i in range(7):
            log.record(
                SlowQueryRecord(
                    logged_at=float(i),
                    backend_id=1,
                    session="s",
                    kind="statement",
                    query=f"q{i}",
                    elapsed_ms=float(i),
                    rows=0,
                )
            )
        assert log.total_logged == 7
        assert [r.query for r in log.records()] == ["q4", "q5", "q6"]
        assert [r.query for r in log.top(2)] == ["q6", "q5"]
        log.reset()
        assert log.records() == []
        assert log.total_logged == 7  # monotonic across reset

    def test_log_min_duration_statement_view(self):
        db = PgSimDatabase()
        _load(db, n=10)
        db.execute("SET log_min_duration_statement = 0")
        db.query("SELECT count(*) FROM items")
        db.execute("SET log_min_duration_statement = -1")
        rows = db.query("SELECT * FROM pg_slow_queries")
        cols = db.catalog.view("pg_slow_queries").column_names()
        records = [dict(zip(cols, r)) for r in rows]
        assert any("select count" in r["query"] for r in records)
        # Slowest-first ordering.
        elapsed = [r["elapsed_ms"] for r in records]
        assert elapsed == sorted(elapsed, reverse=True)

    def test_threshold_filters_fast_statements(self):
        db = PgSimDatabase()
        _load(db, n=10)
        db.execute("SET log_min_duration_statement = 100000")
        db.query("SELECT count(*) FROM items")
        db.execute("SET log_min_duration_statement = -1")
        assert db.slowlog.records() == []

    def test_file_sink_writes_jsonl(self, tmp_path):
        db = PgSimDatabase()
        _load(db, n=10)
        sink = tmp_path / "slow.jsonl"
        db.execute(f"SET slow_query_log_file = '{sink}'")
        db.execute("SET log_min_duration_statement = 0")
        db.query("SELECT count(*) FROM items")
        db.execute("SET log_min_duration_statement = -1")
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert any("select count" in rec["query"] for rec in lines)
        assert all(rec["session"] for rec in lines)

    def test_autovacuum_logged_under_its_own_guc(self):
        db = PgSimDatabase()
        _load(db, n=40)
        db.execute("SET autovacuum = on")
        db.execute("SET autovacuum_vacuum_threshold = 1")
        db.execute("SET autovacuum_vacuum_scale_factor = 0")
        db.execute("SET log_autovacuum_min_duration = 0")
        db.execute("DELETE FROM items WHERE id < 10")
        db.execute("SELECT count(*) FROM items")  # triggers the hook
        kinds = {r.kind for r in db.slowlog.records()}
        assert "autovacuum" in kinds
        record = next(r for r in db.slowlog.records() if r.kind == "autovacuum")
        assert record.query == "VACUUM items"
        assert record.rows == 10
        assert record.session == "autovacuum"


class TestAutoExplain:
    def test_capture_only_for_threshold_crossers(self):
        db = PgSimDatabase()
        rng = _load(db, n=40)
        db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1, seed = 42)"
        )
        knn = f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5"
        # Threshold no statement can cross: nothing captured.
        db.execute("SET auto_explain_log_min_duration = 1000000")
        db.query(knn)
        assert db.slowlog.records() == []
        # Threshold 0: exactly the SELECT is captured, with plan + RC.
        db.execute("SET auto_explain_log_min_duration = 0")
        db.query(knn)
        db.execute("SET auto_explain_log_min_duration = -1")
        with_plan = [r for r in db.slowlog.records() if r.plan is not None]
        assert len(with_plan) == 1
        record = with_plan[0]
        assert "select id from items" in record.query
        assert record.elapsed_ms > 0
        assert "Index Scan using ix" in record.plan
        assert "Buffers:" in record.plan
        assert "actual rows=" in record.plan

    def test_capture_reconciles_with_explain_analyze_trace(self):
        """The auto_explain capture is the same artifact EXPLAIN
        (ANALYZE, BUFFERS, TRACE) produces: same plan shape, and RC
        buckets drawn from the same attribution vocabulary."""
        db = PgSimDatabase()
        rng = _load(db, n=40)
        db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1, seed = 42)"
        )
        knn = f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5"
        db.execute("SET auto_explain_log_min_duration = 0")
        db.query(knn)
        db.execute("SET auto_explain_log_min_duration = -1")
        record = db.slowlog.top(1)[0]
        explain = "\n".join(
            row[0] for row in db.query(f"EXPLAIN (ANALYZE, BUFFERS, TRACE) {knn}")
        )
        # Same plan shape: every node head line of the capture appears
        # in the EXPLAIN output too (actuals differ between runs).
        for line in record.plan.splitlines():
            head = line.strip().split(" (")[0]
            if head.startswith(("->", "Project", "Limit", "Index Scan")):
                assert head.lstrip("-> ") in explain
        # Same attribution vocabulary: each captured RC label shows up
        # in the TRACE breakdown.
        assert record.rc is not None and record.rc["buckets"]
        for bucket in record.rc["buckets"]:
            assert bucket["label"] in explain
        assert record.rc_top() is not None

    def test_no_stale_capture_leaks_to_next_statement(self):
        db = PgSimDatabase()
        _load(db, n=10)
        db.execute("SET auto_explain_log_min_duration = 0")
        db.query("SELECT count(*) FROM items")
        db.execute("SET auto_explain_log_min_duration = -1")
        db.execute("SET log_min_duration_statement = 0")
        db.query("SELECT count(*) FROM items")
        db.execute("SET log_min_duration_statement = -1")
        captured = [r for r in db.slowlog.records() if r.plan is not None]
        assert len(captured) == 1  # only the auto_explain-armed run


class TestOnlineRecallProbes:
    def _probe_db(self, seed: int = 7) -> PgSimDatabase:
        db = PgSimDatabase()
        rng = _load(db, n=50, seed=1)
        db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1, seed = 42)"
        )
        db.execute("SET vector_quality_probe_rate = 0.5")
        db.execute(f"SET vector_quality_probe_seed = {seed}")
        self._rng = rng
        return db

    def _run_queries(self, db: PgSimDatabase, n: int = 20) -> list[tuple]:
        rng = random.Random(123)
        for _ in range(n):
            db.query(f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5")
        return db.query("SELECT * FROM pg_stat_vector_quality")

    def test_probes_record_quality(self):
        db = self._probe_db()
        rows = self._run_queries(db)
        assert len(rows) == 1
        index, am, probes, mean_recall, min_recall, last_recall = rows[0]
        assert (index, am) == ("ix", "pase_ivfflat")
        assert 0 < probes < 20  # sampled, not every query
        assert 0.0 <= min_recall <= mean_recall <= 1.0
        assert 0.0 <= last_recall <= 1.0

    def test_sampling_deterministic_under_fixed_seed(self):
        first = self._run_queries(self._probe_db(seed=7))
        second = self._run_queries(self._probe_db(seed=7))
        assert first == second
        other = self._run_queries(self._probe_db(seed=8))
        assert first[0][2] != other[0][2] or first != other

    def test_rate_zero_probes_nothing(self):
        db = self._probe_db()
        db.execute("SET vector_quality_probe_rate = 0")
        assert self._run_queries(db) == []

    def test_filtered_scans_never_probed(self):
        db = self._probe_db()
        db.execute("SET vector_quality_probe_rate = 1.0")
        rng = random.Random(5)
        db.query(
            f"SELECT id FROM items WHERE id < 25 "
            f"ORDER BY vec <-> '{_lit(rng)}' LIMIT 5"
        )
        rows = db.query("SELECT * FROM pg_stat_vector_quality")
        assert rows == []  # hybrid scan: recall@k undefined, skipped

    def test_exact_index_probes_at_full_recall(self):
        """nprobe = clusters makes IVF_FLAT exact, so every probe must
        report recall 1.0 — the oracle and the index agree exactly."""
        db = self._probe_db()
        db.execute("SET vector_quality_probe_rate = 1.0")
        db.execute("SET pase.nprobe = 4")
        rows = self._run_queries(db, n=5)
        assert rows[0][3] == 1.0  # mean recall


class TestStatReset:
    #: Families pg_stat_reset() must clear — the regression list; a new
    #: resettable surface belongs here and in the assertions below.
    RESETTABLE_VIEWS = (
        "pg_stat_statements",
        "pg_stat_wait_events",
        "pg_stat_vector_quality",
        "pg_slow_queries",
        "pg_ash",
        "pg_wait_profile",
        "pg_stat_history",
        "pg_stat_estimation_errors",
    )

    def test_reset_clears_every_resettable_family(self):
        db = PgSimDatabase()
        rng = _load(db, n=50, seed=1)
        db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1, seed = 42)"
        )
        db.execute("SET vector_quality_probe_rate = 1.0")
        db.execute("SET estimation_probe_rate = 1.0")
        db.execute("SET log_min_duration_statement = 0")
        db.query(f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5")
        db.execute("SET log_min_duration_statement = -1")
        db.execute("SET estimation_probe_rate = 0")
        # This single-session workload never contends on the statement
        # lock, so seed the wait-event family the way the session layer
        # would on contention.
        db.waits.record("SessionStatementLock", 0.001)
        # Seed the time-series rings the way the sampler would: one
        # ASH pass over a staged active backend, one history tick.
        activity = db.activity.get(db._default_session.backend_id)
        activity.begin_statement("select 1", time.time())
        assert db.ash.sample_once() == 1
        activity.end_statement(False, None)
        db.stat_history.tick()
        for view in self.RESETTABLE_VIEWS:
            assert db.query(f"SELECT * FROM {view}") != [], view
        statements_before = _activity_rows(db)[db._default_session.backend_id][
            "statements"
        ]
        assert statements_before > 0
        assert db.slowlog.total_logged > 0
        lifetime_before = (
            db.ash.total_samples,
            db.stat_history.total_ticks,
            db.executor.estimation.total_recorded,
        )
        assert all(v > 0 for v in lifetime_before)

        result = db.execute("SELECT pg_stat_reset()")
        assert result.columns == ["pg_stat_reset"]

        # Statements issued after the wipe (the reset call itself, the
        # view reads below) re-enter pg_stat_statements immediately, so
        # the emptiness check there is "the old workload is gone".
        assert all(
            "order by" not in row[0]
            for row in db.query("SELECT * FROM pg_stat_statements")
        )
        for view in self.RESETTABLE_VIEWS[1:]:
            assert db.query(f"SELECT * FROM {view}") == [], view
        # Per-backend counters reset; the backends themselves stay
        # registered (a connection does not vanish on stats reset).
        rows = _activity_rows(db)
        assert db._default_session.backend_id in rows
        # The counter restarted from zero at the reset: only the
        # handful of statements issued since (the reset call and the
        # view reads above) are counted.
        assert 0 < rows[db._default_session.backend_id]["statements"] <= 10
        assert rows[db._default_session.backend_id]["statements"] < statements_before
        # Monotonic lifetime counters survive (same contract as the
        # buffer/WAL counters): total_logged is not zeroed, and neither
        # are the time-series layers' lifetime totals.
        assert db.slowlog.total_logged > 0
        assert (
            db.ash.total_samples,
            db.stat_history.total_ticks,
            db.executor.estimation.total_recorded,
        ) == lifetime_before

    def test_reset_restarts_probe_ticket_sequence(self):
        """After pg_stat_reset() the deterministic probe schedule
        replays from ticket 0 — same seed, same decisions."""
        db = PgSimDatabase()
        _load(db, n=50, seed=1)
        db.execute(
            "CREATE INDEX ix ON items USING pase_ivfflat (vec) "
            "WITH (clusters = 4, sample_ratio = 1, seed = 42)"
        )
        db.execute("SET vector_quality_probe_rate = 0.5")
        db.execute("SET vector_quality_probe_seed = 7")

        def run():
            rng = random.Random(123)
            for _ in range(12):
                db.query(
                    f"SELECT id FROM items ORDER BY vec <-> '{_lit(rng)}' LIMIT 5"
                )
            rows = db.query("SELECT * FROM pg_stat_vector_quality")
            return rows[0][2] if rows else 0

        first = run()
        db.execute("SELECT pg_stat_reset()")
        second = run()
        assert first == second


class TestLockFreePathSemantics:
    def test_view_select_inside_failed_txn_still_raises(self):
        """The lock-free fast path must not bypass transaction-block
        poisoning: a failed block rejects view reads too."""
        db = PgSimDatabase()
        session = db.session()
        session.execute("BEGIN")
        with pytest.raises(Exception):
            session.execute("SELECT * FROM missing_table")
        with pytest.raises(Exception, match="transaction is aborted"):
            session.execute("SELECT * FROM pg_stat_activity")
        session.execute("ROLLBACK")
        assert session.query("SELECT * FROM pg_stat_activity")

    def test_pg_stat_reset_not_routed_through_fast_path(self):
        db = PgSimDatabase()
        db.execute("CREATE TABLE t (id int)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.query("SELECT * FROM pg_stat_statements") != []
        db.execute("SELECT pg_stat_reset()")
        # Only post-reset statements remain (the reset call itself is
        # recorded after the wipe) — the pre-reset workload is gone.
        remaining = {row[0] for row in db.query("SELECT * FROM pg_stat_statements")}
        assert all("insert into t" not in q for q in remaining)
        assert any("pg_stat_reset" in q for q in remaining)
