"""Stateful property test: the buffer manager vs a model of the disk.

Hypothesis drives random sequences of page operations (allocate, read,
write, flush, evict-pressure) against a tiny 4-frame pool and checks
that what comes back through the buffer manager always equals a plain
dict model — i.e. caching and eviction never lose or corrupt data.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.pgsim.buffer import BufferManager
from repro.pgsim.page import Page
from repro.pgsim.storage import MemoryDisk


class BufferMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.disk = MemoryDisk(page_size=512)
        self.disk.create_relation("r")
        self.buffer = BufferManager(self.disk, capacity=4)
        #: model: blkno -> list of item payloads
        self.model: dict[int, list[bytes]] = {}

    # ------------------------------------------------------------------
    # rules
    # ------------------------------------------------------------------
    @rule()
    def allocate_page(self) -> None:
        blkno, frame = self.buffer.new_page("r")
        self.buffer.unpin(frame, dirty=True)
        assert blkno not in self.model
        self.model[blkno] = []

    @precondition(lambda self: self.model)
    @rule(data=st.data(), payload=st.binary(min_size=1, max_size=40))
    def insert_item(self, data, payload) -> None:
        blkno = data.draw(st.sampled_from(sorted(self.model)))
        frame = self.buffer.pin("r", blkno)
        try:
            if frame.page.free_space >= len(payload):
                frame.page.insert_item(payload)
                self.model[blkno].append(payload)
        finally:
            self.buffer.unpin(frame, dirty=True)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def read_page(self, data) -> None:
        blkno = data.draw(st.sampled_from(sorted(self.model)))
        with self.buffer.page("r", blkno) as page:
            items = [page.get_item(i) for i in page.live_items()]
        assert items == self.model[blkno]

    @rule()
    def flush_everything(self) -> None:
        self.buffer.flush_all()

    @precondition(lambda self: len(self.model) >= 2)
    @rule()
    def churn_to_force_evictions(self) -> None:
        # Touch every page once; with 4 frames this forces evictions
        # whenever more than 4 pages exist.
        for blkno in sorted(self.model):
            with self.buffer.page("r", blkno):
                pass

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    @invariant()
    def no_leaked_pins(self) -> None:
        assert self.buffer.pinned_pages() == 0

    @invariant()
    def pool_capacity_respected(self) -> None:
        assert self.buffer.cached_pages <= 4

    @invariant()
    def disk_block_count_matches(self) -> None:
        assert self.disk.n_blocks("r") == len(self.model)


BufferMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestBufferMachine = BufferMachine.TestCase
