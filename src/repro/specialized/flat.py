"""Brute-force exact index (Faiss's ``IndexFlat`` analogue).

Used as the accuracy reference for all approximate indexes and as the
simplest demonstration of the SGEMM-batched scan path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.common.distance import batch_kernel
from repro.common.heap import exact_topk
from repro.common.types import IndexSizeInfo, SearchResult
from repro.specialized.base import VectorIndex


class FlatIndex(VectorIndex):
    """Exact top-k by scanning every stored vector with batched kernels."""

    requires_training = False

    def __init__(self, dim: int, **kwargs) -> None:
        super().__init__(dim, **kwargs)
        self._vectors = np.empty((0, dim), dtype=np.float32)

    def _train(self, data: np.ndarray) -> None:  # pragma: no cover - not reached
        pass

    def _add(self, data: np.ndarray) -> None:
        start = time.perf_counter()
        self._vectors = np.vstack([self._vectors, data])
        self.build_stats.add_seconds += time.perf_counter() - start

    def search_batch(self, queries: np.ndarray, k: int, **kwargs) -> list[SearchResult]:
        """Batched exact search: one SGEMM for the whole query matrix."""
        if kwargs:
            raise TypeError(f"FlatIndex.search_batch got unexpected options: {sorted(kwargs)}")
        arr = self._check_matrix(queries)
        start = time.perf_counter()
        dists = batch_kernel(self.distance_type)(arr, self._vectors)
        elapsed = time.perf_counter() - start
        per_query = elapsed / arr.shape[0]
        results = [
            SearchResult(
                neighbors=exact_topk(dists[i], k),
                elapsed_seconds=per_query,
                distance_computations=self.ntotal,
            )
            for i in range(arr.shape[0])
        ]
        for result in results:
            self._note_search(result)
        return results

    def _search(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        if kwargs:
            raise TypeError(f"FlatIndex.search got unexpected options: {sorted(kwargs)}")
        start = time.perf_counter()
        dists = batch_kernel(self.distance_type)(query, self._vectors)[0]
        neighbors = exact_topk(dists, k)
        elapsed = time.perf_counter() - start
        return SearchResult(
            neighbors=neighbors,
            elapsed_seconds=elapsed,
            distance_computations=self.ntotal,
        )

    def reconstruct(self, vector_id: int) -> np.ndarray:
        """Return the stored vector for ``vector_id``."""
        if not 0 <= vector_id < self.ntotal:
            raise IndexError(f"vector id {vector_id} out of range [0, {self.ntotal})")
        return self._vectors[vector_id].copy()

    def size_info(self) -> IndexSizeInfo:
        payload = int(self._vectors.nbytes)
        return IndexSizeInfo(
            allocated_bytes=payload,
            used_bytes=payload,
            detail={"vectors": payload},
        )
