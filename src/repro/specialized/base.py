"""Common interface of the specialized engine's indexes."""

from __future__ import annotations

import abc

import numpy as np

from repro.common.obs import IndexScanStats
from repro.common.profiling import NULL_PROFILER, Profiler
from repro.common.types import (
    BuildStats,
    DistanceType,
    IndexSizeInfo,
    SearchResult,
    as_float32_matrix,
    as_float32_vector,
)


class VectorIndex(abc.ABC):
    """Abstract base of all specialized indexes.

    Mirrors the Faiss index lifecycle: an index is created with its
    hyper-parameters, optionally :meth:`train`-ed on a sample, filled
    with :meth:`add`, then queried with :meth:`search`.
    """

    requires_training: bool = True

    def __init__(
        self,
        dim: int,
        distance_type: DistanceType = DistanceType.L2,
        profiler: Profiler | None = None,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.distance_type = DistanceType(distance_type)
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.is_trained = not self.requires_training
        self.ntotal = 0
        self.build_stats = BuildStats()
        #: Cumulative scan statistics (same shape the pgsim index AMs
        #: expose), fed from each SearchResult's distance_computations.
        self.scan_stats = IndexScanStats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def train(self, data: np.ndarray) -> None:
        """Train internal quantizers from a data sample."""
        arr = self._check_matrix(data)
        self._train(arr)
        self.is_trained = True

    def add(self, data: np.ndarray) -> None:
        """Add base vectors; ids are assigned sequentially from ``ntotal``."""
        arr = self._check_matrix(data)
        if not self.is_trained:
            raise RuntimeError(f"{type(self).__name__} must be trained before add()")
        self._add(arr)
        self.ntotal += arr.shape[0]
        self.build_stats.vectors_added = self.ntotal

    def search_batch(self, queries: np.ndarray, k: int, **kwargs) -> list[SearchResult]:
        """Top-``k`` search for a query batch.

        The base implementation loops :meth:`search`; indexes with a
        batched fast path (e.g. the flat index's single SGEMM distance
        matrix) override it.
        """
        arr = self._check_matrix(queries)
        results = [self._search(arr[i], k, **kwargs) for i in range(arr.shape[0])]
        for result in results:
            self._note_search(result)
        return results

    def search(self, query: np.ndarray, k: int, **kwargs) -> SearchResult:
        """Top-``k`` search for one query vector."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.ntotal == 0:
            raise RuntimeError("index is empty; add vectors before searching")
        vec = as_float32_vector(query)
        if vec.shape[0] != self.dim:
            raise ValueError(f"query dim {vec.shape[0]} != index dim {self.dim}")
        result = self._search(vec, k, **kwargs)
        self._note_search(result)
        return result

    def _note_search(self, result: SearchResult) -> None:
        self.scan_stats.scans += 1
        self.scan_stats.candidates += result.distance_computations

    # ------------------------------------------------------------------
    # to implement
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _train(self, data: np.ndarray) -> None: ...

    @abc.abstractmethod
    def _add(self, data: np.ndarray) -> None: ...

    @abc.abstractmethod
    def _search(self, query: np.ndarray, k: int, **kwargs) -> SearchResult: ...

    @abc.abstractmethod
    def size_info(self) -> IndexSizeInfo:
        """Byte-level accounting of the built index."""
        ...

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _check_matrix(self, data: np.ndarray) -> np.ndarray:
        arr = as_float32_matrix(data)
        if arr.shape[1] != self.dim:
            raise ValueError(f"vector dim {arr.shape[1]} != index dim {self.dim}")
        return arr
