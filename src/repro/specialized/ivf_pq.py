"""IVF_PQ for the specialized engine (Faiss's ``IndexIVFPQ``).

Same inverted-file skeleton as :mod:`repro.specialized.ivf_flat`, but
each bucket stores product-quantization codes instead of raw vectors
(Sec. II-B).  Search computes asymmetric distances against a per-query
precomputed table; the *optimized* table construction (norms cached at
train time + inner products, RC#7) is the default and can be disabled
with ``optimized_pctable=False`` for the Sec. VII-B ablation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.common import pq
from repro.common.distance import batch_kernel, squared_norms
from repro.common.heap import BoundedMaxHeap
from repro.common.kmeans import (
    assign_nearest_batch,
    assign_nearest_loop,
    faiss_kmeans,
    pase_kmeans,
    sample_training_rows,
)
from repro.common.types import IndexSizeInfo, SearchResult
from repro.specialized.base import VectorIndex

SEC_DISTANCE = "fvec_L2sqr"
SEC_TUPLE_ACCESS = "Tuple Access"
SEC_HEAP = "Min-heap"
SEC_COARSE = "Coarse Quantizer"
SEC_PCTABLE = "Pctable"


class IVFPQIndex(VectorIndex):
    """Inverted-file index with product-quantized buckets.

    Args:
        dim: vector dimensionality (must be divisible by ``m``).
        n_clusters: the paper's ``c``.
        m: sub-vector count (paper's ``m``).
        c_pq: codewords per sub-space (paper's ``c_pq``).
        optimized_pctable: RC#7 switch — optimized vs. naive ADC table.
        use_sgemm: RC#1 switch for training/adding.
    """

    def __init__(
        self,
        dim: int,
        n_clusters: int,
        m: int,
        c_pq: int = 256,
        sample_ratio: float = 0.01,
        use_sgemm: bool = True,
        optimized_pctable: bool = True,
        kmeans_style: str = "faiss",
        kmeans_iterations: int = 10,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(dim, **kwargs)
        if dim % m != 0:
            raise ValueError(f"dim {dim} not divisible by m={m}")
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_clusters = n_clusters
        self.m = m
        self.c_pq = c_pq
        self.sample_ratio = sample_ratio
        self.use_sgemm = use_sgemm
        self.optimized_pctable = optimized_pctable
        self.kmeans_style = kmeans_style
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self._centroid_sq_norms: np.ndarray | None = None
        self.codebook: pq.PQCodebook | None = None
        self._bucket_codes: list[list[np.ndarray]] = []
        self._bucket_ids: list[list[int]] = []
        self._bucket_code_arrays: list[np.ndarray] | None = None
        self._bucket_id_arrays: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _train(self, data: np.ndarray) -> None:
        start = time.perf_counter()
        sample = sample_training_rows(
            data, self.sample_ratio, max(self.n_clusters, self.c_pq), self.seed
        )
        if self.kmeans_style == "faiss":
            coarse = faiss_kmeans(
                sample,
                self.n_clusters,
                self.kmeans_iterations,
                seed=self.seed,
                use_sgemm=self.use_sgemm,
            )
        else:
            coarse = pase_kmeans(sample, self.n_clusters, self.kmeans_iterations)
        self.centroids = coarse.centroids
        self._centroid_sq_norms = squared_norms(self.centroids)
        self.codebook = pq.train_codebook(
            sample,
            self.m,
            self.c_pq,
            max_iterations=self.kmeans_iterations,
            seed=self.seed,
            style=self.kmeans_style,
        )
        self._bucket_codes = [[] for _ in range(self.n_clusters)]
        self._bucket_ids = [[] for _ in range(self.n_clusters)]
        self.build_stats.train_seconds += time.perf_counter() - start

    def _add(self, data: np.ndarray) -> None:
        assert self.centroids is not None and self.codebook is not None
        start = time.perf_counter()
        if self.use_sgemm:
            assignments, _ = assign_nearest_batch(data, self.centroids, self._centroid_sq_norms)
        else:
            assignments, _ = assign_nearest_loop(data, self.centroids)
        self.build_stats.distance_computations += data.shape[0] * self.n_clusters
        codes = pq.encode(self.codebook, data)
        next_id = self.ntotal
        for offset, bucket in enumerate(assignments.tolist()):
            self._bucket_codes[bucket].append(codes[offset])
            self._bucket_ids[bucket].append(next_id + offset)
        self._bucket_code_arrays = None
        self._bucket_id_arrays = None
        self.build_stats.add_seconds += time.perf_counter() - start

    def _finalize(self) -> None:
        if self._bucket_code_arrays is not None:
            return
        self._bucket_code_arrays = []
        self._bucket_id_arrays = []
        for codes, ids in zip(self._bucket_codes, self._bucket_ids):
            if codes:
                self._bucket_code_arrays.append(np.vstack(codes))
                self._bucket_id_arrays.append(np.asarray(ids, dtype=np.int64))
            else:
                self._bucket_code_arrays.append(np.empty((0, self.m), dtype=np.uint8))
                self._bucket_id_arrays.append(np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _search(self, query: np.ndarray, k: int, nprobe: int = 20) -> SearchResult:
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        assert self.centroids is not None and self.codebook is not None
        self._finalize()
        prof = self.profiler
        start = time.perf_counter()
        ndis = self.n_clusters
        with prof.section(SEC_COARSE):
            kernel = batch_kernel(self.distance_type)
            cent_dists = kernel(query, self.centroids)[0]
            nprobe = min(nprobe, self.n_clusters)
            part = np.argpartition(cent_dists, nprobe - 1)[:nprobe]
            probes = part[np.argsort(cent_dists[part], kind="stable")]
        with prof.section(SEC_PCTABLE):
            if self.optimized_pctable:
                table = pq.optimized_adc_table(self.codebook, query)
            else:
                table = pq.naive_adc_table(self.codebook, query)
        heap = BoundedMaxHeap(k)
        for bucket in probes.tolist():
            with prof.section(SEC_TUPLE_ACCESS):
                codes = self._bucket_code_arrays[bucket]
                ids = self._bucket_id_arrays[bucket]
            if codes.shape[0] == 0:
                continue
            with prof.section(SEC_DISTANCE):
                dists = pq.adc_distances(table, codes)
            ndis += codes.shape[0]
            with prof.section(SEC_HEAP):
                take = min(k, dists.shape[0])
                if take < dists.shape[0]:
                    part = np.argpartition(dists, take - 1)[:take]
                else:
                    part = np.arange(dists.shape[0])
                worst = heap.worst_distance
                for d, vid in zip(dists[part].tolist(), ids[part].tolist()):
                    if d < worst:
                        heap.push(d, vid)
                        worst = heap.worst_distance
        return SearchResult(
            neighbors=heap.results(),
            elapsed_seconds=time.perf_counter() - start,
            distance_computations=ndis,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def bucket_sizes(self) -> np.ndarray:
        """Number of codes per bucket."""
        return np.asarray([len(ids) for ids in self._bucket_ids], dtype=np.int64)

    def size_info(self) -> IndexSizeInfo:
        assert self.centroids is not None and self.codebook is not None
        code_bytes = self.ntotal * self.m  # one uint8 per sub-code
        id_bytes = self.ntotal * 8
        centroid_bytes = int(self.centroids.nbytes)
        codebook_bytes = self.codebook.nbytes()
        total = code_bytes + id_bytes + centroid_bytes + codebook_bytes
        return IndexSizeInfo(
            allocated_bytes=total,
            used_bytes=total,
            detail={
                "codes": code_bytes,
                "ids": id_bytes,
                "centroids": centroid_bytes,
                "codebooks": codebook_bytes,
            },
        )
