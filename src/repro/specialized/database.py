"""Collection-level facade of the specialized engine.

Specialized vector databases expose a simple create/index/search API
(Sec. II-C); this facade mirrors that surface so the examples and the
comparative study can drive both engines through look-alike calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.types import DistanceType, SearchResult, as_float32_matrix
from repro.specialized.base import VectorIndex
from repro.specialized.flat import FlatIndex
from repro.specialized.hnsw import HNSWIndex
from repro.specialized.ivf_flat import IVFFlatIndex
from repro.specialized.ivf_pq import IVFPQIndex
from repro.specialized.ivf_sq8 import IVFSQ8Index

#: index type name -> constructor; the three index families the paper
#: studies plus the exact baseline.
INDEX_TYPES = {
    "flat": FlatIndex,
    "ivf_flat": IVFFlatIndex,
    "ivf_pq": IVFPQIndex,
    "ivf_sq8": IVFSQ8Index,
    "hnsw": HNSWIndex,
}


@dataclass
class Collection:
    """A named set of vectors with at most one index per index type."""

    name: str
    dim: int
    distance_type: DistanceType = DistanceType.L2
    vectors: np.ndarray | None = None
    indexes: dict[str, VectorIndex] = field(default_factory=dict)

    @property
    def count(self) -> int:
        """Number of stored vectors."""
        return 0 if self.vectors is None else int(self.vectors.shape[0])


class SpecializedDatabase:
    """In-memory multi-collection vector database."""

    def __init__(self) -> None:
        self._collections: dict[str, Collection] = {}

    def create_collection(
        self, name: str, dim: int, distance_type: DistanceType = DistanceType.L2
    ) -> Collection:
        """Create an empty collection; name must be unused."""
        if name in self._collections:
            raise ValueError(f"collection {name!r} already exists")
        col = Collection(name=name, dim=dim, distance_type=DistanceType(distance_type))
        self._collections[name] = col
        return col

    def drop_collection(self, name: str) -> None:
        """Remove a collection and its indexes."""
        self._collection(name)
        del self._collections[name]

    def list_collections(self) -> list[str]:
        """Names of all collections."""
        return sorted(self._collections)

    def insert(self, name: str, vectors: np.ndarray) -> int:
        """Append vectors to a collection; returns the new total count.

        Existing indexes also receive the new vectors so collection and
        indexes stay consistent.
        """
        col = self._collection(name)
        arr = as_float32_matrix(vectors)
        if arr.shape[1] != col.dim:
            raise ValueError(f"vector dim {arr.shape[1]} != collection dim {col.dim}")
        if col.vectors is None:
            col.vectors = arr.copy()
        else:
            col.vectors = np.vstack([col.vectors, arr])
        for index in col.indexes.values():
            index.add(arr)
        return col.count

    def create_index(self, name: str, index_type: str, **params) -> VectorIndex:
        """Build an index over all current vectors of a collection."""
        col = self._collection(name)
        if index_type not in INDEX_TYPES:
            known = ", ".join(sorted(INDEX_TYPES))
            raise ValueError(f"unknown index type {index_type!r}; known: {known}")
        if col.vectors is None:
            raise RuntimeError(f"collection {name!r} is empty; insert vectors first")
        factory = INDEX_TYPES[index_type]
        index = factory(col.dim, distance_type=col.distance_type, **params)
        if index.requires_training:
            index.train(col.vectors)
        index.add(col.vectors)
        col.indexes[index_type] = index
        return index

    def search(
        self, name: str, query: np.ndarray, k: int, index_type: str | None = None, **opts
    ) -> SearchResult:
        """Top-``k`` search; picks the only index if ``index_type`` is None.

        Falls back to an on-the-fly exact scan when no index exists.
        """
        col = self._collection(name)
        if index_type is None:
            if len(col.indexes) == 1:
                index_type = next(iter(col.indexes))
            elif not col.indexes:
                return self._exact_search(col, query, k)
            else:
                raise ValueError(
                    f"collection {name!r} has several indexes; specify index_type"
                )
        if index_type not in col.indexes:
            raise KeyError(f"collection {name!r} has no {index_type!r} index")
        return col.indexes[index_type].search(query, k, **opts)

    def _exact_search(self, col: Collection, query: np.ndarray, k: int) -> SearchResult:
        flat = FlatIndex(col.dim, distance_type=col.distance_type)
        assert col.vectors is not None
        flat.add(col.vectors)
        return flat.search(query, k)

    def _collection(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise KeyError(f"no such collection: {name!r}") from None
