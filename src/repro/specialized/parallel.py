"""Parallel build/search drivers for the specialized engine (RC#3).

Faiss parallelizes IVF construction by splitting the base vectors
across threads, and intra-query search by scanning different buckets
on different threads with *local* top-k heaps merged lock-free at the
end (Secs. V-D, VII-D).  These drivers execute that partitioning for
real, record per-unit costs, and hand them to the deterministic
scheduler in :mod:`repro.common.parallel` (see DESIGN.md §2 for why
the clock — not the work — is simulated).
"""

from __future__ import annotations

import time

import numpy as np

from repro.common.distance import batch_kernel
from repro.common.heap import BoundedMaxHeap
from repro.common.parallel import ScheduleResult, WorkUnit, scaling_curve
from repro.common.types import SearchResult
from repro.specialized.ivf_flat import IVFFlatIndex
from repro.specialized.ivf_pq import IVFPQIndex


def build_work_units(
    index: IVFFlatIndex | IVFPQIndex,
    data: np.ndarray,
    n_chunks: int = 16,
) -> list[WorkUnit]:
    """Measure per-chunk *adding*-phase costs for parallel construction.

    The index must already be trained (training is serial in both
    systems).  Each chunk of base vectors becomes one work unit; no
    serial sections — Faiss's adder keeps per-thread bucket lists.
    """
    if not index.is_trained:
        raise RuntimeError("train the index before measuring parallel build units")
    units: list[WorkUnit] = []
    for chunk in np.array_split(data, n_chunks):
        if chunk.shape[0] == 0:
            continue
        start = time.perf_counter()
        index.add(chunk)
        units.append(WorkUnit(compute_seconds=time.perf_counter() - start))
    return units


def simulate_parallel_build(
    index: IVFFlatIndex | IVFPQIndex,
    data: np.ndarray,
    thread_counts: list[int],
    train_seconds: float | None = None,
    n_chunks: int = 16,
) -> dict[int, float]:
    """Total build time (serial train + scheduled add) per thread count.

    Mirrors Fig. 9's setup: training is not parallelized, adding is.
    """
    units = build_work_units(index, data, n_chunks=n_chunks)
    if train_seconds is None:
        train_seconds = index.build_stats.train_seconds
    curve = scaling_curve(units, thread_counts)
    return {t: train_seconds + r.wall_seconds for t, r in curve.items()}


def parallel_search(
    index: IVFFlatIndex | IVFPQIndex,
    query: np.ndarray,
    k: int,
    nprobe: int,
    thread_counts: list[int],
) -> tuple[SearchResult, dict[int, ScheduleResult]]:
    """Intra-query parallel search with local heaps (the Faiss design).

    Each probed bucket is a work unit: scan the bucket, fill a *local*
    heap.  The final lock-free merge is charged as one serial op per
    bucket (a few comparisons).  Returns the (correct) search result
    and the simulated scaling curve.
    """
    from repro.common import pq as pq_mod

    index._finalize()
    query = np.ascontiguousarray(query, dtype=np.float32)
    probes = _probe_order(index, query, nprobe)

    global_heap = BoundedMaxHeap(k)
    units: list[WorkUnit] = []
    kernel = batch_kernel(index.distance_type)
    is_pq = isinstance(index, IVFPQIndex)
    table = None
    if is_pq:
        assert index.codebook is not None
        table = pq_mod.optimized_adc_table(index.codebook, query)

    for bucket in probes.tolist():
        start = time.perf_counter()
        local = BoundedMaxHeap(k)
        ids = index._bucket_id_arrays[bucket]
        if ids.shape[0] > 0:
            if is_pq:
                codes = index._bucket_code_arrays[bucket]
                dists = pq_mod.adc_distances(table, codes)
            else:
                vectors = index._bucket_vectors[bucket]
                dists = kernel(query, vectors)[0]
            take = min(k, dists.shape[0])
            part = (
                np.argpartition(dists, take - 1)[:take]
                if take < dists.shape[0]
                else np.arange(dists.shape[0])
            )
            for j in part.tolist():
                local.push(float(dists[j]), int(ids[j]))
        cost = time.perf_counter() - start
        global_heap.merge(local)
        # One lock-free merge handoff per bucket at the end.
        units.append(WorkUnit(compute_seconds=cost, serial_ops=1))

    curve = scaling_curve(units, thread_counts)
    result = SearchResult(neighbors=global_heap.results())
    return result, curve


def _probe_order(index, query: np.ndarray, nprobe: int) -> np.ndarray:
    if isinstance(index, IVFFlatIndex):
        return index.probe_order(query, nprobe)
    assert index.centroids is not None
    kernel = batch_kernel(index.distance_type)
    dists = kernel(query, index.centroids)[0]
    nprobe = min(nprobe, index.n_clusters)
    part = np.argpartition(dists, nprobe - 1)[:nprobe]
    return part[np.argsort(dists[part], kind="stable")]
