"""IVF_SQ8 for the specialized engine (Faiss's ``IndexIVFScalarQuantizer``).

Same inverted-file skeleton as IVF_FLAT, but buckets store one-byte
scalar-quantized codes (Sec. II-B's third quantization index) —
4 bytes/dim savings at a small, bounded recall cost.  Search
dequantizes each probed bucket in one vectorized step and scores it
with the batched kernel.
"""

from __future__ import annotations

import time

import numpy as np

from repro.common import sq
from repro.common.distance import batch_kernel, squared_norms
from repro.common.heap import BoundedMaxHeap
from repro.common.kmeans import (
    assign_nearest_batch,
    assign_nearest_loop,
    faiss_kmeans,
    pase_kmeans,
    sample_training_rows,
)
from repro.common.types import IndexSizeInfo, SearchResult
from repro.specialized.base import VectorIndex

SEC_DISTANCE = "fvec_L2sqr"
SEC_TUPLE_ACCESS = "Tuple Access"
SEC_HEAP = "Min-heap"
SEC_COARSE = "Coarse Quantizer"


class IVFSQ8Index(VectorIndex):
    """Inverted-file index over scalar-quantized (1 byte/dim) codes."""

    def __init__(
        self,
        dim: int,
        n_clusters: int,
        sample_ratio: float = 0.01,
        use_sgemm: bool = True,
        kmeans_style: str = "faiss",
        kmeans_iterations: int = 10,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(dim, **kwargs)
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_clusters = n_clusters
        self.sample_ratio = sample_ratio
        self.use_sgemm = use_sgemm
        self.kmeans_style = kmeans_style
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self._centroid_sq_norms: np.ndarray | None = None
        self.codec: sq.SQ8Codec | None = None
        self._bucket_codes: list[list[np.ndarray]] = []
        self._bucket_ids: list[list[int]] = []
        self._bucket_code_arrays: list[np.ndarray] | None = None
        self._bucket_id_arrays: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _train(self, data: np.ndarray) -> None:
        start = time.perf_counter()
        sample = sample_training_rows(data, self.sample_ratio, self.n_clusters, self.seed)
        if self.kmeans_style == "faiss":
            result = faiss_kmeans(
                sample,
                self.n_clusters,
                self.kmeans_iterations,
                seed=self.seed,
                use_sgemm=self.use_sgemm,
            )
        else:
            result = pase_kmeans(sample, self.n_clusters, self.kmeans_iterations)
        self.centroids = result.centroids
        self._centroid_sq_norms = squared_norms(self.centroids)
        self.codec = sq.train_codec(sample)
        self._bucket_codes = [[] for __ in range(self.n_clusters)]
        self._bucket_ids = [[] for __ in range(self.n_clusters)]
        self.build_stats.train_seconds += time.perf_counter() - start

    def _add(self, data: np.ndarray) -> None:
        assert self.centroids is not None and self.codec is not None
        start = time.perf_counter()
        if self.use_sgemm:
            assignments, __ = assign_nearest_batch(data, self.centroids, self._centroid_sq_norms)
        else:
            assignments, __ = assign_nearest_loop(data, self.centroids)
        self.build_stats.distance_computations += data.shape[0] * self.n_clusters
        codes = sq.encode(self.codec, data)
        next_id = self.ntotal
        for offset, bucket in enumerate(assignments.tolist()):
            self._bucket_codes[bucket].append(codes[offset])
            self._bucket_ids[bucket].append(next_id + offset)
        self._bucket_code_arrays = None
        self._bucket_id_arrays = None
        self.build_stats.add_seconds += time.perf_counter() - start

    def _finalize(self) -> None:
        if self._bucket_code_arrays is not None:
            return
        self._bucket_code_arrays = []
        self._bucket_id_arrays = []
        for codes, ids in zip(self._bucket_codes, self._bucket_ids):
            if codes:
                self._bucket_code_arrays.append(np.vstack(codes))
                self._bucket_id_arrays.append(np.asarray(ids, dtype=np.int64))
            else:
                self._bucket_code_arrays.append(np.empty((0, self.dim), dtype=np.uint8))
                self._bucket_id_arrays.append(np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def _search(self, query: np.ndarray, k: int, nprobe: int = 20) -> SearchResult:
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        assert self.centroids is not None and self.codec is not None
        self._finalize()
        prof = self.profiler
        start = time.perf_counter()
        kernel = batch_kernel(self.distance_type)
        ndis = self.n_clusters
        with prof.section(SEC_COARSE):
            cent_dists = kernel(query, self.centroids)[0]
            nprobe = min(nprobe, self.n_clusters)
            part = np.argpartition(cent_dists, nprobe - 1)[:nprobe]
            probes = part[np.argsort(cent_dists[part], kind="stable")]
        heap = BoundedMaxHeap(k)
        for bucket in probes.tolist():
            with prof.section(SEC_TUPLE_ACCESS):
                codes = self._bucket_code_arrays[bucket]
                ids = self._bucket_id_arrays[bucket]
            if codes.shape[0] == 0:
                continue
            with prof.section(SEC_DISTANCE):
                vectors = sq.decode(self.codec, codes)
                dists = kernel(query, vectors)[0]
            ndis += codes.shape[0]
            with prof.section(SEC_HEAP):
                take = min(k, dists.shape[0])
                if take < dists.shape[0]:
                    sel = np.argpartition(dists, take - 1)[:take]
                else:
                    sel = np.arange(dists.shape[0])
                worst = heap.worst_distance
                for d, vid in zip(dists[sel].tolist(), ids[sel].tolist()):
                    if d < worst:
                        heap.push(d, vid)
                        worst = heap.worst_distance
        return SearchResult(
            neighbors=heap.results(),
            elapsed_seconds=time.perf_counter() - start,
            distance_computations=ndis,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def bucket_sizes(self) -> np.ndarray:
        """Number of codes per bucket."""
        return np.asarray([len(ids) for ids in self._bucket_ids], dtype=np.int64)

    def size_info(self) -> IndexSizeInfo:
        assert self.centroids is not None and self.codec is not None
        code_bytes = self.ntotal * self.dim  # one byte per dimension
        id_bytes = self.ntotal * 8
        centroid_bytes = int(self.centroids.nbytes)
        codec_bytes = self.codec.nbytes()
        total = code_bytes + id_bytes + centroid_bytes + codec_bytes
        return IndexSizeInfo(
            allocated_bytes=total,
            used_bytes=total,
            detail={
                "codes": code_bytes,
                "ids": id_bytes,
                "centroids": centroid_bytes,
                "codec": codec_bytes,
            },
        )
