"""The specialized vector database (Faiss-like reference engine).

This subpackage is the reproduction's stand-in for Faiss: an
in-memory vector search engine that treats vectors as a first-class
citizen.  Vectors and index structures live in flat NumPy arrays and
are dereferenced directly (no buffer manager, no page indirection),
batched kernels run through BLAS SGEMM (:mod:`repro.common.distance`),
and top-k selection uses a size-``k`` bounded heap.

Every optimization the paper credits Faiss for is implemented *and
individually switchable* so the ablation experiments can turn it off:

==========================  ==============================  ==========
Paper root cause            Switch                          Default
==========================  ==============================  ==========
RC#1 SGEMM                  ``use_sgemm``                   on
RC#5 k-means flavour        ``kmeans_style``                ``faiss``
RC#6 heap size              (always size-k here)            —
RC#7 precomputed table      ``optimized_pctable``           on
==========================  ==============================  ==========
"""

from repro.specialized.database import SpecializedDatabase
from repro.specialized.flat import FlatIndex
from repro.specialized.hnsw import HNSWIndex
from repro.specialized.ivf_flat import IVFFlatIndex
from repro.specialized.ivf_pq import IVFPQIndex
from repro.specialized.ivf_sq8 import IVFSQ8Index

__all__ = [
    "FlatIndex",
    "HNSWIndex",
    "IVFFlatIndex",
    "IVFPQIndex",
    "IVFSQ8Index",
    "SpecializedDatabase",
]
