"""HNSW for the specialized engine: array-backed graph store.

The graph *algorithm* lives in :mod:`repro.common.graph`; this module
provides the Faiss-style substrate: vectors in one contiguous float32
matrix, adjacency lists as plain Python lists of 4-byte ids, and a
flat boolean array as the visited set.  Every access is a direct
memory dereference — the baseline against which the paper measures
PASE's buffer-manager indirection (RC#2) and page blow-up (RC#4).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.common import graph
from repro.common.rng import make_rng
from repro.common.types import IndexSizeInfo, SearchResult
from repro.specialized.base import VectorIndex

#: bytes per stored neighbor id — Faiss stores plain int32 ids
#: ("Faiss HNSW uses only 4 bytes as expected", Sec. VI-C2).
NEIGHBOR_ID_BYTES = 4


class _ArrayVisited:
    """Visited set over a dense boolean array (O(1), cache-friendly)."""

    __slots__ = ("_flags",)

    def __init__(self, capacity: int) -> None:
        self._flags = np.zeros(capacity, dtype=bool)

    def add(self, node: int) -> None:
        self._flags[node] = True

    def __contains__(self, node: int) -> bool:
        return bool(self._flags[node])


class ArrayGraphStore:
    """Array-backed :class:`repro.common.graph.GraphStore`."""

    def __init__(self, dim: int, profiler=None) -> None:
        from repro.common.profiling import NULL_PROFILER

        self.dim = dim
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.counters = graph.GraphCounters()
        self.entry_point: int | None = None
        self.max_level = -1
        self._capacity = 1024
        self._vectors = np.empty((self._capacity, dim), dtype=np.float32)
        self._count = 0
        #: per node: list of per-level neighbor-id lists
        self._neighbors: list[list[list[int]]] = []
        self._levels: list[int] = []

    # -- GraphStore protocol ------------------------------------------
    def vector(self, node: int) -> np.ndarray:
        return self._vectors[node]

    def vectors(self, nodes: Sequence[int]) -> np.ndarray:
        return self._vectors[np.asarray(nodes, dtype=np.int64)]

    def neighbors(self, node: int, level: int) -> list[int]:
        lists = self._neighbors[node]
        if level >= len(lists):
            return []
        return list(lists[level])

    def set_neighbors(self, node: int, level: int, ids: Sequence[int]) -> None:
        lists = self._neighbors[node]
        while len(lists) <= level:
            lists.append([])
        lists[level] = list(ids)

    def add_node(self, vector: np.ndarray, level: int) -> int:
        if self._count == self._capacity:
            self._capacity *= 2
            grown = np.empty((self._capacity, self.dim), dtype=np.float32)
            grown[: self._count] = self._vectors[: self._count]
            self._vectors = grown
        node = self._count
        self._vectors[node] = vector
        self._count += 1
        self._neighbors.append([[] for _ in range(level + 1)])
        self._levels.append(level)
        return node

    def node_count(self) -> int:
        return self._count

    def make_visited(self) -> _ArrayVisited:
        return _ArrayVisited(self._count)

    # -- size accounting ----------------------------------------------
    def edge_count(self) -> int:
        """Total directed edges across all levels."""
        return sum(len(lst) for lists in self._neighbors for lst in lists)

    def size_bytes(self) -> dict[str, int]:
        """In-memory payload sizes (vectors + 4-byte neighbor ids)."""
        return {
            "vectors": self._count * self.dim * 4,
            "neighbors": self.edge_count() * NEIGHBOR_ID_BYTES,
            "levels": self._count * 4,
        }


class HNSWIndex(VectorIndex):
    """Faiss-style HNSW index (direct memory access)."""

    requires_training = False

    def __init__(
        self,
        dim: int,
        bnn: int = 16,
        efb: int = 40,
        efs: int = 200,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(dim, **kwargs)
        self.params = graph.HNSWParams(bnn=bnn, efb=efb, efs=efs)
        self.store = ArrayGraphStore(dim, profiler=self.profiler)
        self._rng = make_rng(seed)

    def _train(self, data: np.ndarray) -> None:  # pragma: no cover - not reached
        pass

    def _add(self, data: np.ndarray) -> None:
        start = time.perf_counter()
        for row in data:
            graph.insert(self.store, self.params, row, self._rng)
        self.build_stats.add_seconds += time.perf_counter() - start
        self.build_stats.distance_computations = self.store.counters.distance_computations

    def _search(self, query: np.ndarray, k: int, efs: int | None = None) -> SearchResult:
        start = time.perf_counter()
        before = self.store.counters.distance_computations
        neighbors = graph.search(self.store, self.params, query, k, efs=efs)
        return SearchResult(
            neighbors=neighbors,
            elapsed_seconds=time.perf_counter() - start,
            distance_computations=self.store.counters.distance_computations - before,
        )

    def size_info(self) -> IndexSizeInfo:
        parts = self.store.size_bytes()
        total = sum(parts.values())
        return IndexSizeInfo(allocated_bytes=total, used_bytes=total, detail=parts)
