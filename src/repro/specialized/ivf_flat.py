"""IVF_FLAT for the specialized engine (Faiss's ``IndexIVFFlat``).

Construction has the paper's two phases (Sec. II-B): *training* runs
k-means over a sample to produce ``c`` centroids; *adding* assigns each
base vector to its nearest centroid and appends it to that bucket.
Both phases use the SGEMM decomposition by default (RC#1); passing
``use_sgemm=False`` reproduces the Fig. 4 ablation.

Search scans the ``nprobe`` closest buckets with batched kernels and
keeps a size-``k`` bounded heap — the Faiss behaviours the paper
contrasts with PASE in Table V.
"""

from __future__ import annotations

import time

import numpy as np

from repro.common.distance import batch_kernel, squared_norms
from repro.common.heap import BoundedMaxHeap
from repro.common.kmeans import (
    assign_nearest_batch,
    assign_nearest_loop,
    faiss_kmeans,
    pase_kmeans,
    sample_training_rows,
)
from repro.common.types import IndexSizeInfo, SearchResult
from repro.specialized.base import VectorIndex

# Table V section names.
SEC_DISTANCE = "fvec_L2sqr"
SEC_TUPLE_ACCESS = "Tuple Access"
SEC_HEAP = "Min-heap"
SEC_COARSE = "Coarse Quantizer"


class IVFFlatIndex(VectorIndex):
    """Inverted-file index with exact in-bucket distances.

    Args:
        dim: vector dimensionality.
        n_clusters: the paper's ``c``.
        sample_ratio: the paper's ``sr`` — fraction of added data used
            for k-means when :meth:`train` receives the full corpus.
        use_sgemm: RC#1 switch; affects training and adding.
        kmeans_style: ``"faiss"`` (default) or ``"pase"`` — RC#5 switch
            used by the Fig. 15 centroid-transplant experiment.
        seed: RNG seed for sampling and k-means init.
    """

    def __init__(
        self,
        dim: int,
        n_clusters: int,
        sample_ratio: float = 0.01,
        use_sgemm: bool = True,
        kmeans_style: str = "faiss",
        kmeans_iterations: int = 10,
        seed: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(dim, **kwargs)
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        if kmeans_style not in ("faiss", "pase"):
            raise ValueError(f"kmeans_style must be 'faiss' or 'pase', got {kmeans_style!r}")
        self.n_clusters = n_clusters
        self.sample_ratio = sample_ratio
        self.use_sgemm = use_sgemm
        self.kmeans_style = kmeans_style
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self.centroids: np.ndarray | None = None
        self._centroid_sq_norms: np.ndarray | None = None
        # Per-bucket staging lists, finalized to arrays lazily.
        self._bucket_rows: list[list[np.ndarray]] = []
        self._bucket_ids: list[list[int]] = []
        self._bucket_vectors: list[np.ndarray] | None = None
        self._bucket_id_arrays: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _train(self, data: np.ndarray) -> None:
        start = time.perf_counter()
        sample = sample_training_rows(data, self.sample_ratio, self.n_clusters, self.seed)
        if self.kmeans_style == "faiss":
            result = faiss_kmeans(
                sample,
                self.n_clusters,
                self.kmeans_iterations,
                seed=self.seed,
                use_sgemm=self.use_sgemm,
            )
        else:
            result = pase_kmeans(sample, self.n_clusters, self.kmeans_iterations)
        self.set_centroids(result.centroids)
        self.build_stats.train_seconds += time.perf_counter() - start

    def set_centroids(self, centroids: np.ndarray) -> None:
        """Install externally-trained centroids (Fig. 15 transplant).

        Must be called before :meth:`add`; marks the index trained.
        """
        cents = np.ascontiguousarray(centroids, dtype=np.float32)
        if cents.ndim != 2 or cents.shape[1] != self.dim:
            raise ValueError(f"centroids must be (c, {self.dim}), got {cents.shape}")
        if self.ntotal:
            raise RuntimeError("cannot replace centroids after vectors were added")
        self.centroids = cents
        self.n_clusters = cents.shape[0]
        self._centroid_sq_norms = squared_norms(cents)
        self._bucket_rows = [[] for _ in range(self.n_clusters)]
        self._bucket_ids = [[] for _ in range(self.n_clusters)]
        self.is_trained = True

    def _add(self, data: np.ndarray) -> None:
        assert self.centroids is not None
        start = time.perf_counter()
        if self.use_sgemm:
            assignments, _ = assign_nearest_batch(data, self.centroids, self._centroid_sq_norms)
        else:
            assignments, _ = assign_nearest_loop(data, self.centroids)
        self.build_stats.distance_computations += data.shape[0] * self.n_clusters
        next_id = self.ntotal
        for offset, bucket in enumerate(assignments.tolist()):
            self._bucket_rows[bucket].append(data[offset])
            self._bucket_ids[bucket].append(next_id + offset)
        self._bucket_vectors = None  # invalidate finalized arrays
        self._bucket_id_arrays = None
        self.build_stats.add_seconds += time.perf_counter() - start

    def _finalize(self) -> None:
        if self._bucket_vectors is not None:
            return
        self._bucket_vectors = []
        self._bucket_id_arrays = []
        for rows, ids in zip(self._bucket_rows, self._bucket_ids):
            if rows:
                self._bucket_vectors.append(np.vstack(rows))
                self._bucket_id_arrays.append(np.asarray(ids, dtype=np.int64))
            else:
                self._bucket_vectors.append(np.empty((0, self.dim), dtype=np.float32))
                self._bucket_id_arrays.append(np.empty(0, dtype=np.int64))

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def probe_order(self, query: np.ndarray, nprobe: int) -> np.ndarray:
        """The ``nprobe`` bucket ids closest to ``query``, nearest first."""
        assert self.centroids is not None
        kernel = batch_kernel(self.distance_type)
        dists = kernel(query, self.centroids)[0]
        nprobe = min(nprobe, self.n_clusters)
        part = np.argpartition(dists, nprobe - 1)[:nprobe]
        return part[np.argsort(dists[part], kind="stable")]

    def _search(self, query: np.ndarray, k: int, nprobe: int = 20) -> SearchResult:
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        self._finalize()
        prof = self.profiler
        start = time.perf_counter()
        ndis = 0
        with prof.section(SEC_COARSE):
            probes = self.probe_order(query, nprobe)
        ndis += self.n_clusters
        heap = BoundedMaxHeap(k)
        kernel = batch_kernel(self.distance_type)
        for bucket in probes.tolist():
            with prof.section(SEC_TUPLE_ACCESS):
                vectors = self._bucket_vectors[bucket]
                ids = self._bucket_id_arrays[bucket]
            if vectors.shape[0] == 0:
                continue
            with prof.section(SEC_DISTANCE):
                dists = kernel(query, vectors)[0]
            ndis += vectors.shape[0]
            with prof.section(SEC_HEAP):
                # Faiss-style: partial-select the bucket, then at most k
                # pushes reach the global heap, most rejected by one
                # comparison against the current worst survivor.
                take = min(k, dists.shape[0])
                if take < dists.shape[0]:
                    part = np.argpartition(dists, take - 1)[:take]
                else:
                    part = np.arange(dists.shape[0])
                worst = heap.worst_distance
                for d, vid in zip(dists[part].tolist(), ids[part].tolist()):
                    if d < worst:
                        heap.push(d, vid)
                        worst = heap.worst_distance
        neighbors = heap.results()
        return SearchResult(
            neighbors=neighbors,
            elapsed_seconds=time.perf_counter() - start,
            distance_computations=ndis,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def bucket_sizes(self) -> np.ndarray:
        """Number of vectors per bucket."""
        return np.asarray([len(ids) for ids in self._bucket_ids], dtype=np.int64)

    def bucket_members(self, bucket: int) -> np.ndarray:
        """Vector ids assigned to ``bucket``."""
        return np.asarray(self._bucket_ids[bucket], dtype=np.int64)

    def size_info(self) -> IndexSizeInfo:
        assert self.centroids is not None
        vector_bytes = self.ntotal * self.dim * 4
        id_bytes = self.ntotal * 8
        centroid_bytes = int(self.centroids.nbytes)
        total = vector_bytes + id_bytes + centroid_bytes
        return IndexSizeInfo(
            allocated_bytes=total,
            used_bytes=total,
            detail={
                "vectors": vector_bytes,
                "ids": id_bytes,
                "centroids": centroid_bytes,
            },
        )
