"""Reproduction of "Are There Fundamental Limitations in Supporting
Vector Data Management in Relational Databases? A Case Study of
PostgreSQL" (Zhang, Liu, Wang — ICDE 2024).

Public API tour:

- :mod:`repro.core` — the comparative study framework (the paper's
  contribution): :class:`~repro.core.ComparativeStudy`, the root-cause
  catalogue, ablations and guidelines.
- :mod:`repro.specialized` — the Faiss-like in-memory vector engine.
- :mod:`repro.pgsim` — the PostgreSQL-like relational substrate
  (pages, buffer manager, WAL, SQL).
- :mod:`repro.pase` — PASE's vector index access methods on pgsim.
- :mod:`repro.pgvector` — the pgvector-like comparator.
- :mod:`repro.common` — shared kernels (distances, k-means, PQ,
  heaps, datasets, metrics, profiling, parallel model).
- :mod:`repro.bench` — the harness regenerating every paper
  figure/table (``repro-bench --experiment fig3``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
