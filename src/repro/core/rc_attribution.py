"""Automated root-cause (RC#1–RC#7) attribution from profiles/traces.

The paper's method is manual: run ``perf``, eyeball the flamegraph,
and file each hot region under one of the seven root causes (Sec.
IX-B).  This module automates the filing step.  Input is the span or
section profile a query/build recorded (every instrumented region in
this codebase uses the paper's own region names — ``fvec_L2sqr``,
``Tuple Access``, ``Min-heap``, ``HVTGet``, ``pasepfirst``,
``Pctable`` …); output is a bucketed breakdown keyed by
:class:`~repro.core.root_causes.RootCause`.

Invariant the consumers rely on: the bucket seconds sum exactly to the
profile's total recorded time (every section path lands in exactly one
bucket; nothing is dropped, nothing is counted twice), so a breakdown
printed by ``EXPLAIN (ANALYZE, TRACE)`` reconciles against the
query's elapsed time.

Wait events ride along informationally: ``DataFileRead``/``BufferRead``
blocked time is *part of* the sections it occurred under (typically
``Tuple Access``), so it annotates the report rather than adding to
the bucket sums.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.root_causes import RootCause

#: Profiler section name -> root cause.  Section names are the
#: paper's own region names, shared by every engine in this repo.
SECTION_ROOT_CAUSES: dict[str, RootCause] = {
    # One-at-a-time distance kernels (vs. Faiss's SGEMM batching).
    "fvec_L2sqr": RootCause.SGEMM,
    "Coarse Quantizer": RootCause.SGEMM,
    # Buffer-manager / page indirection on every tuple touch.
    "Tuple Access": RootCause.MEMORY_MANAGEMENT,
    "HVTGet": RootCause.MEMORY_MANAGEMENT,
    "pasepfirst": RootCause.MEMORY_MANAGEMENT,
    # Size-n candidate heap (vs. Faiss's bounded k-heap).
    "Min-heap": RootCause.HEAP_SIZE,
    # Cell-by-cell ADC table construction (IVF_PQ).
    "Pctable": RootCause.PRECOMPUTED_TABLE,
    # K-means training (build phase).
    "Kmeans": RootCause.KMEANS_IMPLEMENTATION,
}

#: Sections whose *exclusive* time is the executor's own per-tuple
#: work: Volcano pulls, row-dict construction, expression evaluation.
#: The repo files that interface toll under RC#3 (the paper's serial
#: single-worker executor; its fix — batching — is the same lever
#: parallel execution pulls).
EXECUTOR_SECTIONS = frozenset({"Executor", "ExecuteQuery"})

#: Bucket label for instrumented regions no root cause claims
#: (e.g. HNSW graph maintenance: AddLink, ShrinkNbList).
OTHER_LABEL = "Others"

#: Wait events that are symptoms of RC#2 (page/buffer indirection).
_MEMORY_WAIT_EVENTS = ("DataFileRead", "BufferRead", "LWLockBufferClock")


@dataclass(slots=True)
class RCBucket:
    """One attributed bucket of a breakdown."""

    label: str
    cause: RootCause | None  #: None for essential/unattributed buckets
    seconds: float
    fraction: float
    sections: tuple[str, ...]  #: section names that fed this bucket


@dataclass(slots=True)
class RCAttribution:
    """A full RC#1–RC#7 attribution of one recorded profile."""

    total_seconds: float  #: sum of all bucket seconds (== profile total)
    buckets: list[RCBucket]
    wait_events: dict[str, dict[str, Any]]  #: informational annotations

    def seconds_for(self, cause: RootCause) -> float:
        return sum(b.seconds for b in self.buckets if b.cause is cause)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe form (for bench emission)."""
        return {
            "total_seconds": self.total_seconds,
            "buckets": [
                {
                    "label": b.label,
                    "rc": b.cause.value if b.cause is not None else None,
                    "seconds": b.seconds,
                    "fraction": b.fraction,
                    "sections": list(b.sections),
                }
                for b in self.buckets
            ],
            "wait_events": self.wait_events,
        }


def _bucket_for(section: str) -> tuple[str, RootCause | None]:
    cause = SECTION_ROOT_CAUSES.get(section)
    if cause is not None:
        return f"RC#{cause.value} {cause.info.title}", cause
    if section in EXECUTOR_SECTIONS:
        cause = RootCause.PARALLEL_EXECUTION
        return f"RC#{cause.value} {cause.info.title} (per-tuple executor)", cause
    return OTHER_LABEL, None


def attribute_profile(profiler, wait_events=None) -> RCAttribution:
    """Bucket a profiler's recorded time into root causes.

    Args:
        profiler: a :class:`~repro.common.profiling.Profiler` (or a
            :class:`~repro.common.tracing.Tracer`, converted via
            ``to_profiler()``) whose section names follow the paper's
            region vocabulary.
        wait_events: optional
            :class:`~repro.common.obs.WaitEventStats` delta covering
            the same window, attached as annotations.

    Exclusive time is attributed by each path's innermost section, so
    e.g. a ``fvec_L2sqr`` nested under ``SearchNbToAdd`` files under
    RC#1 while ``SearchNbToAdd``'s own remaining time files under
    ``Others`` — the same rule the paper's flamegraph reading applies.
    """
    if hasattr(profiler, "to_profiler"):  # a Tracer
        profiler = profiler.to_profiler()
    seconds_by_bucket: dict[tuple[str, RootCause | None], float] = {}
    sections_by_bucket: dict[tuple[str, RootCause | None], set[str]] = {}
    for path, seconds in profiler._exclusive.items():
        section = path[-1]
        key = _bucket_for(section)
        seconds_by_bucket[key] = seconds_by_bucket.get(key, 0.0) + seconds
        sections_by_bucket.setdefault(key, set()).add(section)
    total = sum(seconds_by_bucket.values())
    buckets = [
        RCBucket(
            label=label,
            cause=cause,
            seconds=seconds,
            fraction=seconds / total if total > 0 else 0.0,
            sections=tuple(sorted(sections_by_bucket[(label, cause)])),
        )
        for (label, cause), seconds in seconds_by_bucket.items()
    ]
    buckets.sort(key=lambda b: b.seconds, reverse=True)
    waits: dict[str, dict[str, Any]] = {}
    if wait_events is not None:
        for event in wait_events.events():
            waits[event] = {
                "count": wait_events.counts[event],
                "seconds": wait_events.seconds.get(event, 0.0),
                "root_cause": (
                    RootCause.MEMORY_MANAGEMENT.value
                    if event in _MEMORY_WAIT_EVENTS
                    else None
                ),
            }
    return RCAttribution(total_seconds=total, buckets=buckets, wait_events=waits)


def format_rc_breakdown(attribution: RCAttribution, title: str | None = None) -> str:
    """Paper-style report of an attribution (percent + absolute).

    The layout mirrors the Tables III/V breakdowns: one row per
    bucket, descending, with the feeding region names alongside, then
    the reconciliation total and any wait-event annotations.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not attribution.buckets:
        lines.append("  (no samples)")
        return "\n".join(lines)
    width = max(len(b.label) for b in attribution.buckets)
    for b in attribution.buckets:
        sections = ", ".join(b.sections)
        lines.append(
            f"  {b.label:<{width}}  {b.fraction * 100:6.2f}%  "
            f"{b.seconds * 1e3:10.3f} ms  [{sections}]"
        )
    lines.append(
        f"  {'Total attributed':<{width}}  100.00%  "
        f"{attribution.total_seconds * 1e3:10.3f} ms"
    )
    for event, info in attribution.wait_events.items():
        rc = f" (RC#{info['root_cause']})" if info.get("root_cause") else ""
        lines.append(
            f"  wait {event}{rc}: {info['count']} x, "
            f"{info['seconds'] * 1e3:.3f} ms"
        )
    return "\n".join(lines)
