"""The paper's actionable guidelines (Sec. IX-C) as a checklist.

"How to bridge the gap?"  The paper closes with five steps for
building a generalized vector database that matches a specialized
one.  Each step is encoded with a predicate over a system-description
dict so a design can be *scored* against the guidelines — used by the
``root_cause_tour`` example and by tests that assert the specialized
engine scores 5/5 and the faithful PASE reproduction scores low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.root_causes import RootCause


@dataclass(frozen=True, slots=True)
class Guideline:
    """One of the Sec. IX-C steps."""

    step: int
    title: str
    detail: str
    addresses: tuple[RootCause, ...]
    check: Callable[[Mapping[str, Any]], bool]


#: Keys a system description may carry (all default falsy):
#: in_memory_layout, uses_sgemm, k_sized_heap, parallel_build,
#: parallel_search_local_heaps, compact_page_layout, tuned_kmeans,
#: optimized_pctable.
GUIDELINES: tuple[Guideline, ...] = (
    Guideline(
        step=1,
        title="Start from an in-memory database",
        detail=(
            "Bypass the buffer manager and page indirection when data fits "
            "in memory (memory-optimized table design)."
        ),
        addresses=(RootCause.MEMORY_MANAGEMENT,),
        check=lambda s: bool(s.get("in_memory_layout")),
    ),
    Guideline(
        step=2,
        title="Enable SGEMM",
        detail="Batch distance computation through BLAS matrix multiplication.",
        addresses=(RootCause.SGEMM,),
        check=lambda s: bool(s.get("uses_sgemm")),
    ),
    Guideline(
        step=3,
        title="Optimized top-k computation",
        detail="Use a heap of size k, not n, for top-k selection.",
        addresses=(RootCause.HEAP_SIZE,),
        check=lambda s: bool(s.get("k_sized_heap")),
    ),
    Guideline(
        step=4,
        title="Parallelism",
        detail=(
            "Parallel index construction and intra-query search with "
            "per-thread local heaps merged lock-free."
        ),
        addresses=(RootCause.PARALLEL_EXECUTION,),
        check=lambda s: bool(s.get("parallel_build")) and bool(s.get("parallel_search_local_heaps")),
    ),
    Guideline(
        step=5,
        title="More optimized implementations",
        detail=(
            "Reduce space amplification (compact layout), adopt a tuned "
            "k-means, and use the optimized PQ precomputed table."
        ),
        addresses=(
            RootCause.PAGE_STRUCTURE,
            RootCause.KMEANS_IMPLEMENTATION,
            RootCause.PRECOMPUTED_TABLE,
        ),
        check=lambda s: (
            bool(s.get("compact_page_layout"))
            and bool(s.get("tuned_kmeans"))
            and bool(s.get("optimized_pctable"))
        ),
    ),
)


#: How the two engines in this reproduction score (used in tests and
#: the tour example).  The specialized engine embodies all five steps;
#: faithful PASE none of them — that difference *is* the paper.
SPECIALIZED_PROFILE: dict[str, bool] = {
    "in_memory_layout": True,
    "uses_sgemm": True,
    "k_sized_heap": True,
    "parallel_build": True,
    "parallel_search_local_heaps": True,
    "compact_page_layout": True,
    "tuned_kmeans": True,
    "optimized_pctable": True,
}

PASE_PROFILE: dict[str, bool] = {key: False for key in SPECIALIZED_PROFILE}


@dataclass(slots=True)
class ChecklistResult:
    """Outcome of evaluating a system against the guidelines."""

    satisfied: list[Guideline]
    missing: list[Guideline]

    @property
    def score(self) -> int:
        return len(self.satisfied)

    @property
    def total(self) -> int:
        return len(self.satisfied) + len(self.missing)

    def report(self) -> str:
        lines = []
        for g in self.satisfied:
            lines.append(f"[x] Step#{g.step}: {g.title}")
        for g in self.missing:
            causes = ", ".join(f"RC#{c.value}" for c in g.addresses)
            lines.append(f"[ ] Step#{g.step}: {g.title}  (leaves {causes} open)")
        return "\n".join(lines)


def evaluate(system: Mapping[str, Any]) -> ChecklistResult:
    """Score a system description against the five guidelines."""
    satisfied = [g for g in GUIDELINES if g.check(system)]
    missing = [g for g in GUIDELINES if not g.check(system)]
    return ChecklistResult(satisfied=satisfied, missing=missing)
