"""Root-cause ablations: measure each gap with its cause neutralized.

The paper argues every root cause is an *implementation issue* by
showing the gap closes when the cause is removed (disable SGEMM in
Faiss, Figs. 4/6; transplant centroids, Fig. 15; halve the page size,
Table IV; ...).  This module packages those toggles: each
:class:`AblationSwitch` knows how to configure a study so one root
cause no longer differentiates the engines, and
:func:`run_ablation` measures the before/after gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.datasets import Dataset
from repro.core.root_causes import RootCause
from repro.core.study import ComparativeStudy


@dataclass(slots=True)
class AblationResult:
    """Gap factors with the root cause active vs. neutralized."""

    cause: RootCause
    metric: str  # "build", "size" or "search"
    gap_with_cause: float
    gap_without_cause: float

    @property
    def gap_closed_fraction(self) -> float:
        """How much of the (log-scale) gap the toggle removed."""
        import math

        if self.gap_with_cause <= 1.0:
            return 0.0
        before = math.log(max(self.gap_with_cause, 1.0))
        after = math.log(max(self.gap_without_cause, 1.0))
        return max(0.0, min(1.0, (before - after) / before))


@dataclass(frozen=True, slots=True)
class AblationSwitch:
    """How to neutralize one root cause inside a study."""

    cause: RootCause
    metric: str
    index_type: str
    description: str
    #: Mutates study params (specialized side) before the baseline run.
    baseline_params: dict[str, Any]
    #: Callable applying the neutralizing configuration.
    neutralize: Callable[[ComparativeStudy], None]


def _neutralize_sgemm(study: ComparativeStudy) -> None:
    # Fig. 4/6: disable SGEMM in the specialized engine so both sides
    # use the per-row assignment loop.
    study.params["use_sgemm"] = False
    study.specialized.drop_index()
    study._built = False


def _neutralize_kmeans(study: ComparativeStudy) -> None:
    # Fig. 15: run the specialized engine on PASE's exact centroids.
    study.transplant_centroids()


def _neutralize_heap(study: ComparativeStudy) -> None:
    # RC#6: switch PASE to a k-sized heap.
    study.generalized.set_fixed_heap(True)


def _neutralize_pctable(study: ComparativeStudy) -> None:
    # RC#7: give PASE the optimized ADC-table construction.
    study.generalized.set_optimized_pctable(True)


SWITCHES: dict[RootCause, AblationSwitch] = {
    RootCause.SGEMM: AblationSwitch(
        cause=RootCause.SGEMM,
        metric="build",
        index_type="ivf_flat",
        description="disable SGEMM in the specialized engine (Fig. 4)",
        baseline_params={},
        neutralize=_neutralize_sgemm,
    ),
    RootCause.KMEANS_IMPLEMENTATION: AblationSwitch(
        cause=RootCause.KMEANS_IMPLEMENTATION,
        metric="search",
        index_type="ivf_flat",
        description="transplant PASE's centroids into the specialized engine (Fig. 15)",
        baseline_params={},
        neutralize=_neutralize_kmeans,
    ),
    RootCause.HEAP_SIZE: AblationSwitch(
        cause=RootCause.HEAP_SIZE,
        metric="search",
        index_type="ivf_flat",
        description="use a k-sized heap in PASE (SET pase.fixed_heap = true)",
        baseline_params={},
        neutralize=_neutralize_heap,
    ),
    RootCause.PRECOMPUTED_TABLE: AblationSwitch(
        cause=RootCause.PRECOMPUTED_TABLE,
        metric="search",
        index_type="ivf_pq",
        description="use the optimized ADC table in PASE (SET pase.optimized_pctable = true)",
        baseline_params={},
        neutralize=_neutralize_pctable,
    ),
}


def run_ablation(
    cause: RootCause,
    dataset: Dataset,
    params: dict[str, Any],
    k: int = 10,
    nprobe: int = 10,
    n_queries: int | None = 10,
) -> AblationResult:
    """Measure one root cause's gap contribution on ``dataset``.

    Raises:
        KeyError: for causes without a config toggle (RC#2, RC#3 and
            RC#4 are architectural; they are measured by the profiler
            and size/parallelism experiments instead).
    """
    try:
        switch = SWITCHES[cause]
    except KeyError:
        raise KeyError(
            f"{cause.name} has no ablation toggle; see its dedicated experiment"
        ) from None

    merged = {**params, **switch.baseline_params}
    study = ComparativeStudy(dataset, switch.index_type, merged)
    if switch.metric == "build":
        before = study.compare_build().gap
        switch.neutralize(study)
        after = study.compare_build().gap
    else:
        before = study.compare_search(k=k, nprobe=nprobe, n_queries=n_queries).gap
        switch.neutralize(study)
        after = study.compare_search(k=k, nprobe=nprobe, n_queries=n_queries).gap
    return AblationResult(
        cause=cause,
        metric=switch.metric,
        gap_with_cause=before,
        gap_without_cause=after,
    )
