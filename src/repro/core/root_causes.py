"""The seven root causes (the paper's Sec. IX-B), as data.

Encoding the findings as structured data lets the ablation runner,
the guidelines checklist and the reports reference them uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Phase(enum.Flag):
    """Which lifecycle phases a root cause affects."""

    NONE = 0
    BUILD = enum.auto()
    SIZE = enum.auto()
    SEARCH = enum.auto()


class RootCause(enum.Enum):
    """Identifiers RC1..RC7, matching the paper's numbering."""

    SGEMM = 1
    MEMORY_MANAGEMENT = 2
    PARALLEL_EXECUTION = 3
    PAGE_STRUCTURE = 4
    KMEANS_IMPLEMENTATION = 5
    HEAP_SIZE = 6
    PRECOMPUTED_TABLE = 7

    @property
    def info(self) -> "RootCauseInfo":
        """Full description record for this root cause."""
        return ROOT_CAUSES[self]


@dataclass(frozen=True, slots=True)
class RootCauseInfo:
    """One root cause's description and bridging guidance."""

    cause: RootCause
    title: str
    summary: str
    affects: Phase
    indexes: tuple[str, ...]
    bridge: str
    paper_sections: tuple[str, ...]
    #: Is this an implementation issue (bridgeable without changing the
    #: relational architecture)?  The paper answers yes for all seven —
    #: that is its headline conclusion.
    bridgeable: bool = True


ROOT_CAUSES: dict[RootCause, RootCauseInfo] = {
    RootCause.SGEMM: RootCauseInfo(
        cause=RootCause.SGEMM,
        title="SGEMM Optimization",
        summary=(
            "Faiss converts nearest-centroid assignment into matrix-matrix "
            "multiplication (||c||^2 + ||x||^2 - 2 c.x) computed by BLAS "
            "SGEMM; PASE computes one pairwise distance at a time."
        ),
        affects=Phase.BUILD,
        indexes=("ivf_flat", "ivf_pq"),
        bridge="Implement the same SGEMM-based assignment inside the relational engine.",
        paper_sections=("V-A", "V-B"),
    ),
    RootCause.MEMORY_MANAGEMENT: RootCauseInfo(
        cause=RootCause.MEMORY_MANAGEMENT,
        title="Memory Management",
        summary=(
            "Even with all data resident, PASE accesses every tuple through "
            "the buffer manager and page indirection, while Faiss follows a "
            "memory pointer; HVTGet, pasepfirst and tuple accesses become "
            "dominant costs in HNSW."
        ),
        affects=Phase.BUILD | Phase.SEARCH,
        indexes=("hnsw", "ivf_flat", "ivf_pq"),
        bridge=(
            "Use a memory-optimized table design that bypasses the buffer "
            "manager when data fits in memory."
        ),
        paper_sections=("V-C", "VII"),
    ),
    RootCause.PARALLEL_EXECUTION: RootCauseInfo(
        cause=RootCause.PARALLEL_EXECUTION,
        title="Parallel Execution",
        summary=(
            "PASE lacks parallel index construction and its intra-query "
            "search shares one global locked heap, so it does not scale "
            "with threads the way Faiss's local-heap merge does."
        ),
        affects=Phase.BUILD | Phase.SEARCH,
        indexes=("ivf_flat", "ivf_pq", "hnsw"),
        bridge="Implement operator-level parallelism with per-thread local heaps.",
        paper_sections=("V-D", "VII-D"),
    ),
    RootCause.PAGE_STRUCTURE: RootCauseInfo(
        cause=RootCause.PAGE_STRUCTURE,
        title="Memory-centric Page Structure",
        summary=(
            "PASE HNSW spends 24 bytes per neighbor id (vs. 4 in Faiss) and "
            "starts every adjacency list on a fresh 8 KB page, inflating the "
            "index 2.9x-13.3x."
        ),
        affects=Phase.SIZE,
        indexes=("hnsw",),
        bridge="Use a memory-based layout instead of the disk page layout.",
        paper_sections=("VI-C",),
    ),
    RootCause.KMEANS_IMPLEMENTATION: RootCauseInfo(
        cause=RootCause.KMEANS_IMPLEMENTATION,
        title="K-means Implementation",
        summary=(
            "PASE and Faiss train slightly different centroids, producing "
            "different clusters and therefore different scan costs for the "
            "same nprobe."
        ),
        affects=Phase.SEARCH,
        indexes=("ivf_flat", "ivf_pq"),
        bridge="Adopt the same (well-tuned) k-means variant.",
        paper_sections=("VII-A",),
    ),
    RootCause.HEAP_SIZE: RootCauseInfo(
        cause=RootCause.HEAP_SIZE,
        title="Heap Size in Top-k Computation",
        summary=(
            "PASE pushes every scanned candidate into a heap of size n and "
            "pops k at the end; Faiss keeps a bounded heap of size k that "
            "rejects most candidates with one comparison."
        ),
        affects=Phase.SEARCH,
        indexes=("ivf_flat", "ivf_pq"),
        bridge="Use a k-sized heap for top-k computation.",
        paper_sections=("VII-A",),
    ),
    RootCause.PRECOMPUTED_TABLE: RootCauseInfo(
        cause=RootCause.PRECOMPUTED_TABLE,
        title="Precomputed Table Implementation",
        summary=(
            "PASE builds the IVF_PQ ADC table cell by cell; Faiss decomposes "
            "it into norms (cached at training time) plus inner products."
        ),
        affects=Phase.SEARCH,
        indexes=("ivf_pq",),
        bridge="Implement the norm/inner-product decomposition of the table.",
        paper_sections=("VII-B",),
    ),
}


def causes_for(index_type: str, phase: Phase | None = None) -> list[RootCauseInfo]:
    """Root causes relevant to an index type (optionally one phase)."""
    out = []
    for info in ROOT_CAUSES.values():
        if index_type not in info.indexes:
            continue
        if phase is not None and not (info.affects & phase):
            continue
        out.append(info)
    return out


def summary_table() -> str:
    """Human-readable summary of all seven root causes."""
    lines = []
    for info in ROOT_CAUSES.values():
        phases = []
        if info.affects & Phase.BUILD:
            phases.append("build")
        if info.affects & Phase.SIZE:
            phases.append("size")
        if info.affects & Phase.SEARCH:
            phases.append("search")
        lines.append(
            f"RC#{info.cause.value} {info.title} "
            f"[{', '.join(phases)}; {', '.join(info.indexes)}]\n"
            f"    {info.summary}\n"
            f"    Bridge: {info.bridge}"
        )
    return "\n".join(lines)
