"""The paper's primary contribution: the comparative root-cause study.

The paper's deliverable is not a system but a *methodology and its
findings*: run the same index with the same parameters on a
generalized (PASE/PostgreSQL) and a specialized (Faiss) vector
database, profile both, and attribute every gap to a root cause
(RC#1–RC#7).  This subpackage packages that methodology:

- :mod:`repro.core.root_causes` — the seven root causes as data,
  with affected phases and bridging guidance (Sec. IX-B);
- :mod:`repro.core.study` — :class:`ComparativeStudy`, which pairs
  the two engines on one dataset/index/parameter set and measures
  build time, index size and search latency side by side;
- :mod:`repro.core.ablation` — the switch registry mapping each
  root cause to the configuration toggles that neutralize it, plus a
  runner measuring gap-with vs. gap-without;
- :mod:`repro.core.guidelines` — the Sec. IX-C actionable guidelines
  as an executable checklist;
- :mod:`repro.core.report` — ASCII renderers for the paper's
  figure/table formats;
- :mod:`repro.core.rc_attribution` — automated RC#1–RC#7 attribution
  of span/section profiles (backs ``EXPLAIN (ANALYZE, TRACE)``).
"""

from repro.core.rc_attribution import (
    RCAttribution,
    RCBucket,
    attribute_profile,
    format_rc_breakdown,
)
from repro.core.root_causes import RootCause, ROOT_CAUSES
from repro.core.study import (
    BuildComparison,
    ComparativeStudy,
    GeneralizedVectorDB,
    SearchComparison,
    SizeComparison,
    SpecializedVectorDB,
)

__all__ = [
    "ROOT_CAUSES",
    "BuildComparison",
    "ComparativeStudy",
    "GeneralizedVectorDB",
    "RCAttribution",
    "RCBucket",
    "RootCause",
    "SearchComparison",
    "SizeComparison",
    "SpecializedVectorDB",
    "attribute_profile",
    "format_rc_breakdown",
]
