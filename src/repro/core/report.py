"""ASCII renderers matching the paper's figure/table formats.

Each figure in the paper is a grouped bar chart (systems x datasets)
and each table a relative/absolute breakdown; these helpers print the
same rows/series so a harness run can be compared to the paper at a
glance and EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.common.profiling import BreakdownRow


def format_seconds(seconds: float) -> str:
    """Human scale: us / ms / s."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.2f}s"


def format_bytes(n: int | float) -> str:
    """Human scale: B / KiB / MiB / GiB."""
    value = float(n)
    for unit in ("B", "KiB", "MiB"):
        if value < 1024:
            return f"{value:.1f}{unit}"
        value /= 1024
    return f"{value:.2f}GiB"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_grouped_series(
    title: str,
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    unit: str = "s",
    gap_of: tuple[str, str] | None = None,
) -> str:
    """Render a paper-figure-style grouped series.

    Args:
        groups: x-axis labels (datasets, thread counts, ...).
        series: system name -> one value per group.
        unit: "s" (formatted via :func:`format_seconds`), "bytes", or
            a literal suffix.
        gap_of: optional ``(numerator, denominator)`` series names; a
            "gap" row is appended, matching how the paper annotates
            each figure with the slowdown factor.
    """
    headers = [title] + list(groups)
    rows: list[list[object]] = []
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for {len(groups)} groups"
            )
        rows.append([name] + [_format_value(v, unit) for v in values])
    if gap_of is not None:
        num, den = gap_of
        gaps = []
        for a, b in zip(series[num], series[den]):
            gaps.append(f"{a / b:.1f}x" if b else "inf")
        rows.append([f"gap ({num}/{den})"] + gaps)
    return render_table(headers, rows)


def _format_value(value: float, unit: str) -> str:
    if unit == "s":
        return format_seconds(value)
    if unit == "bytes":
        return format_bytes(value)
    if unit == "x":
        return f"{value:.2f}x"
    return f"{value:.3g}{unit}"


def format_query_stats(stats) -> str:
    """One-line rendering of a per-query stats object.

    Accepts anything shaped like :class:`repro.pgsim.stats.QueryStats`
    (duck-typed so this module never imports pgsim): elapsed time plus
    buffer / heap / index counters.
    """
    parts = [format_seconds(stats.elapsed_seconds)]
    parts.append(f"buffers hit={stats.buffer.hits} miss={stats.buffer.misses}")
    if stats.heap.tuples_fetched:
        parts.append(f"heap fetched={stats.heap.tuples_fetched}")
    if stats.index.candidates:
        parts.append(f"index candidates={stats.index.candidates}")
    if stats.wal.records:
        parts.append(f"wal records={stats.wal.records}")
    return " | ".join(parts)


def render_breakdown(
    title: str,
    rows_by_system: Mapping[str, Sequence[BreakdownRow]],
    columns: Sequence[str] | None = None,
    min_fraction: float = 0.01,
    other_label: str = "Others",
) -> str:
    """Render a Table III/V-style breakdown: relative % + absolute time.

    Args:
        columns: fixed column order (paper order); unnamed buckets are
            folded into ``other_label``.
        min_fraction: buckets below this share also fold into Others
            when ``columns`` is None.
    """
    folded: dict[str, dict[str, tuple[float, float]]] = {}
    names: list[str] = list(columns) if columns else []
    for system, rows in rows_by_system.items():
        total = sum(r.seconds for r in rows) or 1.0
        buckets: dict[str, float] = {}
        for r in rows:
            if columns is not None:
                key = r.name if r.name in columns else other_label
            else:
                key = r.name if r.fraction >= min_fraction else other_label
                if key != other_label and key not in names:
                    names.append(key)
            buckets[key] = buckets.get(key, 0.0) + r.seconds
        folded[system] = {k: (v / total, v) for k, v in buckets.items()}
    if other_label not in names and any(other_label in b for b in folded.values()):
        names.append(other_label)

    headers = [title] + names
    out_rows: list[list[object]] = []
    for system, buckets in folded.items():
        pct_row: list[object] = [system]
        abs_row: list[object] = [""]
        for name in names:
            frac, secs = buckets.get(name, (0.0, 0.0))
            pct_row.append(f"{frac * 100:.2f}%")
            abs_row.append(format_seconds(secs))
        out_rows.append(pct_row)
        out_rows.append(abs_row)
    return render_table(headers, out_rows)
