"""The comparative study: same index, same parameters, two engines.

:class:`ComparativeStudy` is the experimental apparatus of the paper:
it loads one dataset into both a :class:`GeneralizedVectorDB`
(PASE on the pgsim relational engine) and a
:class:`SpecializedVectorDB` (the Faiss-like engine), builds the same
index with the same parameters on both, and measures construction
time, index size and search latency side by side.  Both wrappers
expose the same surface so experiments and benches stay symmetric.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.common.datasets import Dataset
from repro.common.metrics import LatencyStats, latency_stats, mean_recall_at_k
from repro.common.profiling import NULL_PROFILER, Profiler
from repro.common.types import BuildStats, IndexSizeInfo, SearchResult
from repro.pgsim import PgSimDatabase
from repro.pgsim.heapam import TID
from repro.specialized.base import VectorIndex
from repro.specialized.hnsw import HNSWIndex
from repro.specialized.ivf_flat import IVFFlatIndex
from repro.specialized.ivf_pq import IVFPQIndex
from repro.specialized.ivf_sq8 import IVFSQ8Index

#: Index types the paper studies.
INDEX_TYPES = ("ivf_flat", "ivf_pq", "ivf_sq8", "hnsw")

#: index type -> PASE access-method name.
_PASE_AM = {
    "ivf_flat": "pase_ivfflat",
    "ivf_pq": "pase_ivfpq",
    "ivf_sq8": "pase_ivfsq8",
    "hnsw": "pase_hnsw",
}


class GeneralizedVectorDB:
    """PASE on pgsim, behind the study's uniform engine interface."""

    name = "PASE"

    def __init__(
        self,
        page_size: int = 8192,
        buffer_pool_pages: int = 16384,
        profiler: Profiler | None = None,
    ) -> None:
        self.db = PgSimDatabase(page_size=page_size, buffer_pool_pages=buffer_pool_pages)
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        # Indexes must profile from their build onward (Table III).
        self.db.executor.am_profiler = self.profiler
        self.table_name = "vectors"
        self.index_name = "vec_idx"
        self.am = None
        self._id_by_tid: dict[TID, int] = {}

    # ------------------------------------------------------------------
    # data loading
    # ------------------------------------------------------------------
    def load(self, vectors: np.ndarray) -> None:
        """Create the vectors table and bulk-load ``vectors``.

        Rows get ids 0..n-1.  Loading goes through the heap access
        method directly (the SQL INSERT path is exercised separately in
        tests/examples); index builds and searches still pay the full
        buffer-manager costs.
        """
        self.db.execute(f"CREATE TABLE {self.table_name} (id int, vec float[])")
        table = self.db.catalog.table(self.table_name)
        arr = np.ascontiguousarray(vectors, dtype=np.float32)
        for i in range(arr.shape[0]):
            tid = table.heap.insert([i, arr[i]], xid=1)
            self._id_by_tid[tid] = i
        self.db.wal.log_commit(1)

    # ------------------------------------------------------------------
    # index lifecycle
    # ------------------------------------------------------------------
    def create_index(self, index_type: str, **params: Any) -> BuildStats:
        """Build a PASE index; returns its construction stats."""
        if index_type not in INDEX_TYPES:
            raise ValueError(f"unknown index type {index_type!r}")
        if self.am is not None:
            self.drop_index()
        options = _pase_options(index_type, params)
        with_clause = ""
        if options:
            parts = ", ".join(f"{k} = {_sql_literal(v)}" for k, v in options.items())
            with_clause = f" WITH ({parts})"
        self.db.execute(
            f"CREATE INDEX {self.index_name} ON {self.table_name} "
            f"USING {_PASE_AM[index_type]} (vec){with_clause}"
        )
        info = self.db.catalog.find_index(self.index_name)
        assert info is not None
        self.am = info.am
        self.am.profiler = self.profiler
        return self.am.build_stats

    def drop_index(self) -> None:
        """Drop the current index (for rebuild sweeps)."""
        self.db.execute(f"DROP INDEX IF EXISTS {self.index_name}")
        self.am = None

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int | None = None,
        efs: int | None = None,
    ) -> SearchResult:
        """Top-k search through the index AM, results mapped to row ids.

        Like a real ``SELECT id ... ORDER BY vec <-> q LIMIT k``, the
        result mapping fetches each hit's heap tuple, so the measured
        time includes the index-scan heap round trips.
        """
        if self.am is None:
            raise RuntimeError("create an index before searching")
        if nprobe is not None:
            self.db.execute(f"SET pase.nprobe = {int(nprobe)}")
        if efs is not None:
            self.db.execute(f"SET pase.efs = {int(efs)}")
        accesses_before = self.db.buffer.stats.accesses
        candidates_before = self.am.scan_stats.candidates
        table = self.db.catalog.table(self.table_name)
        use_batch = self.db.catalog.get_bool("enable_batch_exec")
        start = time.perf_counter()
        neighbors = []
        if use_batch:
            # RC#3 ablation: amgetbatch + block-grouped heap fetches.
            batch = self.am.get_batch(np.ascontiguousarray(query, dtype=np.float32), k)
            row_ids = table.heap.fetch_column_many(batch.tids(), 0)
            neighbors = [
                _neighbor(row_id, dist)
                for row_id, dist in zip(row_ids, batch.distances.tolist())
            ]
        else:
            for tid, dist in self.am.scan(np.ascontiguousarray(query, dtype=np.float32), k):
                row_id = table.heap.fetch_column(tid, 0)
                neighbors.append(_neighbor(row_id, dist))
        elapsed = time.perf_counter() - start
        return SearchResult(
            neighbors=neighbors,
            elapsed_seconds=elapsed,
            tuples_accessed=self.db.buffer.stats.accesses - accesses_before,
            distance_computations=self.am.scan_stats.candidates - candidates_before,
        )

    # ------------------------------------------------------------------
    # knobs & introspection
    # ------------------------------------------------------------------
    def set_fixed_heap(self, enabled: bool) -> None:
        """RC#6 ablation: use a k-sized heap instead of PASE's n-heap."""
        self.db.execute(f"SET pase.fixed_heap = {'true' if enabled else 'false'}")

    def set_optimized_pctable(self, enabled: bool) -> None:
        """RC#7 ablation: use the Faiss-style ADC table in PASE."""
        self.db.execute(f"SET pase.optimized_pctable = {'true' if enabled else 'false'}")

    def index_size(self) -> IndexSizeInfo:
        if self.am is None:
            raise RuntimeError("create an index before measuring its size")
        return self.am.size_info()

    def pase_centroids(self) -> np.ndarray:
        """Extract trained IVF centroids (the Fig. 15 transplant source)."""
        if self.am is None or not hasattr(self.am, "_iter_centroids"):
            raise RuntimeError("centroids are only available on IVF indexes")
        rows = [centroid.copy() for __, __, centroid in self.am._iter_centroids()]
        return np.vstack(rows)


class SpecializedVectorDB:
    """The Faiss-like engine, behind the same interface."""

    name = "Faiss"

    def __init__(self, profiler: Profiler | None = None) -> None:
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.vectors: np.ndarray | None = None
        self.index: VectorIndex | None = None

    def load(self, vectors: np.ndarray) -> None:
        self.vectors = np.ascontiguousarray(vectors, dtype=np.float32)

    def create_index(self, index_type: str, **params: Any) -> BuildStats:
        if self.vectors is None:
            raise RuntimeError("load vectors before building an index")
        self.index = make_specialized_index(
            index_type, self.vectors.shape[1], params, profiler=self.profiler
        )
        if self.index.requires_training:
            self.index.train(self.vectors)
        self.index.add(self.vectors)
        return self.index.build_stats

    def drop_index(self) -> None:
        self.index = None

    def search(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int | None = None,
        efs: int | None = None,
    ) -> SearchResult:
        if self.index is None:
            raise RuntimeError("create an index before searching")
        kwargs: dict[str, Any] = {}
        if isinstance(self.index, (IVFFlatIndex, IVFPQIndex, IVFSQ8Index)) and nprobe is not None:
            kwargs["nprobe"] = nprobe
        if isinstance(self.index, HNSWIndex) and efs is not None:
            kwargs["efs"] = efs
        return self.index.search(query, k, **kwargs)

    def index_size(self) -> IndexSizeInfo:
        if self.index is None:
            raise RuntimeError("create an index before measuring its size")
        return self.index.size_info()


#: Study parameter names understood per index type; parameters for
#: other index types are dropped silently so one common dict can
#: configure every index family.
_SPEC_PARAMS: dict[str, dict[str, Any]] = {
    "ivf_flat": {
        "clusters": 256,
        "sample_ratio": 0.01,
        "use_sgemm": True,
        "kmeans_style": "faiss",
        "kmeans_iterations": 10,
        "seed": None,
    },
    "ivf_pq": {
        "clusters": 256,
        "m": 16,
        "c_pq": 256,
        "sample_ratio": 0.01,
        "use_sgemm": True,
        "optimized_pctable": True,
        "kmeans_style": "faiss",
        "kmeans_iterations": 10,
        "seed": None,
    },
    "ivf_sq8": {
        "clusters": 256,
        "sample_ratio": 0.01,
        "use_sgemm": True,
        "kmeans_style": "faiss",
        "kmeans_iterations": 10,
        "seed": None,
    },
    "hnsw": {"bnn": 16, "efb": 40, "efs": 200, "seed": None},
}

#: Every parameter name any index type accepts (for typo detection).
_ALL_PARAM_NAMES = {name for defs in _SPEC_PARAMS.values() for name in defs} | {
    "distance_type"
}


def make_specialized_index(
    index_type: str, dim: int, params: dict[str, Any], profiler: Profiler | None = None
) -> VectorIndex:
    """Instantiate a specialized index from the study's common params.

    Parameters belonging to other index families are ignored; unknown
    names raise.
    """
    if index_type not in _SPEC_PARAMS:
        raise ValueError(f"unknown index type {index_type!r}")
    unknown = set(params) - _ALL_PARAM_NAMES
    if unknown:
        raise ValueError(f"unrecognized study parameters: {sorted(unknown)}")
    defaults = _SPEC_PARAMS[index_type]
    kwargs = {name: params.get(name, default) for name, default in defaults.items()}
    kwargs["profiler"] = profiler if profiler is not None else NULL_PROFILER
    if "distance_type" in params:
        kwargs["distance_type"] = params["distance_type"]
    if index_type == "ivf_flat":
        kwargs["n_clusters"] = kwargs.pop("clusters")
        return IVFFlatIndex(dim, **kwargs)
    if index_type == "ivf_pq":
        kwargs["n_clusters"] = kwargs.pop("clusters")
        return IVFPQIndex(dim, **kwargs)
    if index_type == "ivf_sq8":
        kwargs["n_clusters"] = kwargs.pop("clusters")
        return IVFSQ8Index(dim, **kwargs)
    return HNSWIndex(dim, **kwargs)


def _pase_options(index_type: str, params: dict[str, Any]) -> dict[str, Any]:
    """Translate common study params to PASE WITH options.

    Specialized-only switches and parameters of other index families
    are dropped; unknown names raise.
    """
    unknown = set(params) - _ALL_PARAM_NAMES
    if unknown:
        raise ValueError(f"unrecognized study parameters: {sorted(unknown)}")
    options: dict[str, Any] = {}
    if index_type in ("ivf_flat", "ivf_pq", "ivf_sq8"):
        if "clusters" in params:
            options["clusters"] = int(params["clusters"])
        if "sample_ratio" in params:
            options["sample_ratio"] = float(params["sample_ratio"])
        if "kmeans_iterations" in params:
            options["kmeans_iterations"] = int(params["kmeans_iterations"])
    if index_type == "ivf_pq":
        if "m" in params:
            options["m"] = int(params["m"])
        if "c_pq" in params:
            options["c_pq"] = int(params["c_pq"])
    if index_type == "hnsw":
        if "bnn" in params:
            options["bnn"] = int(params["bnn"])
        if "efb" in params:
            options["efb"] = int(params["efb"])
    if params.get("seed") is not None:
        options["seed"] = int(params["seed"])
    if "distance_type" in params:
        options["distance_type"] = int(params["distance_type"])
    return options


def _sql_literal(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    return "'" + str(value).replace("'", "''") + "'"


def _neighbor(row_id: int, dist: float):
    from repro.common.types import Neighbor

    return Neighbor(vector_id=int(row_id), distance=float(dist))


# ----------------------------------------------------------------------
# comparison records
# ----------------------------------------------------------------------
@dataclass(slots=True)
class BuildComparison:
    """Construction-time comparison (Figs. 3-7 rows)."""

    dataset: str
    index_type: str
    generalized: BuildStats
    specialized: BuildStats

    @property
    def gap(self) -> float:
        """How many times slower the generalized build is."""
        if self.specialized.total_seconds == 0:
            return float("inf")
        return self.generalized.total_seconds / self.specialized.total_seconds


@dataclass(slots=True)
class SizeComparison:
    """Index-size comparison (Figs. 11-13 rows)."""

    dataset: str
    index_type: str
    generalized: IndexSizeInfo
    specialized: IndexSizeInfo

    @property
    def gap(self) -> float:
        """How many times larger the generalized index is."""
        if self.specialized.allocated_bytes == 0:
            return float("inf")
        return self.generalized.allocated_bytes / self.specialized.allocated_bytes


@dataclass(slots=True)
class SearchComparison:
    """Search-latency comparison (Figs. 14-17 rows)."""

    dataset: str
    index_type: str
    generalized: LatencyStats
    specialized: LatencyStats
    generalized_recall: float = 0.0
    specialized_recall: float = 0.0

    @property
    def gap(self) -> float:
        """How many times slower the generalized search is."""
        if self.specialized.mean == 0:
            return float("inf")
        return self.generalized.mean / self.specialized.mean


class ComparativeStudy:
    """Pair the two engines on one dataset + index + parameter set."""

    def __init__(
        self,
        dataset: Dataset,
        index_type: str,
        params: dict[str, Any] | None = None,
        generalized: GeneralizedVectorDB | None = None,
        specialized: SpecializedVectorDB | None = None,
    ) -> None:
        if index_type not in INDEX_TYPES:
            raise ValueError(f"unknown index type {index_type!r}")
        self.dataset = dataset
        self.index_type = index_type
        self.params = dict(params or {})
        self.generalized = generalized if generalized is not None else GeneralizedVectorDB()
        self.specialized = specialized if specialized is not None else SpecializedVectorDB()
        self._loaded = False
        self._built = False

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Load the dataset into both engines (idempotent)."""
        if self._loaded:
            return
        self.generalized.load(self.dataset.base)
        self.specialized.load(self.dataset.base)
        self._loaded = True

    def compare_build(self) -> BuildComparison:
        """Build the index on both sides; returns timing comparison."""
        self.prepare()
        gen_stats = self.generalized.create_index(self.index_type, **self.params)
        spec_params = dict(self.params)
        spec_stats = self.specialized.create_index(self.index_type, **spec_params)
        self._built = True
        return BuildComparison(
            dataset=self.dataset.name,
            index_type=self.index_type,
            generalized=gen_stats,
            specialized=spec_stats,
        )

    def compare_size(self) -> SizeComparison:
        """Index sizes (builds first if needed)."""
        if not self._built:
            self.compare_build()
        return SizeComparison(
            dataset=self.dataset.name,
            index_type=self.index_type,
            generalized=self.generalized.index_size(),
            specialized=self.specialized.index_size(),
        )

    def compare_search(
        self,
        k: int = 100,
        nprobe: int | None = 20,
        efs: int | None = None,
        n_queries: int | None = None,
        recall: bool = False,
    ) -> SearchComparison:
        """Run the query batch on both sides and compare latencies."""
        if not self._built:
            self.compare_build()
        queries = self.dataset.queries
        if n_queries is not None:
            queries = queries[:n_queries]
        # The paper's protocol (Sec. IV-A): warm up once so data and
        # index are resident before timing.
        self.generalized.search(queries[0], k, nprobe=nprobe, efs=efs)
        self.specialized.search(queries[0], k, nprobe=nprobe, efs=efs)
        gen_lat: list[float] = []
        spec_lat: list[float] = []
        gen_ids: list[list[int]] = []
        spec_ids: list[list[int]] = []
        for q in queries:
            r = self.generalized.search(q, k, nprobe=nprobe, efs=efs)
            gen_lat.append(r.elapsed_seconds)
            gen_ids.append(r.ids)
            r = self.specialized.search(q, k, nprobe=nprobe, efs=efs)
            spec_lat.append(r.elapsed_seconds)
            spec_ids.append(r.ids)
        comparison = SearchComparison(
            dataset=self.dataset.name,
            index_type=self.index_type,
            generalized=latency_stats(gen_lat),
            specialized=latency_stats(spec_lat),
        )
        if recall:
            truth = self.dataset.ground_truth(k)[: len(queries)]
            comparison.generalized_recall = mean_recall_at_k(gen_ids, truth, k)
            comparison.specialized_recall = mean_recall_at_k(spec_ids, truth, k)
        return comparison

    def transplant_centroids(self) -> None:
        """Fig. 15: rebuild the specialized index with PASE's centroids.

        Makes the two sides use identical clusters, isolating RC#5.
        """
        if not self._built:
            self.compare_build()
        if self.index_type != "ivf_flat":
            raise ValueError("centroid transplant applies to IVF_FLAT only")
        centroids = self.generalized.pase_centroids()
        index = IVFFlatIndex(
            self.dataset.dim,
            n_clusters=centroids.shape[0],
            profiler=self.specialized.profiler,
        )
        index.set_centroids(centroids)
        assert self.specialized.vectors is not None
        index.add(self.specialized.vectors)
        self.specialized.index = index
