"""Bridged HNSW: the graph served from memory, vectors persisted.

Applies the Sec. IX-C recipe to the graph index: the adjacency lists
and vectors live in the array-backed store (Step#1 — no buffer-manager
indirection, no 24-byte neighbor tuples, fixing RC#2 and RC#4), while
the base vectors are still persisted to a compact data fork so the
index can be rebuilt after a restart.  The SQL surface is unchanged:
``CREATE INDEX ... USING bridged_hnsw (vec) WITH (bnn = 16, efb = 40)``.
"""

from __future__ import annotations

import math
import struct
import time
from typing import Any, Iterator

import numpy as np

from repro.common import graph
from repro.common.profiling import NULL_PROFILER
from repro.common.rng import make_rng
from repro.common.types import BuildStats, IndexSizeInfo
from repro.pase.options import parse_hnsw_options
from repro.pgsim.am import IndexAmRoutine, register_am
from repro.pgsim.heapam import TID
from repro.pgsim.paths import DISTANCE_OP_WEIGHT
from repro.pgsim.page import PageFullError
from repro.specialized.hnsw import ArrayGraphStore

_DATA_HEAD = struct.Struct("<IIH2x")  # node id, heap blkno, heap offset


@register_am
class BridgedHNSW(IndexAmRoutine):
    """HNSW with a memory-resident graph behind the SQL surface."""

    amname = "bridged_hnsw"
    amcanfilter = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.opts = parse_hnsw_options(self.options)
        self.profiler = NULL_PROFILER
        self.build_stats = BuildStats()
        self.params = graph.HNSWParams(bnn=self.opts.bnn, efb=self.opts.efb)
        self.dim: int | None = None
        self.store: ArrayGraphStore | None = None
        self._heap_tids: list[TID] = []
        #: Node ids unlinked by VACUUM (ids are positional, never reused).
        self._removed: set[int] = set()
        self._rng = make_rng(self.opts.seed)
        self._data_insert_block: int | None = None

    # ------------------------------------------------------------------
    # build / insert
    # ------------------------------------------------------------------
    def build(self) -> None:
        start = time.perf_counter()
        count = 0
        self.progress.set_phase("insert")
        for tid, values in self.table.scan():
            vec = np.ascontiguousarray(values[self.column_index], dtype=np.float32)
            self._insert_one(tid, vec)
            count += 1
            self.progress.tick()
        self.progress.set_phase("link")
        if count == 0:
            raise RuntimeError("cannot build an HNSW index over an empty table")
        self.build_stats.add_seconds = time.perf_counter() - start
        self.build_stats.vectors_added = count
        assert self.store is not None
        self.build_stats.distance_computations = self.store.counters.distance_computations

    def insert(self, tid: TID, value: Any) -> None:
        vec = np.ascontiguousarray(value, dtype=np.float32)
        self._insert_one(tid, vec)

    def _insert_one(self, tid: TID, vec: np.ndarray) -> None:
        if self.store is None:
            self.dim = int(vec.shape[0])
            self.store = ArrayGraphStore(self.dim, profiler=self.profiler)
        node = graph.insert(self.store, self.params, vec, self._rng)
        self._heap_tids.append(tid)
        self._persist_vector(node, tid, vec)

    def _persist_vector(self, node: int, tid: TID, vec: np.ndarray) -> None:
        """Durability: append (node, heap tid, vector) to the data fork."""
        rel = self.create_fork("data")
        item = _DATA_HEAD.pack(node, tid.blkno, tid.offset) + vec.tobytes()
        if self._data_insert_block is not None:
            frame = self.buffer.pin(rel, self._data_insert_block)
            try:
                frame.page.insert_item(item)
            except PageFullError:
                self.buffer.unpin(frame)
            else:
                self.buffer.unpin(frame, dirty=True)
                return
        blkno, frame = self.buffer.new_page(rel)
        try:
            frame.page.insert_item(item)
        finally:
            self.buffer.unpin(frame, dirty=True)
        self._data_insert_block = blkno

    # ------------------------------------------------------------------
    # vacuum (ambulkdelete)
    # ------------------------------------------------------------------
    def ambulkdelete(self, dead_tids: set[TID]) -> int:
        """Unlink vacuumed nodes from the in-memory graph.

        Same repair as the page-backed HNSW (bridge + re-shrink via
        :func:`repro.common.graph.repair_after_delete`), plus removal
        of the nodes' tuples from the durable data fork so a restart
        rebuild never resurrects them.
        """
        store = self.store
        if store is None or not dead_tids:
            return 0
        dead = {
            node
            for node, tid in enumerate(self._heap_tids)
            if node not in self._removed and tid in dead_tids
        }
        if not dead:
            return 0
        graph.repair_after_delete(store, self.params, dead | self._removed, store._levels)
        self._remove_data_entries(dead)
        self._removed |= dead
        self.vacuum_progress.tick_index_entries(len(dead))
        return len(dead)

    def _remove_data_entries(self, dead: set[int]) -> None:
        rel = self.relation_name("data")
        if not self.buffer.disk.relation_exists(rel):
            return
        for blkno in range(self.buffer.disk.n_blocks(rel)):
            frame = self.buffer.pin(rel, blkno)
            dirty = False
            try:
                page = frame.page
                for off in page.live_items():
                    (node,) = struct.unpack_from("<I", page.get_item_view(off), 0)
                    if node in dead:
                        page.delete_item(off)
                        dirty = True
            finally:
                self.buffer.unpin(frame, dirty=dirty)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        if self.store is None or self.store.node_count() == 0:
            return
        efs = int(self.catalog.get_setting("pase.efs"))
        query = np.ascontiguousarray(query, dtype=np.float32)
        self.store.profiler = self.profiler
        dist0 = self.store.counters.distance_computations
        neighbors = graph.search(self.store, self.params, query, k, efs=efs)
        self.scan_stats.scans += 1
        self.scan_stats.candidates += self.store.counters.distance_computations - dist0
        for neighbor in neighbors:
            yield self._heap_tids[neighbor.vector_id], neighbor.distance

    # ------------------------------------------------------------------
    # in-filter search (amsearch_filtered)
    # ------------------------------------------------------------------
    def amsearch_filtered(
        self, query: np.ndarray, k: int, mask_fn: Any
    ) -> Iterator[tuple[TID, float]]:
        """In-filter beam over the in-memory graph.

        Same design as the page-backed HNSW: filtered-out nodes route,
        only allowed nodes enter the result heap, and the beam widens
        geometrically when fewer than k allowed nodes come back.  The
        node-to-TID map is the positional ``_heap_tids`` list, so the
        mask lookup costs no page pins at all.
        """
        store = self.store
        if store is None or store.node_count() == 0:
            self.last_filtered_examined = 0
            return iter(())
        efs = int(self.catalog.get_setting("pase.efs"))
        query = np.ascontiguousarray(query, dtype=np.float32)
        store.profiler = self.profiler
        allowed_cache: dict[int, bool] = {}

        def allow(nodes: list[int]) -> list[bool]:
            fresh = [n for n in nodes if n not in allowed_cache]
            if fresh:
                live = [n for n in fresh if n not in self._removed]
                for n in fresh:
                    allowed_cache[n] = False
                if live:
                    tids = [self._heap_tids[n] for n in live]
                    for n, ok in zip(live, mask_fn(tids)):
                        allowed_cache[n] = bool(ok)
            return [allowed_cache[n] for n in nodes]

        live_nodes = max(store.node_count() - len(self._removed), 1)
        ef = max(efs, k)
        dist0 = store.counters.distance_computations
        while True:
            neighbors = graph.search_filtered(
                store, self.params, query, k, allow, efs=ef
            )
            if len(neighbors) >= k or ef >= live_nodes:
                break
            ef = min(live_nodes, ef * 2)
        self.scan_stats.scans += 1
        self.scan_stats.candidates += store.counters.distance_computations - dist0
        self.last_filtered_examined = len(allowed_cache)
        return iter(
            (self._heap_tids[n.vector_id], n.distance) for n in neighbors
        )

    def amestimate_candidates(self, ntuples: float, fetch_k: int) -> float:
        """Beam size the in-filter mask is charged for: ``ef * log2(n)``."""
        n = max(float(ntuples), 2.0)
        ef = float(max(int(self.catalog.get_setting("pase.efs")), fetch_k, 1))
        return min(n, ef * math.log2(n))

    # ------------------------------------------------------------------
    # planner cost estimate
    # ------------------------------------------------------------------
    def amcostestimate(self, ntuples: float, fetch_k: int, cost: Any) -> tuple[float, float]:
        """Beam-search cost over the in-memory array graph: the same
        ``ef * log2(n)`` candidate count as the page-backed HNSW, but
        neighbor lists are array slices, not page tuples — modeled as
        half its per-candidate toll."""
        n = max(float(ntuples), 2.0)
        ef = float(max(int(self.catalog.get_setting("pase.efs")), fetch_k, 1))
        candidates = min(n, ef * math.log2(n))
        total = 0.5 * candidates * (
            2.0 * cost.cpu_index_tuple_cost + DISTANCE_OP_WEIGHT * cost.cpu_operator_cost
        )
        return total, total

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    def relations(self) -> list[str]:
        """Page-file names owned by this index."""
        return [self.relation_name("data")]

    def size_info(self) -> IndexSizeInfo:
        """Durable pages plus the in-memory graph payload.

        Compare with PASE's HNSW size (Fig. 13): the graph costs 4
        bytes per neighbor here instead of a 24-byte tuple on a
        mostly-empty page.
        """
        rel = self.relation_name("data")
        pages = self.buffer.disk.n_blocks(rel) if self.buffer.disk.relation_exists(rel) else 0
        page_bytes = pages * self.buffer.disk.page_size
        memory = self.store.size_bytes() if self.store is not None else {}
        total_memory = sum(memory.values())
        return IndexSizeInfo(
            allocated_bytes=page_bytes + total_memory,
            used_bytes=total_memory,
            page_count=pages,
            detail={"data_pages": pages, **{f"mem_{k}": v for k, v in memory.items()}},
        )
