"""Bridged IVF_FLAT: PASE's page layout + the Sec. IX-C optimizations.

Storage-compatible with :class:`repro.pase.ivf_flat.PaseIVFFlat` (same
meta/centroid/data forks, so durability and DROP cleanup are
inherited), but construction and search follow the paper's five
guidelines: SGEMM assignment, Faiss-flavour k-means, a memory-resident
mirror of the index served without buffer-manager indirection, and a
k-sized heap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.common.distance import batch_kernel, squared_norms
from repro.common.heap import BoundedMaxHeap
from repro.common.kmeans import assign_nearest_batch, faiss_kmeans, sample_training_rows
from repro.common.parallel import WorkUnit
from repro.pase.ivf_flat import PaseIVFFlat
from repro.pgsim.am import ScanBatch, register_am, topk_batch
from repro.pgsim.heapam import TID


@dataclass(slots=True)
class _MemoryMirror:
    """Step#1: the memory-optimized table serving the hot path."""

    centroids: np.ndarray
    centroid_sq_norms: np.ndarray
    bucket_vectors: list[np.ndarray]
    bucket_tids: list[list[TID]] = field(default_factory=list)


@register_am
class BridgedIVFFlat(PaseIVFFlat):
    """IVF_FLAT with all seven root causes neutralized (Sec. IX-C)."""

    amname = "bridged_ivfflat"
    aliases = ()

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._mirror: _MemoryMirror | None = None

    # ------------------------------------------------------------------
    # build (Steps #2 and #5)
    # ------------------------------------------------------------------
    def build(self) -> None:
        rows = [(tid, values[self.column_index]) for tid, values in self.table.scan()]
        if not rows:
            raise RuntimeError("cannot build an IVF index over an empty table")
        vectors = np.vstack([v for __, v in rows]).astype(np.float32)
        self.dim = int(vectors.shape[1])
        n_clusters = min(self.opts.clusters, vectors.shape[0])

        start = time.perf_counter()
        self.progress.set_phase("sample")
        sample = sample_training_rows(
            vectors, self.opts.sample_ratio, n_clusters, self.opts.seed
        )
        # Step#5: the well-tuned k-means flavour (RC#5).
        self.progress.set_phase("kmeans")
        result = faiss_kmeans(
            sample, n_clusters, self.opts.kmeans_iterations, seed=self.opts.seed
        )
        centroids = result.centroids
        self.build_stats.train_seconds = time.perf_counter() - start

        start = time.perf_counter()
        # Step#2: SGEMM-batched assignment (RC#1) — one batched call,
        # so the assign phase ticks once for the whole table.
        self.progress.set_phase("assign", tuples_total=len(rows))
        assignments, __ = assign_nearest_batch(vectors, centroids)
        self.progress.tick(len(rows))
        self.build_stats.distance_computations += len(rows) * n_clusters
        buckets: list[list[tuple[TID, np.ndarray]]] = [[] for __ in range(n_clusters)]
        for (tid, vec), bucket in zip(rows, assignments.tolist()):
            buckets[bucket].append((tid, vec))

        # Durability: persist the same page layout PASE uses.
        self.progress.set_phase("flush")
        heads = [self._write_bucket(bucket) for bucket in buckets]
        self._write_centroids(centroids, heads)
        self._write_meta(n_clusters)
        self._build_mirror(centroids, buckets)
        self.build_stats.add_seconds = time.perf_counter() - start
        self.build_stats.vectors_added = len(rows)

    def _build_mirror(
        self, centroids: np.ndarray, buckets: list[list[tuple[TID, np.ndarray]]]
    ) -> None:
        bucket_vectors = []
        bucket_tids = []
        for bucket in buckets:
            if bucket:
                bucket_vectors.append(
                    np.vstack([v for __, v in bucket]).astype(np.float32)
                )
            else:
                bucket_vectors.append(np.empty((0, self.dim), dtype=np.float32))
            bucket_tids.append([tid for tid, __ in bucket])
        self._mirror = _MemoryMirror(
            centroids=np.ascontiguousarray(centroids, dtype=np.float32),
            centroid_sq_norms=squared_norms(centroids),
            bucket_vectors=bucket_vectors,
            bucket_tids=bucket_tids,
        )

    # ------------------------------------------------------------------
    # insert — pages first (durability), then the mirror
    # ------------------------------------------------------------------
    def insert(self, tid: TID, value: Any) -> None:
        super().insert(tid, value)
        if self._mirror is None:
            return
        vec = np.ascontiguousarray(value, dtype=np.float32)
        dists = (
            self._mirror.centroid_sq_norms
            - 2.0 * (self._mirror.centroids @ vec)
        )
        bucket = int(np.argmin(dists))
        self._mirror.bucket_vectors[bucket] = np.vstack(
            [self._mirror.bucket_vectors[bucket], vec.reshape(1, -1)]
        )
        self._mirror.bucket_tids[bucket].append(tid)

    # ------------------------------------------------------------------
    # vacuum (ambulkdelete)
    # ------------------------------------------------------------------
    def ambulkdelete(self, dead_tids: set[TID]) -> int:
        """Page compaction via the base class, then drop the mirror.

        The mirror is rebuilt lazily from the compacted pages on the
        next scan, so dead vectors leave both representations at once
        (and a centroid re-centered by the base class is picked up too).
        Vacuum-progress ticks come from the inherited compaction loop —
        ticking here as well would double-count reclaimed entries.
        """
        removed = super().ambulkdelete(dead_tids)
        if removed:
            self._mirror = None
        return removed

    # ------------------------------------------------------------------
    # search (Steps #1, #2, #3)
    # ------------------------------------------------------------------
    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        mirror = self._ensure_mirror()
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        kernel = batch_kernel(self.opts.distance_type)

        cent_dists = kernel(query, mirror.centroids)[0]
        nprobe = min(max(nprobe, 1), mirror.centroids.shape[0])
        part = np.argpartition(cent_dists, nprobe - 1)[:nprobe]
        probes = part[np.argsort(cent_dists[part], kind="stable")]

        heap = BoundedMaxHeap(k)
        results: list[tuple[TID, float]] = []
        self.scan_stats.scans += 1
        for bucket in probes.tolist():
            vectors = mirror.bucket_vectors[bucket]
            if vectors.shape[0] == 0:
                continue
            self.scan_stats.candidates += int(vectors.shape[0])
            dists = kernel(query, vectors)[0]
            take = min(k, dists.shape[0])
            if take < dists.shape[0]:
                sel = np.argpartition(dists, take - 1)[:take]
            else:
                sel = np.arange(dists.shape[0])
            worst = heap.worst_distance
            tids = mirror.bucket_tids[bucket]
            for j, d in zip(sel.tolist(), dists[sel].tolist()):
                if d < worst:
                    heap.push(d, _pack(tids[j]))
                    worst = heap.worst_distance
        for neighbor in heap.results():
            yield _unpack(neighbor.vector_id), neighbor.distance

    def get_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched scan straight off the memory mirror.

        Same SGEMM distances as :meth:`scan`; selection is a single
        lexsort over all probed candidates (boundary ties break toward
        the smallest TID rather than first-seen probe order).
        """
        mirror = self._ensure_mirror()
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        nprobe = int(self.catalog.get_setting("pase.nprobe"))
        kernel = batch_kernel(self.opts.distance_type)

        cent_dists = kernel(query, mirror.centroids)[0]
        nprobe = min(max(nprobe, 1), mirror.centroids.shape[0])
        part = np.argpartition(cent_dists, nprobe - 1)[:nprobe]
        probes = part[np.argsort(cent_dists[part], kind="stable")]

        key_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        self.scan_stats.scans += 1
        for bucket in probes.tolist():
            vectors = mirror.bucket_vectors[bucket]
            if vectors.shape[0] == 0:
                continue
            self.scan_stats.candidates += int(vectors.shape[0])
            dist_parts.append(kernel(query, vectors)[0].astype(np.float64))
            key_parts.append(
                np.asarray([_pack(t) for t in mirror.bucket_tids[bucket]], dtype=np.int64)
            )
        if not key_parts:
            return ScanBatch.empty()
        return topk_batch(np.concatenate(key_parts), np.concatenate(dist_parts), k)

    # ------------------------------------------------------------------
    # in-filter search (amsearch_filtered)
    # ------------------------------------------------------------------
    def amsearch_filtered(
        self, query: np.ndarray, k: int, mask_fn: Any
    ) -> Iterator[tuple[TID, float]]:
        """Tuple-stream form of the mirror-based in-filter scan."""
        return iter(self.amsearch_filtered_batch(query, k, mask_fn).pairs())

    def amsearch_filtered_batch(self, query: np.ndarray, k: int, mask_fn: Any) -> ScanBatch:
        """In-filter off the memory mirror: a boolean mask over each
        probed bucket's TIDs ahead of the SGEMM distance call, widening
        the probe set geometrically while fewer than k survive."""
        mirror = self._ensure_mirror()
        query = np.ascontiguousarray(query, dtype=np.float32)
        if query.shape != (self.dim,):
            raise ValueError(f"query must be {self.dim}-dim, got shape {query.shape}")
        kernel = batch_kernel(self.opts.distance_type)
        cent_dists = kernel(query, mirror.centroids)[0]
        order = np.argsort(cent_dists, kind="stable").tolist()
        nprobe = min(max(int(self.catalog.get_setting("pase.nprobe")), 1), len(order))

        key_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        examined = 0
        matched = 0
        probed = 0
        target = nprobe
        self.scan_stats.scans += 1
        while True:
            for bucket in order[probed:target]:
                tids = mirror.bucket_tids[bucket]
                if not tids:
                    continue
                examined += len(tids)
                mask = np.asarray(list(mask_fn(tids)), dtype=bool)
                keep = int(mask.sum())
                if not keep:
                    continue
                matched += keep
                self.scan_stats.candidates += keep
                dist_parts.append(
                    kernel(query, mirror.bucket_vectors[bucket][mask])[0].astype(np.float64)
                )
                key_parts.append(
                    np.asarray(
                        [_pack(t) for t, ok in zip(tids, mask.tolist()) if ok],
                        dtype=np.int64,
                    )
                )
            probed = target
            if matched >= k or probed >= len(order):
                break
            target = min(len(order), target * 2)
        self.last_filtered_examined = examined
        if not key_parts:
            return ScanBatch.empty()
        return topk_batch(np.concatenate(key_parts), np.concatenate(dist_parts), k)

    # ------------------------------------------------------------------
    # planner contract
    # ------------------------------------------------------------------
    def amcostestimate(self, ntuples: float, fetch_k: int, cost: Any) -> tuple[float, float]:
        """Same probe shape as PASE IVF_FLAT but memory-resident: the
        SGEMM bucket scoring skips the per-tuple page toll, modeled as
        half the page-structured cost."""
        startup, total = super().amcostestimate(ntuples, fetch_k, cost)
        return startup * 0.5, total * 0.5

    def amrescan_continue(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        """Rescan off the mirror — the inherited page-path continuation
        (cached centroid ranking) does not apply here."""
        return self.scan(query, k)

    def amrescan_continue_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched mirror rescan (see :meth:`amrescan_continue`)."""
        return self.get_batch(query, k)

    def _ensure_mirror(self) -> _MemoryMirror:
        if self._mirror is not None:
            return self._mirror
        if self.dim is None:
            raise RuntimeError("index has not been built")
        # Rebuild the mirror from the durable pages (restart path).
        centroids = []
        heads = []
        for __, head, vec in self._iter_centroids():
            centroids.append(vec.copy())
            heads.append(head)
        buckets: list[list[tuple[TID, np.ndarray]]] = []
        for head in heads:
            buckets.append([(tid, vec.copy()) for tid, vec in self._iter_bucket(head)])
        self._build_mirror(np.vstack(centroids), buckets)
        assert self._mirror is not None
        return self._mirror

    # ------------------------------------------------------------------
    # Step#4: parallel search with local heaps
    # ------------------------------------------------------------------
    def parallel_search_units(
        self, query: np.ndarray, k: int, nprobe: int
    ) -> tuple[list[tuple[TID, float]], list[WorkUnit]]:
        """Scan each probed bucket as a unit with a *local* heap.

        Returns the merged results and the measured work units (zero
        serial sections except the final lock-free merge), ready for
        :func:`repro.common.parallel.scaling_curve`.
        """
        mirror = self._ensure_mirror()
        query = np.ascontiguousarray(query, dtype=np.float32)
        kernel = batch_kernel(self.opts.distance_type)
        cent_dists = kernel(query, mirror.centroids)[0]
        nprobe = min(max(nprobe, 1), mirror.centroids.shape[0])
        part = np.argpartition(cent_dists, nprobe - 1)[:nprobe]

        global_heap = BoundedMaxHeap(k)
        units: list[WorkUnit] = []
        for bucket in part.tolist():
            start = time.perf_counter()
            local = BoundedMaxHeap(k)
            vectors = mirror.bucket_vectors[bucket]
            if vectors.shape[0]:
                dists = kernel(query, vectors)[0]
                tids = mirror.bucket_tids[bucket]
                for j, d in enumerate(dists.tolist()):
                    local.push(d, _pack(tids[j]))
            cost = time.perf_counter() - start
            global_heap.merge(local)
            units.append(WorkUnit(compute_seconds=cost, serial_ops=1))
        merged = [(_unpack(n.vector_id), n.distance) for n in global_heap.results()]
        return merged, units


def _pack(tid: TID) -> int:
    return (tid.blkno << 16) | tid.offset


def _unpack(key: int) -> TID:
    return TID(key >> 16, key & 0xFFFF)
