"""The paper's future direction (Sec. IX-C), built: a *bridged* engine.

The paper closes with five actionable guidelines for a generalized
vector database that matches a specialized one.  This subpackage
implements that recipe as pgsim access methods, so the same SQL
surface (``CREATE INDEX ... USING bridged_ivfflat``) now runs with
every root cause neutralized:

- **Step#1 — in-memory layout (RC#2, RC#4):** indexes persist pages
  for durability but serve searches from a memory-resident
  *memory-optimized table* (the GaussDB-style design the paper
  recommends), bypassing the buffer manager on the hot path.
- **Step#2 — SGEMM (RC#1):** construction assigns vectors to
  centroids with batched BLAS matmuls.
- **Step#3 — k-sized heap (RC#6):** top-k selection uses a bounded
  heap with single-comparison rejection.
- **Step#4 — parallelism (RC#3):** bucket scans partition into work
  units with per-thread local heaps (see
  :func:`repro.bridged.ivf_flat.parallel_search_units`).
- **Step#5 — optimized implementations (RC#5, RC#7):** Faiss-flavour
  k-means and the norm/inner-product ADC decomposition.

The ``bench_bridged_gap`` benchmark demonstrates the headline claim:
with these changes the generalized engine's search time lands within
a small factor of the specialized engine — i.e. *no fundamental
limitation*.
"""

from repro.bridged.hnsw import BridgedHNSW
from repro.bridged.ivf_flat import BridgedIVFFlat

__all__ = ["BridgedHNSW", "BridgedIVFFlat"]
