"""Binary tuple format: heap tuple headers and datum encoding.

Rows are serialized to PostgreSQL-flavoured heap tuples::

    +--------------------------+
    | header: xmin(4) xmax(4)  |
    |         natts(2) mask(2) |
    +--------------------------+
    | null bitmap (natts bits) |
    +--------------------------+
    | datum 0, datum 1, ...    |
    +--------------------------+

Fixed-width datums are stored raw (little-endian); variable-width
datums (``text``, ``float4[]``) carry a 4-byte length prefix, like
PostgreSQL varlenas.  Vectors are ``float4[]`` — PASE "is represented
using the array data type (e.g. float[]) provided by PostgreSQL"
(Sec. II-E).
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.pgsim.constants import TUPLE_HEADER_SIZE

_HEADER = struct.Struct("<IIHH")  # xmin, xmax, natts, infomask
assert _HEADER.size == TUPLE_HEADER_SIZE

#: Infomask bit: the tuple has at least one NULL attribute.
MASK_HAS_NULLS = 0x0001

#: xmax value meaning "not deleted".
INVALID_XID = 0


class TypeOid(enum.IntEnum):
    """Supported column types (names follow PostgreSQL's)."""

    INT4 = 23
    INT8 = 20
    FLOAT4 = 700
    FLOAT8 = 701
    TEXT = 25
    FLOAT4_ARRAY = 1021


#: SQL type name -> TypeOid, as accepted by CREATE TABLE.
SQL_TYPE_NAMES: dict[str, TypeOid] = {
    "int": TypeOid.INT4,
    "int4": TypeOid.INT4,
    "integer": TypeOid.INT4,
    "bigint": TypeOid.INT8,
    "int8": TypeOid.INT8,
    "real": TypeOid.FLOAT4,
    "float4": TypeOid.FLOAT4,
    "float": TypeOid.FLOAT8,
    "float8": TypeOid.FLOAT8,
    "double": TypeOid.FLOAT8,
    "text": TypeOid.TEXT,
    "varchar": TypeOid.TEXT,
    "float[]": TypeOid.FLOAT4_ARRAY,
    "float4[]": TypeOid.FLOAT4_ARRAY,
    "vector": TypeOid.FLOAT4_ARRAY,
}

_FIXED = {
    TypeOid.INT4: struct.Struct("<i"),
    TypeOid.INT8: struct.Struct("<q"),
    TypeOid.FLOAT4: struct.Struct("<f"),
    TypeOid.FLOAT8: struct.Struct("<d"),
}


@dataclass(frozen=True, slots=True)
class Column:
    """One column of a table schema."""

    name: str
    type_oid: TypeOid

    @classmethod
    def from_sql(cls, name: str, type_name: str) -> "Column":
        """Build a column from a SQL type name.

        Raises:
            ValueError: for unknown type names.
        """
        key = type_name.strip().lower()
        if key not in SQL_TYPE_NAMES:
            known = ", ".join(sorted(SQL_TYPE_NAMES))
            raise ValueError(f"unknown SQL type {type_name!r}; known: {known}")
        return cls(name=name, type_oid=SQL_TYPE_NAMES[key])


Schema = Sequence[Column]


def _encode_datum(type_oid: TypeOid, value: Any) -> bytes:
    if type_oid in _FIXED:
        try:
            return _FIXED[type_oid].pack(value)
        except struct.error as exc:
            raise ValueError(f"cannot encode {value!r} as {type_oid.name}: {exc}") from None
    if type_oid == TypeOid.TEXT:
        data = str(value).encode("utf-8")
        return struct.pack("<I", len(data)) + data
    if type_oid == TypeOid.FLOAT4_ARRAY:
        arr = np.ascontiguousarray(value, dtype=np.float32)
        if arr.ndim != 1:
            raise ValueError(f"float4[] datum must be 1-D, got shape {arr.shape}")
        raw = arr.tobytes()
        return struct.pack("<I", len(raw)) + raw
    raise ValueError(f"unsupported type oid: {type_oid!r}")


def _decode_datum(type_oid: TypeOid, buf: memoryview, pos: int) -> tuple[Any, int]:
    if type_oid in _FIXED:
        fmt = _FIXED[type_oid]
        (value,) = fmt.unpack_from(buf, pos)
        return value, pos + fmt.size
    (length,) = struct.unpack_from("<I", buf, pos)
    pos += 4
    raw = bytes(buf[pos : pos + length])
    pos += length
    if type_oid == TypeOid.TEXT:
        return raw.decode("utf-8"), pos
    if type_oid == TypeOid.FLOAT4_ARRAY:
        return np.frombuffer(raw, dtype=np.float32).copy(), pos
    raise ValueError(f"unsupported type oid: {type_oid!r}")


def encode_tuple(schema: Schema, values: Sequence[Any], xmin: int = 1) -> bytes:
    """Serialize a row to heap-tuple bytes.

    ``None`` values are recorded in the null bitmap and occupy no datum
    space.
    """
    natts = len(schema)
    if len(values) != natts:
        raise ValueError(f"schema has {natts} columns, row has {len(values)} values")
    bitmap = bytearray((natts + 7) // 8)
    has_nulls = False
    body = bytearray()
    for i, (col, value) in enumerate(zip(schema, values)):
        if value is None:
            bitmap[i // 8] |= 1 << (i % 8)
            has_nulls = True
            continue
        body += _encode_datum(col.type_oid, value)
    mask = MASK_HAS_NULLS if has_nulls else 0
    return _HEADER.pack(xmin, INVALID_XID, natts, mask) + bytes(bitmap) + bytes(body)


def decode_tuple(schema: Schema, data: bytes | memoryview) -> list[Any]:
    """Deserialize heap-tuple bytes back to a row of Python values."""
    buf = memoryview(data)
    __, xmax, natts, __ = _HEADER.unpack_from(buf, 0)
    del xmax
    if natts != len(schema):
        raise ValueError(f"tuple has {natts} attributes, schema has {len(schema)}")
    pos = TUPLE_HEADER_SIZE
    bitmap = bytes(buf[pos : pos + (natts + 7) // 8])
    pos += (natts + 7) // 8
    values: list[Any] = []
    for i, col in enumerate(schema):
        if bitmap[i // 8] & (1 << (i % 8)):
            values.append(None)
            continue
        value, pos = _decode_datum(col.type_oid, buf, pos)
        values.append(value)
    return values


def tuple_xmin(data: bytes | memoryview) -> int:
    """Read the inserting transaction id."""
    return _HEADER.unpack_from(memoryview(data), 0)[0]


def tuple_xmax(data: bytes | memoryview) -> int:
    """Read the deleting transaction id (0 = live)."""
    return _HEADER.unpack_from(memoryview(data), 0)[1]


def tuple_header(data: bytes | memoryview) -> tuple[int, int]:
    """Read ``(xmin, xmax)`` in one unpack (the visibility hot path)."""
    xmin, xmax, __, __ = _HEADER.unpack_from(memoryview(data), 0)
    return xmin, xmax


def set_tuple_xmax(data: bytearray, xmax: int) -> None:
    """Stamp the deleting transaction id in place."""
    struct.pack_into("<I", data, 4, xmax)


def decode_column(
    schema: Schema, data: bytes | memoryview, column_index: int
) -> Any:
    """Decode a single column without materializing the whole row.

    This is the hot path for PASE's index scans, which only need the
    vector column out of each fetched tuple.
    """
    buf = memoryview(data)
    __, __, natts, __ = _HEADER.unpack_from(buf, 0)
    if natts != len(schema):
        raise ValueError(f"tuple has {natts} attributes, schema has {len(schema)}")
    if not 0 <= column_index < natts:
        raise IndexError(f"column index {column_index} out of range 0..{natts - 1}")
    pos = TUPLE_HEADER_SIZE
    bitmap = bytes(buf[pos : pos + (natts + 7) // 8])
    pos += (natts + 7) // 8
    for i, col in enumerate(schema):
        is_null = bool(bitmap[i // 8] & (1 << (i % 8)))
        if i == column_index:
            if is_null:
                return None
            value, __ = _decode_datum(col.type_oid, buf, pos)
            return value
        if is_null:
            continue
        if col.type_oid in _FIXED:
            pos += _FIXED[col.type_oid].size
        else:
            (length,) = struct.unpack_from("<I", buf, pos)
            pos += 4 + length
    raise AssertionError("unreachable")
