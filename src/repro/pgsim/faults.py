"""Deterministic fault injection for pgsim's durability layer.

Crash-safety claims are only as good as the failures they were tested
against.  This module provides the single chokepoint through which all
durability-relevant file I/O in pgsim flows — WAL appends, WAL fsyncs,
page write-back and relation extension — so a test can deterministically
break any one of those operations and then assert that recovery still
upholds the commit contract (committed data survives, unacknowledged
data may not resurrect partial state).

Three failure modes are modelled, matching the bug classes that
dominate crash/recovery defect reports in vector DBMSs:

- :data:`CRASH` — the process dies *before* the operation happens
  (crash-at-write-boundary).  At an fsync site this means the preceding
  writes reached the OS but the barrier never ran.
- :data:`TORN_WRITE` — a prefix of the payload reaches the medium and
  then the process dies (a torn sector/page write).
- :data:`FAIL_FSYNC` — ``fsync`` reports failure but the process
  survives.  Mirrors the *fsyncgate* class of bugs: after a failed
  fsync the kernel may have dropped the dirty pages, so retrying the
  fsync later and seeing success proves nothing.  pgsim reacts like
  PostgreSQL post-fsyncgate: the WAL enters a panic state and refuses
  further work until the database is restarted and recovered.

Simulated crashes are delivered as :class:`SimulatedCrash` exceptions.
Because everything runs in one process, "crash" means: the exception
propagates out of the database call, the caller abandons the instance,
and a *new* instance recovers from the files left behind.  Writes that
were issued before the crash are considered on the medium (as if the
OS flushed them); the interesting torn states are produced explicitly
by :data:`TORN_WRITE`.

Operations are counted globally in call order, so a schedule is just
``{operation_index: Fault(...)}``.  Running a workload once against a
no-fault injector and reading :attr:`FaultInjector.ops` yields the
number of boundaries to iterate a crash over — see
``tests/test_fault_injection.py``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

#: Fault kinds (see module docstring).
CRASH = "crash"
TORN_WRITE = "torn-write"
FAIL_FSYNC = "fail-fsync"


class SimulatedCrash(RuntimeError):
    """The process died at an injected crash point.

    Deliberately *not* an :class:`OSError`: nothing in pgsim may catch
    and absorb it, the same way nothing survives ``kill -9``.
    """


class SimulatedIOError(OSError):
    """An injected, survivable I/O failure (e.g. ``fsync`` returning -1)."""


@dataclass(frozen=True, slots=True)
class Fault:
    """One scheduled failure.

    Args:
        kind: one of :data:`CRASH`, :data:`TORN_WRITE`,
            :data:`FAIL_FSYNC`.
        keep_fraction: for torn writes, the fraction of the payload
            that reaches the medium before the crash.
    """

    kind: str
    keep_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, TORN_WRITE, FAIL_FSYNC):
            raise ValueError(f"unknown fault kind: {self.kind!r}")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ValueError("keep_fraction must be in [0, 1)")


@dataclass(slots=True)
class FaultInjector:
    """Consulted at every durability-relevant I/O boundary.

    Each call to :meth:`write` or :meth:`fsync` consumes one operation
    index; when the schedule names that index, the fault fires.  With
    an empty schedule the injector is a pass-through that merely counts
    operations (and performs the real I/O), which is how workloads are
    sized before a crash sweep.
    """

    schedule: dict[int, Fault] = field(default_factory=dict)
    #: Next operation index (== operations performed so far).
    ops: int = 0
    #: ``(op_index, site, kind)`` of every fault that fired.
    fired: list[tuple[int, str, str]] = field(default_factory=list)

    # -- schedule builders ------------------------------------------------
    @classmethod
    def crash_at(cls, op_index: int) -> "FaultInjector":
        """Injector that crashes before operation ``op_index``."""
        return cls(schedule={op_index: Fault(CRASH)})

    @classmethod
    def torn_write_at(cls, op_index: int, keep_fraction: float = 0.5) -> "FaultInjector":
        """Injector that tears the write at ``op_index`` and crashes."""
        return cls(schedule={op_index: Fault(TORN_WRITE, keep_fraction)})

    @classmethod
    def fail_fsync_at(cls, op_index: int) -> "FaultInjector":
        """Injector whose fsync at ``op_index`` fails (process survives)."""
        return cls(schedule={op_index: Fault(FAIL_FSYNC)})

    # -- instrumented I/O -------------------------------------------------
    def write(self, site: str, fobj, payload: bytes) -> None:
        """Write ``payload`` to ``fobj``, honouring any scheduled fault."""
        fault = self._poll()
        if fault is None or fault.kind == FAIL_FSYNC:
            # FAIL_FSYNC scheduled on a write boundary is inert: the
            # write itself succeeds, only a sync barrier can fail.
            fobj.write(payload)
            return
        self._record(site, fault)
        if fault.kind == CRASH:
            raise SimulatedCrash(f"crash before {site} write (op {self.ops - 1})")
        # TORN_WRITE: a prefix lands on the medium, then the lights go out.
        keep = int(len(payload) * fault.keep_fraction)
        fobj.write(payload[:keep])
        fobj.flush()
        raise SimulatedCrash(f"torn {site} write (op {self.ops - 1}, kept {keep} bytes)")

    def fsync(self, site: str, fobj) -> None:
        """Flush+fsync ``fobj``, honouring any scheduled fault."""
        fault = self._poll()
        if fault is not None:
            self._record(site, fault)
            if fault.kind == FAIL_FSYNC:
                raise SimulatedIOError(f"fsync failed at {site} (op {self.ops - 1})")
            # CRASH and TORN_WRITE at a sync boundary both mean: the
            # preceding writes made it, the barrier did not.
            raise SimulatedCrash(f"crash before {site} fsync (op {self.ops - 1})")
        fobj.flush()
        os.fsync(fobj.fileno())

    def _poll(self) -> Fault | None:
        fault = self.schedule.get(self.ops)
        self.ops += 1
        return fault

    def _record(self, site: str, fault: Fault) -> None:
        # Only faults that actually took effect are recorded: an inert
        # FAIL_FSYNC on a write boundary does not count as "fired".
        self.fired.append((self.ops - 1, site, fault.kind))


#: Shared pass-through injector for callers that want real, unbroken I/O.
NO_FAULTS = FaultInjector()
