"""SQL expression evaluation, including vector operators.

Distance semantics: like Faiss, all engines in this reproduction
return *squared* Euclidean distance for ``<->`` (ordering is identical
to true Euclidean, and the paper's figures compare times, not
distance values).  ``<#>`` returns the negated inner product and
``<=>`` the cosine distance, both "smaller is more similar".
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from repro.common.distance import cosine_distance, inner_product, l2_sqr
from repro.pgsim.sql import ast


class ExpressionError(ValueError):
    """Raised when an expression cannot be evaluated."""


def parse_vector_text(text: str) -> np.ndarray:
    """Parse a SQL vector literal body.

    Accepts both PASE's bare form (``'0.1,0.2,0.3'``) and pgvector's
    bracketed form (``'[0.1,0.2,0.3]'``).
    """
    body = text.strip()
    if body.startswith("[") and body.endswith("]"):
        body = body[1:-1]
    if not body:
        raise ExpressionError("empty vector literal")
    try:
        values = [float(part) for part in body.split(",")]
    except ValueError as exc:
        raise ExpressionError(f"bad vector literal {text!r}: {exc}") from None
    return np.asarray(values, dtype=np.float32)


#: SQL type names that coerce a string literal to a vector.
VECTOR_TYPE_NAMES = {"pase", "vector", "float[]", "float4[]"}


def coerce_vector(value: Any) -> np.ndarray:
    """Coerce an evaluated value to a float32 vector."""
    if isinstance(value, np.ndarray):
        return np.ascontiguousarray(value, dtype=np.float32)
    if isinstance(value, str):
        return parse_vector_text(value)
    if isinstance(value, (list, tuple)):
        return np.asarray(value, dtype=np.float32)
    raise ExpressionError(f"cannot interpret {type(value).__name__} as a vector")


def evaluate(expr: ast.Expr, row: Mapping[str, Any] | None = None) -> Any:
    """Evaluate ``expr`` against a row (column name -> value)."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        if row is None:
            raise ExpressionError(f"column {expr.name!r} referenced without a row")
        try:
            return row[expr.name]
        except KeyError:
            raise ExpressionError(f"no such column: {expr.name!r}") from None
    if isinstance(expr, ast.ArrayLiteral):
        return np.asarray(
            [evaluate(item, row) for item in expr.items], dtype=np.float32
        )
    if isinstance(expr, ast.Cast):
        return _cast(evaluate(expr.operand, row), expr.type_name)
    if isinstance(expr, ast.UnaryOp):
        value = evaluate(expr.operand, row)
        if expr.op == "-":
            return -value
        if expr.op == "not":
            return not value
        raise ExpressionError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, ast.BinaryOp):
        return _binary(expr, row)
    if isinstance(expr, ast.FuncCall):
        return _call(expr, row)
    if isinstance(expr, ast.Star):
        raise ExpressionError("'*' is only valid as a SELECT target or in count(*)")
    raise ExpressionError(f"cannot evaluate {type(expr).__name__}")


def _cast(value: Any, type_name: str) -> Any:
    name = type_name.lower()
    if name in VECTOR_TYPE_NAMES:
        return coerce_vector(value)
    if name in ("int", "int4", "integer", "bigint", "int8"):
        return int(value)
    if name in ("float", "float4", "float8", "real", "double"):
        return float(value)
    if name in ("text", "varchar"):
        return str(value)
    raise ExpressionError(f"unknown cast target {type_name!r}")


def _binary(expr: ast.BinaryOp, row: Mapping[str, Any] | None) -> Any:
    op = expr.op
    if op == "and":
        return bool(evaluate(expr.left, row)) and bool(evaluate(expr.right, row))
    if op == "or":
        return bool(evaluate(expr.left, row)) or bool(evaluate(expr.right, row))

    left = evaluate(expr.left, row)
    right = evaluate(expr.right, row)
    if op in ast.DISTANCE_OPERATORS:
        a = coerce_vector(left)
        b = coerce_vector(right)
        if a.shape != b.shape:
            raise ExpressionError(
                f"vector dimension mismatch: {a.shape[0]} vs {b.shape[0]}"
            )
        metric = ast.DISTANCE_OPERATORS[op]
        if metric == "l2":
            return l2_sqr(a, b)
        if metric == "inner_product":
            return -inner_product(a, b)
        return cosine_distance(a, b)
    if op == "=":
        return _equals(left, right)
    if op in ("<>", "!="):
        return not _equals(left, right)
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "<=":
        return left <= right
    if op == ">=":
        return left >= right
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExpressionError("division by zero")
        return left / right
    raise ExpressionError(f"unknown operator {op!r}")


def _equals(left: Any, right: Any) -> bool:
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        a = coerce_vector(left)
        b = coerce_vector(right)
        return a.shape == b.shape and bool(np.array_equal(a, b))
    return left == right


_SCALAR_FUNCS = {
    "abs": abs,
    "sqrt": math.sqrt,
    "floor": math.floor,
    "ceil": math.ceil,
}


def _call(expr: ast.FuncCall, row: Mapping[str, Any] | None) -> Any:
    name = expr.name.lower()
    if name in _SCALAR_FUNCS:
        if len(expr.args) != 1:
            raise ExpressionError(f"{name}() takes exactly one argument")
        return _SCALAR_FUNCS[name](evaluate(expr.args[0], row))
    if name == "vector_dims":
        vec = coerce_vector(evaluate(expr.args[0], row))
        return int(vec.shape[0])
    if name in ("l2_distance", "inner_product", "cosine_distance"):
        if len(expr.args) != 2:
            raise ExpressionError(f"{name}() takes exactly two arguments")
        a = coerce_vector(evaluate(expr.args[0], row))
        b = coerce_vector(evaluate(expr.args[1], row))
        if name == "l2_distance":
            return l2_sqr(a, b)
        if name == "inner_product":
            return inner_product(a, b)
        return cosine_distance(a, b)
    raise ExpressionError(f"unknown function {expr.name!r}")


def is_constant(expr: ast.Expr) -> bool:
    """True when ``expr`` references no columns (planner utility)."""
    return not any(isinstance(e, ast.ColumnRef) for e in ast.walk(expr))
