"""Database facade: the ``psql`` of pgsim.

Wires disk, buffer manager, WAL, catalog and executor together and
exposes ``execute(sql)``.  Creating a database also registers the
vector index access methods (PASE and pgvector) so the paper's
``CREATE INDEX ... USING ivfflat_fun`` statements work out of the box.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from repro.common.obs import WaitEventStats
from repro.pgsim.activity import SessionRegistry, install_activity_view
from repro.pgsim.ash import (
    ActiveSessionHistory,
    StatHistory,
    TimeSeriesSampler,
    install_timeseries_views,
)
from repro.pgsim.buffer import BufferManager
from repro.pgsim.catalog import Catalog
from repro.pgsim.constants import DEFAULT_BUFFER_POOL_PAGES, DEFAULT_PAGE_SIZE
from repro.pgsim.estimation import install_estimation_view, install_strategy_view
from repro.pgsim.executor import Executor
from repro.pgsim.faults import FaultInjector
from repro.pgsim.plan import QueryResult
from repro.pgsim.session import Session
from repro.pgsim.slowlog import SlowQueryLog, install_slowlog_view
from repro.pgsim.sql import parse_sql
from repro.pgsim.sql import ast
from repro.pgsim.stats import StatsCollector, install_stat_views
from repro.pgsim.storage import DiskManager, FileDisk, MemoryDisk
from repro.pgsim.wal import WriteAheadLog, next_xid_after, replay
from repro.pgsim.xact import TransactionManager


def _register_default_ams() -> None:
    """Import the vector AM packages so they self-register.

    Function-level imports break the package-initialization cycle
    (those packages import :mod:`repro.pgsim` themselves).
    """
    import repro.bridged  # noqa: F401  (registers bridged_* AMs)
    import repro.pase  # noqa: F401  (registers pase_* AMs)
    import repro.pgvector  # noqa: F401  (registers the pgvector AM)


class PgSimDatabase:
    """One pgsim database instance.

    Args:
        page_size: storage page size; the paper's Table IV runs the
            HNSW size experiment at both 8192 and 4096.
        buffer_pool_pages: buffer-manager capacity.
        data_dir: when given, pages persist in files under this
            directory; otherwise everything lives in memory (the
            "tmpfs" configuration the paper uses to exclude I/O).
        fault_injector: when given, all durability-relevant file I/O
            (WAL appends/fsyncs, page writes) flows through it — the
            hook the crash-recovery harness uses to simulate torn
            writes, failed fsyncs and crashes at write boundaries.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool_pages: int = DEFAULT_BUFFER_POOL_PAGES,
        data_dir: str | Path | None = None,
        disk: DiskManager | None = None,
        fault_injector: FaultInjector | None = None,
    ) -> None:
        self._catalog_log: Path | None = None
        if disk is not None:
            self.disk = disk
        elif data_dir is not None:
            self.disk = FileDisk(data_dir, page_size=page_size, faults=fault_injector)
        else:
            self.disk = MemoryDisk(page_size=page_size)
        #: One wait-event accumulator shared by the WAL and buffer
        #: manager, so ``pg_stat_wait_events`` sees all blocked time.
        self.waits = WaitEventStats()
        if data_dir is not None:
            wal_path = Path(data_dir) / "wal.log"
            self.wal = WriteAheadLog(wal_path, faults=fault_injector, waits=self.waits)
            self._catalog_log = Path(data_dir) / "catalog.sql"
        else:
            self.wal = WriteAheadLog(faults=fault_injector, waits=self.waits)
        self.buffer = BufferManager(
            self.disk, capacity=buffer_pool_pages, wal=self.wal, waits=self.waits
        )
        self.catalog = Catalog()
        #: Statistics aggregation point; backs the pg_stat_* views and
        #: the per-statement QueryStats on every execute() result.
        self.stats = StatsCollector(self.buffer, self.wal, self.catalog, waits=self.waits)
        #: Transaction manager shared by the executor and all sessions.
        self.xact = TransactionManager()
        self.executor = Executor(
            self.catalog, self.buffer, self.wal, stats=self.stats, xact=self.xact
        )
        #: Backend registry behind ``pg_stat_activity``; sessions mint
        #: their backend ids here.
        self.activity = SessionRegistry()
        #: Bounded ring behind ``pg_slow_queries`` (statement logging
        #: and auto_explain captures land here).
        try:
            slowlog_capacity = int(self.catalog.get_setting("slow_query_log_size"))
        except Exception:
            slowlog_capacity = 256
        self.slowlog = SlowQueryLog(capacity=slowlog_capacity)
        self.executor.slowlog = self.slowlog
        #: Active Session History ring + stat-history ring, fed by the
        #: background sampler thread while ``ash_enable`` is on (the
        #: rings also accept manual ``sample_once()``/``tick()`` calls,
        #: which is what deterministic tests and the report CLI use).
        self.ash = ActiveSessionHistory(
            self.activity, ring_size=self._int_setting("ash_ring_size", 4096)
        )
        self.stat_history = StatHistory(
            self.stats, ring_size=self._int_setting("stat_history_ring_size", 512)
        )
        self._sampler = TimeSeriesSampler(self.catalog, self.ash, self.stat_history)
        self.executor.settings_listener = self._on_setting_changed
        install_stat_views(self.catalog, self.stats)
        install_activity_view(self.catalog, self.activity)
        install_slowlog_view(self.catalog, self.slowlog)
        install_timeseries_views(self.catalog, self.ash, self.stat_history)
        install_estimation_view(self.catalog, self.executor.estimation)
        install_strategy_view(self.catalog, self.executor.strategies)
        # ``SELECT pg_stat_reset()`` clears these surfaces along with
        # the core counter families.
        self.stats.register_resettable(self.slowlog)
        self.stats.register_resettable(self.activity)
        self.stats.register_resettable(self.ash)
        self.stats.register_resettable(self.stat_history)
        self.stats.register_resettable(self.executor.estimation)
        self.stats.register_resettable(self.executor.strategies)
        _register_default_ams()
        #: Serializes statement execution across sessions; contention
        #: is recorded under the ``SessionStatementLock`` wait event.
        self._statement_lock = threading.Lock()
        self._replaying_catalog = False
        if data_dir is not None:
            self._recover()
        #: Default session backing the facade's own ``execute()``.
        self._default_session = Session(self, name="default")

    # ------------------------------------------------------------------
    # SQL entry points
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        """Run one or more statements; returns the last result.

        Runs on the facade's built-in default session, so ``BEGIN`` /
        ``COMMIT`` / ``ROLLBACK`` work here too.  With the
        ``track_query_stats`` GUC on (the default), each result
        carries a :class:`~repro.pgsim.stats.QueryStats` in
        ``result.stats`` and the statement is recorded in
        ``pg_stat_statements`` under its normalized text.
        """
        return self._default_session.execute(sql)

    def execute_all(self, sql: str) -> list[QueryResult]:
        """Run statements and return every result."""
        return self._default_session.execute_all(sql)

    def session(self, name: str | None = None) -> Session:
        """Open a new client session (one per simulated client/thread).

        Sessions share this database's storage, catalog and transaction
        manager but hold their own transaction state, so concurrent
        sessions see each other only through committed snapshots.  Each
        session gets a unique monotonic backend id (its ``pid`` in
        ``pg_stat_activity``); the default name is derived from it, so
        two unnamed sessions never collide in the view.
        """
        return Session(self, name=name)

    def metrics_text(self) -> str:
        """Every counter family as Prometheus text exposition.

        One consolidated scrape surface over the same numbers the
        pg_stat_* views expose (see
        :mod:`repro.common.metrics_export`); also served by the
        ``repro-bench metrics`` CLI subcommand.
        """
        from repro.common.metrics_export import MetricsRegistry

        return MetricsRegistry(self).render()

    def _tracking_enabled(self) -> bool:
        try:
            return self.catalog.get_bool("track_query_stats")
        except Exception:
            return False

    def _int_setting(self, name: str, default: int) -> int:
        try:
            return int(self.catalog.get_setting(name))
        except Exception:
            return default

    def _on_setting_changed(self, name: str, value: Any) -> None:
        """React to SET: drive the ASH sampler and ring sizes live.

        Installed as the executor's ``settings_listener``, so ``SET
        ash_enable = on`` starts the background sampler thread without
        polling and ``off`` joins it; ring-size GUCs re-bound their
        rings in place (keeping the newest entries).
        """
        if name == "ash_enable":
            try:
                enable = self.catalog.get_bool("ash_enable")
            except Exception:
                enable = False
            if enable:
                self._sampler.start()
            else:
                self._sampler.stop()
        elif name == "ash_ring_size":
            self.ash.resize(self._int_setting("ash_ring_size", 4096))
        elif name == "stat_history_ring_size":
            self.stat_history.resize(self._int_setting("stat_history_ring_size", 512))

    def close(self) -> None:
        """Shut the database down: stop the sampler, flush the sinks.

        Idempotent.  Stops the ASH sampler thread (if running) and
        flushes + closes the slow-query JSONL sink so every record is
        durable on disk when the process moves on.
        """
        self._sampler.stop()
        self.slowlog.close_sink()

    def _sync_slowlog_sink(self) -> None:
        """Point the slow-query log's file sink at the current GUC."""
        try:
            path = str(self.catalog.get_setting("slow_query_log_file"))
        except Exception:
            path = ""
        self.slowlog.configure_sink(path or None)

    def _autovacuum_enabled(self) -> bool:
        try:
            return self.catalog.get_bool("autovacuum")
        except Exception:
            return False

    def maybe_autovacuum(self) -> list[str]:
        """Run one autovacuum cycle now (manual trigger for harnesses).

        Applies the same dead-tuple thresholds the after-statement hook
        uses; returns the names of vacuumed tables.  Takes the
        statement lock so it never interleaves with a session.
        """
        with self._statement_lock:
            return self.executor.maybe_autovacuum()

    def query(self, sql: str) -> list[tuple[Any, ...]]:
        """Run a query and return its rows."""
        return self.execute(sql).rows

    def explain(self, sql: str) -> str:
        """EXPLAIN a query, returning the plan listing."""
        result = self.execute(f"EXPLAIN {sql.rstrip().rstrip(';')}")
        return "\n".join(row[0] for row in result.rows)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Crash recovery for file-backed databases.

        1. Redo durable WAL records onto the page files, then purge
           tuples of transactions without a durable commit record
           (see :func:`repro.pgsim.wal.replay`).
        2. Advance the xid allocator past every recovered xid, so new
           transactions never alias recovered tuples.
        3. Replay the DDL log (catalog.sql) to rebuild the catalog;
           CREATE TABLE re-attaches to the recovered heap pages and
           CREATE INDEX rebuilds the index from them.
        """
        replay(self.wal, self.disk)
        self.xact.advance_to(next_xid_after(self.wal))
        assert self._catalog_log is not None
        if not self._catalog_log.exists():
            return
        ddl = self._catalog_log.read_text()
        if not ddl.strip():
            return
        self._replaying_catalog = True
        try:
            for stmt in parse_sql(ddl):
                self.executor.execute_statement(stmt)
        finally:
            self._replaying_catalog = False

    def _log_ddl(self, stmt) -> None:
        """Append catalog-shaping statements to the DDL log."""
        if self._catalog_log is None or self._replaying_catalog:
            return
        sql = _ddl_to_sql(stmt)
        if sql is None:
            return
        with self._catalog_log.open("a") as f:
            f.write(sql + ";\n")

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Flush dirty pages, mark the WAL, and truncate the log.

        Protocol (order matters):

        1. flush the WAL — pages may only be written once the records
           that produced them are durable (WAL-before-data);
        2. write back every dirty buffer page, so the log up to here
           is no longer needed for redo;
        3. append + flush a checkpoint record carrying the xid
           allocator position and the open-transaction list (an open
           transaction's flushed-but-truncated changes must still be
           rolled back if we crash before its commit);
        4. truncate the log before the checkpoint record, bounding
           both the in-memory record list and the on-disk file.

        Takes the statement lock so a checkpoint never interleaves
        with a concurrent session's statement.  Returns the checkpoint
        record's LSN.
        """
        with self._statement_lock:
            self.wal.flush()
            self.buffer.flush_all()
            lsn = self.wal.log_checkpoint(
                next_xid=self.xact.next_xid,
                in_progress=self.xact.in_progress_xids(),
            )
            self.wal.truncate_before(lsn)
            return lsn

    @property
    def buffer_stats(self):
        """Buffer-manager hit/miss statistics."""
        return self.buffer.stats

    def settings(self) -> dict[str, Any]:
        """Copy of the current GUC settings."""
        return dict(self.catalog.settings)


def _ddl_to_sql(stmt) -> str | None:
    """Canonical SQL for catalog-shaping statements (the DDL log)."""
    if isinstance(stmt, ast.CreateTable):
        cols = ", ".join(f"{c.name} {c.type_name}" for c in stmt.columns)
        return f"CREATE TABLE IF NOT EXISTS {stmt.name} ({cols})"
    if isinstance(stmt, ast.DropTable):
        return f"DROP TABLE IF EXISTS {stmt.name}"
    if isinstance(stmt, ast.CreateIndex):
        sql = f"CREATE INDEX {stmt.name} ON {stmt.table} USING {stmt.am} ({stmt.column})"
        if stmt.options:
            parts = []
            for key, value in stmt.options:
                if isinstance(value, bool):
                    rendered = "true" if value else "false"
                elif isinstance(value, (int, float)):
                    rendered = repr(value)
                else:
                    rendered = "'" + str(value).replace("'", "''") + "'"
                parts.append(f"{key} = {rendered}")
            sql += " WITH (" + ", ".join(parts) + ")"
        return sql
    if isinstance(stmt, ast.DropIndex):
        return f"DROP INDEX IF EXISTS {stmt.name}"
    if isinstance(stmt, ast.Analyze):
        # Statistics are a catalog mutation: replaying ANALYZE after
        # WAL redo recomputes them over the recovered heap, so planner
        # stats (and the pg_stats views) survive checkpoint + crash.
        return f"ANALYZE {stmt.table}" if stmt.table else "ANALYZE"
    return None
