"""Volcano-style plan execution and statement dispatch.

The executor pulls row dicts through the plan tree.  For the paper's
search path the interesting part is :meth:`Executor._index_scan_rows`:
the index AM yields ``(tid, distance)`` nearest-first and the executor
fetches each result row from the heap by TID — one more buffer-manager
round trip per result, exactly PostgreSQL's index-scan contract.
"""

from __future__ import annotations

import itertools
import random
import time
from typing import Any, Iterator

import numpy as np

from repro.common.distance import batch_kernel
from repro.common.profiling import NULL_PROFILER
from repro.common.types import DistanceType
from repro.pgsim import expr as E
from repro.pgsim import plan as P
from repro.pgsim.am import lookup_am
from repro.pgsim.analyze import analyze_table
from repro.pgsim.buffer import BufferManager
from repro.pgsim.catalog import Catalog, CatalogError, IndexInfo, TableInfo
from repro.pgsim.estimation import EstimationStats, StrategyStats, record_plan
from repro.pgsim.paths import METRIC_TO_TYPE
from repro.pgsim.heapam import TID, HeapTable
from repro.pgsim.planner import explain_plan, plan_select
from repro.pgsim.slowlog import SlowQueryRecord
from repro.pgsim.sql import ast
from repro.pgsim.stats import StatsCollector
from repro.pgsim.tuple_format import Column, TypeOid
from repro.pgsim.wal import WalPanicError, WriteAheadLog
from repro.pgsim.xact import Snapshot, Transaction, TransactionManager


class ExecutionError(RuntimeError):
    """Raised for runtime statement failures."""


class Executor:
    """Statement dispatcher bound to one database instance.

    Every statement runs inside a transaction.  Callers without an
    explicit one (autocommit) get a per-statement transaction wrapped
    around the dispatch: begin, execute under a fresh snapshot, commit
    (or abort on any error).  Sessions running ``BEGIN`` blocks pass
    their open :class:`~repro.pgsim.xact.Transaction` in, and commit or
    roll back via :meth:`commit_transaction` / :meth:`abort_transaction`
    when the user says so.
    """

    def __init__(
        self,
        catalog: Catalog,
        buffer: BufferManager,
        wal: WriteAheadLog,
        stats: StatsCollector | None = None,
        xact: TransactionManager | None = None,
    ) -> None:
        self.catalog = catalog
        self.buffer = buffer
        self.wal = wal
        #: Statistics aggregation point (see :mod:`repro.pgsim.stats`).
        #: Always present so heap tables can share its counters; the
        #: database facade passes its own instance.
        self.stats = stats if stats is not None else StatsCollector(buffer, wal, catalog)
        #: Transaction manager (xid allocation, clog, snapshots); the
        #: database facade shares one instance with its sessions.
        self.xact = xact if xact is not None else TransactionManager()
        #: Transaction/snapshot of the statement currently dispatching.
        #: Instance state is safe here: the database's statement lock
        #: serializes execution, and nested dispatch (EXPLAIN ANALYZE
        #: on DML) must see the same transaction anyway.
        self._txn: Transaction | None = None
        self._snapshot: Snapshot | None = None
        #: Profiler installed on index AMs before build (set by
        #: harnesses that need construction-time breakdowns).
        self.am_profiler = None
        #: Profiler the executor itself reports into during an
        #: ``EXPLAIN (ANALYZE, TRACE)`` run: heap fetches on the index
        #: scan paths file under "Tuple Access".  NULL_PROFILER (and a
        #: cheap ``.enabled`` guard) outside trace runs.
        self.trace_profiler = NULL_PROFILER
        #: Tracer of the most recent EXPLAIN (ANALYZE, TRACE) run.
        self.last_trace = None
        #: Slow-query ring (installed by the database facade); None in
        #: bare-executor unit tests, which disables auto_explain and
        #: autovacuum logging without further checks.
        self.slowlog = None
        #: auto_explain capture of the most recent SELECT: the session
        #: layer pops it via :meth:`take_plan_capture` after the
        #: statement finishes.  ``{"plan": str, "rc": dict,
        #: "elapsed_ms": float}`` when the last SELECT crossed
        #: ``auto_explain_log_min_duration``, else None.
        self.last_plan_capture = None
        #: Estimate-vs-actual accumulator (pg_stat_estimation_errors).
        #: Fed by EXPLAIN ANALYZE / auto_explain runs and by ordinary
        #: SELECTs sampled via ``estimation_probe_rate``.
        self.estimation = EstimationStats()
        #: Per-strategy filtered-search accounting
        #: (pg_stat_filtered_search): chosen counts, over-fetch
        #: fallbacks, estimated vs. measured selectivity.
        self.strategies = StrategyStats()
        #: Normalized text of the statement currently dispatching, set
        #: by the session layer; keys the estimation entries.
        self.current_query: str | None = None
        #: Callback ``(name, value)`` invoked after a SET applies; the
        #: database facade uses it to start/stop the ASH sampler and
        #: resize the time-series rings without polling.
        self.settings_listener = None

    # ------------------------------------------------------------------
    # transaction lifecycle
    # ------------------------------------------------------------------
    def commit_transaction(self, txn: Transaction) -> None:
        """Make ``txn`` durable and mark it committed.

        Read-only transactions never touched the WAL and commit
        without a record.  A WAL failure at the commit flush aborts
        the transaction instead — its data records may be durable, but
        without the commit record recovery rolls it back, so the
        in-memory state must agree.
        """
        if txn.wrote_wal:
            try:
                self.wal.log_commit(txn.xid)
            except BaseException:
                self.abort_transaction(txn)
                raise
        self.xact.commit(txn)

    def abort_transaction(self, txn: Transaction) -> None:
        """Roll ``txn`` back: advisory WAL record + clog abort."""
        if txn.wrote_wal:
            try:
                self.wal.log_abort(txn.xid)
            except WalPanicError:
                pass  # a panicked log recovers to the same rollback
        self.xact.abort(txn)

    def _ensure_wal_begin(self, txn: Transaction) -> None:
        """Log the BEGIN record before the transaction's first write."""
        if not txn.wrote_wal:
            self.wal.log_begin(txn.xid)
            txn.wrote_wal = True

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def execute_statement(
        self, stmt: ast.Statement, txn: Transaction | None = None
    ) -> P.QueryResult:
        if isinstance(stmt, (ast.Begin, ast.Commit, ast.Rollback)):
            raise ExecutionError(
                "transaction control statements require a session "
                "(use Database.execute or Database.session())"
            )
        if txn is not None:
            return self._dispatch(stmt, txn)
        txn = self.xact.begin()
        try:
            result = self._dispatch(stmt, txn)
        except BaseException:
            self.abort_transaction(txn)
            raise
        self.commit_transaction(txn)
        return result

    def _dispatch(self, stmt: ast.Statement, txn: Transaction) -> P.QueryResult:
        prev_txn, prev_snapshot = self._txn, self._snapshot
        self._txn = txn
        # Explicit transactions pin their snapshot at BEGIN (repeatable
        # read); autocommit statements see the latest commits.
        if txn.snapshot is not None:
            self._snapshot = txn.snapshot
        else:
            self._snapshot = self.xact.snapshot(txn.xid)
        try:
            return self._dispatch_inner(stmt)
        finally:
            self._txn, self._snapshot = prev_txn, prev_snapshot

    def _dispatch_inner(self, stmt: ast.Statement) -> P.QueryResult:
        if isinstance(stmt, ast.CreateTable):
            return self._create_table(stmt)
        if isinstance(stmt, ast.DropTable):
            return self._drop_table(stmt)
        if isinstance(stmt, ast.CreateIndex):
            return self._create_index(stmt)
        if isinstance(stmt, ast.DropIndex):
            return self._drop_index(stmt)
        if isinstance(stmt, ast.Insert):
            return self._insert(stmt)
        if isinstance(stmt, ast.Delete):
            return self._delete(stmt)
        if isinstance(stmt, ast.Update):
            return self._update(stmt)
        if isinstance(stmt, ast.Select):
            return self._select(stmt)
        if isinstance(stmt, ast.SetStatement):
            self.catalog.set_setting(stmt.name, stmt.value)
            if self.settings_listener is not None:
                self.settings_listener(stmt.name.lower(), stmt.value)
            return P.QueryResult(command="SET")
        if isinstance(stmt, ast.ShowStatement):
            if stmt.name == "all":
                rows = sorted(self.catalog.settings.items())
                return P.QueryResult(command="SHOW", columns=["name", "setting"], rows=rows)
            value = self.catalog.get_setting(stmt.name)
            return P.QueryResult(command="SHOW", columns=[stmt.name], rows=[(value,)])
        if isinstance(stmt, ast.Explain):
            return self._explain(stmt)
        if isinstance(stmt, ast.Vacuum):
            return self._vacuum(stmt.table)
        if isinstance(stmt, ast.Reindex):
            return self._reindex(stmt)
        if isinstance(stmt, ast.Analyze):
            return self._analyze(stmt)
        raise ExecutionError(f"unsupported statement: {type(stmt).__name__}")

    def _vacuum(self, table_name: str, autovacuum: bool = False) -> P.QueryResult:
        """VACUUM: reclaim dead heap tuples, then each index's entries.

        The heap pass collects the reclaimed TIDs and forwards them to
        every index AM's ``ambulkdelete`` so IVF lists compact and HNSW
        neighbor lists repair in the same pass.  Afterwards the
        planner's physical-shape stats rebase to the post-vacuum state.
        """
        table = self.catalog.table(table_name)
        # Progress reporting (pg_stat_progress_vacuum): phase names
        # follow PostgreSQL's — "scanning heap", "vacuuming indexes",
        # "performing final cleanup".
        progress = self.stats.start_vacuum(table_name)
        try:
            progress.set_phase("scanning heap")
            progress.heap_blks_total = table.heap.n_blocks()
            dead_tids: list[TID] = []
            reclaimed = table.heap.vacuum(
                horizon=self.xact.safe_horizon(), dead_tids=dead_tids
            )
            progress.heap_blks_scanned = progress.heap_blks_total
            progress.tuples_removed = reclaimed
            if autovacuum:
                table.heap.autovacuum_count += 1
            index_entries = 0
            if dead_tids:
                dead = set(dead_tids)
                progress.set_phase("vacuuming indexes")
                for index in table.indexes.values():
                    progress.index_name = index.name
                    saved = index.am.vacuum_progress
                    index.am.vacuum_progress = progress
                    try:
                        index_entries += index.am.ambulkdelete(dead)
                    finally:
                        index.am.vacuum_progress = saved
                    progress.index_vacuum_count += 1
            progress.set_phase("performing final cleanup")
        finally:
            self.stats.finish_vacuum()
        if table.stats is not None:
            # Like PostgreSQL's VACUUM updating pg_class: refresh
            # the physical shape so the planner's table_shape()
            # discount restarts from the post-vacuum baseline.
            table.stats.reltuples = float(table.heap.tuple_count)
            table.stats.relpages = max(table.heap.n_blocks(), 1)
            table.stats.dead_at_analyze = float(table.heap.n_dead_tup)
        return P.QueryResult(command=f"VACUUM {reclaimed}")

    def maybe_autovacuum(self) -> list[str]:
        """Autovacuum hook: vacuum tables past their dead-tuple threshold.

        Mirrors PostgreSQL's launcher decision rule — a table qualifies
        when ``n_dead_tup > autovacuum_vacuum_threshold +
        autovacuum_vacuum_scale_factor * n_live_tup`` — but runs
        synchronously when invoked (the session layer calls this after
        each statement while the ``autovacuum`` GUC is on; harnesses
        may call it directly).  Returns the names of vacuumed tables.
        """
        try:
            threshold = float(self.catalog.get_setting("autovacuum_vacuum_threshold"))
            scale = float(self.catalog.get_setting("autovacuum_vacuum_scale_factor"))
        except CatalogError:
            return []
        log_ms = self._duration_setting_ms("log_autovacuum_min_duration")
        vacuumed: list[str] = []
        for name in self.catalog.table_names():
            heap = self.catalog.table(name).heap
            if heap.n_dead_tup > threshold + scale * heap.tuple_count:
                start = time.perf_counter()
                result = self._vacuum(name, autovacuum=True)
                elapsed_ms = (time.perf_counter() - start) * 1e3
                vacuumed.append(name)
                if log_ms is not None and elapsed_ms >= log_ms and self.slowlog is not None:
                    self.slowlog.record(
                        SlowQueryRecord(
                            logged_at=time.time(),
                            backend_id=0,
                            session="autovacuum",
                            kind="autovacuum",
                            query=f"VACUUM {name}",
                            elapsed_ms=elapsed_ms,
                            rows=int(result.command.split()[-1]),
                        )
                    )
        return vacuumed

    def _duration_setting_ms(self, name: str) -> float | None:
        """Read a ``log_min_duration``-style GUC: -1 (or garbage)
        disables, 0 logs everything, N logs statements >= N ms."""
        try:
            value = float(self.catalog.get_setting(name))
        except (CatalogError, TypeError, ValueError):
            return None
        return value if value >= 0 else None

    def _analyze(self, stmt: ast.Analyze) -> P.QueryResult:
        """ANALYZE [table]: collect planner statistics into the catalog."""
        names = [stmt.table] if stmt.table is not None else self.catalog.table_names()
        for name in names:
            analyze_table(self.catalog.table(name), self.catalog)
        return P.QueryResult(command="ANALYZE")

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def _create_table(self, stmt: ast.CreateTable) -> P.QueryResult:
        if self.catalog.has_table(stmt.name):
            if stmt.if_not_exists:
                return P.QueryResult(command="CREATE TABLE (exists)")
            raise CatalogError(f"table {stmt.name!r} already exists")
        columns = [Column.from_sql(c.name, c.type_name) for c in stmt.columns]
        if len({c.name for c in columns}) != len(columns):
            raise CatalogError("duplicate column names")
        heap = HeapTable(
            stmt.name, columns, self.buffer, self.wal, stats=self.stats.heap, xact=self.xact
        )
        self.catalog.add_table(TableInfo(name=stmt.name, columns=columns, heap=heap))
        return P.QueryResult(command="CREATE TABLE")

    def _drop_table(self, stmt: ast.DropTable) -> P.QueryResult:
        if not self.catalog.has_table(stmt.name):
            if stmt.if_exists:
                return P.QueryResult(command="DROP TABLE (skipped)")
            raise CatalogError(f"no such table: {stmt.name!r}")
        info = self.catalog.drop_table(stmt.name)
        for index in list(info.indexes.values()):
            self._release_index_storage(index)
        self.buffer.drop_relation(info.heap.relation)
        self.buffer.disk.drop_relation(info.heap.relation)
        return P.QueryResult(command="DROP TABLE")

    def _create_index(self, stmt: ast.CreateIndex) -> P.QueryResult:
        table = self.catalog.table(stmt.table)
        if self.catalog.find_index(stmt.name) is not None:
            raise CatalogError(f"index {stmt.name!r} already exists")
        am_cls = lookup_am(stmt.am)
        column_index = table.heap.column_index(stmt.column)
        if table.columns[column_index].type_oid != TypeOid.FLOAT4_ARRAY:
            raise ExecutionError(
                f"access method {stmt.am!r} requires a float[] column, "
                f"got {table.columns[column_index].type_oid.name}"
            )
        options = dict(stmt.options)
        # Clear stale page files from a previous incarnation of this
        # index (crash recovery re-runs CREATE INDEX over old forks).
        self._drop_relations_with_prefix(f"{stmt.name}.")
        am = am_cls(
            index_name=stmt.name,
            table=table.heap,
            column_index=column_index,
            buffer=self.buffer,
            catalog=self.catalog,
            options=options,
        )
        if self.am_profiler is not None:
            am.profiler = self.am_profiler
        # Build-progress reporting (pg_stat_progress_create_index):
        # the AM flips phases and ticks tuple counters as it goes.
        am.progress = self.stats.start_build(stmt.name, stmt.am)
        try:
            am.build()
        finally:
            self.stats.finish_build()
        self.catalog.add_index(
            IndexInfo(
                name=stmt.name,
                table_name=stmt.table,
                column_name=stmt.column,
                am_name=stmt.am,
                options=options,
                am=am,
            )
        )
        return P.QueryResult(command="CREATE INDEX")

    def _drop_index(self, stmt: ast.DropIndex) -> P.QueryResult:
        if self.catalog.find_index(stmt.name) is None:
            if stmt.if_exists:
                return P.QueryResult(command="DROP INDEX (skipped)")
            raise CatalogError(f"no such index: {stmt.name!r}")
        info = self.catalog.drop_index(stmt.name)
        self._release_index_storage(info)
        return P.QueryResult(command="DROP INDEX")

    def _release_index_storage(self, info: IndexInfo) -> None:
        for rel in getattr(info.am, "relations", lambda: [])():
            if self.buffer.disk.relation_exists(rel):
                self.buffer.drop_relation(rel)
                self.buffer.disk.drop_relation(rel)

    def _reindex(self, stmt: ast.Reindex) -> P.QueryResult:
        """Rebuild an index in place, dropping dead index entries."""
        info = self.catalog.find_index(stmt.index)
        if info is None:
            raise CatalogError(f"no such index: {stmt.index!r}")
        self.catalog.drop_index(stmt.index)
        self._release_index_storage(info)
        create = ast.CreateIndex(
            name=info.name,
            table=info.table_name,
            am=info.am_name,
            column=info.column_name,
            options=tuple(info.options.items()),
        )
        self._create_index(create)
        return P.QueryResult(command="REINDEX")

    def _drop_relations_with_prefix(self, prefix: str) -> None:
        lister = getattr(self.buffer.disk, "list_relations", None)
        if lister is None:
            return
        for rel in lister():
            if rel.startswith(prefix):
                self.buffer.drop_relation(rel)
                self.buffer.disk.drop_relation(rel)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _insert(self, stmt: ast.Insert) -> P.QueryResult:
        table = self.catalog.table(stmt.table)
        schema = table.columns
        names = table.column_names()
        if stmt.columns is not None:
            unknown = set(stmt.columns) - set(names)
            if unknown:
                raise ExecutionError(f"unknown columns in INSERT: {sorted(unknown)}")
        txn = self._txn
        assert txn is not None
        inserted = 0
        indexes = list(table.indexes.values())
        if stmt.rows:
            self._ensure_wal_begin(txn)
        for row_exprs in stmt.rows:
            values = self._row_values(schema, names, stmt.columns, row_exprs)
            tid = table.heap.insert(values, xid=txn.xid)
            for index in indexes:
                index.am.insert(tid, values[table.heap.column_index(index.column_name)])
            inserted += 1
        return P.QueryResult(command=f"INSERT 0 {inserted}")

    def _row_values(
        self,
        schema: list[Column],
        names: list[str],
        target_columns: tuple[str, ...] | None,
        row_exprs: tuple[ast.Expr, ...],
    ) -> list[Any]:
        provided = list(target_columns) if target_columns is not None else names
        if len(row_exprs) != len(provided):
            raise ExecutionError(
                f"INSERT has {len(row_exprs)} values for {len(provided)} columns"
            )
        by_name = {name: E.evaluate(e, row=None) for name, e in zip(provided, row_exprs)}
        values: list[Any] = []
        for col in schema:
            if col.name not in by_name:
                values.append(None)
                continue
            values.append(_coerce_for_column(col, by_name[col.name]))
        return values

    def _delete(self, stmt: ast.Delete) -> P.QueryResult:
        """DELETE marks heap tuples dead; index entries remain until
        vacuum, and index scans skip them (PostgreSQL's model)."""
        table = self.catalog.table(stmt.table)
        names = table.column_names()
        txn = self._txn
        assert txn is not None
        victims = []
        for tid, values in table.heap.scan(snapshot=self._snapshot):
            if stmt.where is None or E.evaluate(stmt.where, dict(zip(names, values))):
                victims.append(tid)
        if victims:
            self._ensure_wal_begin(txn)
        for tid in victims:
            table.heap.delete(tid, xid=txn.xid)
        return P.QueryResult(command=f"DELETE {len(victims)}")

    def _update(self, stmt: ast.Update) -> P.QueryResult:
        """UPDATE = MVCC delete + re-insert (new TID), like PostgreSQL.

        The old version keeps its index entries (searches skip it via
        the snapshot until VACUUM reclaims them); the new version is
        indexed in every AM on the table.
        """
        table = self.catalog.table(stmt.table)
        names = table.column_names()
        unknown = {col for col, __ in stmt.assignments} - set(names)
        if unknown:
            raise ExecutionError(f"unknown columns in UPDATE: {sorted(unknown)}")
        txn = self._txn
        assert txn is not None
        targets = []
        for tid, values in table.heap.scan(snapshot=self._snapshot):
            row = dict(zip(names, values))
            if stmt.where is None or E.evaluate(stmt.where, row):
                targets.append((tid, values, row))
        indexes = list(table.indexes.values())
        if targets:
            self._ensure_wal_begin(txn)
        for tid, values, row in targets:
            new_values = list(values)
            for col, expr in stmt.assignments:
                idx = table.heap.column_index(col)
                new_values[idx] = _coerce_for_column(table.columns[idx], E.evaluate(expr, row))
            new_tid = table.heap.update(tid, new_values, xid=txn.xid)
            for index in indexes:
                index.am.insert(
                    new_tid, new_values[table.heap.column_index(index.column_name)]
                )
        return P.QueryResult(command=f"UPDATE {len(targets)}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _select(self, stmt: ast.Select) -> P.QueryResult:
        if self._is_stat_reset_call(stmt):
            self.stats.reset()
            return P.QueryResult(
                command="SELECT 1", columns=["pg_stat_reset"], rows=[(None,)]
            )
        plan = plan_select(stmt, self.catalog)
        assert isinstance(plan, P.Project)
        auto_ms = None
        if self.slowlog is not None:
            auto_ms = self._duration_setting_ms("auto_explain_log_min_duration")
        if auto_ms is not None:
            return self._select_captured(plan, auto_ms)
        instrument = self._begin_estimation_probe()
        if plan.batch:
            rows = list(self._project_rows_batch(plan, instrument))
        else:
            rows = list(self._project_rows(plan, instrument))
        if instrument is not None:
            self._record_estimation(plan, instrument)
        self._record_strategy(plan)
        return P.QueryResult(command=f"SELECT {len(rows)}", columns=plan.columns, rows=rows)

    def _select_captured(self, plan: P.Project, auto_ms: float) -> P.QueryResult:
        """auto_explain path: run the SELECT instrumented and traced.

        The plan executes exactly as the plain path would (same rows,
        same order) but with per-node instrumentation and a span tracer
        armed, so a statement that crosses
        ``auto_explain_log_min_duration`` leaves behind its
        EXPLAIN (ANALYZE, BUFFERS) plan text plus the RC#1–RC#7
        attribution — reconstructed after the fact, like PostgreSQL's
        auto_explain logging the plan it already ran.  Under-threshold
        statements discard the capture.  The tracer is bounded at
        :data:`~repro.common.tracing.AUTO_CAPTURE_MAX_SPANS` spans so
        an always-on setting cannot grow memory without limit.
        """
        from repro.common.tracing import AUTO_CAPTURE_MAX_SPANS

        # Function-level import: repro.core imports pgsim packages.
        from repro.core.rc_attribution import attribute_profile

        self.last_plan_capture = None
        instrument: dict[int, list] = {}
        profiler, tracer, restore = self._begin_trace(plan, max_spans=AUTO_CAPTURE_MAX_SPANS)
        waits_before = self.stats.waits.snapshot()
        start = time.perf_counter()
        try:
            with profiler.section("Executor"):
                if plan.batch:
                    rows = list(self._project_rows_batch(plan, instrument))
                else:
                    rows = list(self._project_rows(plan, instrument))
        finally:
            restore()
        total = time.perf_counter() - start
        self._record_estimation(plan, instrument)
        strategy = self._record_strategy(plan)
        if total * 1e3 >= auto_ms:
            waits_delta = self.stats.waits.delta(waits_before)
            attribution = attribute_profile(tracer, wait_events=waits_delta)
            self.last_plan_capture = {
                "plan": "\n".join(
                    self._annotated_lines(plan, 0, instrument, buffers=True, timing=True)
                ),
                "rc": attribution.as_dict(),
                "elapsed_ms": total * 1e3,
                "strategy": strategy,
            }
        return P.QueryResult(command=f"SELECT {len(rows)}", columns=plan.columns, rows=rows)

    def take_plan_capture(self) -> dict | None:
        """Pop the last auto_explain capture (one-shot, per statement)."""
        capture, self.last_plan_capture = self.last_plan_capture, None
        return capture

    def _record_strategy(self, plan: P.PlanNode) -> str | None:
        """Fold one executed hybrid SELECT into pg_stat_filtered_search.

        Walks the plan for the strategy-bearing scan (PreFilterScan, or
        an IndexScan with a pushed-down filter) and records which
        strategy ran, the planner's estimated selectivity, the measured
        one (from the ``actual_matched``/``actual_examined`` stashes the
        scan leaves behind on every execution, instrumented or not) and
        whether the over-fetch cap forced a brute-force fallback.
        Returns the strategy name, None for non-hybrid plans.
        """
        node: P.PlanNode | None = plan
        while node is not None:
            strategy = getattr(node, "strategy", None)
            if isinstance(strategy, str):
                self.strategies.record(
                    strategy,
                    est_selectivity=node.est_selectivity,
                    actual_matched=getattr(node, "actual_matched", None),
                    actual_examined=getattr(node, "actual_examined", None),
                    fell_back=bool(getattr(node, "overfetch_fell_back", False)),
                )
                return strategy
            node = getattr(node, "child", None)
        return None

    def try_execute_virtual(self, stmt: ast.Statement) -> P.QueryResult | None:
        """Lock-free monitoring path: run a virtual-view SELECT without
        the statement lock and without :meth:`_dispatch`.

        Plans over virtual views bottom out in
        :class:`~repro.pgsim.plan.VirtualScan` leaves that read
        point-in-time snapshots of the stats surfaces — no heap, no
        MVCC snapshot, no executor transaction state.  That makes them
        safe to run concurrently with a statement holding the lock,
        which is the whole point: ``pg_stat_activity`` must answer
        while another session is stuck waiting.  Returns None for
        anything that is not a pure view SELECT, sending the statement
        down the ordinary locked path.
        """
        if not isinstance(stmt, ast.Select):
            return None
        if stmt.table is None or self.catalog.has_table(stmt.table):
            return None
        if not self.catalog.has_view(stmt.table):
            return None
        plan = plan_select(stmt, self.catalog)
        assert isinstance(plan, P.Project)
        # Defensive: every leaf must be a VirtualScan.  Anything that
        # could touch heap or transaction state needs the lock.
        node: P.PlanNode | None = plan.child
        while node is not None:
            if isinstance(node, (P.SeqScan, P.IndexScan, P.PreFilterScan)):
                return None
            node = getattr(node, "child", None)
        if plan.batch:
            rows = list(self._project_rows_batch(plan))
        else:
            rows = list(self._project_rows(plan))
        return P.QueryResult(command=f"SELECT {len(rows)}", columns=plan.columns, rows=rows)

    @staticmethod
    def _is_stat_reset_call(stmt: ast.Select) -> bool:
        """``SELECT pg_stat_reset()`` — statistics reset, like PostgreSQL's."""
        if stmt.table is not None or stmt.where is not None or len(stmt.targets) != 1:
            return False
        expr = stmt.targets[0].expr
        return (
            isinstance(expr, ast.FuncCall)
            and expr.name.lower() == "pg_stat_reset"
            and not expr.args
        )

    def _explain(self, stmt: ast.Explain) -> P.QueryResult:
        if stmt.buffers and not stmt.analyze:
            raise ExecutionError("EXPLAIN option BUFFERS requires ANALYZE")
        if stmt.trace and not stmt.analyze:
            raise ExecutionError("EXPLAIN option TRACE requires ANALYZE")
        if stmt.timing and not stmt.analyze:
            # Matches PostgreSQL: TIMING off without ANALYZE is fine,
            # TIMING on without ANALYZE is not.
            raise ExecutionError("EXPLAIN option TIMING requires ANALYZE")
        inner = stmt.statement
        if isinstance(inner, ast.Select):
            return self._explain_select(stmt, inner)
        if isinstance(inner, (ast.Insert, ast.Delete, ast.Update)):
            return self._explain_dml(stmt, inner)
        raise ExecutionError(
            "EXPLAIN supports SELECT, INSERT, UPDATE and DELETE statements, "
            f"not {type(inner).__name__}"
        )

    def _explain_select(self, stmt: ast.Explain, inner: ast.Select) -> P.QueryResult:
        plan = plan_select(inner, self.catalog)
        if not stmt.analyze:
            lines = explain_plan(plan, costs=stmt.costs).splitlines()
            return P.QueryResult(
                command="EXPLAIN",
                columns=["QUERY PLAN"],
                rows=[(line,) for line in lines],
            )
        # EXPLAIN ANALYZE: execute the plan with per-node counters.
        # TIMING defaults on; TIMING off keeps counters only (no
        # wall-clock in the output), as in PostgreSQL.
        timing = stmt.timing if stmt.timing is not None else True
        instrument: dict[int, list] = {}
        if stmt.trace:
            profiler, tracer, restore = self._begin_trace(plan)
            waits_before = self.stats.waits.snapshot()
        start = time.perf_counter()
        assert isinstance(plan, P.Project)
        try:
            if stmt.trace:
                # The root span covers the whole execution window, so
                # the RC buckets (which partition recorded span time)
                # reconcile against the query's elapsed time.
                with profiler.section("Executor"):
                    if plan.batch:
                        n_rows = sum(1 for __ in self._project_rows_batch(plan, instrument))
                    else:
                        n_rows = sum(1 for __ in self._project_rows(plan, instrument))
            elif plan.batch:
                n_rows = sum(1 for __ in self._project_rows_batch(plan, instrument))
            else:
                n_rows = sum(1 for __ in self._project_rows(plan, instrument))
        finally:
            if stmt.trace:
                restore()
        total = time.perf_counter() - start
        self._record_estimation(plan, instrument)
        self._record_strategy(plan)
        lines = self._annotated_lines(
            plan, 0, instrument, buffers=stmt.buffers, timing=timing, costs=stmt.costs
        )
        if timing:
            lines.append(f"Execution: {n_rows} rows in {total * 1e3:.3f} ms")
        else:
            lines.append(f"Execution: {n_rows} rows")
        if stmt.trace:
            waits_delta = self.stats.waits.delta(waits_before)
            lines.extend(self._trace_lines(tracer, waits_delta, total))
        return P.QueryResult(
            command="EXPLAIN",
            columns=["QUERY PLAN"],
            rows=[(line,) for line in lines],
        )

    def _begin_trace(self, plan: P.PlanNode, max_spans: int | None = None):
        """Arm span tracing for one EXPLAIN (ANALYZE, TRACE) run.

        One tracer-backed profiler is shared by the executor (heap
        fetches -> "Tuple Access") and every index AM reachable from
        the plan (their paper-named sections: fvec_L2sqr, Min-heap,
        Pctable, ...), so the span tree nests AM work under the
        executor root.  Returns ``(profiler, tracer, restore)`` where
        ``restore()`` puts the previous profilers back.
        """
        from repro.common.profiling import Profiler
        from repro.common.tracing import DEFAULT_MAX_SPANS, Tracer

        tracer = Tracer(max_spans=max_spans if max_spans is not None else DEFAULT_MAX_SPANS)
        profiler = Profiler(tracer=tracer)
        ams = []
        node: P.PlanNode | None = plan
        while node is not None:
            if isinstance(node, P.IndexScan):
                ams.append(node.index.am)
            node = getattr(node, "child", None)
        saved = [(am, am.profiler) for am in ams]
        saved_exec = self.trace_profiler
        for am in ams:
            am.profiler = profiler
        self.trace_profiler = profiler

        def restore() -> None:
            self.trace_profiler = saved_exec
            for am, prev in saved:
                am.profiler = prev

        #: Kept for harnesses that want the raw spans after the run
        #: (chrome-trace export, flamegraphs).
        self.last_trace = tracer
        return profiler, tracer, restore

    def _trace_lines(self, tracer, waits_delta, total_seconds: float) -> list[str]:
        """Render the RC#1–RC#7 attribution block of a TRACE run."""
        # Function-level import: repro.core imports pgsim packages.
        from repro.core.rc_attribution import attribute_profile, format_rc_breakdown

        attribution = attribute_profile(tracer, wait_events=waits_delta)
        lines = ["Root-cause attribution (spans):"]
        lines.extend(format_rc_breakdown(attribution).splitlines())
        covered = attribution.total_seconds / total_seconds if total_seconds > 0 else 0.0
        note = f"Trace: {len(tracer.spans)} spans, {covered * 100:.1f}% of elapsed attributed"
        if tracer.dropped_spans:
            note += f" ({tracer.dropped_spans} spans dropped)"
        lines.append(note)
        return lines

    def _explain_dml(self, stmt: ast.Explain, inner: ast.Statement) -> P.QueryResult:
        """EXPLAIN [ANALYZE] for INSERT/UPDATE/DELETE: plan line + counters.

        The write path has no Volcano plan tree to instrument, so
        ANALYZE executes the statement (with its side effects, exactly
        like PostgreSQL's EXPLAIN ANALYZE on DML) and reports actual
        rows, wall time and — with BUFFERS — the statement's buffer
        delta on the top line.
        """
        if isinstance(inner, ast.Insert):
            self.catalog.table(inner.table)  # validate before printing
            lines = [f"Insert on {inner.table} (rows={len(inner.rows)})"]
        elif isinstance(inner, ast.Update):
            self.catalog.table(inner.table)
            lines = [f"Update on {inner.table}", "->  Seq Scan on " + inner.table]
        else:
            assert isinstance(inner, ast.Delete)
            self.catalog.table(inner.table)
            lines = [f"Delete on {inner.table}", "->  Seq Scan on " + inner.table]
        if not stmt.analyze:
            return P.QueryResult(
                command="EXPLAIN",
                columns=["QUERY PLAN"],
                rows=[(line,) for line in lines],
            )
        timing = stmt.timing if stmt.timing is not None else True
        before = self.buffer.stats.snapshot()
        start = time.perf_counter()
        if isinstance(inner, ast.Insert):
            result = self._insert(inner)
        elif isinstance(inner, ast.Update):
            result = self._update(inner)
        else:
            result = self._delete(inner)
        total = time.perf_counter() - start
        affected = int(result.command.split()[-1])
        if timing:
            lines[0] += f" (actual rows={affected} time={total * 1e3:.3f} ms)"
        else:
            lines[0] += f" (actual rows={affected})"
        if stmt.buffers:
            delta = self.buffer.stats.delta(before)
            lines.insert(1, f"  Buffers: hits={delta.hits} misses={delta.misses}")
        if timing:
            lines.append(f"Execution: {affected} rows in {total * 1e3:.3f} ms")
        else:
            lines.append(f"Execution: {affected} rows")
        return P.QueryResult(
            command="EXPLAIN",
            columns=["QUERY PLAN"],
            rows=[(line,) for line in lines],
        )

    def _annotated_lines(
        self,
        node: P.PlanNode,
        depth: int,
        instrument: dict[int, list],
        buffers: bool = False,
        timing: bool = True,
        costs: bool = True,
    ) -> list[str]:
        """Plan listing annotated with actual rows/time per node.

        Each head line keeps the planner's ``(cost=.. rows=..)``
        estimate (suppressed with COSTS off) followed by the actuals,
        as in PostgreSQL.  With ``buffers`` on, each instrumented node
        also gets a ``Buffers: hits=H misses=M`` line.  Instrumentation
        captures *inclusive* deltas (a parent's pull runs its child's
        pull); plans are single-child chains, so the child's inclusive
        figure is subtracted to report each node's *exclusive* buffer
        traffic — the per-node figures sum exactly to the query's
        total.

        With ``timing`` off the per-node wall-clock is withheld
        (counters only), matching EXPLAIN (ANALYZE, TIMING off).
        """
        node_lines = node.own_lines(depth, costs=costs)
        own, details = node_lines[0], node_lines[1:]
        entry = instrument.get(id(node))
        child = getattr(node, "child", None)
        if entry is not None:
            if timing:
                own += f" (actual rows={entry[0]} time={entry[1] * 1e3:.3f} ms)"
            else:
                own += f" (actual rows={entry[0]})"
        lines = [own]
        if buffers and entry is not None:
            child_entry = instrument.get(id(child)) if child is not None else None
            hits = entry[2] - (child_entry[2] if child_entry is not None else 0)
            misses = entry[3] - (child_entry[3] if child_entry is not None else 0)
            lines.append("  " * (depth + 1) + f"Buffers: hits={hits} misses={misses}")
        lines.extend(details)
        if child is not None:
            lines.extend(
                self._annotated_lines(
                    child, depth + 1, instrument, buffers=buffers, timing=timing, costs=costs
                )
            )
        return lines

    def _project_rows(
        self, project: P.Project, instrument: dict[int, list] | None = None
    ) -> Iterator[tuple[Any, ...]]:
        if project.aggregated:
            assert isinstance(project.child, (P.Aggregate, P.Limit))
            for row in self._plan_rows(project.child, instrument):
                yield (row["__agg__"],)
            return
        for row in self._plan_rows(project.child, instrument):
            yield self._project_one(project, row)

    def _project_one(self, project: P.Project, row: dict[str, Any]) -> tuple[Any, ...]:
        out: list[Any] = []
        for target in project.targets:
            if isinstance(target.expr, ast.Star):
                out.extend(row[name] for name in row if not name.startswith("__"))
            else:
                out.append(E.evaluate(target.expr, row))
        return tuple(out)

    def _plan_rows(
        self, node: P.PlanNode, instrument: dict[int, list] | None = None
    ) -> Iterator[dict[str, Any]]:
        gen = self._plan_rows_inner(node, instrument)
        if instrument is None:
            return gen
        return self._instrumented(gen, node, instrument)

    def _instrumented(
        self, gen: Iterator[dict[str, Any]], node: P.PlanNode, instrument: dict[int, list]
    ) -> Iterator[dict[str, Any]]:
        """Wrap a node's row stream with row/time/buffer accounting.

        Entries are ``[rows, seconds, buffer_hits, buffer_misses]``;
        the buffer figures are inclusive of child pulls (see
        :meth:`_annotated_lines` for the exclusive subtraction).
        """
        entry = instrument.setdefault(id(node), [0, 0.0, 0, 0])
        bstats = self.buffer.stats
        while True:
            hits0, misses0 = bstats.hits, bstats.misses
            start = time.perf_counter()
            try:
                row = next(gen)
            except StopIteration:
                entry[1] += time.perf_counter() - start
                entry[2] += bstats.hits - hits0
                entry[3] += bstats.misses - misses0
                return
            entry[1] += time.perf_counter() - start
            entry[2] += bstats.hits - hits0
            entry[3] += bstats.misses - misses0
            entry[0] += 1
            yield row

    def _plan_rows_inner(
        self, node: P.PlanNode, instrument: dict[int, list] | None = None
    ) -> Iterator[dict[str, Any]]:
        if isinstance(node, P.OneRow):
            yield {}
            return
        if isinstance(node, P.SeqScan):
            names = node.table.column_names()
            for tid, values in node.table.heap.scan(snapshot=self._snapshot):
                row = dict(zip(names, values))
                row["__tid__"] = tid
                yield row
            return
        if isinstance(node, P.IndexScan):
            yield from self._index_scan_rows(node)
            return
        if isinstance(node, P.PreFilterScan):
            yield from self._pre_filter_topk(self._plan_rows(node.child, instrument), node)
            return
        if isinstance(node, P.VirtualScan):
            names = node.view.column_names()
            for values in node.view.rows():
                yield dict(zip(names, values))
            return
        if isinstance(node, P.Filter):
            for row in self._plan_rows(node.child, instrument):
                if E.evaluate(node.predicate, row):
                    yield row
            return
        if isinstance(node, P.Sort):
            rows = list(self._plan_rows(node.child, instrument))
            rows.sort(key=lambda r: E.evaluate(node.key, r), reverse=not node.ascending)
            yield from rows
            return
        if isinstance(node, P.Limit):
            yield from itertools.islice(self._plan_rows(node.child, instrument), node.count)
            return
        if isinstance(node, P.Aggregate):
            yield self._aggregate_row(node, instrument)
            return
        if isinstance(node, P.Project):
            # Nested projection (not produced by the current planner).
            names = node.columns
            for out in self._project_rows(node):
                yield dict(zip(names, out))
            return
        raise ExecutionError(f"unknown plan node: {type(node).__name__}")

    def _index_scan_rows(self, node: P.IndexScan) -> Iterator[dict[str, Any]]:
        """Pull index hits nearest-first until k rows survive.

        Two things can make a fetched candidate a non-result: a dead
        heap tuple (deleted rows keep their index entries until
        vacuum, as in PostgreSQL/PASE) and — for the hybrid shape — a
        pushed-down filter the row fails.  Either way the scan keeps
        going: the first pass requests ``fetch_k`` candidates (the
        planner's ``k / selectivity`` over-fetch), and each exhausted
        pass doubles the request through ``amrescan_continue`` until k
        rows survive or the index returns fewer candidates than asked
        (index exhausted) — or the ``max_filtered_overfetch`` cap is
        hit, at which point the scan answers the remainder with one
        brute-force pre-filter pass instead of re-scanning ever-larger
        prefixes of the index.

        The in-filter strategy bypasses this loop entirely: the
        predicate mask rides inside the AM traversal.
        """
        if node.strategy == "in-filter":
            yield from self._in_filter_scan_rows(node)
            return
        names = node.table.column_names()
        heap = node.table.heap
        prof = self.trace_profiler
        am = node.index.am
        fetch_k = max(node.fetch_k or node.k, node.k)
        max_fetch = self._max_overfetch(node)
        emitted = 0
        emitted_tids: list[TID] = []
        probe = self._begin_quality_probe(node)
        seen: set = set()
        hits: Iterator = am.scan(node.query_vector, fetch_k)
        while True:
            n_hits = 0
            for tid, distance in hits:
                n_hits += 1
                if tid in seen:
                    continue
                seen.add(tid)
                try:
                    if prof.enabled:
                        with prof.section("Tuple Access"):
                            values = heap.fetch(tid, snapshot=self._snapshot)
                    else:
                        values = heap.fetch(tid, snapshot=self._snapshot)
                except KeyError:
                    continue  # dead/invisible tuple: entry awaiting vacuum
                row = dict(zip(names, values))
                row["__tid__"] = tid
                row["__distance__"] = distance
                if node.filter is not None and not E.evaluate(node.filter, row):
                    continue  # index-time post-filter
                emitted += 1
                emitted_tids.append(tid)
                if probe is not None:
                    probe.append(tid)
                    if emitted >= node.k:
                        # Finish before yielding the k-th row: a Limit
                        # above stops pulling at exactly k, leaving the
                        # generator suspended forever after this yield.
                        self._finish_quality_probe(node, probe)
                        probe = None
                # Refresh before the yield, not after: once the k-th
                # row is out a Limit above never resumes us, and the
                # estimation recorder reads the stash from the node.
                node.actual_examined = len(seen)
                node.actual_matched = emitted
                yield row
                if emitted >= node.k:
                    return
            if n_hits < fetch_k:
                # Probed lists exhausted: fewer candidates than
                # requested.  A pure KNN scan legitimately returns
                # short here, but a filtered scan still owes exactly k
                # rows whenever k rows match — e.g. nprobe < clusters
                # leaves unprobed lists holding the matches — so finish
                # with the brute-force fallback instead.
                node.actual_examined = len(seen)
                node.actual_matched = emitted
                if probe is not None:
                    self._finish_quality_probe(node, probe)
                if node.filter is not None and emitted < node.k:
                    node.overfetch_fell_back = True
                    for row in self._filtered_bruteforce(
                        node, set(emitted_tids), node.k - emitted
                    ):
                        emitted += 1
                        node.actual_matched = emitted
                        yield row
                return
            if max_fetch is not None and fetch_k >= max_fetch:
                # Over-fetch budget exhausted on a (mis-estimated) rare
                # predicate: one exact brute-force pass for the
                # remaining rows beats scanning the whole index.
                node.overfetch_fell_back = True
                for row in self._filtered_bruteforce(
                    node, set(emitted_tids), node.k - emitted
                ):
                    emitted += 1
                    node.actual_examined = len(seen)
                    node.actual_matched = emitted
                    yield row
                return
            fetch_k *= 2
            hits = am.amrescan_continue(node.query_vector, fetch_k)

    def _max_overfetch(self, node: P.IndexScan) -> int | None:
        """``max_filtered_overfetch * k`` for hybrid scans, else None."""
        if node.filter is None:
            return None
        try:
            cap = int(self.catalog.get_setting("max_filtered_overfetch"))
        except (CatalogError, TypeError, ValueError):
            return None
        return cap * node.k if cap > 0 else None

    def _filtered_bruteforce(
        self, node: P.IndexScan, exclude: set, limit: int
    ) -> list[dict[str, Any]]:
        """Exact pre-filter pass backing the over-fetch fallback.

        Scans the heap under the statement snapshot, keeps rows passing
        the pushed-down filter that were not already emitted, and
        returns the ``limit`` nearest by the index's own metric
        (tie-broken on TID, matching every other scan path).  Because
        the index scan is approximate, these rows are not guaranteed to
        sort after the already-emitted ones — the fallback favours
        returning k correct-predicate rows over global distance order,
        the same trade the post-filter strategy already makes.
        """
        if limit <= 0:
            return []
        names = node.table.column_names()
        heap = node.table.heap
        col = heap.column_index(node.index.column_name)
        rows: list[dict[str, Any]] = []
        vectors: list[Any] = []
        for tid, values in heap.scan(snapshot=self._snapshot):
            if tid in exclude:
                continue
            vec = values[col]
            if vec is None:
                continue
            row = dict(zip(names, values))
            row["__tid__"] = tid
            if node.filter is not None and not E.evaluate(node.filter, row):
                continue
            rows.append(row)
            vectors.append(vec)
        if not rows:
            return []
        try:
            metric = DistanceType(node.index.options.get("distance_type", DistanceType.L2))
        except ValueError:
            metric = DistanceType.L2
        query = np.ascontiguousarray(node.query_vector, dtype=np.float32)
        matrix = np.ascontiguousarray(np.vstack(vectors), dtype=np.float32)
        dists = batch_kernel(metric)(query, matrix)[0]
        order = sorted(
            range(len(rows)),
            key=lambda i: (
                float(dists[i]),
                rows[i]["__tid__"].blkno,
                rows[i]["__tid__"].offset,
            ),
        )
        out = []
        for i in order[:limit]:
            rows[i]["__distance__"] = float(dists[i])
            out.append(rows[i])
        return out

    def _make_predicate_mask(self, node: P.IndexScan):
        """Visibility + predicate mask closure for ``amsearch_filtered``.

        The AM hands batches of candidate TIDs mid-traversal; each
        unseen TID costs one snapshot heap fetch plus one predicate
        evaluation, cached so widening passes never re-check a TID.
        Rows that pass are kept for the emit phase — the winners don't
        pay a second heap fetch.  Returns ``(mask_fn, rows, state)``
        where ``state`` counts unique TIDs checked/matched.
        """
        names = node.table.column_names()
        heap = node.table.heap
        snapshot = self._snapshot
        predicate = node.filter
        prof = self.trace_profiler
        verdicts: dict = {}
        rows: dict = {}
        state = {"examined": 0, "matched": 0}

        def mask_fn(tids):
            out = []
            for tid in tids:
                ok = verdicts.get(tid)
                if ok is None:
                    state["examined"] += 1
                    try:
                        if prof.enabled:
                            with prof.section("Tuple Access"):
                                values = heap.fetch(tid, snapshot=snapshot)
                        else:
                            values = heap.fetch(tid, snapshot=snapshot)
                    except KeyError:
                        ok = False  # dead/invisible: entry awaiting vacuum
                    else:
                        row = dict(zip(names, values))
                        row["__tid__"] = tid
                        ok = predicate is None or bool(E.evaluate(predicate, row))
                        if ok:
                            rows[tid] = row
                            state["matched"] += 1
                    verdicts[tid] = ok
                out.append(ok)
            return out

        return mask_fn, rows, state

    def _in_filter_scan_rows(self, node: P.IndexScan) -> Iterator[dict[str, Any]]:
        """In-filter strategy, tuple path: the AM traversal applies the
        predicate mask itself and only matching TIDs come back."""
        am = node.index.am
        mask_fn, rows, state = self._make_predicate_mask(node)
        emitted = 0
        for tid, distance in am.amsearch_filtered(node.query_vector, node.k, mask_fn):
            row = rows.get(tid)
            if row is None:
                continue  # defensive: the mask admitted this TID
            row["__distance__"] = distance
            emitted += 1
            node.actual_examined = state["examined"]
            node.actual_matched = state["matched"]
            yield row
            if emitted >= node.k:
                return
        node.actual_examined = state["examined"]
        node.actual_matched = state["matched"]

    def _pre_filter_topk(
        self, child_rows: Iterator[dict[str, Any]], node: P.PreFilterScan
    ) -> list[dict[str, Any]]:
        """Pre-filter strategy core, shared by both executor paths.

        Consumes the child scan fully (blocking, like Sort), keeps the
        rows passing the predicate, runs the metric's vectorized kernel
        once over the survivors' vectors, and selects k by
        ``(distance, tid)`` — the same tie-break as ``topk_batch``, so
        every strategy and both executor paths agree on output order.
        """
        examined = 0
        survivors: list[dict[str, Any]] = []
        vectors: list[Any] = []
        for row in child_rows:
            examined += 1
            if not E.evaluate(node.filter, row):
                continue
            vec = row.get(node.column)
            if vec is None:
                continue
            survivors.append(row)
            vectors.append(vec)
        node.actual_examined = examined
        node.actual_matched = len(survivors)
        if not survivors:
            return []
        metric = METRIC_TO_TYPE[ast.DISTANCE_OPERATORS[node.metric]]
        query = np.ascontiguousarray(node.query_vector, dtype=np.float32)
        matrix = np.ascontiguousarray(np.vstack(vectors), dtype=np.float32)
        dists = batch_kernel(metric)(query, matrix)[0]
        order = sorted(
            range(len(survivors)),
            key=lambda i: (
                float(dists[i]),
                survivors[i]["__tid__"].blkno,
                survivors[i]["__tid__"].offset,
            ),
        )
        out = []
        for i in order[: node.k]:
            row = survivors[i]
            row["__distance__"] = float(dists[i])
            out.append(row)
        return out

    # ------------------------------------------------------------------
    # batch-at-a-time execution (``SET enable_batch_exec = on``)
    # ------------------------------------------------------------------
    def _project_rows_batch(
        self, project: P.Project, instrument: dict[int, list] | None = None
    ) -> Iterator[tuple[Any, ...]]:
        """Batch counterpart of :meth:`_project_rows`.

        Identical output (rows and ordering) to the tuple path; the
        difference is purely in how rows move through the plan — whole
        batches per pull instead of one dict per pull (the RC#3 fix).
        """
        if project.aggregated:
            assert isinstance(project.child, (P.Aggregate, P.Limit))
            for batch in self._plan_batches(project.child, instrument):
                for row in batch:
                    yield (row["__agg__"],)
            return
        for batch in self._plan_batches(project.child, instrument):
            for row in batch:
                yield self._project_one(project, row)

    def _plan_batches(
        self, node: P.PlanNode, instrument: dict[int, list] | None = None
    ) -> Iterator[list[dict[str, Any]]]:
        gen = self._plan_batches_inner(node, instrument)
        if instrument is None:
            return gen
        return self._instrumented_batches(gen, node, instrument)

    def _instrumented_batches(
        self,
        gen: Iterator[list[dict[str, Any]]],
        node: P.PlanNode,
        instrument: dict[int, list],
    ) -> Iterator[list[dict[str, Any]]]:
        """Row/time accounting for a batch stream.

        The row counter advances by ``len(batch)`` per pull so EXPLAIN
        ANALYZE reports tuples, not batches, on either executor path.
        Buffer accounting matches :meth:`_instrumented`.
        """
        entry = instrument.setdefault(id(node), [0, 0.0, 0, 0])
        bstats = self.buffer.stats
        while True:
            hits0, misses0 = bstats.hits, bstats.misses
            start = time.perf_counter()
            try:
                batch = next(gen)
            except StopIteration:
                entry[1] += time.perf_counter() - start
                entry[2] += bstats.hits - hits0
                entry[3] += bstats.misses - misses0
                return
            entry[1] += time.perf_counter() - start
            entry[2] += bstats.hits - hits0
            entry[3] += bstats.misses - misses0
            entry[0] += len(batch)
            yield batch

    def _plan_batches_inner(
        self, node: P.PlanNode, instrument: dict[int, list] | None = None
    ) -> Iterator[list[dict[str, Any]]]:
        if isinstance(node, P.OneRow):
            yield [{}]
            return
        if isinstance(node, P.SeqScan):
            names = node.table.column_names()
            for page_rows in node.table.heap.scan_batches(snapshot=self._snapshot):
                batch = []
                for tid, values in page_rows:
                    row = dict(zip(names, values))
                    row["__tid__"] = tid
                    batch.append(row)
                yield batch
            return
        if isinstance(node, P.IndexScan):
            rows = self._index_scan_batch(node)
            if rows:
                yield rows
            return
        if isinstance(node, P.PreFilterScan):
            rows = self._pre_filter_topk(
                (r for batch in self._plan_batches(node.child, instrument) for r in batch),
                node,
            )
            if rows:
                yield rows
            return
        if isinstance(node, P.VirtualScan):
            names = node.view.column_names()
            batch = [dict(zip(names, values)) for values in node.view.rows()]
            if batch:
                yield batch
            return
        if isinstance(node, P.Filter):
            for batch in self._plan_batches(node.child, instrument):
                kept = [row for row in batch if E.evaluate(node.predicate, row)]
                if kept:
                    yield kept
            return
        if isinstance(node, P.Sort):
            rows = [r for batch in self._plan_batches(node.child, instrument) for r in batch]
            rows.sort(key=lambda r: E.evaluate(node.key, r), reverse=not node.ascending)
            if rows:
                yield rows
            return
        if isinstance(node, P.Limit):
            remaining = node.count
            if remaining <= 0:
                return
            for batch in self._plan_batches(node.child, instrument):
                if len(batch) >= remaining:
                    yield batch[:remaining]
                    return
                remaining -= len(batch)
                yield batch
            return
        if isinstance(node, P.Aggregate):
            rows = (
                r for batch in self._plan_batches(node.child, instrument) for r in batch
            )
            yield [self._aggregate_row(node, rows=rows)]
            return
        if isinstance(node, P.Project):
            # Nested projection (not produced by the current planner).
            names = node.columns
            batch = [dict(zip(names, out)) for out in self._project_rows_batch(node)]
            if batch:
                yield batch
            return
        raise ExecutionError(f"unknown plan node: {type(node).__name__}")

    def _index_scan_batch(self, node: P.IndexScan) -> list[dict[str, Any]]:
        """Batched index scan: ``am.get_batch`` + block-grouped heap fetch.

        Same survivor semantics and over-fetch/rescan loop as
        :meth:`_index_scan_rows` (dead tuples skipped, pushed-down
        filter applied, ``fetch_k`` doubled via
        ``amrescan_continue_batch`` until k survivors or exhaustion,
        brute-force fallback at the ``max_filtered_overfetch`` cap),
        but candidates arrive as arrays and heap fetches are grouped
        by block (one pin per page).
        """
        if node.strategy == "in-filter":
            return self._in_filter_scan_batch(node)
        names = node.table.column_names()
        heap = node.table.heap
        prof = self.trace_profiler
        am = node.index.am
        fetch_k = max(node.fetch_k or node.k, node.k)
        max_fetch = self._max_overfetch(node)
        probe = self._begin_quality_probe(node)
        seen: set = set()
        out: list[dict[str, Any]] = []
        batch = am.get_batch(node.query_vector, fetch_k)
        while True:
            n_hits = len(batch)
            tids = batch.tids()
            if prof.enabled:
                with prof.section("Tuple Access"):
                    fetched = heap.fetch_many(tids, snapshot=self._snapshot)
            else:
                fetched = heap.fetch_many(tids, snapshot=self._snapshot)
            distances = batch.distances.tolist()
            for tid, values, distance in zip(tids, fetched, distances):
                if tid in seen:
                    continue
                seen.add(tid)
                if values is None:
                    continue  # dead tuple: index entry awaiting vacuum
                row = dict(zip(names, values))
                row["__tid__"] = tid
                row["__distance__"] = distance
                if node.filter is not None and not E.evaluate(node.filter, row):
                    continue  # index-time post-filter
                out.append(row)
                if len(out) >= node.k:
                    node.actual_examined = len(seen)
                    node.actual_matched = len(out)
                    if probe is not None:
                        self._finish_quality_probe(node, [r["__tid__"] for r in out])
                    return out
            if n_hits < fetch_k:
                # Probed lists exhausted: fewer candidates than
                # requested.  As on the tuple path, a filtered scan
                # still owes exactly k rows whenever k rows match, so
                # answer any shortfall with the brute-force fallback.
                if probe is not None:
                    self._finish_quality_probe(node, [r["__tid__"] for r in out])
                    probe = None
                if node.filter is not None and len(out) < node.k:
                    node.overfetch_fell_back = True
                    out.extend(
                        self._filtered_bruteforce(
                            node, {r["__tid__"] for r in out}, node.k - len(out)
                        )
                    )
                node.actual_examined = len(seen)
                node.actual_matched = len(out)
                return out
            if max_fetch is not None and fetch_k >= max_fetch:
                # Same cap-and-fall-back as the tuple path: answer the
                # remainder with one exact brute-force pass.
                node.overfetch_fell_back = True
                out.extend(
                    self._filtered_bruteforce(
                        node, {r["__tid__"] for r in out}, node.k - len(out)
                    )
                )
                node.actual_examined = len(seen)
                node.actual_matched = len(out)
                return out
            fetch_k *= 2
            batch = am.amrescan_continue_batch(node.query_vector, fetch_k)

    def _in_filter_scan_batch(self, node: P.IndexScan) -> list[dict[str, Any]]:
        """In-filter strategy, batch path: ``amsearch_filtered_batch``.

        The predicate mask runs inside the AM traversal, so only
        matching TIDs come back; their rows were cached by the mask
        (no second heap fetch).
        """
        am = node.index.am
        mask_fn, rows, state = self._make_predicate_mask(node)
        batch = am.amsearch_filtered_batch(node.query_vector, node.k, mask_fn)
        out: list[dict[str, Any]] = []
        for tid, distance in zip(batch.tids(), batch.distances.tolist()):
            row = rows.get(tid)
            if row is None:
                continue  # defensive: the mask admitted this TID
            row["__distance__"] = distance
            out.append(row)
            if len(out) >= node.k:
                break
        node.actual_examined = state["examined"]
        node.actual_matched = state["matched"]
        return out

    # ------------------------------------------------------------------
    # estimate-vs-actual probes (``SET estimation_probe_rate = 0.05``)
    # ------------------------------------------------------------------
    def _begin_estimation_probe(self) -> dict[int, list] | None:
        """Decide whether this ordinary SELECT runs instrumented.

        Same deterministic ticket machinery as the recall probes, on a
        *separate* ticket stream so the two sampling schedules never
        perturb each other.  Returns the instrument dict to execute
        with for chosen statements, else None (uninstrumented run).
        """
        settings = self.catalog.settings
        try:
            rate = float(settings.get("estimation_probe_rate", 0.0) or 0.0)
        except (TypeError, ValueError):
            return None
        if rate <= 0.0:
            return None
        try:
            seed = int(settings.get("estimation_probe_seed", 0) or 0)
        except (TypeError, ValueError):
            seed = 0
        ticket = self.stats.next_estimation_ticket()
        if random.Random(seed * 1_000_003 + ticket).random() >= rate:
            return None
        return {}

    def _record_estimation(self, plan: P.PlanNode, instrument: dict[int, list]) -> None:
        """Fold one instrumented run into pg_stat_estimation_errors."""
        record_plan(self.estimation, self._estimation_query_key(), plan, instrument)

    def _estimation_query_key(self) -> str:
        """Estimation-entry key: the normalized statement text.

        An ``EXPLAIN ANALYZE inner`` run is keyed under *inner*'s
        normalized text (the leading ``explain``/option tokens are
        stripped), so explained and sampled executions of the same
        statement accumulate into one entry.
        """
        text = self.current_query
        if not text:
            return "<unknown>"
        tokens = text.split()
        if tokens and tokens[0].lower() == "explain":
            i = 1
            if i < len(tokens) and tokens[i] == "(":
                while i < len(tokens) and tokens[i] != ")":
                    i += 1
                i += 1
            else:
                while i < len(tokens) and tokens[i].lower() in ("analyze", "verbose"):
                    i += 1
            stripped = " ".join(tokens[i:])
            if stripped:
                return stripped
        return text

    # ------------------------------------------------------------------
    # online recall probes (``SET vector_quality_probe_rate = 0.01``)
    # ------------------------------------------------------------------
    def _begin_quality_probe(self, node: P.IndexScan) -> list[TID] | None:
        """Decide whether this top-k scan is sampled for a recall probe.

        Sampling is deterministic: each candidate scan consumes one
        monotonic ticket from the stats collector and a PRNG seeded
        from ``(vector_quality_probe_seed, ticket)`` decides.  The
        ticket is consumed whether or not the scan is chosen, so a
        fixed seed reproduces the exact same probe schedule across
        runs.  Hybrid (filtered) scans are never probed — their output
        is not a pure top-k, so brute-force recall is undefined.
        Returns the TID accumulator for chosen scans, else None.
        """
        if node.filter is not None:
            return None
        settings = self.catalog.settings
        try:
            rate = float(settings.get("vector_quality_probe_rate", 0.0) or 0.0)
        except (TypeError, ValueError):
            return None
        if rate <= 0.0:
            return None
        try:
            seed = int(settings.get("vector_quality_probe_seed", 0) or 0)
        except (TypeError, ValueError):
            seed = 0
        ticket = self.stats.next_probe_ticket()
        if random.Random(seed * 1_000_003 + ticket).random() >= rate:
            return None
        return []

    def _finish_quality_probe(self, node: P.IndexScan, emitted: list[TID]) -> None:
        """Re-answer a sampled scan exactly and record observed recall.

        The oracle is a brute-force pass over the heap under the same
        snapshot the index scan used, with the index's own distance
        metric — so the only divergence it can see is the index's
        approximation (plus dead entries awaiting vacuum), which is
        precisely what ``pg_stat_vector_quality`` is meant to expose.
        """
        from repro.common.types import DistanceType

        heap = node.table.heap
        col = heap.column_index(node.index.column_name)
        tids: list[TID] = []
        vectors: list[Any] = []
        for tid, values in heap.scan(snapshot=self._snapshot):
            vec = values[col]
            if vec is None:
                continue
            tids.append(tid)
            vectors.append(vec)
        if not tids:
            return
        try:
            metric = DistanceType(node.index.options.get("distance_type", DistanceType.L2))
        except ValueError:
            metric = DistanceType.L2
        query = np.ascontiguousarray(node.query_vector, dtype=np.float32)
        matrix = np.ascontiguousarray(np.vstack(vectors), dtype=np.float32)
        dists = batch_kernel(metric)(query, matrix)[0]
        # Ties break on TID so the oracle is deterministic.
        order = sorted(
            range(len(tids)),
            key=lambda i: (float(dists[i]), tids[i].blkno, tids[i].offset),
        )
        truth = {tids[i] for i in order[: node.k]}
        denom = min(node.k, len(truth))
        if denom <= 0:
            return
        recall = len(truth.intersection(emitted)) / denom
        self.stats.record_quality(node.index.name, node.index.am_name, recall)

    def _aggregate_row(
        self,
        node: P.Aggregate,
        instrument: dict[int, list] | None = None,
        rows: Iterator[dict[str, Any]] | None = None,
    ) -> dict[str, Any]:
        if rows is None:
            rows = self._plan_rows(node.child, instrument)
        values: list[Any] = []
        count = 0
        for row in rows:
            count += 1
            if node.arg is not None:
                values.append(E.evaluate(node.arg, row))
        func = node.func
        if func == "count":
            result: Any = count if node.arg is None else sum(v is not None for v in values)
        elif not values:
            result = None
        elif func == "sum":
            result = sum(values)
        elif func == "min":
            result = min(values)
        elif func == "max":
            result = max(values)
        elif func == "avg":
            result = sum(values) / len(values)
        else:
            raise ExecutionError(f"unknown aggregate {func!r}")
        return {"__agg__": result}


def _coerce_for_column(col: Column, value: Any) -> Any:
    """Coerce an evaluated INSERT value to the column's storage type."""
    if value is None:
        return None
    oid = col.type_oid
    if oid in (TypeOid.INT4, TypeOid.INT8):
        return int(value)
    if oid in (TypeOid.FLOAT4, TypeOid.FLOAT8):
        return float(value)
    if oid == TypeOid.TEXT:
        return str(value)
    if oid == TypeOid.FLOAT4_ARRAY:
        return E.coerce_vector(value)
    raise ExecutionError(f"unsupported column type {oid!r}")
