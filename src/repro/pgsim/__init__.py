"""``pgsim`` — a from-scratch PostgreSQL-like storage & SQL engine.

This subpackage is the reproduction's relational substrate: the role
PostgreSQL plays for PASE in the paper.  It implements, in Python,
the architectural pieces whose costs the paper traces its root causes
to:

- **slotted 8 KB pages** with PostgreSQL-style headers and line
  pointers (:mod:`repro.pgsim.page`) — the layout behind RC#4;
- a **buffer manager** with pinning and clock-sweep eviction
  (:mod:`repro.pgsim.buffer`) — the page indirection behind RC#2;
- a **disk manager** holding relations as page files
  (:mod:`repro.pgsim.storage`), with an in-memory "tmpfs" mode
  mirroring the paper's I/O-exclusion experiment (Sec. V-A2);
- a **write-ahead log** with redo recovery (:mod:`repro.pgsim.wal`);
- a **heap access method** with tuple headers and TIDs
  (:mod:`repro.pgsim.heapam`) and a binary **tuple/datum codec**
  (:mod:`repro.pgsim.tuple_format`);
- a **catalog** and GUC settings (:mod:`repro.pgsim.catalog`);
- an **index access-method interface** mirroring PostgreSQL's
  ``IndexAmRoutine`` (:mod:`repro.pgsim.am`), which the PASE and
  pgvector index implementations plug into; and
- a **SQL front end**: lexer, parser, planner and Volcano-style
  executor (:mod:`repro.pgsim.sql`, :mod:`repro.pgsim.planner`,
  :mod:`repro.pgsim.executor`), exposing the paper's exact SQL
  surface (``ORDER BY vec <-> '...'::PASE LIMIT k``).
"""

from repro.pgsim.database import PgSimDatabase

__all__ = ["PgSimDatabase"]
