"""Cumulative statistics and per-query accounting (pgsim's pg_stat_*).

Three pieces, mirroring how PostgreSQL exposes its own bookkeeping:

* :class:`QueryStats` — counter deltas attributed to one executed
  statement (buffer, WAL, heap and index-AM work), attached to every
  :class:`~repro.pgsim.plan.QueryResult` by
  :meth:`~repro.pgsim.database.PgSimDatabase.execute`;
* :class:`StatsCollector` — the per-database aggregation point: it
  owns the shared heap-access counters, snapshots/deltas all counter
  families around statements, and keeps the
  ``pg_stat_statements``-style per-normalized-query histograms;
* :class:`StatView` + :func:`install_stat_views` — read-only virtual
  tables (``pg_stat_buffers``, ``pg_stat_wal``, ``pg_stat_indexes``,
  ``pg_stat_statements``, ``pg_stat_wait_events``,
  ``pg_stat_progress_create_index``, ``pg_stat_progress_vacuum``,
  ``pg_stat_vector_quality``, and the ANALYZE-backed ``pg_stats`` /
  ``pg_stat_user_tables``) the planner exposes to ordinary SQL.
  ``pg_stat_activity`` and ``pg_slow_queries`` live in
  :mod:`repro.pgsim.activity` / :mod:`repro.pgsim.slowlog` and are
  installed by the database facade alongside these.

Per-query tracking is controlled by the ``track_query_stats`` GUC
(default on); the cumulative counters themselves are always live —
they are plain integer increments on hot paths that already exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Iterator

from repro.common.obs import (
    WAIT_EVENT_TYPES,
    BuildProgress,
    CounterDeltaMixin,
    IndexScanStats,
    LatencyHistogram,
    RecallHistogram,
    VacuumProgress,
    WaitEventStats,
)
from repro.pgsim.buffer import BufferManager, BufferStats
from repro.pgsim.sql.lexer import TokenType, tokenize
from repro.pgsim.wal import WalStats, WriteAheadLog


@dataclass(slots=True)
class HeapAccessStats(CounterDeltaMixin):
    """Cumulative heap-AM tuple traffic (``pg_stat_user_tables``-ish).

    One instance is shared by every :class:`~repro.pgsim.heapam.HeapTable`
    of a database (wired up by the executor), so a single delta covers
    all relations a statement touched.
    """

    tuples_fetched: int = 0
    tuples_inserted: int = 0
    tuples_deleted: int = 0
    tuples_updated: int = 0


@dataclass
class QueryStats:
    """Counter deltas for one executed statement."""

    elapsed_seconds: float
    buffer: BufferStats
    wal: WalStats
    heap: HeapAccessStats
    index: IndexScanStats
    wait_events: WaitEventStats = field(default_factory=WaitEventStats)

    # Flat accessors for the counters the paper's analysis leans on.
    @property
    def buffer_hits(self) -> int:
        return self.buffer.hits

    @property
    def buffer_misses(self) -> int:
        return self.buffer.misses

    @property
    def heap_tuples_fetched(self) -> int:
        return self.heap.tuples_fetched

    @property
    def index_candidates(self) -> int:
        return self.index.candidates

    def as_dict(self) -> dict[str, Any]:
        """Nested plain-dict form (for the bench JSON emitter)."""
        return {
            "elapsed_seconds": self.elapsed_seconds,
            "buffer": self.buffer.as_dict(),
            "wal": self.wal.as_dict(),
            "heap": self.heap.as_dict(),
            "index": self.index.as_dict(),
            "wait_events": self.wait_events.as_dict(),
        }


class StatementStats:
    """Cumulative execution record of one normalized statement."""

    __slots__ = ("calls", "rows", "histogram")

    def __init__(self) -> None:
        self.calls = 0
        self.rows = 0
        self.histogram = LatencyHistogram()

    def record(self, seconds: float, rows: int) -> None:
        self.calls += 1
        self.rows += rows
        self.histogram.record(seconds)


def normalize_sql(sql: str) -> list[str]:
    """Normalize a SQL string into per-statement fingerprint texts.

    Literal constants (numbers and strings) are replaced with ``?`` so
    queries differing only in parameters share one
    ``pg_stat_statements`` entry — e.g. every
    ``ORDER BY vec <-> '...'::PASE LIMIT 10`` probe of a workload
    collapses to a single line.  Statements are split on top-level
    ``;`` exactly like the parser splits them, so the i-th normalized
    text corresponds to the i-th parsed statement.

    Memoized on the raw text: normalization is a full second lexer
    pass, and repeated statements (the common case in benchmark loops)
    would otherwise pay it on every execution.
    """
    return list(_normalize_cached(sql))


@lru_cache(maxsize=512)
def _normalize_cached(sql: str) -> tuple[str, ...]:
    groups: list[list[str]] = [[]]
    for token in tokenize(sql):
        if token.type == TokenType.EOF:
            break
        if token.type == TokenType.PUNCT and token.value == ";":
            groups.append([])
            continue
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            groups[-1].append("?")
        else:
            groups[-1].append(token.value)
    return tuple(" ".join(group) for group in groups if group)


class StatView:
    """A read-only virtual table backed by a row-producing callable.

    Quacks enough like :class:`~repro.pgsim.catalog.TableInfo` for the
    planner's projection logic (``column_names()``) while carrying no
    heap — the executor materialises ``rows()`` on every scan, so a
    view always reflects the current counters.
    """

    __slots__ = ("name", "columns", "_rows_fn")

    def __init__(
        self, name: str, columns: list[str], rows_fn: Callable[[], list[tuple]]
    ) -> None:
        self.name = name
        self.columns = list(columns)
        self._rows_fn = rows_fn

    def column_names(self) -> list[str]:
        return list(self.columns)

    def rows(self) -> list[tuple]:
        return self._rows_fn()


@dataclass
class _Baseline:
    """Counter snapshots taken at statement start."""

    buffer: BufferStats
    wal: WalStats
    heap: HeapAccessStats
    index: IndexScanStats
    waits: WaitEventStats


#: Completed build-progress records the progress view keeps around.
_BUILD_HISTORY_LIMIT = 32

#: Completed vacuum-progress records pg_stat_progress_vacuum keeps.
_VACUUM_HISTORY_LIMIT = 32


class QualityEntry:
    """Accumulated recall-probe observations for one index."""

    __slots__ = ("index_name", "am_name", "histogram")

    def __init__(self, index_name: str, am_name: str) -> None:
        self.index_name = index_name
        self.am_name = am_name
        self.histogram = RecallHistogram()


class StatsCollector:
    """Aggregation point for one database's statistics."""

    def __init__(
        self,
        buffer: BufferManager,
        wal: WriteAheadLog,
        catalog: Any,
        waits: WaitEventStats | None = None,
    ) -> None:
        self.buffer = buffer
        self.wal = wal
        self.catalog = catalog
        #: Shared by every HeapTable of this database.
        self.heap = HeapAccessStats()
        #: Wait-event accumulator; the database facade passes the one
        #: instance it shared with the buffer manager and WAL.  The
        #: fallback to the buffer's own accumulator keeps direct
        #: ``Executor(...)`` constructions (tests) observable.
        self.waits = waits if waits is not None else buffer.waits
        self.statements: dict[str, StatementStats] = {}
        #: Index builds, most recent last; the in-flight one (if any)
        #: is ``self.current_build``.
        self.builds: list[BuildProgress] = []
        self.current_build: BuildProgress | None = None
        #: Vacuum runs, most recent last (pg_stat_progress_vacuum).
        self.vacuums: list[VacuumProgress] = []
        self.current_vacuum: VacuumProgress | None = None
        #: Online recall-probe accumulators, keyed by index name.
        self.quality: dict[str, QualityEntry] = {}
        #: Monotonic probe-ticket counter driving deterministic probe
        #: sampling (reset with pg_stat_reset for replayability).
        self._probe_ticket = 0
        #: Separate ticket stream for the estimation probes, so adding
        #: or removing estimation sampling never perturbs which scans
        #: the *recall* probes pick (and vice versa).
        self._estimation_ticket = 0
        #: External surfaces whose reset() joins pg_stat_reset()
        #: (slow-query ring, activity counters).
        self._resettables: list[Any] = []

    # ------------------------------------------------------------------
    # per-query windows
    # ------------------------------------------------------------------
    def begin(self) -> _Baseline:
        """Snapshot every counter family before a statement runs."""
        return _Baseline(
            buffer=self.buffer.stats.snapshot(),
            wal=self.wal.stats.snapshot(),
            heap=self.heap.snapshot(),
            index=self.index_totals(),
            waits=self.waits.snapshot(),
        )

    def finish(self, baseline: _Baseline, elapsed_seconds: float) -> QueryStats:
        """Delta against a :meth:`begin` snapshot."""
        return QueryStats(
            elapsed_seconds=elapsed_seconds,
            buffer=self.buffer.stats.delta(baseline.buffer),
            wal=self.wal.stats.delta(baseline.wal),
            heap=self.heap.delta(baseline.heap),
            index=self.index_totals().delta(baseline.index),
            wait_events=self.waits.delta(baseline.waits),
        )

    # ------------------------------------------------------------------
    # index-build progress (pg_stat_progress_create_index)
    # ------------------------------------------------------------------
    def start_build(self, index_name: str, am_name: str) -> BuildProgress:
        """Open a progress record for an index build about to run."""
        progress = BuildProgress(index_name=index_name, am_name=am_name)
        self.builds.append(progress)
        del self.builds[:-_BUILD_HISTORY_LIMIT]
        self.current_build = progress
        return progress

    def finish_build(self) -> None:
        """Close the in-flight build's progress record."""
        if self.current_build is not None:
            self.current_build.finished = True
            self.current_build = None

    # ------------------------------------------------------------------
    # vacuum progress (pg_stat_progress_vacuum)
    # ------------------------------------------------------------------
    def start_vacuum(self, table_name: str) -> VacuumProgress:
        """Open a progress record for a VACUUM about to run."""
        progress = VacuumProgress(table_name)
        self.vacuums.append(progress)
        del self.vacuums[:-_VACUUM_HISTORY_LIMIT]
        self.current_vacuum = progress
        return progress

    def finish_vacuum(self) -> None:
        """Close the in-flight vacuum's progress record."""
        if self.current_vacuum is not None:
            self.current_vacuum.finished = True
            self.current_vacuum = None

    # ------------------------------------------------------------------
    # online recall probes (pg_stat_vector_quality)
    # ------------------------------------------------------------------
    def next_probe_ticket(self) -> int:
        """Monotonic per-scan ticket feeding the probe sampling hash."""
        self._probe_ticket += 1
        return self._probe_ticket

    def next_estimation_ticket(self) -> int:
        """Monotonic per-statement ticket for estimation sampling."""
        self._estimation_ticket += 1
        return self._estimation_ticket

    def record_quality(self, index_name: str, am_name: str, recall: float) -> None:
        entry = self.quality.get(index_name)
        if entry is None:
            entry = self.quality[index_name] = QualityEntry(index_name, am_name)
        entry.histogram.record(recall)

    # ------------------------------------------------------------------
    # reset wiring
    # ------------------------------------------------------------------
    def register_resettable(self, surface: Any) -> None:
        """Enroll an object with a ``reset()`` into ``pg_stat_reset()``."""
        self._resettables.append(surface)

    # ------------------------------------------------------------------
    # cumulative rollups
    # ------------------------------------------------------------------
    def iter_indexes(self) -> Iterator[Any]:
        for table_name in self.catalog.table_names():
            yield from self.catalog.table(table_name).indexes.values()

    def index_totals(self) -> IndexScanStats:
        """Sum of every index AM's scan counters."""
        total = IndexScanStats()
        for info in self.iter_indexes():
            stats = getattr(info.am, "scan_stats", None)
            if stats is not None:
                total.scans += stats.scans
                total.candidates += stats.candidates
        return total

    # ------------------------------------------------------------------
    # pg_stat_statements
    # ------------------------------------------------------------------
    def record_statement(self, normalized: str, seconds: float, rows: int) -> None:
        entry = self.statements.get(normalized)
        if entry is None:
            entry = self.statements[normalized] = StatementStats()
        entry.record(seconds, rows)

    def reset_statements(self) -> None:
        """The moral equivalent of ``pg_stat_statements_reset()``."""
        self.statements.clear()

    def reset(self) -> None:
        """``SELECT pg_stat_reset()``: zero the resettable accumulators.

        Clears ``pg_stat_statements``, the wait-event accumulator, the
        recall-probe accumulators (plus the probe and estimation
        tickets, so sampling replays deterministically after a reset)
        and every registered external surface — the slow-query ring,
        per-backend activity counters, the ASH and stat-history rings,
        and the estimation-error entries (each keeps its own lifetime
        totals).  The buffer/WAL/heap/index counters are monotonic by
        design (consumers window them with snapshot/delta, see
        :class:`~repro.common.obs.CounterDeltaMixin`) and are left
        untouched, as are the build/vacuum progress histories.
        """
        self.reset_statements()
        self.waits.reset()
        self.quality.clear()
        self._probe_ticket = 0
        self._estimation_ticket = 0
        for surface in self._resettables:
            surface.reset()


def install_stat_views(catalog: Any, collector: StatsCollector) -> None:
    """Register the pg_stat_* virtual tables on a catalog."""

    def buffers_rows() -> list[tuple]:
        s = collector.buffer.stats
        return [
            (s.hits, s.misses, s.evictions, s.dirty_writebacks, s.accesses, s.hit_ratio)
        ]

    def wal_rows() -> list[tuple]:
        s = collector.wal.stats
        return [
            (
                s.records,
                s.bytes_written,
                s.flushes,
                s.records_flushed,
                s.bytes_flushed,
                collector.wal.flushed_lsn,
            )
        ]

    def index_rows() -> list[tuple]:
        rows = []
        for info in collector.iter_indexes():
            stats = getattr(info.am, "scan_stats", None) or IndexScanStats()
            per_scan = stats.candidates / stats.scans if stats.scans else 0.0
            rows.append(
                (
                    info.name,
                    info.table_name,
                    info.am_name,
                    stats.scans,
                    stats.candidates,
                    per_scan,
                )
            )
        return rows

    def statement_rows() -> list[tuple]:
        rows = []
        # .copy(): the view may be read lock-free while another
        # session's statement inserts a new entry mid-iteration.
        for text, entry in collector.statements.copy().items():
            h = entry.histogram
            rows.append(
                (
                    text,
                    entry.calls,
                    entry.rows,
                    h.total_seconds * 1e3,
                    h.mean * 1e3,
                    h.p50 * 1e3,
                    h.p95 * 1e3,
                    h.p99 * 1e3,
                )
            )
        rows.sort(key=lambda r: r[3], reverse=True)
        return rows

    def wait_event_rows() -> list[tuple]:
        # snapshot(): lock-free readers vs a concurrent record().
        waits = collector.waits.snapshot()
        return [
            (
                WAIT_EVENT_TYPES.get(event, "Extension"),
                event,
                waits.counts[event],
                waits.seconds.get(event, 0.0) * 1e3,
            )
            for event in waits.events()
        ]

    def progress_rows() -> list[tuple]:
        return [
            (
                p.index_name,
                p.am_name,
                p.phase,
                p.tuples_done,
                p.tuples_total,
                "done" if p.finished else "in progress",
            )
            for p in collector.builds
        ]

    def vacuum_progress_rows() -> list[tuple]:
        return [
            (
                p.table_name,
                p.phase,
                p.heap_blks_total,
                p.heap_blks_scanned,
                p.tuples_removed,
                p.index_name or None,
                p.index_vacuum_count,
                p.index_entries_removed,
                ",".join(p.phases_seen),
                "done" if p.finished else "in progress",
            )
            for p in list(collector.vacuums)
        ]

    def vector_quality_rows() -> list[tuple]:
        rows = []
        for name in sorted(collector.quality.copy()):
            entry = collector.quality[name]
            h = entry.histogram
            rows.append(
                (
                    entry.index_name,
                    entry.am_name,
                    h.count,
                    h.mean,
                    h.min_value if h.count else None,
                    h.last_value if h.count else None,
                )
            )
        return rows

    def _render_list(values: list) -> str | None:
        """pg_stats-style array text: ``{v1,v2,...}`` (None when empty)."""
        if not values:
            return None
        return "{" + ",".join(str(v) for v in values) + "}"

    def pg_stats_rows() -> list[tuple]:
        rows = []
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            if table.stats is None:
                continue
            for attname, col in sorted(table.stats.columns.items()):
                rows.append(
                    (
                        table_name,
                        attname,
                        col.null_frac,
                        col.n_distinct,
                        _render_list(col.mcv_values),
                        _render_list([f"{f:.6g}" for f in col.mcv_freqs]),
                        _render_list(col.histogram_bounds),
                        round(col.correlation, 6),
                    )
                )
        return rows

    def user_table_rows() -> list[tuple]:
        rows = []
        for table_name in catalog.table_names():
            table = catalog.table(table_name)
            stats = table.stats
            rows.append(
                (
                    table_name,
                    float(stats.reltuples) if stats is not None else None,
                    stats.relpages if stats is not None else None,
                    table.heap.tuple_count,
                    table.heap.n_dead_tup,
                    table.heap.n_tup_upd,
                    table.heap.vacuum_count,
                    table.heap.autovacuum_count,
                    stats.last_analyze if stats is not None else None,
                )
            )
        return rows

    for view in (
        StatView(
            "pg_stat_buffers",
            ["hits", "misses", "evictions", "dirty_writebacks", "accesses", "hit_ratio"],
            buffers_rows,
        ),
        StatView(
            "pg_stat_wal",
            [
                "records",
                "bytes_written",
                "flushes",
                "records_flushed",
                "bytes_flushed",
                "flushed_lsn",
            ],
            wal_rows,
        ),
        StatView(
            "pg_stat_indexes",
            ["index", "table", "am", "scans", "candidates", "candidates_per_scan"],
            index_rows,
        ),
        StatView(
            "pg_stat_statements",
            [
                "query",
                "calls",
                "rows",
                "total_ms",
                "mean_ms",
                "p50_ms",
                "p95_ms",
                "p99_ms",
            ],
            statement_rows,
        ),
        StatView(
            "pg_stat_wait_events",
            ["wait_event_type", "wait_event", "count", "total_ms"],
            wait_event_rows,
        ),
        StatView(
            "pg_stat_progress_create_index",
            ["index", "am", "phase", "tuples_done", "tuples_total", "status"],
            progress_rows,
        ),
        StatView(
            "pg_stat_progress_vacuum",
            [
                "table",
                "phase",
                "heap_blks_total",
                "heap_blks_scanned",
                "tuples_removed",
                "index_name",
                "index_vacuum_count",
                "index_entries_removed",
                "phases",
                "status",
            ],
            vacuum_progress_rows,
        ),
        StatView(
            "pg_stat_vector_quality",
            ["index", "am", "probes", "mean_recall", "min_recall", "last_recall"],
            vector_quality_rows,
        ),
        StatView(
            "pg_stats",
            [
                "tablename",
                "attname",
                "null_frac",
                "n_distinct",
                "most_common_vals",
                "most_common_freqs",
                "histogram_bounds",
                "correlation",
            ],
            pg_stats_rows,
        ),
        StatView(
            "pg_stat_user_tables",
            [
                "relname",
                "reltuples",
                "relpages",
                "n_live_tup",
                "n_dead_tup",
                "n_tup_upd",
                "vacuum_count",
                "autovacuum_count",
                "last_analyze",
            ],
            user_table_rows,
        ),
    ):
        catalog.register_view(view)
