"""SQL tokenizer.

Hand-rolled scanner producing a flat token list.  The only unusual
tokens are the vector distance operators ``<->`` (Euclidean), ``<#>``
(inner product) and ``<=>`` (cosine) and the PostgreSQL cast operator
``::`` used by PASE's vector literals.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = {
    "create", "table", "drop", "index", "on", "using", "with",
    "insert", "into", "values", "select", "from", "where",
    "order", "by", "asc", "desc", "limit", "set", "show",
    "explain", "and", "or", "not", "null", "true", "false",
    "array", "as", "if", "exists", "vacuum", "begin", "commit",
    "distinct", "delete", "update", "analyze", "reindex", "all",
    "rollback", "work", "transaction",
}

# Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = [
    "<->", "<#>", "<=>", "::", "<=", ">=", "<>", "!=", "=", "<", ">",
    "+", "-", "*", "/",
]

_PUNCT = set("(),;[].")


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    pos: int

    def is_keyword(self, word: str) -> bool:
        return self.type == TokenType.KEYWORD and self.value == word


class SqlSyntaxError(ValueError):
    """Raised for lexical or grammatical errors, with position info."""

    def __init__(self, message: str, sql: str = "", pos: int = 0) -> None:
        context = ""
        if sql:
            start = max(pos - 20, 0)
            context = f" near ...{sql[start : pos + 10]!r}"
        super().__init__(f"{message}{context}")
        self.pos = pos


def tokenize(sql: str) -> list[Token]:
    """Scan ``sql`` into tokens (always ends with an EOF token)."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):  # line comment
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "'":
            end = i + 1
            parts: list[str] = []
            while True:
                if end >= n:
                    raise SqlSyntaxError("unterminated string literal", sql, i)
                if sql[end] == "'":
                    if end + 1 < n and sql[end + 1] == "'":  # escaped quote
                        parts.append(sql[i + 1 : end + 1])
                        i = end + 1
                        end += 2
                        continue
                    break
                end += 1
            parts.append(sql[i + 1 : end])
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = end + 1
            continue
        if ch == '"':  # quoted identifier
            end = sql.find('"', i + 1)
            if end < 0:
                raise SqlSyntaxError("unterminated quoted identifier", sql, i)
            tokens.append(Token(TokenType.IDENT, sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            end = i
            seen_dot = False
            seen_exp = False
            while end < n:
                c = sql[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    end += 1
                elif c in "eE" and not seen_exp and end > i:
                    seen_exp = True
                    end += 1
                    if end < n and sql[end] in "+-":
                        end += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[i:end], i))
            i = end
            continue
        if ch.isalpha() or ch == "_":
            end = i
            while end < n and (sql[end].isalnum() or sql[end] == "_"):
                end += 1
            word = sql[i:end]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenType.IDENT, lowered, i))
            i = end
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", sql, i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
