"""SQL abstract syntax tree nodes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class Node:
    """Base of all AST nodes."""


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr(Node):
    """Base of all expression nodes."""


@dataclass(frozen=True, slots=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    name: str
    table: str | None = None


@dataclass(frozen=True, slots=True)
class Literal(Expr):
    """A constant: int, float, str, bool or None."""

    value: Any


@dataclass(frozen=True, slots=True)
class ArrayLiteral(Expr):
    """``ARRAY[e1, e2, ...]``."""

    items: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Cast(Expr):
    """``expr::type`` — PASE vector literals are ``'...'::PASE``."""

    operand: Expr
    type_name: str


@dataclass(frozen=True, slots=True)
class BinaryOp(Expr):
    """Binary operation; ``op`` is the SQL operator lexeme."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class UnaryOp(Expr):
    """Unary ``-`` or ``NOT``."""

    op: str
    operand: Expr


@dataclass(frozen=True, slots=True)
class FuncCall(Expr):
    """Function call; ``count(*)`` is ``FuncCall('count', (Star(),))``."""

    name: str
    args: tuple[Expr, ...]


@dataclass(frozen=True, slots=True)
class Star(Expr):
    """``*`` in a target list or ``count(*)``."""


#: The three vector distance operators and their semantics.
DISTANCE_OPERATORS = {"<->": "l2", "<#>": "inner_product", "<=>": "cosine"}


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Statement(Node):
    """Base of all statement nodes."""


@dataclass(frozen=True, slots=True)
class ColumnDef(Node):
    """One column in CREATE TABLE."""

    name: str
    type_name: str


@dataclass(frozen=True, slots=True)
class CreateTable(Statement):
    """``CREATE TABLE [IF NOT EXISTS] name (col type, ...)``."""

    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True, slots=True)
class DropTable(Statement):
    """``DROP TABLE [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True, slots=True)
class CreateIndex(Statement):
    """``CREATE INDEX name ON table USING am (column) WITH (...)``."""

    name: str
    table: str
    am: str
    column: str
    options: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True, slots=True)
class DropIndex(Statement):
    """``DROP INDEX [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True, slots=True)
class Insert(Statement):
    """``INSERT INTO table [(cols)] VALUES (...), ...``."""

    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True, slots=True)
class SelectTarget(Node):
    """One SELECT output expression with an optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True, slots=True)
class OrderBy(Node):
    """One ORDER BY key with its direction."""

    expr: Expr
    ascending: bool = True


@dataclass(frozen=True, slots=True)
class Select(Statement):
    """``SELECT targets [FROM t] [WHERE] [ORDER BY] [LIMIT]``."""

    targets: tuple[SelectTarget, ...]
    table: str | None = None
    where: Expr | None = None
    order_by: OrderBy | None = None
    limit: int | None = None


@dataclass(frozen=True, slots=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE expr]``."""

    table: str
    where: Expr | None = None


@dataclass(frozen=True, slots=True)
class Update(Statement):
    """``UPDATE table SET col = expr [, ...] [WHERE expr]``."""

    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None


@dataclass(frozen=True, slots=True)
class SetStatement(Statement):
    """``SET name = value`` (GUC-style settings)."""

    name: str
    value: Any


@dataclass(frozen=True, slots=True)
class ShowStatement(Statement):
    """``SHOW name`` or ``SHOW ALL``."""

    name: str


@dataclass(frozen=True, slots=True)
class Explain(Statement):
    """``EXPLAIN [ANALYZE | ( option [, ...] )] <select|insert|delete>``.

    Options follow PostgreSQL's parenthesized list: ``ANALYZE``,
    ``BUFFERS``, ``TIMING`` and ``TRACE`` with optional boolean values.
    ``BUFFERS``/``TRACE`` — and an explicit ``TIMING on`` — require
    ``ANALYZE`` (enforced at execution, as in PostgreSQL).  ``timing``
    is tri-state: ``None`` means unspecified (defaults on under
    ANALYZE), matching PostgreSQL's option resolution.
    """

    statement: Statement
    analyze: bool = False
    buffers: bool = False
    timing: bool | None = None
    trace: bool = False
    #: ``COSTS`` — print ``(cost=.. rows=..)`` estimates (on by default,
    #: as in PostgreSQL; ``EXPLAIN (COSTS off)`` suppresses them).
    costs: bool = True


@dataclass(frozen=True, slots=True)
class Vacuum(Statement):
    """``VACUUM table`` — reclaim dead heap tuples."""

    table: str


@dataclass(frozen=True, slots=True)
class Analyze(Statement):
    """``ANALYZE [table]`` — collect planner statistics.

    With no table, every user table in the catalog is analyzed.
    """

    table: str | None = None


@dataclass(frozen=True, slots=True)
class Reindex(Statement):
    """``REINDEX name`` — rebuild an index from its table's live rows."""

    index: str


@dataclass(frozen=True, slots=True)
class Begin(Statement):
    """``BEGIN [WORK | TRANSACTION]`` — open an explicit transaction."""


@dataclass(frozen=True, slots=True)
class Commit(Statement):
    """``COMMIT [WORK | TRANSACTION]`` — commit the open transaction."""


@dataclass(frozen=True, slots=True)
class Rollback(Statement):
    """``ROLLBACK [WORK | TRANSACTION]`` — abort the open transaction."""


def to_sql(expr: Expr) -> str:
    """Render an expression back to SQL text (for EXPLAIN detail lines).

    The output is meant for humans reading plans — round-tripping is
    best-effort (string literals are re-quoted, operator precedence is
    made explicit with parentheses).
    """
    if isinstance(expr, ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, Literal):
        value = expr.value
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        return str(value)
    if isinstance(expr, ArrayLiteral):
        return "ARRAY[" + ", ".join(to_sql(item) for item in expr.items) + "]"
    if isinstance(expr, Cast):
        return f"{to_sql(expr.operand)}::{expr.type_name}"
    if isinstance(expr, BinaryOp):
        op = expr.op.upper() if expr.op in ("and", "or") else expr.op
        return f"({to_sql(expr.left)} {op} {to_sql(expr.right)})"
    if isinstance(expr, UnaryOp):
        op = "NOT " if expr.op == "not" else expr.op
        return f"{op}{to_sql(expr.operand)}"
    if isinstance(expr, FuncCall):
        return expr.name + "(" + ", ".join(to_sql(arg) for arg in expr.args) + ")"
    if isinstance(expr, Star):
        return "*"
    return repr(expr)


def walk(expr: Expr):
    """Yield ``expr`` and every sub-expression, depth-first."""
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, Cast):
        yield from walk(expr.operand)
    elif isinstance(expr, (FuncCall, ArrayLiteral)):
        items = expr.args if isinstance(expr, FuncCall) else expr.items
        for item in items:
            yield from walk(item)
