"""Recursive-descent SQL parser.

Grammar (statements separated by ``;``)::

    CREATE TABLE [IF NOT EXISTS] name ( col type [, ...] )
    DROP TABLE [IF EXISTS] name
    CREATE INDEX name ON table USING am ( column ) [WITH ( k = v, ... )]
    DROP INDEX [IF EXISTS] name
    INSERT INTO table [( cols )] VALUES ( exprs ) [, ( exprs ) ...]
    SELECT targets [FROM table] [WHERE expr]
        [ORDER BY expr [ASC|DESC]] [LIMIT n]
    SET name = value          SHOW name
    EXPLAIN [ANALYZE | ( ANALYZE | BUFFERS | TIMING | TRACE | COSTS [, ...] )]
        <select|insert|delete>
    VACUUM table              REINDEX index
    ANALYZE [table]

Expression precedence (loosest first): ``OR``, ``AND``, ``NOT``,
comparisons (``= < > <= >= <> != <-> <#> <=>``), ``+ -``, ``* /``,
unary ``-``, ``::`` cast, primary.
"""

from __future__ import annotations

from typing import Any

from repro.pgsim.sql import ast
from repro.pgsim.sql.lexer import SqlSyntaxError, Token, TokenType, tokenize

_COMPARISON_OPS = {"=", "<", ">", "<=", ">=", "<>", "!=", "<->", "<#>", "<=>"}
_ADDITIVE_OPS = {"+", "-"}
_MULTIPLICATIVE_OPS = {"*", "/"}


def parse_sql(sql: str) -> list[ast.Statement]:
    """Parse a SQL string into a list of statements."""
    return _Parser(sql).parse_statements()


class _Parser:
    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.type != TokenType.EOF:
            self.pos += 1
        return tok

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self.sql, self._peek().pos)

    def _expect_keyword(self, word: str) -> Token:
        tok = self._advance()
        if not tok.is_keyword(word):
            raise SqlSyntaxError(f"expected {word.upper()}", self.sql, tok.pos)
        return tok

    def _expect_punct(self, ch: str) -> Token:
        tok = self._advance()
        if tok.type != TokenType.PUNCT or tok.value != ch:
            raise SqlSyntaxError(f"expected {ch!r}", self.sql, tok.pos)
        return tok

    def _expect_operator(self, op: str) -> Token:
        tok = self._advance()
        if tok.type != TokenType.OPERATOR or tok.value != op:
            raise SqlSyntaxError(f"expected {op!r}", self.sql, tok.pos)
        return tok

    def _expect_ident(self) -> str:
        tok = self._advance()
        # Non-reserved usage of keywords as identifiers is not needed
        # by the paper's SQL, so keep it strict.
        if tok.type != TokenType.IDENT:
            raise SqlSyntaxError("expected identifier", self.sql, tok.pos)
        return tok.value

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self.pos += 1
            return True
        return False

    def _accept_punct(self, ch: str) -> bool:
        tok = self._peek()
        if tok.type == TokenType.PUNCT and tok.value == ch:
            self.pos += 1
            return True
        return False

    def _accept_operator(self, op: str) -> bool:
        tok = self._peek()
        if tok.type == TokenType.OPERATOR and tok.value == op:
            self.pos += 1
            return True
        return False

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while self._peek().type != TokenType.EOF:
            if self._accept_punct(";"):
                continue
            statements.append(self._statement())
            if self._peek().type != TokenType.EOF:
                self._expect_punct(";")
        return statements

    def _statement(self) -> ast.Statement:
        tok = self._peek()
        if tok.is_keyword("create"):
            return self._create()
        if tok.is_keyword("drop"):
            return self._drop()
        if tok.is_keyword("insert"):
            return self._insert()
        if tok.is_keyword("delete"):
            return self._delete()
        if tok.is_keyword("update"):
            return self._update()
        if tok.is_keyword("select"):
            return self._select()
        if tok.is_keyword("set"):
            return self._set()
        if tok.is_keyword("show"):
            return self._show()
        if tok.is_keyword("explain"):
            self._advance()
            analyze, buffers, timing, trace, costs = self._explain_options()
            return ast.Explain(
                self._statement(),
                analyze=analyze,
                buffers=buffers,
                timing=timing,
                trace=trace,
                costs=costs,
            )
        if tok.is_keyword("begin"):
            self._advance()
            self._accept_transaction_noise()
            return ast.Begin()
        if tok.is_keyword("commit"):
            self._advance()
            self._accept_transaction_noise()
            return ast.Commit()
        if tok.is_keyword("rollback"):
            self._advance()
            self._accept_transaction_noise()
            return ast.Rollback()
        if tok.is_keyword("vacuum"):
            self._advance()
            return ast.Vacuum(self._expect_ident())
        if tok.is_keyword("analyze"):
            self._advance()
            nxt = self._peek()
            if nxt.type == TokenType.IDENT:
                return ast.Analyze(self._expect_ident())
            return ast.Analyze(None)
        if tok.is_keyword("reindex"):
            self._advance()
            return ast.Reindex(self._expect_ident())
        raise self._error(f"unsupported statement start {tok.value!r}")

    def _accept_transaction_noise(self) -> None:
        """Optional WORK/TRANSACTION after BEGIN/COMMIT/ROLLBACK."""
        if not self._accept_keyword("work"):
            self._accept_keyword("transaction")

    def _explain_options(self) -> tuple[bool, bool, bool | None, bool, bool]:
        """EXPLAIN's option syntax: bare ANALYZE or a parenthesized list.

        ``EXPLAIN (ANALYZE, BUFFERS, TIMING off, TRACE, COSTS off) ...``
        accepts the options in any order, each with an optional
        ON/OFF/TRUE/FALSE value, matching PostgreSQL's grammar.
        Returns ``(analyze, buffers, timing, trace, costs)``; ``timing``
        is ``None`` when the option was not given (its effective default
        follows ANALYZE, resolved at execution).  ``costs`` defaults on,
        as in PostgreSQL.
        """
        if self._accept_keyword("analyze"):
            return True, False, None, False, True
        if not self._accept_punct("("):
            return False, False, None, False, True
        analyze = buffers = trace = False
        costs = True
        timing: bool | None = None
        while True:
            tok = self._advance()
            if tok.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise SqlSyntaxError("expected EXPLAIN option name", self.sql, tok.pos)
            name = tok.value.lower()
            value = self._explain_option_value()
            if name == "analyze":
                analyze = value
            elif name == "buffers":
                buffers = value
            elif name == "timing":
                timing = value
            elif name == "trace":
                trace = value
            elif name == "costs":
                costs = value
            else:
                raise SqlSyntaxError(
                    f"unrecognized EXPLAIN option {name!r}", self.sql, tok.pos
                )
            if not self._accept_punct(","):
                break
        self._expect_punct(")")
        return analyze, buffers, timing, trace, costs

    def _explain_option_value(self) -> bool:
        """Optional boolean after an EXPLAIN option name (default true)."""
        spellings = {"on": True, "true": True, "off": False, "false": False}
        tok = self._peek()
        if tok.type in (TokenType.IDENT, TokenType.KEYWORD) and tok.value.lower() in spellings:
            self._advance()
            return spellings[tok.value.lower()]
        if tok.type == TokenType.NUMBER and tok.value in ("0", "1"):
            self._advance()
            return tok.value == "1"
        return True

    def _create(self) -> ast.Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            if_not_exists = self._if_not_exists()
            name = self._expect_ident()
            self._expect_punct("(")
            columns = []
            while True:
                col = self._expect_ident()
                type_name = self._type_name()
                columns.append(ast.ColumnDef(col, type_name))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
            return ast.CreateTable(name, tuple(columns), if_not_exists)
        if self._accept_keyword("index"):
            name = self._expect_ident()
            self._expect_keyword("on")
            table = self._expect_ident()
            self._expect_keyword("using")
            am = self._expect_ident()
            self._expect_punct("(")
            column = self._expect_ident()
            self._expect_punct(")")
            options: list[tuple[str, Any]] = []
            if self._accept_keyword("with"):
                self._expect_punct("(")
                while True:
                    key = self._expect_ident()
                    self._expect_operator("=")
                    options.append((key, self._option_value()))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(")")
            return ast.CreateIndex(name, table, am, column, tuple(options))
        raise self._error("expected TABLE or INDEX after CREATE")

    def _type_name(self) -> str:
        tok = self._advance()
        if tok.type not in (TokenType.IDENT, TokenType.KEYWORD):
            raise SqlSyntaxError("expected type name", self.sql, tok.pos)
        name = tok.value
        if self._accept_punct("["):
            self._expect_punct("]")
            name += "[]"
        return name

    def _if_not_exists(self) -> bool:
        if self._accept_keyword("if"):
            self._expect_keyword("not")
            self._expect_keyword("exists")
            return True
        return False

    def _if_exists(self) -> bool:
        if self._accept_keyword("if"):
            self._expect_keyword("exists")
            return True
        return False

    def _drop(self) -> ast.Statement:
        self._expect_keyword("drop")
        if self._accept_keyword("table"):
            if_exists = self._if_exists()
            return ast.DropTable(self._expect_ident(), if_exists)
        if self._accept_keyword("index"):
            if_exists = self._if_exists()
            return ast.DropIndex(self._expect_ident(), if_exists)
        raise self._error("expected TABLE or INDEX after DROP")

    def _insert(self) -> ast.Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident()
        columns: tuple[str, ...] | None = None
        if self._accept_punct("("):
            cols = [self._expect_ident()]
            while self._accept_punct(","):
                cols.append(self._expect_ident())
            self._expect_punct(")")
            columns = tuple(cols)
        self._expect_keyword("values")
        rows = [self._value_row()]
        while self._accept_punct(","):
            rows.append(self._value_row())
        return ast.Insert(table, columns, tuple(rows))

    def _value_row(self) -> tuple[ast.Expr, ...]:
        self._expect_punct("(")
        exprs = [self._expr()]
        while self._accept_punct(","):
            exprs.append(self._expr())
        self._expect_punct(")")
        return tuple(exprs)

    def _delete(self) -> ast.Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident()
        where = self._expr() if self._accept_keyword("where") else None
        return ast.Delete(table, where)

    def _update(self) -> ast.Update:
        self._expect_keyword("update")
        table = self._expect_ident()
        self._expect_keyword("set")
        assignments = [self._assignment()]
        while self._accept_punct(","):
            assignments.append(self._assignment())
        where = self._expr() if self._accept_keyword("where") else None
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, ast.Expr]:
        column = self._expect_ident()
        self._expect_operator("=")
        return column, self._expr()

    def _select(self) -> ast.Select:
        self._expect_keyword("select")
        targets = [self._select_target()]
        while self._accept_punct(","):
            targets.append(self._select_target())
        table = None
        if self._accept_keyword("from"):
            table = self._expect_ident()
        where = self._expr() if self._accept_keyword("where") else None
        order_by = None
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            expr = self._expr()
            ascending = True
            if self._accept_keyword("desc"):
                ascending = False
            else:
                self._accept_keyword("asc")
            order_by = ast.OrderBy(expr, ascending)
        limit = None
        if self._accept_keyword("limit"):
            tok = self._advance()
            if tok.type != TokenType.NUMBER:
                raise SqlSyntaxError("expected a number after LIMIT", self.sql, tok.pos)
            limit = int(tok.value)
        return ast.Select(tuple(targets), table, where, order_by, limit)

    def _select_target(self) -> ast.SelectTarget:
        if self._accept_operator("*"):
            return ast.SelectTarget(ast.Star())
        expr = self._expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        return ast.SelectTarget(expr, alias)

    def _set(self) -> ast.SetStatement:
        self._expect_keyword("set")
        name = self._qualified_name()
        self._expect_operator("=")
        return ast.SetStatement(name, self._option_value())

    def _show(self) -> ast.ShowStatement:
        self._expect_keyword("show")
        if self._accept_keyword("all"):
            return ast.ShowStatement("all")
        return ast.ShowStatement(self._qualified_name())

    def _qualified_name(self) -> str:
        """Dotted name as used by GUC settings (``pase.nprobe``)."""
        parts = [self._expect_ident()]
        while self._accept_punct("."):
            parts.append(self._expect_ident())
        return ".".join(parts)

    def _option_value(self) -> Any:
        tok = self._advance()
        if tok.type == TokenType.NUMBER:
            return _number(tok.value)
        if tok.type == TokenType.STRING:
            return tok.value
        if tok.is_keyword("true") or tok.is_keyword("on"):
            return True
        if tok.is_keyword("false"):
            return False
        if tok.type == TokenType.IDENT:
            return tok.value
        if tok.type == TokenType.OPERATOR and tok.value == "-":
            nxt = self._advance()
            if nxt.type == TokenType.NUMBER:
                return -_number(nxt.value)
        raise SqlSyntaxError("expected a literal option value", self.sql, tok.pos)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _expr(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = ast.BinaryOp("or", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = ast.BinaryOp("and", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self._accept_keyword("not"):
            return ast.UnaryOp("not", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        tok = self._peek()
        if tok.type == TokenType.OPERATOR and tok.value in _COMPARISON_OPS:
            self._advance()
            right = self._additive()
            return ast.BinaryOp(tok.value, left, right)
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            tok = self._peek()
            if tok.type == TokenType.OPERATOR and tok.value in _ADDITIVE_OPS:
                self._advance()
                left = ast.BinaryOp(tok.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            tok = self._peek()
            if tok.type == TokenType.OPERATOR and tok.value in _MULTIPLICATIVE_OPS:
                self._advance()
                left = ast.BinaryOp(tok.value, left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self._accept_operator("-"):
            return ast.UnaryOp("-", self._unary())
        return self._postfix()

    def _postfix(self) -> ast.Expr:
        expr = self._primary()
        while self._accept_operator("::"):
            tok = self._advance()
            if tok.type not in (TokenType.IDENT, TokenType.KEYWORD):
                raise SqlSyntaxError("expected type name after ::", self.sql, tok.pos)
            type_name = tok.value
            if self._accept_punct("["):
                self._expect_punct("]")
                type_name += "[]"
            expr = ast.Cast(expr, type_name)
        return expr

    def _primary(self) -> ast.Expr:
        tok = self._advance()
        if tok.type == TokenType.NUMBER:
            return ast.Literal(_number(tok.value))
        if tok.type == TokenType.STRING:
            return ast.Literal(tok.value)
        if tok.is_keyword("null"):
            return ast.Literal(None)
        if tok.is_keyword("true"):
            return ast.Literal(True)
        if tok.is_keyword("false"):
            return ast.Literal(False)
        if tok.is_keyword("array"):
            self._expect_punct("[")
            items = [self._expr()]
            while self._accept_punct(","):
                items.append(self._expr())
            self._expect_punct("]")
            return ast.ArrayLiteral(tuple(items))
        if tok.type == TokenType.PUNCT and tok.value == "(":
            inner = self._expr()
            self._expect_punct(")")
            return inner
        if tok.type == TokenType.IDENT:
            if self._accept_punct("("):
                args: list[ast.Expr] = []
                if self._accept_operator("*"):
                    args.append(ast.Star())
                elif not (self._peek().type == TokenType.PUNCT and self._peek().value == ")"):
                    args.append(self._expr())
                    while self._accept_punct(","):
                        args.append(self._expr())
                self._expect_punct(")")
                return ast.FuncCall(tok.value, tuple(args))
            if self._accept_punct("."):
                column = self._expect_ident()
                return ast.ColumnRef(column, table=tok.value)
            return ast.ColumnRef(tok.value)
        raise SqlSyntaxError(f"unexpected token {tok.value!r}", self.sql, tok.pos)


def _number(text: str) -> int | float:
    if text.isdigit():
        return int(text)
    return float(text)
