"""SQL front end: lexer, AST and parser.

Implements the SQL surface the paper demonstrates for PASE
(Sec. II-E): DDL with ``CREATE INDEX ... USING <am> WITH (...)``,
vector literals cast with ``::PASE``, and similarity search expressed
as ``ORDER BY vec <-> '...'::PASE ASC LIMIT k``.
"""

from repro.pgsim.sql.parser import parse_sql

__all__ = ["parse_sql"]
