"""Live session registry: pgsim's ``pg_stat_activity``.

Every :class:`~repro.pgsim.session.Session` registers a
:class:`BackendActivity` entry here under a unique monotonic backend
id (the ``pid`` column) and updates it around each statement:
``active`` with the normalized query text while executing, the current
wait event while blocked on the statement lock, ``idle`` /
``idle in transaction`` between statements.  The whole point is
cross-session visibility — a monitoring session reads the view *while*
another session is stuck, which is why the session layer serves
``pg_stat_activity`` (and the other virtual views) through a lock-free
path that never queues behind the statement lock.

Field updates are plain attribute stores (atomic under the GIL) and
readers take snapshots, so a registry entry can be written by its
session and read by a monitor with no lock handshake; the registry's
own mutex only guards membership changes.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.common.obs import WAIT_EVENT_TYPES

STATE_ACTIVE = "active"
STATE_IDLE = "idle"
STATE_IDLE_IN_TXN = "idle in transaction"


class BackendActivity:
    """Live execution state of one session (one ``pg_stat_activity`` row)."""

    __slots__ = (
        "backend_id",
        "name",
        "state",
        "query",
        "query_start",
        "backend_xid",
        "wait_event",
        "statements",
        "lock_waits",
        "lock_wait_seconds",
    )

    def __init__(self, backend_id: int, name: str) -> None:
        self.backend_id = backend_id
        self.name = name
        self.state = STATE_IDLE
        #: Normalized text of the current (or last) statement.
        self.query = ""
        self.query_start: float | None = None
        #: xid of the session's open explicit transaction, if any.
        self.backend_xid: int | None = None
        #: Wait event currently blocking the session (None = running).
        self.wait_event: str | None = None
        self.statements = 0
        self.lock_waits = 0
        self.lock_wait_seconds = 0.0

    def begin_statement(self, query: str, now: float) -> None:
        self.state = STATE_ACTIVE
        self.query = query
        self.query_start = now
        self.wait_event = None

    def end_statement(self, in_transaction: bool, backend_xid: int | None) -> None:
        self.statements += 1
        self.wait_event = None
        self.backend_xid = backend_xid
        self.state = STATE_IDLE_IN_TXN if in_transaction else STATE_IDLE

    def note_lock_wait(self, seconds: float) -> None:
        self.lock_waits += 1
        self.lock_wait_seconds += seconds

    def reset_counters(self) -> None:
        """Zero the per-backend counters (the ``pg_stat_reset`` slice)."""
        self.statements = 0
        self.lock_waits = 0
        self.lock_wait_seconds = 0.0


class SessionRegistry:
    """All live backends of one database, keyed by backend id."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._backends: dict[int, BackendActivity] = {}
        self._next_id = 0

    def next_backend_id(self) -> int:
        """Mint a monotonic backend id (never reused within a database)."""
        with self._lock:
            self._next_id += 1
            return self._next_id

    def register(self, backend_id: int, name: str) -> BackendActivity:
        entry = BackendActivity(backend_id, name)
        with self._lock:
            self._backends[backend_id] = entry
        return entry

    def deregister(self, backend_id: int) -> None:
        with self._lock:
            self._backends.pop(backend_id, None)

    def backends(self) -> list[BackendActivity]:
        """Snapshot of the live entries, backend-id order."""
        with self._lock:
            return [self._backends[bid] for bid in sorted(self._backends)]

    def get(self, backend_id: int) -> BackendActivity | None:
        """The live entry for ``backend_id``, if still registered."""
        with self._lock:
            return self._backends.get(backend_id)

    def state_counts(self) -> dict[str, int]:
        """``state -> number of backends`` (the exporter's gauge family)."""
        counts: dict[str, int] = {}
        for entry in self.backends():
            counts[entry.state] = counts.get(entry.state, 0) + 1
        return counts

    def reset(self) -> None:
        """``pg_stat_reset()``: zero counters, keep the backends."""
        for entry in self.backends():
            entry.reset_counters()


def install_activity_view(catalog: Any, registry: SessionRegistry) -> None:
    """Register the ``pg_stat_activity`` virtual table."""
    # Function-level import: stats.py does not import this module, so
    # the dependency stays one-way (activity -> stats).
    from repro.pgsim.stats import StatView

    def rows() -> list[tuple]:
        out = []
        for b in registry.backends():
            event = b.wait_event
            out.append(
                (
                    b.backend_id,
                    b.name,
                    b.state,
                    WAIT_EVENT_TYPES.get(event, "Extension") if event else None,
                    event,
                    b.backend_xid,
                    b.query or None,
                    b.query_start,
                    b.statements,
                    b.lock_waits,
                    b.lock_wait_seconds * 1e3,
                )
            )
        return out

    catalog.register_view(
        StatView(
            "pg_stat_activity",
            [
                "pid",
                "name",
                "state",
                "wait_event_type",
                "wait_event",
                "backend_xid",
                "query",
                "query_start",
                "statements",
                "lock_waits",
                "lock_wait_ms",
            ],
            rows,
        )
    )
