"""Access paths and the planner cost model.

PostgreSQL's planner separates *what strategies exist* (paths) from
*what plan gets built* (the cheapest path is lowered to plan nodes).
This module is that middle layer for pgsim's single-table SELECT core
(scan + filter + order + limit):

* :class:`SeqScanPath` — heap scan, residual filter, explicit sort.
* :class:`IndexScanPath` — ordered vector-index scan satisfying
  ``ORDER BY vec <op> const LIMIT k`` with no predicate (PASE's
  ``amgettuple`` path, Sec. II-E).
* :class:`OrderedIndexScanPath` — hybrid **post-filter** strategy: the
  same ordered scan with the WHERE clause pushed into the scan as an
  index-time post-filter, over-fetching ``k / selectivity`` candidates
  and re-scanning geometrically (``amrescan_continue``) until k
  survive (capped by ``max_filtered_overfetch``).
* :class:`InFilterIndexScanPath` — hybrid **in-filter** strategy: the
  predicate mask is pushed *inside* the AM traversal
  (``amsearch_filtered``), so only matching tuples reach the result
  heap; costed by charging the mask per examined candidate.
* :class:`PreFilterPath` — hybrid **pre-filter** strategy: evaluate
  the predicate first over a heap scan, then brute-force the
  survivors' distances into a k-bounded top-k — no index at all.

The hybrid shape ``WHERE p ORDER BY vec <-> q LIMIT k`` thus gets a
genuine three-way costed choice; ``SET filtered_search_strategy``
forces one of them (for benchmarking the crossover).

Costs follow PostgreSQL's ``costsize.c`` vocabulary: page fetches are
charged ``seq_page_cost``/``random_page_cost``, per-tuple CPU is
``cpu_tuple_cost``/``cpu_index_tuple_cost``, and expression evaluation
``cpu_operator_cost`` (vector distances are weighted
:data:`DISTANCE_OP_WEIGHT` operators).  Each index AM prices its own
candidate generation through ``IndexAmRoutine.amcostestimate``.

Path selection is cost-based with one deliberate exception, also
borrowed from how PASE is used in practice: a pure ordered-KNN query
(:class:`IndexScanPath`, no WHERE) always takes the matching index.
At paper scale the index wins outright, and pinning the choice keeps
the search path deterministic across dataset sizes; ``SET
enable_indexscan = off`` still disables it.  The hybrid shape — where
the paper-adjacent filtered-search literature shows the decision is
genuinely data-dependent — is decided purely by comparing costs, so
the plan flips from index scan to seq-scan + sort as the estimated
selectivity drops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.common.types import DistanceType
from repro.pgsim import expr as expr_eval
from repro.pgsim import plan as P
from repro.pgsim.analyze import clause_selectivity, table_shape
from repro.pgsim.catalog import Catalog, IndexInfo, TableInfo
from repro.pgsim.sql import ast

#: A vector distance evaluation costs this many "operators" — a dim-d
#: fvec_L2sqr is far more work than an integer comparison.
DISTANCE_OP_WEIGHT = 8.0

#: Penalty applied to paths the user disabled via enable_* GUCs; the
#: path stays plannable (it may be the only one) but never wins a
#: comparison, exactly PostgreSQL's disable_cost.
DISABLE_COST = 1.0e10

#: distance-operator metric name -> DistanceType (index option value).
METRIC_TO_TYPE = {
    "l2": DistanceType.L2,
    "inner_product": DistanceType.INNER_PRODUCT,
    "cosine": DistanceType.COSINE,
}


@dataclass(frozen=True)
class CostParams:
    """The planner cost constants (PostgreSQL's costsize GUCs)."""

    seq_page_cost: float
    random_page_cost: float
    cpu_tuple_cost: float
    cpu_index_tuple_cost: float
    cpu_operator_cost: float

    @classmethod
    def from_catalog(cls, catalog: Catalog) -> "CostParams":
        """Read the cost GUCs (``SET random_page_cost = ...`` works)."""
        return cls(
            seq_page_cost=float(catalog.get_setting("seq_page_cost")),
            random_page_cost=float(catalog.get_setting("random_page_cost")),
            cpu_tuple_cost=float(catalog.get_setting("cpu_tuple_cost")),
            cpu_index_tuple_cost=float(catalog.get_setting("cpu_index_tuple_cost")),
            cpu_operator_cost=float(catalog.get_setting("cpu_operator_cost")),
        )


class Path:
    """One candidate strategy for a single-table SELECT core.

    ``startup_cost``/``total_cost``/``rows`` describe the *root* of the
    subtree :meth:`lower` would produce (after any LIMIT).  Comparison
    happens on :meth:`compare_cost`; the winner is lowered to plan
    nodes, each annotated with its own cost estimates for EXPLAIN.
    """

    startup_cost: float = 0.0
    total_cost: float = 0.0
    rows: float = 0.0
    #: disable_cost surcharge (kept separate so EXPLAIN shows honest
    #: estimates while comparisons still respect enable_* GUCs).
    disabled: bool = False
    #: Hybrid filtered-search strategy this path embodies
    #: ("pre-filter" / "post-filter" / "in-filter"), None for
    #: non-hybrid paths.  ``filtered_search_strategy`` forcing and the
    #: per-strategy statistics key off this.
    strategy: str | None = None

    def compare_cost(self) -> float:
        """Cost used to pick the cheapest path."""
        return self.total_cost + (DISABLE_COST if self.disabled else 0.0)

    def lower(self) -> P.PlanNode:
        """Build the plan subtree for this path."""
        raise NotImplementedError


def _qual_cost_per_row(where: ast.Expr | None, cost: CostParams) -> float:
    """Per-row cost of evaluating a predicate tree."""
    if where is None:
        return 0.0
    ops = 0.0
    for node in ast.walk(where):
        if isinstance(node, ast.BinaryOp):
            ops += DISTANCE_OP_WEIGHT if node.op in ast.DISTANCE_OPERATORS else 1.0
        elif isinstance(node, ast.UnaryOp):
            ops += 1.0
    return ops * cost.cpu_operator_cost


def _bruteforce_topk_cost(
    where: ast.Expr | None,
    ntuples: float,
    relpages: float,
    survivors: float,
    k: int,
    cost: CostParams,
) -> float:
    """Cost of a filtered brute-force top-k over the whole heap.

    Full heap scan + qual on every row, then a distance, a tuple copy
    and a log2(k) bounded-heap comparison per surviving row.  Used as
    the pre-filter path's entire cost and as the post-filter path's
    fallback surcharge when its over-fetch budget is capped.
    """
    total = relpages * cost.seq_page_cost + ntuples * cost.cpu_tuple_cost
    total += ntuples * _qual_cost_per_row(where, cost)
    total += survivors * DISTANCE_OP_WEIGHT * cost.cpu_operator_cost
    total += survivors * cost.cpu_tuple_cost
    total += survivors * math.log2(max(float(k), 2.0)) * cost.cpu_operator_cost
    return total


def _plan_rows(estimate: float) -> int:
    """Row estimates as EXPLAIN prints them (clamped to >= 1, like PG)."""
    return max(1, int(round(estimate)))


def _set_cost(node: P.PlanNode, startup: float, total: float, rows: float) -> None:
    """Attach cost estimates to a plan node (rendered by EXPLAIN)."""
    node.startup_cost = startup
    node.total_cost = total
    node.plan_rows = _plan_rows(rows)


class SeqScanPath(Path):
    """Heap scan + residual filter + explicit sort (+ limit)."""

    def __init__(self, stmt: ast.Select, table: TableInfo, catalog: Catalog) -> None:
        self.stmt = stmt
        self.table = table
        self.cost = CostParams.from_catalog(catalog)
        self.disabled = not catalog.get_bool("enable_seqscan")
        cost = self.cost
        ntuples, relpages = table_shape(table)
        self.selectivity = clause_selectivity(stmt.where, table)

        # Seq Scan node: every page once, every tuple once.
        self._scan_total = relpages * cost.seq_page_cost + ntuples * cost.cpu_tuple_cost
        self._scan_rows = ntuples

        # Filter node: qual evaluation over every input row.
        node_startup, node_total, node_rows = 0.0, self._scan_total, ntuples
        if stmt.where is not None:
            node_total += ntuples * _qual_cost_per_row(stmt.where, cost)
            node_rows = ntuples * self.selectivity
        self._filter_total, self._filter_rows = node_total, node_rows

        # Sort node: materializes its input — full cost before the
        # first row comes back (that startup is what LIMIT cannot
        # save, and why a k-bounded index scan wins at high
        # selectivity).
        if stmt.order_by is not None:
            key_weight = DISTANCE_OP_WEIGHT if (
                isinstance(stmt.order_by.expr, ast.BinaryOp)
                and stmt.order_by.expr.op in ast.DISTANCE_OPERATORS
            ) else 1.0
            n = max(node_rows, 2.0)
            sort_cost = node_rows * key_weight * cost.cpu_operator_cost
            sort_cost += 2.0 * cost.cpu_operator_cost * n * math.log2(n)
            node_startup = node_total + sort_cost
            node_total = node_startup + node_rows * cost.cpu_operator_cost
        self._sort_startup, self._sort_total = node_startup, node_total

        # Limit node: stop early — pay startup plus a run fraction.
        if stmt.limit is not None and node_rows > 0:
            frac = min(1.0, stmt.limit / node_rows)
            node_total = node_startup + (node_total - node_startup) * frac
            node_rows = min(float(stmt.limit), node_rows)
        self.startup_cost = node_startup
        self.total_cost = node_total
        self.rows = node_rows

    def lower(self) -> P.PlanNode:
        stmt, cost = self.stmt, self.cost
        node: P.PlanNode = P.SeqScan(self.table)
        _set_cost(node, 0.0, self._scan_total, self._scan_rows)
        if stmt.where is not None:
            node = P.Filter(node, stmt.where)
            _set_cost(node, 0.0, self._filter_total, self._filter_rows)
            node.est_selectivity = self.selectivity
        if stmt.order_by is not None:
            node = P.Sort(node, stmt.order_by.expr, stmt.order_by.ascending)
            _set_cost(node, self._sort_startup, self._sort_total, self._filter_rows)
        if stmt.limit is not None:
            node = P.Limit(node, stmt.limit)
            _set_cost(node, self.startup_cost, self.total_cost, self.rows)
        return node


class IndexScanPath(Path):
    """Ordered vector-index scan for a pure KNN query (no WHERE).

    The scan is inherently k-bounded, so the LIMIT above it is free;
    the AM prices its candidate generation via ``amcostestimate`` and
    the path adds one heap fetch per returned row.
    """

    #: Predicate pushed into the scan (None here; the hybrid subclass
    #: sets it).
    filter: ast.Expr | None = None

    def __init__(
        self,
        stmt: ast.Select,
        table: TableInfo,
        index: IndexInfo,
        query_vector: np.ndarray,
        catalog: Catalog,
    ) -> None:
        self.stmt = stmt
        self.table = table
        self.index = index
        self.query_vector = query_vector
        self.cost = CostParams.from_catalog(catalog)
        cost = self.cost
        assert stmt.limit is not None and stmt.order_by is not None
        self.k = stmt.limit
        ntuples, relpages = table_shape(table)
        self.selectivity = clause_selectivity(self.filter, table)
        self.fetch_k = self._initial_fetch_k(ntuples)

        am_startup, am_total = index.am.amcostestimate(ntuples, self.fetch_k, cost)
        # Heap side: each candidate costs a by-TID fetch.  Page reads
        # are bounded by the relation size (repeat visits hit shared
        # buffers — the Mackert-Lohman intuition) and priced at
        # seq_page_cost: a scan that just probed the index has the hot
        # part of the heap in the buffer pool, so charging the cold
        # random_page_cost systematically overprices every index
        # strategy against the pre-filter heap scan.
        pages = min(float(self.fetch_k), float(relpages))
        heap_total = pages * cost.seq_page_cost + self.fetch_k * cost.cpu_tuple_cost
        heap_total += self.fetch_k * _qual_cost_per_row(self.filter, cost)
        total = am_total + heap_total
        self.startup_cost = am_startup
        self.total_cost = total
        self.rows = min(float(self.k), max(ntuples * self.selectivity, 0.0))

    def _initial_fetch_k(self, ntuples: float) -> int:
        """How many candidates the first scan pass requests."""
        return self.k

    def lower(self) -> P.PlanNode:
        stmt = self.stmt
        node: P.PlanNode = P.IndexScan(
            table=self.table,
            index=self.index,
            query_vector=self.query_vector,
            k=self.k,
            order_expr=stmt.order_by.expr,
            filter=self.filter,
            fetch_k=self.fetch_k,
            strategy=self.strategy,
        )
        _set_cost(node, self.startup_cost, self.total_cost, self.rows)
        if self.filter is not None:
            node.est_selectivity = self.selectivity
        # LIMIT stays in the plan even though the scan is k-bounded:
        # it documents the bound and guards the batch executor path.
        limit = P.Limit(node, self.k)
        _set_cost(limit, self.startup_cost, self.total_cost, self.rows)
        return limit


class OrderedIndexScanPath(IndexScanPath):
    """The hybrid shape: ordered index scan with a pushed-down filter.

    The executor evaluates the WHERE clause on each fetched heap row
    (an index-time post-filter) and keeps scanning — geometrically
    growing ``fetch_k`` through ``amrescan_continue`` — until k rows
    survive or the index is exhausted, so the query returns exactly k
    rows whenever at least k rows match.  The cost model sizes the
    first pass at ``k / selectivity`` candidates, which is what makes
    this path lose to the pre-filter strategy at low selectivity.
    """

    strategy = "post-filter"

    def __init__(
        self,
        stmt: ast.Select,
        table: TableInfo,
        index: IndexInfo,
        query_vector: np.ndarray,
        catalog: Catalog,
    ) -> None:
        assert stmt.where is not None
        self.filter = stmt.where
        self._overfetch_cap = max(int(catalog.get_setting("max_filtered_overfetch")), 1)
        self._capped = False
        super().__init__(stmt, table, index, query_vector, catalog)
        if self._capped:
            # The estimate says even the capped pass is unlikely to
            # surface k matches, so the executor will probably hit
            # ``max_filtered_overfetch`` and answer the remainder with
            # its brute-force pre-filter fallback — charge that scan,
            # which is what hands rare predicates to PreFilterPath.
            ntuples, relpages = table_shape(table)
            survivors = max(ntuples * self.selectivity, 0.0)
            self.total_cost += _bruteforce_topk_cost(
                stmt.where, ntuples, relpages, survivors, self.k, self.cost
            )
            self.startup_cost = self.total_cost

    def _initial_fetch_k(self, ntuples: float) -> int:
        floor = 1.0 / ntuples if ntuples >= 1.0 else 1.0
        fetch = math.ceil(self.k / max(self.selectivity, floor))
        fetch = min(max(fetch, self.k), max(ntuples, self.k))
        # max_filtered_overfetch caps how far over-fetching may grow
        # (the executor applies the same cap to its geometric rescans
        # and falls back to a brute-force pre-filter beyond it).
        capped = int(min(fetch, float(self._overfetch_cap * self.k)))
        self._capped = capped < fetch
        return capped


class InFilterIndexScanPath(IndexScanPath):
    """Hybrid in-filter strategy: the predicate mask rides inside the
    AM traversal (``amsearch_filtered``), so non-matching tuples still
    route the search but never occupy result slots — no over-fetch and
    no rescan.  Only generated for AMs advertising ``amcanfilter``.

    Cost = the AM's ordered-scan estimate for ``k`` results, plus one
    visibility + predicate check per *examined* candidate (the mask is
    evaluated on every candidate the traversal touches), plus the heap
    fetch of the k winners.  The examined count is the larger of the
    AM's natural probe footprint and ``k / selectivity`` — a rare
    predicate forces the traversal to widen until k matches surface,
    which is exactly where pre-filter takes over.
    """

    strategy = "in-filter"

    def __init__(
        self,
        stmt: ast.Select,
        table: TableInfo,
        index: IndexInfo,
        query_vector: np.ndarray,
        catalog: Catalog,
    ) -> None:
        assert stmt.where is not None
        self.filter = stmt.where
        super().__init__(stmt, table, index, query_vector, catalog)
        cost = self.cost
        ntuples, relpages = table_shape(table)
        floor = 1.0 / ntuples if ntuples >= 1.0 else 1.0
        widened = min(ntuples, self.k / max(self.selectivity, floor))
        self.est_examined = max(
            index.am.amestimate_candidates(ntuples, self.k), widened
        )
        # The mask is a by-TID heap visit per examined candidate: page
        # reads (buffer-bounded, like the base class's heap side) plus
        # a tuple deform and the qual itself.
        mask_pages = min(self.est_examined, float(relpages))
        self.total_cost += mask_pages * cost.seq_page_cost
        self.total_cost += self.est_examined * (
            cost.cpu_tuple_cost + _qual_cost_per_row(self.filter, cost)
        )

    def _initial_fetch_k(self, ntuples: float) -> int:
        # Only matching tuples come back: the scan is k-bounded.
        return self.k


class PreFilterPath(Path):
    """Hybrid pre-filter strategy: predicate first, then brute force.

    Lowers to ``Limit(PreFilterScan(SeqScan))`` — scan the heap, keep
    the rows passing the predicate, compute distances over just the
    survivors and top-k them with a bounded heap.  No index, so the
    cost is insensitive to selectivity *mis*-estimates; it wins when
    the predicate is rare and every index strategy would trawl most of
    its lists/beams hunting for matches.
    """

    strategy = "pre-filter"

    def __init__(
        self,
        stmt: ast.Select,
        table: TableInfo,
        catalog: Catalog,
        column: str,
        query_vector: np.ndarray,
    ) -> None:
        assert stmt.where is not None
        assert stmt.order_by is not None and stmt.limit is not None
        self.stmt = stmt
        self.table = table
        self.column = column
        self.query_vector = query_vector
        self.cost = CostParams.from_catalog(catalog)
        # Contains a full heap scan, so it honours enable_seqscan
        # (``SET enable_seqscan = off`` keeps pinning index strategies).
        self.disabled = not catalog.get_bool("enable_seqscan")
        cost = self.cost
        ntuples, relpages = table_shape(table)
        self.k = stmt.limit
        self.selectivity = clause_selectivity(stmt.where, table)
        survivors = max(ntuples * self.selectivity, 0.0)

        # Seq Scan child: every page, every tuple (the qual and the
        # survivor-side work live in _bruteforce_topk_cost, shared
        # with the post-filter path's fallback estimate).
        self._scan_total = relpages * cost.seq_page_cost + ntuples * cost.cpu_tuple_cost
        self._scan_rows = ntuples
        total = _bruteforce_topk_cost(
            stmt.where, ntuples, relpages, survivors, self.k, cost
        )
        # Everything materializes before the first row comes back.
        self.startup_cost = total
        self.total_cost = total
        self.rows = min(float(self.k), survivors)

    def lower(self) -> P.PlanNode:
        stmt = self.stmt
        child = P.SeqScan(self.table)
        _set_cost(child, 0.0, self._scan_total, self._scan_rows)
        node = P.PreFilterScan(
            child=child,
            table=self.table,
            column=self.column,
            query_vector=self.query_vector,
            k=self.k,
            order_expr=stmt.order_by.expr,
            filter=stmt.where,
            metric=stmt.order_by.expr.op,
        )
        _set_cost(node, self.startup_cost, self.total_cost, self.rows)
        node.est_selectivity = self.selectivity
        limit = P.Limit(node, self.k)
        _set_cost(limit, self.startup_cost, self.total_cost, self.rows)
        return limit


def generate_paths(stmt: ast.Select, table: TableInfo, catalog: Catalog) -> list[Path]:
    """All viable paths for a SELECT over a real table.

    A seq-scan path always exists, except for the hybrid filtered-KNN
    shape, where the pre-filter path strictly dominates it (identical
    scan + filter work, but a k-bounded selection over the survivors
    instead of a full sort) and replaces it; index paths require the
    ``ORDER BY vec <op> const ASC LIMIT k`` shape, a metric-matching
    index, and ``enable_indexscan`` on.
    """
    paths: list[Path] = [SeqScanPath(stmt, table, catalog)]
    match = _ordered_index_match(stmt, table, catalog)
    if match is not None:
        index, query_vector = match
        if stmt.where is None:
            paths.append(IndexScanPath(stmt, table, index, query_vector, catalog))
        else:
            paths.append(OrderedIndexScanPath(stmt, table, index, query_vector, catalog))
            if index.am.amcanfilter:
                paths.append(
                    InFilterIndexScanPath(stmt, table, index, query_vector, catalog)
                )
    if stmt.where is not None:
        target = _distance_order_target(stmt)
        if target is not None:
            column, query_vector = target
            paths[0] = PreFilterPath(stmt, table, catalog, column, query_vector)
    _apply_strategy_force(paths, catalog)
    return paths


def _apply_strategy_force(paths: list[Path], catalog: Catalog) -> None:
    """Apply ``SET filtered_search_strategy = pre-filter|post-filter|in-filter``.

    Only touches the hybrid shape, and only when a path for the forced
    strategy was actually generated (forcing in-filter on an AM without
    ``amcanfilter`` is a no-op rather than an error); every other path
    — including the plain seq-scan — is disabled so the forced strategy
    wins even where it is naturally more expensive.
    """
    forced = str(catalog.get_setting("filtered_search_strategy")).lower()
    if forced in ("", "auto"):
        return
    if not any(path.strategy == forced for path in paths):
        return
    for path in paths:
        if path.strategy != forced:
            path.disabled = True


def choose_path(paths: list[Path]) -> Path:
    """Pick the winning path (see the module docstring for the rule)."""
    for path in paths:
        if type(path) is IndexScanPath:
            return path
    return min(paths, key=lambda p: p.compare_cost())


def _distance_order_target(stmt: ast.Select) -> tuple[str, np.ndarray] | None:
    """``(column, query_vector)`` when the query is the ordered-KNN
    shape ``ORDER BY vec <op> const ASC LIMIT k`` — no index required
    (the pre-filter strategy brute-forces without one)."""
    if stmt.order_by is None or stmt.limit is None:
        return None
    if not stmt.order_by.ascending:
        return None  # farthest-first is not a supported search order
    order_expr = stmt.order_by.expr
    if not isinstance(order_expr, ast.BinaryOp):
        return None
    if order_expr.op not in ast.DISTANCE_OPERATORS:
        return None
    column, const_side = _split_distance_operands(order_expr)
    if column is None or const_side is None:
        return None
    query = expr_eval.coerce_vector(expr_eval.evaluate(const_side, row=None))
    return column, np.ascontiguousarray(query, dtype=np.float32)


def _ordered_index_match(
    stmt: ast.Select, table: TableInfo, catalog: Catalog
) -> tuple[IndexInfo, np.ndarray] | None:
    """Find an index whose ordering satisfies the query's ORDER BY."""
    if not catalog.get_bool("enable_indexscan"):
        return None
    target = _distance_order_target(stmt)
    if target is None:
        return None
    column, query = target
    metric = METRIC_TO_TYPE[ast.DISTANCE_OPERATORS[stmt.order_by.expr.op]]
    for index in catalog.indexes_on(table.name, column):
        index_metric = DistanceType(index.options.get("distance_type", DistanceType.L2))
        if index_metric != metric:
            continue
        return index, query
    return None


def _split_distance_operands(
    op: ast.BinaryOp,
) -> tuple[str | None, ast.Expr | None]:
    """Identify the (column, constant) sides of a distance expression."""
    left_col = isinstance(op.left, ast.ColumnRef)
    right_col = isinstance(op.right, ast.ColumnRef)
    if left_col and expr_eval.is_constant(op.right):
        return op.left.name, op.right
    if right_col and expr_eval.is_constant(op.left):
        return op.right.name, op.left
    return None, None
