"""Query plan nodes.

The planner (:mod:`repro.pgsim.planner`) turns a parsed SELECT into a
tree of these nodes; the executor (:mod:`repro.pgsim.executor`) runs
them Volcano-style.  The node the whole paper revolves around is
:class:`IndexScan`: an ordered scan pulling ``(tid, distance)`` pairs
from a vector index AM, produced for
``ORDER BY vec <-> '...'::PASE LIMIT k`` queries — with an optional
pushed-down filter for the hybrid ``WHERE p AND ORDER BY ... LIMIT k``
shape (evaluated index-side with adaptive over-fetch).

Every node carries the planner's cost estimates
(``startup_cost``/``total_cost``/``plan_rows``); EXPLAIN renders them
as ``(cost=S..T rows=N)`` suffixes unless ``COSTS off`` was given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.pgsim.catalog import IndexInfo, TableInfo
from repro.pgsim.sql import ast


class PlanNode:
    """Base plan node.

    Cost estimates are optional (``None`` on nodes the planner did not
    cost, e.g. virtual-view scans); EXPLAIN omits the suffix for them.
    """

    startup_cost: float | None = None
    total_cost: float | None = None
    plan_rows: int | None = None
    #: Estimated predicate selectivity, set by the path layer on the
    #: nodes that apply one (Filter; hybrid IndexScan).  Feeds
    #: pg_stat_estimation_errors' est-vs-measured comparison.
    est_selectivity: float | None = None

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        """This node's EXPLAIN lines (head + detail), children excluded."""
        raise NotImplementedError

    def explain_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        """Full EXPLAIN listing for this subtree."""
        lines = self.own_lines(depth, costs)
        child = getattr(self, "child", None)
        if child is not None:
            lines.extend(child.explain_lines(depth + 1, costs))
        return lines

    def cost_suffix(self, costs: bool = True) -> str:
        """``  (cost=S..T rows=N)`` — empty under COSTS off or uncosted."""
        if not costs or self.total_cost is None:
            return ""
        return (
            f"  (cost={self.startup_cost:.2f}..{self.total_cost:.2f}"
            f" rows={self.plan_rows})"
        )


def _line(depth: int, text: str) -> str:
    prefix = "" if depth == 0 else "  " * (depth - 1) + "->  "
    return prefix + text


@dataclass
class OneRow(PlanNode):
    """Produces exactly one empty row (``SELECT 1``-style queries)."""

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        return [_line(depth, "Result") + self.cost_suffix(costs)]


@dataclass
class SeqScan(PlanNode):
    """Full scan of a heap table."""

    table: TableInfo
    #: True when the batch executor will run this scan page-at-a-time.
    batch: bool = False

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        suffix = " (batch)" if self.batch else ""
        return [_line(depth, f"Seq Scan on {self.table.name}{suffix}") + self.cost_suffix(costs)]


@dataclass
class IndexScan(PlanNode):
    """Ordered vector-index scan (the paper's search path).

    With ``filter`` set, the executor evaluates the predicate on each
    fetched heap row and keeps pulling — starting at ``fetch_k``
    candidates and growing geometrically via ``amrescan_continue`` —
    until ``k`` rows survive or the index is exhausted.
    """

    table: TableInfo
    index: IndexInfo
    query_vector: np.ndarray
    k: int
    order_expr: ast.Expr
    #: True when the batch executor will pull via ``am.get_batch``.
    batch: bool = False
    #: Predicate pushed into the scan (index-time post-filter).
    filter: ast.Expr | None = None
    #: First-pass candidate count (``k / estimated_selectivity``,
    #: clamped); ``None`` behaves as ``k``.
    fetch_k: int | None = None
    #: Hybrid-query strategy executing this scan: "post-filter"
    #: (over-fetch + predicate on the fetched rows) or "in-filter"
    #: (predicate mask pushed inside the AM traversal).  None for pure
    #: k-NN scans with no predicate.
    strategy: str | None = None

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        suffix = ", batch" if self.batch else ""
        head = _line(
            depth,
            f"Index Scan using {self.index.name} on {self.table.name} "
            f"({self.index.am_name}, k={self.k}{suffix})",
        ) + self.cost_suffix(costs)
        lines = [head]
        if self.filter is not None:
            detail = "  " * (depth + 1)
            if self.strategy is not None:
                lines.append(f"{detail}Strategy: {self.strategy}")
            lines.append(f"{detail}Filter: {ast.to_sql(self.filter)}")
            if costs and self.fetch_k is not None and self.strategy != "in-filter":
                lines.append(f"{detail}Over-fetch: fetch_k={self.fetch_k}")
        return lines


@dataclass
class PreFilterScan(PlanNode):
    """Pre-filter strategy for the hybrid shape (predicate first).

    Runs the child scan (a :class:`SeqScan`), keeps the rows passing
    ``filter``, brute-forces distances over the survivors with the
    batch kernels, and emits the k nearest — no index involved, so
    cost is independent of how badly an over-fetch estimate would have
    missed.  Wins at low predicate selectivity, where the survivor set
    is small and any index strategy would scan most of its lists/beams
    looking for matches.
    """

    child: PlanNode
    table: TableInfo
    #: Vector column the distances are computed over.
    column: str
    query_vector: np.ndarray
    k: int
    order_expr: ast.Expr
    filter: ast.Expr
    #: Distance operator (``<->``/``<=>``/``<#>``) selecting the kernel.
    metric: str = "<->"
    batch: bool = False

    #: Class attribute (not a dataclass field): the strategy label,
    #: read by the estimation/strategy statistics like
    #: ``IndexScan.strategy``.
    strategy = "pre-filter"

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        suffix = ", batch" if self.batch else ""
        head = _line(
            depth, f"Pre-Filter Scan on {self.table.name} (k={self.k}{suffix})"
        ) + self.cost_suffix(costs)
        detail = "  " * (depth + 1)
        return [
            head,
            f"{detail}Strategy: pre-filter",
            f"{detail}Filter: {ast.to_sql(self.filter)}",
        ]


@dataclass
class VirtualScan(PlanNode):
    """Scan of a read-only virtual table (a pg_stat_* view).

    ``view`` is a :class:`~repro.pgsim.stats.StatView`; the executor
    materialises its rows on every pull, so the output always reflects
    the live counters.
    """

    view: Any
    #: True when the batch executor emits the view as one batch.
    batch: bool = False

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        suffix = " (batch)" if self.batch else ""
        return [_line(depth, f"Virtual Scan on {self.view.name}{suffix}") + self.cost_suffix(costs)]


@dataclass
class Filter(PlanNode):
    """Predicate filter over a child plan."""

    child: PlanNode
    predicate: ast.Expr

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        return [_line(depth, "Filter") + self.cost_suffix(costs)]


@dataclass
class Sort(PlanNode):
    """Full in-memory sort by one expression."""

    child: PlanNode
    key: ast.Expr
    ascending: bool = True

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        direction = "ASC" if self.ascending else "DESC"
        return [_line(depth, f"Sort ({direction})") + self.cost_suffix(costs)]


@dataclass
class Limit(PlanNode):
    """Stop after ``count`` rows."""

    child: PlanNode
    count: int

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        return [_line(depth, f"Limit (count={self.count})") + self.cost_suffix(costs)]


@dataclass
class Project(PlanNode):
    """Compute the SELECT target list."""

    child: PlanNode
    targets: tuple[ast.SelectTarget, ...]
    columns: list[str] = field(default_factory=list)
    #: True when the child is a single-group Aggregate whose one value
    #: is the only output column.
    aggregated: bool = False
    #: True when the executor should run the batch-at-a-time path
    #: (``SET enable_batch_exec = on``).
    batch: bool = False

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        return [_line(depth, "Project") + self.cost_suffix(costs)]


@dataclass
class Aggregate(PlanNode):
    """Single-group aggregate (``count(*)`` and friends)."""

    child: PlanNode
    func: str
    arg: ast.Expr | None

    def own_lines(self, depth: int = 0, costs: bool = True) -> list[str]:
        return [_line(depth, f"Aggregate ({self.func})") + self.cost_suffix(costs)]


@dataclass
class QueryResult:
    """Rows (or a command tag) returned by the executor."""

    command: str
    columns: list[str] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    #: Per-statement counter deltas (:class:`repro.pgsim.stats.QueryStats`),
    #: attached by ``PgSimDatabase.execute`` when ``track_query_stats``
    #: is on; ``None`` when tracking is off or the statement ran
    #: through the bare executor.
    stats: Any = None
    #: Non-fatal notices (PostgreSQL ``WARNING:`` lines), e.g. BEGIN
    #: inside an already-open transaction block.
    warnings: list[str] = field(default_factory=list)

    def scalar(self) -> Any:
        """First column of the first row (raises if empty)."""
        if not self.rows:
            raise ValueError(f"query returned no rows ({self.command})")
        return self.rows[0][0]

    def column(self, index: int = 0) -> list[Any]:
        """All values of one output column."""
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)
