"""Disk manager: relations as arrays of fixed-size pages.

Two backends are provided:

- :class:`MemoryDisk` — pages live in process memory.  This is the
  reproduction's analogue of the paper's ``tmpfs`` experiment
  (Sec. V-A2): it removes physical I/O while keeping every layer of
  page indirection, which is exactly the configuration under which the
  paper still observed the 35–85× construction gap.
- :class:`FileDisk` — pages live in one file per relation, for
  demonstrating durability (WAL recovery tests run against it).

Both expose the same interface, so every layer above is oblivious to
the backend.
"""

from __future__ import annotations

from pathlib import Path

from repro.pgsim.constants import DEFAULT_PAGE_SIZE
from repro.pgsim.faults import NO_FAULTS, FaultInjector


class RelationNotFoundError(KeyError):
    """Raised when a relation name is unknown to the disk manager."""


class DiskManager:
    """Abstract page-file store (see module docstring)."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self.reads = 0
        self.writes = 0

    # -- interface ------------------------------------------------------
    def create_relation(self, name: str) -> None:
        raise NotImplementedError

    def drop_relation(self, name: str) -> None:
        raise NotImplementedError

    def relation_exists(self, name: str) -> bool:
        raise NotImplementedError

    def list_relations(self) -> list[str]:
        raise NotImplementedError

    def n_blocks(self, name: str) -> int:
        raise NotImplementedError

    def read_block(self, name: str, blkno: int) -> bytes:
        raise NotImplementedError

    def write_block(self, name: str, blkno: int, data: bytes) -> None:
        raise NotImplementedError

    def extend(self, name: str, data: bytes) -> int:
        """Append a page; returns its block number."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------
    def relation_bytes(self, name: str) -> int:
        """Allocated size of a relation in bytes."""
        return self.n_blocks(name) * self.page_size

    def _check_page(self, data: bytes) -> None:
        if len(data) != self.page_size:
            raise ValueError(f"page must be {self.page_size} bytes, got {len(data)}")


class MemoryDisk(DiskManager):
    """All relations held in memory (the "tmpfs" configuration)."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        super().__init__(page_size)
        self._relations: dict[str, list[bytes]] = {}

    def create_relation(self, name: str) -> None:
        if name in self._relations:
            raise ValueError(f"relation {name!r} already exists")
        self._relations[name] = []

    def drop_relation(self, name: str) -> None:
        self._pages(name)
        del self._relations[name]

    def relation_exists(self, name: str) -> bool:
        return name in self._relations

    def list_relations(self) -> list[str]:
        """Names of all relations (diagnostics/tests)."""
        return sorted(self._relations)

    def n_blocks(self, name: str) -> int:
        return len(self._pages(name))

    def read_block(self, name: str, blkno: int) -> bytes:
        pages = self._pages(name)
        self.reads += 1
        try:
            return pages[blkno]
        except IndexError:
            raise IndexError(f"block {blkno} beyond end of {name!r} ({len(pages)} blocks)") from None

    def write_block(self, name: str, blkno: int, data: bytes) -> None:
        self._check_page(data)
        pages = self._pages(name)
        if not 0 <= blkno < len(pages):
            raise IndexError(f"block {blkno} beyond end of {name!r} ({len(pages)} blocks)")
        pages[blkno] = bytes(data)
        self.writes += 1

    def extend(self, name: str, data: bytes) -> int:
        self._check_page(data)
        pages = self._pages(name)
        pages.append(bytes(data))
        self.writes += 1
        return len(pages) - 1

    def _pages(self, name: str) -> list[bytes]:
        try:
            return self._relations[name]
        except KeyError:
            raise RelationNotFoundError(f"no such relation: {name!r}") from None


class FileDisk(DiskManager):
    """One binary file per relation under a data directory.

    All page writes flow through a :class:`FaultInjector` so the
    crash-recovery harness can tear or abort them deterministically;
    the default injector performs plain, unbroken I/O.
    """

    def __init__(
        self,
        data_dir: str | Path,
        page_size: int = DEFAULT_PAGE_SIZE,
        faults: FaultInjector | None = None,
    ) -> None:
        super().__init__(page_size)
        self.faults = faults if faults is not None else NO_FAULTS
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, name: str) -> Path:
        if "/" in name or name.startswith("."):
            raise ValueError(f"invalid relation name: {name!r}")
        return self.data_dir / f"{name}.rel"

    def create_relation(self, name: str) -> None:
        path = self._path(name)
        if path.exists():
            raise ValueError(f"relation {name!r} already exists")
        path.touch()

    def drop_relation(self, name: str) -> None:
        path = self._existing(name)
        path.unlink()

    def relation_exists(self, name: str) -> bool:
        return self._path(name).exists()

    def list_relations(self) -> list[str]:
        """Names of all relations on disk."""
        return sorted(p.stem for p in self.data_dir.glob("*.rel"))

    def n_blocks(self, name: str) -> int:
        return self._existing(name).stat().st_size // self.page_size

    def read_block(self, name: str, blkno: int) -> bytes:
        path = self._existing(name)
        self.reads += 1
        with path.open("rb") as f:
            f.seek(blkno * self.page_size)
            data = f.read(self.page_size)
        if len(data) != self.page_size:
            raise IndexError(f"block {blkno} beyond end of {name!r}")
        return data

    def write_block(self, name: str, blkno: int, data: bytes) -> None:
        self._check_page(data)
        path = self._existing(name)
        if blkno >= self.n_blocks(name):
            raise IndexError(f"block {blkno} beyond end of {name!r}")
        with path.open("r+b") as f:
            f.seek(blkno * self.page_size)
            self.faults.write("disk.write", f, data)
        self.writes += 1

    def extend(self, name: str, data: bytes) -> int:
        self._check_page(data)
        path = self._existing(name)
        full = self.n_blocks(name) * self.page_size
        with path.open("r+b") as f:
            # Heal any torn tail a crashed extend left behind: without
            # the truncate the new page would land misaligned after the
            # partial one and every later block read would be garbage.
            f.truncate(full)
            f.seek(full)
            blkno = full // self.page_size
            self.faults.write("disk.extend", f, data)
            self.faults.fsync("disk.fsync", f)
        self.writes += 1
        return blkno

    def _existing(self, name: str) -> Path:
        path = self._path(name)
        if not path.exists():
            raise RelationNotFoundError(f"no such relation: {name!r}")
        return path
