"""Time-series observability: Active Session History + stat history.

PR 8 gave the engine *point-in-time* surfaces (``pg_stat_activity``,
the Prometheus scrape); this module adds the time dimension:

* :class:`ActiveSessionHistory` — a bounded ring of periodic samples
  of every **active** backend (state/query/wait-event), PostgreSQL's
  ``pg_wait_sampling`` / Oracle ASH shape.  Served as ``pg_ash`` and
  aggregated into ``pg_wait_profile`` (wait-event x query time-share
  over the retained window);
* :class:`StatHistory` — periodic deltas of the cumulative counter
  families (buffers, WAL, heap, statements, per-index scans, recall
  probes, wait seconds) into a ``pg_stat_history`` ring, so rates and
  trends are queryable from plain SQL;
* :class:`TimeSeriesSampler` — the background daemon thread driving
  both, controlled by the ``ash_enable`` / ``ash_sampling_interval_ms``
  / ``stat_history_interval_ms`` GUCs.

Locking discipline (see DESIGN.md §3.3j): the sampler reads backend
fields as GIL-atomic attribute loads (a sample may interleave with a
statement boundary and see a half-updated pair — acceptable for
statistical sampling), takes the registry mutex only for membership,
and serializes ring append/snapshot on a per-ring lock so the ash
views stay safe on the lock-free read path.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from repro.common.obs import WAIT_EVENT_TYPES
from repro.pgsim.activity import STATE_ACTIVE, SessionRegistry


class ActiveSessionHistory:
    """Bounded ring of (sampled_at, backend...) activity samples.

    Only **active** backends are sampled — ASH semantics: idle
    backends carry no load, while a backend blocked on the statement
    lock is active *with* a wait event, which is exactly the signal
    ``pg_wait_profile`` aggregates.
    """

    def __init__(self, registry: SessionRegistry, ring_size: int = 4096) -> None:
        self._registry = registry
        self._lock = threading.Lock()
        self._ring: deque[tuple] = deque(maxlen=max(int(ring_size), 1))
        #: Lifetime samples taken; survives :meth:`reset` the way the
        #: buffer/WAL counters survive ``pg_stat_reset()``.
        self.total_samples = 0

    def resize(self, ring_size: int) -> None:
        """Apply a new ``ash_ring_size``, keeping the newest samples."""
        with self._lock:
            self._ring = deque(self._ring, maxlen=max(int(ring_size), 1))

    def sample_once(self, now: float | None = None) -> int:
        """Take one sampling pass; returns the number of rows appended."""
        sampled_at = time.time() if now is None else now
        rows = []
        for backend in self._registry.backends():
            # GIL-atomic attribute loads; no per-backend lock (§3.3j).
            if backend.state != STATE_ACTIVE:
                continue
            wait_event = backend.wait_event
            rows.append(
                (
                    sampled_at,
                    backend.backend_id,
                    backend.name,
                    backend.state,
                    WAIT_EVENT_TYPES.get(wait_event, "Extension") if wait_event else None,
                    wait_event,
                    backend.query,
                    backend.backend_xid,
                )
            )
        if rows:
            with self._lock:
                self._ring.extend(rows)
                self.total_samples += len(rows)
        return len(rows)

    def samples(self) -> list[tuple]:
        """Snapshot of the retained ring, oldest first (``pg_ash``)."""
        with self._lock:
            return list(self._ring)

    def wait_profile(self) -> list[tuple]:
        """Aggregate the ring into (query, wait-event) time shares.

        Each retained sample is one quantum of backend time; grouping
        by (query, wait event or ``CPU``) turns sample counts into the
        share of backend time each query spent on each wait, the
        Oracle-ASH "top queries by wait" view.
        """
        ring = self.samples()
        if not ring:
            return []
        counts: dict[tuple[str, str], int] = {}
        for row in ring:
            event = row[5] or "CPU"
            key = (row[6] or "", event)
            counts[key] = counts.get(key, 0) + 1
        total = len(ring)
        rows = [
            (
                query,
                WAIT_EVENT_TYPES.get(event, "CPU" if event == "CPU" else "Extension"),
                event,
                n,
                n / total,
            )
            for (query, event), n in counts.items()
        ]
        rows.sort(key=lambda r: (-r[3], r[0], r[2]))
        return rows

    def reset(self) -> None:
        """``pg_stat_reset()``: drop retained samples, keep totals."""
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


#: Stat-history metrics drawn per tick from the collector's cumulative
#: families.  Long format (metric, label) so new families need no
#: schema change — the same reason WaitEventStats is dict-keyed.
class StatHistory:
    """Bounded ring of periodic counter deltas (``pg_stat_history``)."""

    def __init__(self, collector: Any, ring_size: int = 512) -> None:
        self._collector = collector
        self._lock = threading.Lock()
        self._ring: deque[tuple] = deque(maxlen=max(int(ring_size), 1))
        self._last: dict[tuple[str, str], float] = {}
        self._last_time: float | None = None
        #: Lifetime ticks; survives :meth:`reset`.
        self.total_ticks = 0

    def resize(self, ring_size: int) -> None:
        with self._lock:
            self._ring = deque(self._ring, maxlen=max(int(ring_size), 1))

    def _collect(self) -> dict[tuple[str, str], float]:
        """Current cumulative values, keyed (metric, label)."""
        c = self._collector
        buf = c.buffer.stats
        wal = c.wal.stats
        heap = c.heap
        values: dict[tuple[str, str], float] = {
            ("buffer_hits", ""): buf.hits,
            ("buffer_misses", ""): buf.misses,
            ("buffer_evictions", ""): buf.evictions,
            ("wal_records", ""): wal.records,
            ("wal_bytes", ""): wal.bytes_written,
            ("heap_tuples_fetched", ""): heap.tuples_fetched,
            ("heap_tuples_inserted", ""): heap.tuples_inserted,
            ("heap_tuples_deleted", ""): heap.tuples_deleted,
            ("heap_tuples_updated", ""): heap.tuples_updated,
        }
        calls = 0
        seconds = 0.0
        rows = 0
        for entry in c.statements.copy().values():
            calls += entry.calls
            rows += entry.rows
            seconds += entry.histogram.total_seconds
        values[("statement_calls", "")] = calls
        values[("statement_rows", "")] = rows
        values[("statement_seconds", "")] = seconds
        for info in c.iter_indexes():
            stats = getattr(info.am, "scan_stats", None)
            if stats is not None:
                values[("index_scans", info.name)] = stats.scans
                values[("index_candidates", info.name)] = stats.candidates
        for name, entry in c.quality.copy().items():
            values[("recall_probes", name)] = entry.histogram.count
            values[("recall_sum", name)] = entry.histogram.total
        waits = c.waits.snapshot()
        for event in waits.events():
            values[("wait_count", event)] = waits.counts[event]
            values[("wait_seconds", event)] = waits.seconds.get(event, 0.0)
        return values

    def tick(self, now: float | None = None) -> int:
        """Record one delta window; returns the number of rows added.

        Deltas are computed against the previous tick's snapshot;
        a counter that went *backwards* (``pg_stat_reset()`` cleared a
        resettable family mid-window) is treated as freshly restarted,
        Prometheus ``rate()`` semantics.
        """
        sampled_at = time.time() if now is None else now
        values = self._collect()
        window = sampled_at - self._last_time if self._last_time is not None else 0.0
        rows = []
        for (metric, label), value in sorted(values.items()):
            last = self._last.get((metric, label), 0.0)
            delta = value - last if value >= last else value
            rows.append((sampled_at, metric, label, value, delta, window))
        with self._lock:
            self._ring.extend(rows)
            self.total_ticks += 1
        self._last = values
        self._last_time = sampled_at
        return len(rows)

    def rows(self) -> list[tuple]:
        """Snapshot of the retained ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def reset(self) -> None:
        """``pg_stat_reset()``: drop history rows, keep tick totals.

        The ``_last`` snapshot survives so the first post-reset tick
        still produces correct deltas for the monotonic families.
        """
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class TimeSeriesSampler:
    """Daemon thread driving ASH sampling and stat-history ticks.

    The loop re-reads ``ash_sampling_interval_ms`` and
    ``stat_history_interval_ms`` on every pass, so ``SET`` takes
    effect without a restart; ``stop()`` joins the thread.
    """

    def __init__(self, catalog: Any, ash: ActiveSessionHistory, history: StatHistory) -> None:
        self._catalog = catalog
        self._ash = ash
        self._history = history
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _interval(self, name: str, default_ms: float) -> float:
        try:
            value = float(self._catalog.get_setting(name))
        except Exception:
            value = default_ms
        return max(value, 1.0) / 1e3

    def _run(self) -> None:
        last_tick = time.monotonic()
        while not self._stop.wait(self._interval("ash_sampling_interval_ms", 10.0)):
            self._ash.sample_once()
            now = time.monotonic()
            if now - last_tick >= self._interval("stat_history_interval_ms", 1000.0):
                self._history.tick()
                last_tick = now

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, name="pgsim-ash-sampler", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None


def install_timeseries_views(
    catalog: Any, ash: ActiveSessionHistory, history: StatHistory
) -> None:
    """Register ``pg_ash`` / ``pg_wait_profile`` / ``pg_stat_history``.

    All three are pure ring snapshots, so the lock-free virtual-view
    read path serves them without the statement lock — a blocked
    workload can be diagnosed *while* it is blocked.
    """
    # Local import mirrors activity.py: stats imports nothing from
    # here, keeping the view dependency one-way.
    from repro.pgsim.stats import StatView

    for view in (
        StatView(
            "pg_ash",
            [
                "sampled_at",
                "pid",
                "name",
                "state",
                "wait_event_type",
                "wait_event",
                "query",
                "backend_xid",
            ],
            ash.samples,
        ),
        StatView(
            "pg_wait_profile",
            ["query", "wait_event_type", "wait_event", "samples", "share"],
            ash.wait_profile,
        ),
        StatView(
            "pg_stat_history",
            ["sampled_at", "metric", "label", "value", "delta", "window_seconds"],
            history.rows,
        ),
    ):
        catalog.register_view(view)
