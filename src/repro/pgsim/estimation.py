"""Planner estimate-vs-actual tracking (``pg_stat_estimation_errors``).

The adaptive filtered-search work (ROADMAP item 3) needs to know
*where the selectivity model is wrong* before strategy crossovers can
be costed honestly.  This module accumulates, per (normalized query,
plan-node type):

* estimated vs. actual row counts and their **q-error**
  ``max(est/actual, actual/est)`` — the standard cardinality-quality
  metric (both sides clamped to >= 1 row, matching the planner's own
  row-count floor);
* estimated vs. measured selectivity, where the plan carries one
  (``Filter`` over a seq scan; hybrid ``IndexScan`` with a pushed-down
  predicate, measured as emitted/examined).

Actual row counts come from the same per-node instrument dict both
executor paths feed ``EXPLAIN ANALYZE`` from, so the view reconciles
exactly with the ``actual rows=N`` annotations — differential-tested
in ``tests/test_timeseries_obs.py``.
"""

from __future__ import annotations

from typing import Any


def q_error(est_rows: float, actual_rows: float) -> float:
    """``max(est/actual, actual/est)`` with both sides clamped to 1."""
    est = max(float(est_rows), 1.0)
    act = max(float(actual_rows), 1.0)
    return max(est / act, act / est)


class EstimationEntry:
    """Accumulated estimate-vs-actual record for one (query, node,
    strategy) — strategy is the filtered-search strategy that executed
    the node ("pre-filter"/"post-filter"/"in-filter"), None elsewhere,
    so mis-estimates attribute to the strategy that suffered them."""

    __slots__ = (
        "query",
        "node",
        "strategy",
        "calls",
        "est_rows",
        "actual_rows",
        "sum_q_error",
        "max_q_error",
        "est_selectivity",
        "actual_selectivity",
    )

    def __init__(self, query: str, node: str, strategy: str | None = None) -> None:
        self.query = query
        self.node = node
        self.strategy = strategy
        self.calls = 0
        self.est_rows = 0.0
        self.actual_rows = 0
        self.sum_q_error = 0.0
        self.max_q_error = 0.0
        self.est_selectivity: float | None = None
        self.actual_selectivity: float | None = None

    def record(
        self,
        est_rows: float,
        actual_rows: int,
        est_selectivity: float | None,
        actual_selectivity: float | None,
    ) -> None:
        self.calls += 1
        self.est_rows = float(est_rows)
        self.actual_rows = int(actual_rows)
        q = q_error(est_rows, actual_rows)
        self.sum_q_error += q
        if q > self.max_q_error:
            self.max_q_error = q
        if est_selectivity is not None:
            self.est_selectivity = est_selectivity
        if actual_selectivity is not None:
            self.actual_selectivity = actual_selectivity


class EstimationStats:
    """Per-database accumulator behind ``pg_stat_estimation_errors``."""

    __slots__ = ("_entries", "total_recorded")

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str, str | None], EstimationEntry] = {}
        #: Lifetime recorded nodes; survives :meth:`reset`.
        self.total_recorded = 0

    def record(
        self,
        query: str,
        node: str,
        est_rows: float,
        actual_rows: int,
        est_selectivity: float | None = None,
        actual_selectivity: float | None = None,
        strategy: str | None = None,
    ) -> None:
        entry = self._entries.get((query, node, strategy))
        if entry is None:
            entry = self._entries[(query, node, strategy)] = EstimationEntry(
                query, node, strategy
            )
        entry.record(est_rows, actual_rows, est_selectivity, actual_selectivity)
        self.total_recorded += 1

    def entries(self) -> list[EstimationEntry]:
        # .copy(): read lock-free while another session records.
        return list(self._entries.copy().values())

    def entry(self, query: str, node: str) -> EstimationEntry | None:
        """First entry for (query, node), any strategy."""
        for entry in self.entries():
            if entry.query == query and entry.node == node:
                return entry
        return None

    def max_q_error(self) -> float:
        return max((e.max_q_error for e in self.entries()), default=0.0)

    def reset(self) -> None:
        """``pg_stat_reset()``: drop entries, keep the lifetime total."""
        self._entries.clear()

    def rows(self) -> list[tuple]:
        """``pg_stat_estimation_errors`` rows, worst offenders first."""
        rows = [
            (
                e.query,
                e.node,
                e.calls,
                e.est_rows,
                e.actual_rows,
                e.sum_q_error / e.calls if e.calls else 0.0,
                e.max_q_error,
                e.est_selectivity,
                e.actual_selectivity,
                e.strategy,
            )
            for e in self.entries()
        ]
        rows.sort(key=lambda r: (-r[6], r[0], r[1]))
        return rows


def record_plan(
    stats: EstimationStats, query: str, plan: Any, instrument: dict[int, list]
) -> int:
    """Walk an executed plan and record every estimated node.

    ``instrument`` is the per-node ``[rows, seconds, hits, misses]``
    dict the executor filled while running the plan — the identical
    source ``EXPLAIN ANALYZE`` renders, which is what makes the view
    reconcile exactly with the ``actual rows=N`` annotations.  Nodes
    the planner left uncosted (virtual-view scans) carry
    ``plan_rows is None`` and are skipped.  Returns the number of
    nodes recorded.
    """
    recorded = 0
    node = plan
    while node is not None:
        entry = instrument.get(id(node))
        if entry is not None and node.plan_rows is not None:
            actual = int(entry[0])
            actual_sel = _actual_selectivity(node, instrument, actual)
            stats.record(
                query,
                type(node).__name__,
                float(node.plan_rows),
                actual,
                node.est_selectivity,
                actual_sel,
                strategy=node_strategy(node),
            )
            recorded += 1
        node = getattr(node, "child", None)
    return recorded


def node_strategy(node: Any) -> str | None:
    """The filtered-search strategy a plan node executes under, if any."""
    strategy = getattr(node, "strategy", None)
    if isinstance(strategy, str):
        return strategy
    return None


def _actual_selectivity(node: Any, instrument: dict[int, list], actual: int) -> float | None:
    """Measured selectivity for nodes that carry an estimate.

    * Nodes stashing ``actual_matched``/``actual_examined`` (the three
      filtered-search scan strategies): matched / examined — the
      executor's own count of predicate survivors among the candidates
      it actually checked;
    * ``Filter``: rows out / rows in (the child's actual rows);
    * hybrid ``IndexScan`` without a matched stash: rows emitted /
      candidates examined (``actual_examined``).
    """
    if node.est_selectivity is None:
        return None
    matched = getattr(node, "actual_matched", None)
    examined = getattr(node, "actual_examined", None)
    if matched is not None and examined:
        return matched / examined
    child = getattr(node, "child", None)
    if child is not None:
        child_entry = instrument.get(id(child))
        if child_entry and child_entry[0]:
            return actual / child_entry[0]
        return None
    if examined:
        return actual / examined
    return None


class StrategyEntry:
    """Accumulated counters for one filtered-search strategy."""

    __slots__ = (
        "strategy",
        "chosen",
        "fallbacks",
        "sum_est_sel",
        "n_est",
        "sum_actual_sel",
        "n_actual",
    )

    def __init__(self, strategy: str) -> None:
        self.strategy = strategy
        self.chosen = 0
        self.fallbacks = 0
        self.sum_est_sel = 0.0
        self.n_est = 0
        self.sum_actual_sel = 0.0
        self.n_actual = 0


class StrategyStats:
    """Per-strategy filtered-search accounting (``pg_stat_filtered_search``).

    One record per hybrid-query execution: which strategy the plan
    ran, the planner's estimated selectivity, the selectivity the
    executor measured (predicate survivors / candidates checked), and
    whether a post-filter scan hit the ``max_filtered_overfetch`` cap
    and fell back to brute force.
    """

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: dict[str, StrategyEntry] = {}

    def record(
        self,
        strategy: str,
        est_selectivity: float | None = None,
        actual_matched: int | None = None,
        actual_examined: int | None = None,
        fell_back: bool = False,
    ) -> None:
        entry = self._entries.get(strategy)
        if entry is None:
            entry = self._entries[strategy] = StrategyEntry(strategy)
        entry.chosen += 1
        if fell_back:
            entry.fallbacks += 1
        if est_selectivity is not None:
            entry.sum_est_sel += float(est_selectivity)
            entry.n_est += 1
        if actual_matched is not None and actual_examined:
            entry.sum_actual_sel += actual_matched / actual_examined
            entry.n_actual += 1

    def entries(self) -> list[StrategyEntry]:
        return list(self._entries.copy().values())

    def entry(self, strategy: str) -> StrategyEntry | None:
        return self._entries.get(strategy)

    def reset(self) -> None:
        self._entries.clear()

    def rows(self) -> list[tuple]:
        """``pg_stat_filtered_search`` rows, one per strategy."""
        return [
            (
                e.strategy,
                e.chosen,
                e.fallbacks,
                e.sum_est_sel / e.n_est if e.n_est else None,
                e.sum_actual_sel / e.n_actual if e.n_actual else None,
            )
            for e in sorted(self.entries(), key=lambda e: e.strategy)
        ]


def install_estimation_view(catalog: Any, stats: EstimationStats) -> None:
    """Register ``pg_stat_estimation_errors`` on a catalog."""
    from repro.pgsim.stats import StatView

    catalog.register_view(
        StatView(
            "pg_stat_estimation_errors",
            [
                "query",
                "node",
                "calls",
                "est_rows",
                "actual_rows",
                "mean_q_error",
                "max_q_error",
                "est_selectivity",
                "actual_selectivity",
                "strategy",
            ],
            stats.rows,
        )
    )


def install_strategy_view(catalog: Any, stats: StrategyStats) -> None:
    """Register ``pg_stat_filtered_search`` on a catalog."""
    from repro.pgsim.stats import StatView

    catalog.register_view(
        StatView(
            "pg_stat_filtered_search",
            [
                "strategy",
                "chosen",
                "fallbacks",
                "est_selectivity",
                "actual_selectivity",
            ],
            stats.rows,
        )
    )
