"""Heap access method: row storage over slotted pages.

A :class:`HeapTable` stores rows of a fixed schema in a page file,
addressed by :class:`TID` (block number, offset number) — the same
ctid addressing PostgreSQL uses and the one PASE's
``HNSWGlobalId``/TID machinery builds on.

All access goes through the buffer manager, so every fetch pays the
page-indirection toll the paper identifies as RC#2.

Visibility: every read path takes an optional
:class:`~repro.pgsim.xact.Snapshot` and evaluates the
``HeapTupleSatisfiesMVCC`` predicate (:func:`repro.pgsim.xact.tuple_visible`)
against the tuple's ``xmin``/``xmax``.  Without a snapshot the check is
latest-committed; without a transaction manager (``xact=None``,
standalone heaps in tests) it degrades to the historical
``xmax != 0`` dead test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.pgsim.buffer import BufferManager
from repro.pgsim.page import PageCorruptError, PageFullError
from repro.pgsim.stats import HeapAccessStats
from repro.pgsim.tuple_format import (
    Schema,
    decode_column,
    decode_tuple,
    encode_tuple,
    set_tuple_xmax,
    tuple_header,
    tuple_xmax,
)
from repro.pgsim.wal import WriteAheadLog
from repro.pgsim.xact import (
    SerializationError,
    Snapshot,
    TransactionManager,
    tuple_visible,
)


@dataclass(frozen=True, slots=True, order=True)
class TID:
    """Tuple identifier: (block number, 1-based offset number)."""

    blkno: int
    offset: int

    def __repr__(self) -> str:
        return f"({self.blkno},{self.offset})"


class HeapTable:
    """Rows of one table, stored in a dedicated page file."""

    def __init__(
        self,
        name: str,
        schema: Schema,
        buffer: BufferManager,
        wal: WriteAheadLog | None = None,
        stats: "HeapAccessStats | None" = None,
        xact: TransactionManager | None = None,
    ) -> None:
        self.name = name
        self.schema = list(schema)
        self.buffer = buffer
        self.wal = wal
        if stats is None:
            stats = HeapAccessStats()
        #: Tuple-traffic counters; the executor passes one shared
        #: instance per database so statement deltas cover every
        #: relation (see :class:`repro.pgsim.stats.HeapAccessStats`).
        self.stats = stats
        #: Commit-state oracle for visibility checks; ``None`` for
        #: standalone heaps (every xid then counts as committed).
        self.xact = xact
        self.relation = f"{name}.heap"
        if not buffer.disk.relation_exists(self.relation):
            buffer.disk.create_relation(self.relation)
        self.tuple_count = 0
        #: Tuples deleted (or insert-aborted) since the last vacuum;
        #: feeds ``pg_stat_user_tables.n_dead_tup`` and the planner's
        #: stale-``reltuples`` discount (see ``analyze.table_shape``).
        self.n_dead_tup = 0
        #: Per-relation maintenance counters for ``pg_stat_user_tables``.
        self.n_tup_upd = 0
        self.vacuum_count = 0
        self.autovacuum_count = 0
        #: free-space hint: last block known to have room (mini-FSM).
        self._insert_block: int | None = None
        self._bootstrap_count()

    def _bootstrap_count(self) -> None:
        """Recount tuples after opening an existing relation.

        Recovery purges loser transactions from the pages (see
        :func:`repro.pgsim.wal.replay`), so every surviving xid is
        committed: live is simply ``xmax == 0``.
        """
        n_blocks = self.buffer.disk.n_blocks(self.relation)
        count = 0
        dead = 0
        for blkno in range(n_blocks):
            with self.buffer.page(self.relation, blkno) as page:
                for off in page.live_items():
                    if tuple_xmax(page.get_item_view(off)) == 0:
                        count += 1
                    else:
                        dead += 1
        self.tuple_count = count
        self.n_dead_tup = dead
        if n_blocks:
            self._insert_block = n_blocks - 1

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[Any], xid: int) -> TID:
        """Insert one row stamped ``xmin = xid``; returns its TID.

        ``tuple_count`` advances optimistically; if ``xid`` later
        aborts, :meth:`TransactionManager.abort` reverses it.
        """
        data = encode_tuple(self.schema, values, xmin=xid)
        max_item = self.buffer.disk.page_size - 28  # header + one pointer
        if len(data) > max_item:
            raise ValueError(
                f"tuple of {len(data)} bytes does not fit a "
                f"{self.buffer.disk.page_size}-byte page; pgsim does not "
                "implement TOAST"
            )
        blkno, offset = self._place(data, xid)
        self.tuple_count += 1
        self.stats.tuples_inserted += 1
        self._note_insert(xid)
        return TID(blkno, offset)

    def _note_insert(self, xid: int) -> None:
        if self.xact is None:
            return
        txn = self.xact._txns.get(xid)
        if txn is not None:
            txn.note_insert(self)

    def _note_delete(self, xid: int) -> None:
        if self.xact is None:
            return
        txn = self.xact._txns.get(xid)
        if txn is not None:
            txn.note_delete(self)

    def _place(self, data: bytes, xid: int) -> tuple[int, int]:
        if self._insert_block is not None:
            frame = self.buffer.pin(self.relation, self._insert_block)
            try:
                offset = frame.page.insert_item(data)
            except PageFullError:
                self.buffer.unpin(frame)
            else:
                try:
                    self._log_insert(xid, self._insert_block, data, frame.page)
                except BaseException:
                    # A tuple the WAL never heard of must not stay in
                    # the page: it would be a committed-looking phantom
                    # to every later in-process read.
                    frame.page.delete_item(offset)
                    self.buffer.unpin(frame)
                    raise
                self.buffer.unpin(frame, dirty=True)
                return self._insert_block, offset
        blkno, frame = self.buffer.new_page(self.relation)
        try:
            offset = frame.page.insert_item(data)
            try:
                self._log_insert(xid, blkno, data, frame.page)
            except BaseException:
                frame.page.delete_item(offset)
                raise
        finally:
            self.buffer.unpin(frame, dirty=True)
        self._insert_block = blkno
        return blkno, offset

    def _log_insert(self, xid: int, blkno: int, data: bytes, page) -> None:
        if self.wal is None:
            return
        # Full-page write on the first post-checkpoint touch; the image
        # stands in for the incremental record (see WAL docs).
        if self.wal.ensure_page_image(xid, self.relation, blkno, page) is None:
            page.lsn = self.wal.log_insert(xid, self.relation, blkno, data)

    def delete(self, tid: TID, xid: int) -> None:
        """Mark a row deleted (sets its xmax; space reclaimed by vacuum).

        Raises:
            KeyError: if the tuple is already deleted (by this
                transaction, or — without a transaction manager — by
                anyone).
            SerializationError: write-write conflict — another
                transaction's delete of this tuple is in progress or
                already committed (snapshot isolation's no-wait rule).
        """
        frame = self.buffer.pin(self.relation, tid.blkno)
        try:
            view = frame.page.get_item_view(tid.offset)
            old_xmax = tuple_xmax(view)
            if old_xmax != 0:
                if self.xact is None or old_xmax == xid:
                    raise KeyError(f"tuple {tid} is already deleted")
                if self.xact.is_in_progress(old_xmax) or self.xact.is_committed(old_xmax):
                    raise SerializationError()
                # The previous deleter aborted: its xmax is dead weight
                # and we may overwrite it with ours.
            off, length = frame.page._pointer(tid.offset)
            set_tuple_xmax(_writable(frame.page.buf, off, length), xid)
            if self.wal is not None:
                try:
                    if self.wal.ensure_page_image(xid, self.relation, tid.blkno, frame.page) is None:
                        frame.page.lsn = self.wal.log_delete(
                            xid, self.relation, tid.blkno, tid.offset
                        )
                except BaseException:
                    # Un-delete: a removal the WAL never recorded must
                    # not take effect (mirror of the insert undo).
                    set_tuple_xmax(_writable(frame.page.buf, off, length), old_xmax)
                    raise
        finally:
            self.buffer.unpin(frame, dirty=True)
        self.tuple_count -= 1
        self.n_dead_tup += 1
        self.stats.tuples_deleted += 1
        self._note_delete(xid)

    def update(self, tid: TID, values: Sequence[Any], xid: int) -> TID:
        """MVCC update: delete + insert as one operation; returns the new TID.

        The old version's ``xmax`` is stamped with ``xid`` (same
        first-updater-wins conflict rules as :meth:`delete`) and the
        new version is inserted with ``xmin = xid``.  When the new
        tuple fits on the old version's page, both halves are covered
        by a single :data:`~repro.pgsim.wal.REC_UPDATE` record; a full
        page falls back to separate delete + insert records.

        Raises:
            KeyError: if the tuple is already deleted by this
                transaction (or by anyone, without a manager).
            SerializationError: write-write conflict with another
                in-progress or committed updater/deleter.
        """
        data = encode_tuple(self.schema, values, xmin=xid)
        max_item = self.buffer.disk.page_size - 28
        if len(data) > max_item:
            raise ValueError(
                f"tuple of {len(data)} bytes does not fit a "
                f"{self.buffer.disk.page_size}-byte page; pgsim does not "
                "implement TOAST"
            )
        new_offset: int | None = None
        frame = self.buffer.pin(self.relation, tid.blkno)
        try:
            view = frame.page.get_item_view(tid.offset)
            old_xmax = tuple_xmax(view)
            if old_xmax != 0:
                if self.xact is None or old_xmax == xid:
                    raise KeyError(f"tuple {tid} is already deleted")
                if self.xact.is_in_progress(old_xmax) or self.xact.is_committed(old_xmax):
                    raise SerializationError()
                # Previous deleter aborted: overwrite its xmax stamp.
            off, length = frame.page._pointer(tid.offset)
            set_tuple_xmax(_writable(frame.page.buf, off, length), xid)
            try:
                new_offset = frame.page.insert_item(data)
            except PageFullError:
                new_offset = None
            if self.wal is not None:
                try:
                    if self.wal.ensure_page_image(xid, self.relation, tid.blkno, frame.page) is None:
                        if new_offset is not None:
                            frame.page.lsn = self.wal.log_update(
                                xid, self.relation, tid.blkno, tid.offset, data
                            )
                        else:
                            frame.page.lsn = self.wal.log_delete(
                                xid, self.relation, tid.blkno, tid.offset
                            )
                except BaseException:
                    # Unwind both halves: the WAL never heard of them.
                    if new_offset is not None:
                        frame.page.delete_item(new_offset)
                    set_tuple_xmax(_writable(frame.page.buf, off, length), old_xmax)
                    raise
        finally:
            self.buffer.unpin(frame, dirty=True)
        if new_offset is not None:
            new_tid = TID(tid.blkno, new_offset)
        else:
            # Old page is full: place the new version elsewhere (logs
            # its own insert record).
            blkno, offset = self._place(data, xid)
            new_tid = TID(blkno, offset)
        # Counter effects mirror delete + insert, so abort undo (which
        # reverses per-heap insert/delete tallies) balances exactly.
        self.n_dead_tup += 1
        self.n_tup_upd += 1
        self.stats.tuples_updated += 1
        self._note_insert(xid)
        self._note_delete(xid)
        return new_tid

    def vacuum(
        self, horizon: int | None = None, dead_tids: list[TID] | None = None
    ) -> int:
        """Physically remove dead rows; returns tuples reclaimed.

        Dead line pointers stay (TIDs of live tuples are stable);
        tuple space is compacted per page.  With a transaction manager
        attached, a tuple is reclaimable when its inserter aborted or
        its deleter committed below ``horizon`` (no open snapshot can
        still see it — pass :meth:`TransactionManager.safe_horizon`);
        leftover xmax stamps from *aborted* deleters are cleared so the
        rows stop paying the clog lookup.  Without a manager every
        ``xmax != 0`` tuple is reclaimed, as before.

        When ``dead_tids`` is given, every reclaimed tuple's TID is
        appended to it — the executor forwards the list to each index
        AM's :meth:`~repro.pgsim.am.IndexAmRoutine.ambulkdelete`.
        """
        reclaimed = 0
        unstamped = 0
        for blkno in range(self.n_blocks()):
            frame = self.buffer.pin(self.relation, blkno)
            try:
                page = frame.page
                dead = []
                cleared = []
                for off in page.live_items():
                    view = page.get_item_view(off)
                    xmin, xmax = tuple_header(view)
                    if self.xact is None:
                        if xmax != 0:
                            dead.append(off)
                        continue
                    if self.xact.is_aborted(xmin):
                        dead.append(off)  # aborted insert: never visible again
                    elif xmax != 0:
                        if self.xact.is_aborted(xmax):
                            cleared.append(off)  # aborted delete: row lives
                        elif self.xact.is_committed(xmax) and (
                            horizon is None or xmax < horizon
                        ):
                            dead.append(off)
                        # else: deleter in progress (or above the
                        # horizon) — some snapshot may still need it.
                for off in cleared:
                    p_off, length = page._pointer(off)
                    set_tuple_xmax(_writable(page.buf, p_off, length), 0)
                for off in dead:
                    page.delete_item(off)
                if dead_tids is not None:
                    dead_tids.extend(TID(blkno, off) for off in dead)
                if dead:
                    page.defragment()
                    reclaimed += len(dead)
                unstamped += len(cleared)
            finally:
                self.buffer.unpin(frame, dirty=bool(dead or cleared))
        self.n_dead_tup = max(0, self.n_dead_tup - reclaimed)
        self.vacuum_count += 1
        if reclaimed or unstamped:
            self._insert_block = None  # hint invalidated
        return reclaimed

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def _visible(self, view, snapshot: Snapshot | None) -> bool:
        xmin, xmax = tuple_header(view)
        return tuple_visible(self.xact, snapshot, xmin, xmax)

    def fetch(self, tid: TID, snapshot: Snapshot | None = None) -> list[Any]:
        """Fetch one row by TID.

        Raises:
            KeyError: if the tuple is dead, deleted, or invisible to
                ``snapshot``.
        """
        with self.buffer.page(self.relation, tid.blkno) as page:
            view = page.get_item_view(tid.offset)
            if not self._visible(view, snapshot):
                raise KeyError(f"tuple {tid} is deleted")
            self.stats.tuples_fetched += 1
            return decode_tuple(self.schema, view)

    def fetch_column(
        self, tid: TID, column_index: int, snapshot: Snapshot | None = None
    ) -> Any:
        """Fetch a single column of one row (PASE's hot path)."""
        with self.buffer.page(self.relation, tid.blkno) as page:
            view = page.get_item_view(tid.offset)
            if not self._visible(view, snapshot):
                raise KeyError(f"tuple {tid} is deleted")
            self.stats.tuples_fetched += 1
            return decode_column(self.schema, view, column_index)

    def fetch_many(
        self, tids: Sequence[TID], snapshot: Snapshot | None = None
    ) -> list[list[Any] | None]:
        """Fetch many rows by TID with one buffer pin per heap block.

        Results align with ``tids``; deleted or snapshot-invisible
        tuples come back as ``None`` (the batched analogue of
        :meth:`fetch` raising ``KeyError``), so index scans can skip
        dead entries without a per-tuple exception round trip.
        """
        out: list[list[Any] | None] = [None] * len(tids)
        by_block: dict[int, list[int]] = {}
        for i, tid in enumerate(tids):
            by_block.setdefault(tid.blkno, []).append(i)
        for blkno, positions in by_block.items():
            with self.buffer.page(self.relation, blkno) as page:
                for i in positions:
                    view = page.get_item_view(tids[i].offset)
                    if not self._visible(view, snapshot):
                        continue
                    out[i] = decode_tuple(self.schema, view)
                    self.stats.tuples_fetched += 1
        return out

    def fetch_column_many(
        self, tids: Sequence[TID], column_index: int, snapshot: Snapshot | None = None
    ) -> list[Any]:
        """Batched :meth:`fetch_column`, grouped by heap block.

        Raises:
            KeyError: if any addressed tuple is deleted or invisible
                (mirroring the single-tuple path's contract).
        """
        out: list[Any] = [None] * len(tids)
        by_block: dict[int, list[int]] = {}
        for i, tid in enumerate(tids):
            by_block.setdefault(tid.blkno, []).append(i)
        for blkno, positions in by_block.items():
            with self.buffer.page(self.relation, blkno) as page:
                for i in positions:
                    view = page.get_item_view(tids[i].offset)
                    if not self._visible(view, snapshot):
                        raise KeyError(f"tuple {tids[i]} is deleted")
                    out[i] = decode_column(self.schema, view, column_index)
                    self.stats.tuples_fetched += 1
        return out

    def fetch_column_any(self, tid: TID, column_index: int) -> Any:
        """Fetch one column of *any* tuple version, dead or alive.

        No MVCC check: a tombstoned tuple's payload is still intact
        until VACUUM physically removes it, and index AMs that keep
        only TIDs (pgvector) need the payload of every version their
        entries address — visibility is the executor's job.  Returns
        ``None`` when the slot was physically reclaimed (the entry lags
        a completed VACUUM).
        """
        with self.buffer.page(self.relation, tid.blkno) as page:
            try:
                view = page.get_item_view(tid.offset)
            except PageCorruptError:
                return None
            self.stats.tuples_fetched += 1
            return decode_column(self.schema, view, column_index)

    def fetch_column_many_any(
        self, tids: Sequence[TID], column_index: int
    ) -> list[Any]:
        """Batched :meth:`fetch_column_any`, one pin per heap block.

        Results align with ``tids``; physically reclaimed slots come
        back as ``None`` for the caller to filter.
        """
        out: list[Any] = [None] * len(tids)
        by_block: dict[int, list[int]] = {}
        for i, tid in enumerate(tids):
            by_block.setdefault(tid.blkno, []).append(i)
        for blkno, positions in by_block.items():
            with self.buffer.page(self.relation, blkno) as page:
                for i in positions:
                    try:
                        view = page.get_item_view(tids[i].offset)
                    except PageCorruptError:
                        continue
                    out[i] = decode_column(self.schema, view, column_index)
                    self.stats.tuples_fetched += 1
        return out

    def scan(self, snapshot: Snapshot | None = None) -> Iterator[tuple[TID, list[Any]]]:
        """Sequential scan over all rows visible under ``snapshot``."""
        for blkno in range(self.n_blocks()):
            with self.buffer.page(self.relation, blkno) as page:
                for off in page.live_items():
                    view = page.get_item_view(off)
                    if not self._visible(view, snapshot):
                        continue
                    self.stats.tuples_fetched += 1
                    yield TID(blkno, off), decode_tuple(self.schema, view)

    def scan_batches(
        self, snapshot: Snapshot | None = None
    ) -> Iterator[list[tuple[TID, list[Any]]]]:
        """Block-at-a-time sequential scan: one batch per heap page.

        Row order across batches matches :meth:`scan` exactly; pages
        with no visible rows produce no batch.
        """
        for blkno in range(self.n_blocks()):
            batch: list[tuple[TID, list[Any]]] = []
            with self.buffer.page(self.relation, blkno) as page:
                for off in page.live_items():
                    view = page.get_item_view(off)
                    if not self._visible(view, snapshot):
                        continue
                    batch.append((TID(blkno, off), decode_tuple(self.schema, view)))
            if batch:
                self.stats.tuples_fetched += len(batch)
                yield batch

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def n_blocks(self) -> int:
        """Allocated page count."""
        return self.buffer.disk.n_blocks(self.relation)

    def column_index(self, name: str) -> int:
        """Position of a column by name.

        Raises:
            KeyError: for unknown column names.
        """
        for i, col in enumerate(self.schema):
            if col.name == name:
                return i
        raise KeyError(f"table {self.name!r} has no column {name!r}")


def _writable(buf: bytearray, off: int, length: int) -> memoryview:
    return memoryview(buf)[off : off + length]
