"""System catalog and GUC-style settings.

Tracks tables, their schemas, and their indexes — the role of
``pg_class``/``pg_attribute``/``pg_index`` — plus a settings store for
the runtime parameters PASE exposes through ``SET`` (e.g.
``pase.nprobe``, the paper's Table II search knobs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.pgsim.heapam import HeapTable
from repro.pgsim.tuple_format import Column


class CatalogError(RuntimeError):
    """Raised for catalog violations (duplicate names, missing objects)."""


@dataclass
class IndexInfo:
    """Catalog entry for one index."""

    name: str
    table_name: str
    column_name: str
    am_name: str
    options: dict[str, Any]
    am: Any  # the IndexAmRoutine instance (typed loosely to avoid cycles)


@dataclass
class TableInfo:
    """Catalog entry for one table."""

    name: str
    columns: list[Column]
    heap: HeapTable
    indexes: dict[str, IndexInfo] = field(default_factory=dict)
    #: Planner statistics (:class:`repro.pgsim.analyze.TableStats`),
    #: populated by ``ANALYZE`` — the pg_class/pg_statistic role.
    #: ``None`` until the table has been analyzed.
    stats: Any = None

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]


#: Default GUC values; names follow PASE's SQL examples and Table II,
#: plus PostgreSQL's planner cost constants (costsize.c defaults).
DEFAULT_SETTINGS: dict[str, Any] = {
    "pase.nprobe": 20,
    "pase.efs": 200,
    "pase.fixed_heap": False,  # RC#6 ablation: use a k-sized heap
    "pase.optimized_pctable": False,  # RC#7 ablation
    "enable_indexscan": True,
    "enable_seqscan": True,
    "enable_batch_exec": False,  # RC#3 ablation: batch-at-a-time executor
    # Hybrid filtered search: force one strategy ("pre-filter" /
    # "post-filter" / "in-filter") instead of costing all three;
    # "auto" keeps the cost-based choice.
    "filtered_search_strategy": "auto",
    # Hard cap on post-filter over-fetching, as a multiple of k: the
    # planner never sizes fetch_k above max_filtered_overfetch * k and
    # the executor's geometric rescan loop stops doubling there —
    # falling back to a brute-force pre-filter pass instead of
    # re-scanning the whole index on a mis-estimated rare predicate.
    "max_filtered_overfetch": 32,
    "track_query_stats": True,  # per-statement QueryStats + pg_stat_statements
    # Planner cost model (PostgreSQL costsize.c defaults).
    "seq_page_cost": 1.0,
    "random_page_cost": 4.0,
    "cpu_tuple_cost": 0.01,
    "cpu_index_tuple_cost": 0.005,
    "cpu_operator_cost": 0.0025,
    # ANALYZE sampling resolution: MCV list length and histogram buckets.
    "default_statistics_target": 100,
    # Autovacuum-style maintenance (checked after each statement when
    # ``autovacuum`` is on): vacuum a table once
    # ``n_dead_tup > threshold + scale_factor * n_live_tup``.
    "autovacuum": False,
    "autovacuum_vacuum_threshold": 50,
    "autovacuum_vacuum_scale_factor": 0.2,
    # IVF list maintenance: re-center a cluster's centroid during
    # VACUUM once (dead entries + post-build inserts) exceed this
    # fraction of the list's size.
    "ivf_recluster_threshold": 0.3,
    # Slow-query logging (PostgreSQL semantics): statements taking at
    # least this many milliseconds are recorded in the structured
    # slow-query ring; -1 disables, 0 logs everything.
    "log_min_duration_statement": -1,
    # auto_explain: statements crossing this threshold (ms) capture
    # their EXPLAIN (ANALYZE, BUFFERS) plan + RC attribution into the
    # slow-query record; -1 disables.
    "auto_explain_log_min_duration": -1,
    # Autovacuum runs taking at least this many ms are logged; -1 off.
    "log_autovacuum_min_duration": -1,
    # Capacity of the in-memory slow-query ring (applied at database
    # creation) and an optional JSONL file sink ("" = in-memory only).
    "slow_query_log_size": 256,
    "slow_query_log_file": "",
    # Online recall probes: fraction of top-k index scans re-answered
    # by the brute-force oracle (0.0 = off), with a deterministic
    # per-scan sampling seed.
    "vector_quality_probe_rate": 0.0,
    "vector_quality_probe_seed": 0,
    # Active Session History: a background thread samples every active
    # backend's state/query/wait-event into a bounded ring every
    # ``ash_sampling_interval_ms``, served as pg_ash/pg_wait_profile.
    "ash_enable": False,
    "ash_sampling_interval_ms": 10,
    "ash_ring_size": 4096,
    # Stat-history ring: the same sampler thread records deltas of the
    # cumulative counter families into pg_stat_history every
    # ``stat_history_interval_ms`` (ring size in rows, not ticks).
    "stat_history_interval_ms": 1000,
    "stat_history_ring_size": 512,
    # Planner estimate-vs-actual probes: fraction of ordinary SELECTs
    # executed with per-node instrumentation feeding
    # pg_stat_estimation_errors (EXPLAIN ANALYZE always records).
    # Deterministic per-statement sampling, like the recall probes.
    "estimation_probe_rate": 0.0,
    "estimation_probe_seed": 0,
}

_TRUTHY = {"on", "true", "yes", "1"}
_FALSY = {"off", "false", "no", "0"}


class Catalog:
    """In-memory catalog of tables, indexes and settings."""

    def __init__(self) -> None:
        self._tables: dict[str, TableInfo] = {}
        self._views: dict[str, Any] = {}
        self.settings: dict[str, Any] = dict(DEFAULT_SETTINGS)

    # ------------------------------------------------------------------
    # tables
    # ------------------------------------------------------------------
    def add_table(self, info: TableInfo) -> None:
        if info.name in self._tables:
            raise CatalogError(f"table {info.name!r} already exists")
        if info.name in self._views:
            raise CatalogError(f"{info.name!r} is a reserved statistics view")
        self._tables[info.name] = info

    def drop_table(self, name: str) -> TableInfo:
        info = self.table(name)
        del self._tables[name]
        return info

    def table(self, name: str) -> TableInfo:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # ------------------------------------------------------------------
    # virtual tables (pg_stat_* views)
    # ------------------------------------------------------------------
    def register_view(self, view: Any) -> None:
        """Register a read-only virtual table (a ``StatView``).

        Views share the table namespace from the planner's point of
        view, so a view may not shadow a real table.
        """
        if view.name in self._tables:
            raise CatalogError(f"table {view.name!r} already exists")
        self._views[view.name] = view

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> Any:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"no such view: {name!r}") from None

    def view_names(self) -> list[str]:
        return sorted(self._views)

    # ------------------------------------------------------------------
    # indexes
    # ------------------------------------------------------------------
    def add_index(self, info: IndexInfo) -> None:
        table = self.table(info.table_name)
        if self.find_index(info.name) is not None:
            raise CatalogError(f"index {info.name!r} already exists")
        table.indexes[info.name] = info

    def drop_index(self, name: str) -> IndexInfo:
        for table in self._tables.values():
            if name in table.indexes:
                return table.indexes.pop(name)
        raise CatalogError(f"no such index: {name!r}")

    def find_index(self, name: str) -> IndexInfo | None:
        for table in self._tables.values():
            if name in table.indexes:
                return table.indexes[name]
        return None

    def indexes_on(self, table_name: str, column_name: str | None = None) -> list[IndexInfo]:
        """Indexes of a table, optionally restricted to one column."""
        table = self.table(table_name)
        out = list(table.indexes.values())
        if column_name is not None:
            out = [ix for ix in out if ix.column_name == column_name]
        return out

    # ------------------------------------------------------------------
    # settings
    # ------------------------------------------------------------------
    def set_setting(self, name: str, value: Any) -> None:
        """SET name = value (names are case-insensitive)."""
        self.settings[name.lower()] = value

    def get_setting(self, name: str) -> Any:
        try:
            return self.settings[name.lower()]
        except KeyError:
            raise CatalogError(f"unrecognized configuration parameter: {name!r}") from None

    def get_bool(self, name: str) -> bool:
        """A setting as a boolean, accepting PostgreSQL's spellings.

        ``SET x = off`` reaches the catalog as the string ``"off"``
        (and ``on`` as ``True`` via the parser), so boolean GUCs must
        coerce rather than rely on Python truthiness.
        """
        value = self.get_setting(name)
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in _TRUTHY:
                return True
            if lowered in _FALSY:
                return False
        raise CatalogError(f"parameter {name!r} requires a Boolean value, got {value!r}")
