"""Layout constants of the pgsim storage engine.

Values mirror PostgreSQL where the paper depends on them: the default
page size is 8 KB (Table IV halves it to 4 KB to demonstrate RC#4's
space waste), page headers are 24 bytes, line pointers 4 bytes.
"""

from __future__ import annotations

#: Default page size in bytes (PostgreSQL's default; see Table IV).
DEFAULT_PAGE_SIZE = 8192

#: Smallest page size the engine accepts (header + one pointer + a
#: minimal tuple must fit).
MIN_PAGE_SIZE = 256

#: Page header bytes: lsn(8) checksum(2) flags(2) lower(2) upper(2)
#: special(2) pagesize_version(2) prune_xid(4) — PostgreSQL's layout.
PAGE_HEADER_SIZE = 24

#: Line pointer (item id) bytes: offset(2) + length(2).
LINE_POINTER_SIZE = 4

#: Heap tuple header bytes: xmin(4) xmax(4) natts(2) infomask(2).
TUPLE_HEADER_SIZE = 12

#: Default buffer-pool capacity in pages (128 MB at 8 KB pages) —
#: large enough that warmed-up experiments run fully cached, matching
#: the paper's all-in-memory setting (Sec. III).
DEFAULT_BUFFER_POOL_PAGES = 16384

#: Datum alignment, PostgreSQL's MAXALIGN.
MAXALIGN = 8

#: Invalid block number sentinel.
INVALID_BLOCK = 0xFFFFFFFF


def maxalign(size: int) -> int:
    """Round ``size`` up to the next :data:`MAXALIGN` boundary."""
    return (size + MAXALIGN - 1) & ~(MAXALIGN - 1)
