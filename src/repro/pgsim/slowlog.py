"""Structured slow-query log: pgsim's ``log_min_duration_statement``.

Statements crossing the threshold become structured
:class:`SlowQueryRecord` entries in a bounded in-memory ring —
queryable via the ``pg_slow_queries`` view and exported as counters —
with an optional JSONL file sink for offline ingestion.  When
``auto_explain_log_min_duration`` is also armed, the record carries
the statement's ``EXPLAIN (ANALYZE, BUFFERS)`` plan text and its
RC#1–RC#7 attribution (see :meth:`Executor._select_captured`), so a
production slow-query entry answers the paper's "why was it slow"
question without a re-run.

The ring is deliberately small and records are plain data: logging a
slow statement must never become the next slow statement.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any


@dataclass(slots=True)
class SlowQueryRecord:
    """One structured slow-query log entry."""

    logged_at: float
    backend_id: int
    session: str
    #: ``statement`` or ``autovacuum`` (log_autovacuum_min_duration).
    kind: str
    query: str
    elapsed_ms: float
    rows: int
    #: EXPLAIN (ANALYZE, BUFFERS) text when auto_explain captured one.
    plan: str | None = None
    #: RC#1–RC#7 attribution dict alongside the captured plan.
    rc: dict[str, Any] | None = None
    #: Wait-event deltas of the statement's window, when tracked.
    wait_events: dict[str, Any] = field(default_factory=dict)
    #: Filtered-search strategy the captured plan executed
    #: ("pre-filter"/"post-filter"/"in-filter"), None for non-hybrid
    #: statements or when no plan was captured.
    strategy: str | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "logged_at": self.logged_at,
            "backend_id": self.backend_id,
            "session": self.session,
            "kind": self.kind,
            "query": self.query,
            "elapsed_ms": self.elapsed_ms,
            "rows": self.rows,
            "plan": self.plan,
            "rc": self.rc,
            "wait_events": self.wait_events,
            "strategy": self.strategy,
        }

    def rc_top(self) -> str | None:
        """The dominant attribution bucket, e.g. ``RC#2 Index scan 61%``."""
        buckets = (self.rc or {}).get("buckets") or []
        if not buckets:
            return None
        top = max(buckets, key=lambda b: b.get("seconds", 0.0))
        return f"{top.get('label', '?')} {top.get('fraction', 0.0) * 100:.0f}%"


class SlowQueryLog:
    """Bounded ring of slow-query records with an optional file sink."""

    def __init__(self, capacity: int = 256) -> None:
        self._lock = threading.Lock()
        self._ring: deque[SlowQueryRecord] = deque(maxlen=max(1, int(capacity)))
        #: Monotonic count of records ever logged (survives ring wrap
        #: and reset — the exporter's counter semantics).
        self.total_logged = 0
        self._sink_path: str | None = None
        self._sink_file: Any = None

    @property
    def capacity(self) -> int:
        return self._ring.maxlen or 0

    def configure_sink(self, path: str | None) -> None:
        """Point the JSONL file sink at ``path`` (falsy = in-memory only).

        Repointing (or disabling) the sink closes the previous handle;
        the new file opens lazily on the first record written to it.
        """
        path = path or None
        if path == self._sink_path:
            return
        self.close_sink()
        self._sink_path = path

    def close_sink(self) -> None:
        """Flush and close the sink file handle (``db.close()``)."""
        with self._lock:
            handle, self._sink_file = self._sink_file, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass

    def record(self, record: SlowQueryRecord) -> None:
        with self._lock:
            self._ring.append(record)
            self.total_logged += 1
        if self._sink_path:
            # One persistent append handle, flushed per record so a
            # tail -f (or a crashed process) never misses entries —
            # not a per-record open/close, which dominated the cost of
            # logging under log_min_duration_statement = 0.
            try:
                if self._sink_file is None:
                    self._sink_file = open(self._sink_path, "a")
                self._sink_file.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
                self._sink_file.flush()
            except (OSError, ValueError):
                pass  # a broken sink must not fail the statement

    def records(self) -> list[SlowQueryRecord]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def top(self, n: int = 5) -> list[SlowQueryRecord]:
        """The ``n`` slowest retained records, slowest first."""
        return sorted(self.records(), key=lambda r: r.elapsed_ms, reverse=True)[:n]

    def reset(self) -> None:
        """``pg_stat_reset()``: drop retained records (file sink untouched).

        ``total_logged`` is monotonic and survives, like the buffer/WAL
        counters.
        """
        with self._lock:
            self._ring.clear()


def install_slowlog_view(catalog: Any, slowlog: SlowQueryLog) -> None:
    """Register the ``pg_slow_queries`` virtual table (slowest first)."""
    from repro.pgsim.stats import StatView

    def rows() -> list[tuple]:
        return [
            (
                r.logged_at,
                r.backend_id,
                r.session,
                r.kind,
                r.query,
                r.elapsed_ms,
                r.rows,
                r.rc_top(),
                r.plan,
                r.strategy,
            )
            for r in sorted(
                slowlog.records(), key=lambda r: r.elapsed_ms, reverse=True
            )
        ]

    catalog.register_view(
        StatView(
            "pg_slow_queries",
            [
                "logged_at",
                "pid",
                "session",
                "kind",
                "query",
                "elapsed_ms",
                "rows",
                "rc_top",
                "plan",
                "strategy",
            ],
            rows,
        )
    )
