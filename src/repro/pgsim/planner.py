"""Query planner.

The one planning decision that matters for the paper: a query shaped

.. code-block:: sql

    SELECT ... FROM t
    ORDER BY vec <op> '...'::PASE ASC
    LIMIT k

over a column with a vector index becomes an ordered
:class:`~repro.pgsim.plan.IndexScan` — PASE's ``amgettuple`` path
(Sec. II-E).  Everything else falls back to seq-scan + sort + limit,
exactly how PostgreSQL treats an unindexed ORDER BY.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.common.types import DistanceType
from repro.pgsim import expr as expr_eval
from repro.pgsim import plan as P
from repro.pgsim.catalog import Catalog, TableInfo
from repro.pgsim.sql import ast

#: distance-operator metric name -> DistanceType (index option value).
_METRIC_TO_TYPE = {
    "l2": DistanceType.L2,
    "inner_product": DistanceType.INNER_PRODUCT,
    "cosine": DistanceType.COSINE,
}


class PlanningError(ValueError):
    """Raised for semantically invalid queries."""


def plan_select(stmt: ast.Select, catalog: Catalog) -> P.PlanNode:
    """Build the plan tree for a SELECT statement."""
    if stmt.table is None:
        node: P.PlanNode = P.OneRow()
        return _mark_batch(_project(node, stmt.targets, table=None), catalog)

    if not catalog.has_table(stmt.table) and catalog.has_view(stmt.table):
        return _plan_view_select(stmt, catalog)

    table = catalog.table(stmt.table)
    node = _scan_node(stmt, table, catalog)

    aggregate = _single_aggregate(stmt.targets)
    if aggregate is not None:
        if stmt.order_by is not None:
            raise PlanningError("ORDER BY is not supported with aggregates")
        func, arg = aggregate
        agg: P.PlanNode = P.Aggregate(node, func, arg)
        if stmt.limit is not None:
            agg = P.Limit(agg, stmt.limit)
        return _mark_batch(_project(agg, stmt.targets, table, aggregated=True), catalog)

    if stmt.limit is not None and not isinstance(node, P.IndexScan):
        node = P.Limit(node, stmt.limit)
    elif stmt.limit is not None and isinstance(node, P.IndexScan):
        # The index scan already stops at k, but LIMIT stays in the
        # plan so WHERE filters above it cannot widen the result.
        node = P.Limit(node, stmt.limit)
    return _mark_batch(_project(node, stmt.targets, table), catalog)


def _plan_view_select(stmt: ast.Select, catalog: Catalog) -> P.Project:
    """Plan a SELECT over a pg_stat_* virtual table.

    Views are never index-backed; the pipeline is the seq-scan
    fallback shape (scan → filter → sort/aggregate → limit) over a
    :class:`~repro.pgsim.plan.VirtualScan` leaf.
    """
    view = catalog.view(stmt.table)
    node: P.PlanNode = P.VirtualScan(view)
    aggregate = _single_aggregate(stmt.targets)
    if aggregate is not None:
        if stmt.order_by is not None:
            raise PlanningError("ORDER BY is not supported with aggregates")
        if stmt.where is not None:
            node = P.Filter(node, stmt.where)
        func, arg = aggregate
        agg: P.PlanNode = P.Aggregate(node, func, arg)
        if stmt.limit is not None:
            agg = P.Limit(agg, stmt.limit)
        return _mark_batch(_project(agg, stmt.targets, view, aggregated=True), catalog)
    if stmt.where is not None:
        node = P.Filter(node, stmt.where)
    if stmt.order_by is not None:
        node = P.Sort(node, stmt.order_by.expr, stmt.order_by.ascending)
    if stmt.limit is not None:
        node = P.Limit(node, stmt.limit)
    return _mark_batch(_project(node, stmt.targets, view), catalog)


def _mark_batch(project: P.Project, catalog: Catalog) -> P.Project:
    """Flag a finished plan for the batch executor when the GUC is on."""
    if not catalog.get_bool("enable_batch_exec"):
        return project
    project.batch = True
    node: P.PlanNode | None = project.child
    while node is not None:
        if isinstance(node, (P.SeqScan, P.IndexScan, P.VirtualScan)):
            node.batch = True
        node = getattr(node, "child", None)
    return project


def _scan_node(stmt: ast.Select, table: TableInfo, catalog: Catalog) -> P.PlanNode:
    index_scan = _try_index_scan(stmt, table, catalog)
    if index_scan is not None:
        node: P.PlanNode = index_scan
        if stmt.where is not None:
            node = P.Filter(node, stmt.where)
        return node
    node = P.SeqScan(table)
    if stmt.where is not None:
        node = P.Filter(node, stmt.where)
    if stmt.order_by is not None:
        node = P.Sort(node, stmt.order_by.expr, stmt.order_by.ascending)
    return node


def _try_index_scan(
    stmt: ast.Select, table: TableInfo, catalog: Catalog
) -> P.IndexScan | None:
    if stmt.order_by is None or stmt.limit is None:
        return None
    if not stmt.order_by.ascending:
        return None  # farthest-first is not an index-supported order
    if not catalog.get_bool("enable_indexscan"):
        return None
    order_expr = stmt.order_by.expr
    if not isinstance(order_expr, ast.BinaryOp):
        return None
    if order_expr.op not in ast.DISTANCE_OPERATORS:
        return None
    column, const_side = _split_distance_operands(order_expr)
    if column is None or const_side is None:
        return None
    metric = _METRIC_TO_TYPE[ast.DISTANCE_OPERATORS[order_expr.op]]
    for index in catalog.indexes_on(table.name, column):
        index_metric = DistanceType(index.options.get("distance_type", DistanceType.L2))
        if index_metric != metric:
            continue
        query = expr_eval.coerce_vector(expr_eval.evaluate(const_side, row=None))
        return P.IndexScan(
            table=table,
            index=index,
            query_vector=np.ascontiguousarray(query, dtype=np.float32),
            k=stmt.limit,
            order_expr=order_expr,
        )
    return None


def _split_distance_operands(
    op: ast.BinaryOp,
) -> tuple[str | None, ast.Expr | None]:
    """Identify the (column, constant) sides of a distance expression."""
    left_col = isinstance(op.left, ast.ColumnRef)
    right_col = isinstance(op.right, ast.ColumnRef)
    if left_col and expr_eval.is_constant(op.right):
        return op.left.name, op.right
    if right_col and expr_eval.is_constant(op.left):
        return op.right.name, op.left
    return None, None


def _single_aggregate(
    targets: tuple[ast.SelectTarget, ...]
) -> tuple[str, ast.Expr | None] | None:
    """Detect ``SELECT count(*)``-style single-aggregate queries."""
    if len(targets) != 1:
        return None
    expr = targets[0].expr
    if not isinstance(expr, ast.FuncCall):
        return None
    name = expr.name.lower()
    if name not in ("count", "sum", "min", "max", "avg"):
        return None
    if name == "count" and expr.args and isinstance(expr.args[0], ast.Star):
        return "count", None
    if len(expr.args) != 1:
        raise PlanningError(f"{name}() takes exactly one argument")
    return name, expr.args[0]


def _project(
    node: P.PlanNode,
    targets: tuple[ast.SelectTarget, ...],
    table: Any,  # TableInfo, StatView or None; only column_names() is used
    aggregated: bool = False,
) -> P.Project:
    columns: list[str] = []
    for i, target in enumerate(targets):
        if target.alias:
            columns.append(target.alias)
        elif isinstance(target.expr, ast.Star):
            if table is None:
                raise PlanningError("SELECT * requires a FROM table")
            columns.extend(table.column_names())
        elif isinstance(target.expr, ast.ColumnRef):
            columns.append(target.expr.name)
        elif isinstance(target.expr, ast.FuncCall):
            columns.append(target.expr.name.lower())
        else:
            columns.append(f"column{i + 1}")
    return P.Project(node, targets, columns, aggregated=aggregated)


def explain_plan(node: P.PlanNode) -> str:
    """Render an EXPLAIN listing for a plan tree."""
    return "\n".join(node.explain_lines())
