"""Query planner.

Planning is now three-stage, PostgreSQL-style:

1. **Statistics** — ``ANALYZE`` (:mod:`repro.pgsim.analyze`) records
   reltuples/relpages and per-column n_distinct/MCVs/histograms, from
   which WHERE-clause selectivity is estimated.
2. **Paths** — :mod:`repro.pgsim.paths` generates the viable access
   paths (seq scan, ordered index scan, and for the hybrid filtered
   shape all three of pre-filter / post-filter / in-filter) and costs
   each one, pricing index candidate generation through each AM's
   ``amcostestimate``.
3. **Lowering** — the winning path becomes a plan-node subtree, each
   node annotated with ``(cost=.. rows=..)`` estimates for EXPLAIN.

The decision the paper revolves around is unchanged: a query shaped
``SELECT ... FROM t ORDER BY vec <op> '...'::PASE ASC LIMIT k`` over a
column with a metric-matching vector index becomes an ordered
:class:`~repro.pgsim.plan.IndexScan` — PASE's ``amgettuple`` path
(Sec. II-E).  New is the hybrid shape: with a WHERE clause the planner
costs three filtered-search strategies — pre-filter (predicate first,
brute-force the survivors), post-filter (index scan with adaptive
over-fetch), and in-filter (predicate mask inside the AM traversal) —
and lowers the cheapest; ``SET filtered_search_strategy`` forces one.
"""

from __future__ import annotations

from typing import Any

from repro.pgsim import plan as P
from repro.pgsim.catalog import Catalog
from repro.pgsim.paths import CostParams, choose_path, generate_paths
from repro.pgsim.sql import ast


class PlanningError(ValueError):
    """Raised for semantically invalid queries."""


def plan_select(stmt: ast.Select, catalog: Catalog) -> P.PlanNode:
    """Build the plan tree for a SELECT statement."""
    if stmt.table is None:
        node: P.PlanNode = P.OneRow()
        return _mark_batch(_project(node, stmt.targets, table=None), catalog)

    if not catalog.has_table(stmt.table) and catalog.has_view(stmt.table):
        return _plan_view_select(stmt, catalog)

    table = catalog.table(stmt.table)

    aggregate = _single_aggregate(stmt.targets)
    if aggregate is not None:
        if stmt.order_by is not None:
            raise PlanningError("ORDER BY is not supported with aggregates")
        # Aggregates consume every qualifying row: plan the scan core
        # without ORDER BY/LIMIT (they apply above the Aggregate).
        core = ast.Select(stmt.targets, stmt.table, stmt.where, None, None)
        node = choose_path(generate_paths(core, table, catalog)).lower()
        func, arg = aggregate
        agg: P.PlanNode = P.Aggregate(node, func, arg)
        _annotate_above(agg, node, catalog, rows=1.0)
        if stmt.limit is not None:
            agg = P.Limit(agg, stmt.limit)
            _annotate_above(agg, agg.child, catalog, rows=1.0)
        return _mark_batch(_project(agg, stmt.targets, table, aggregated=True), catalog)

    best = choose_path(generate_paths(stmt, table, catalog))
    node = best.lower()
    project = _project(node, stmt.targets, table)
    _annotate_above(project, node, catalog)
    return _mark_batch(project, catalog)


def _annotate_above(
    node: P.PlanNode, child: P.PlanNode, catalog: Catalog, rows: float | None = None
) -> None:
    """Cost a pass-through node (Project/Aggregate/Limit) from its child."""
    if child.total_cost is None:
        return
    cost = CostParams.from_catalog(catalog)
    child_rows = child.plan_rows or 0
    out_rows = child_rows if rows is None else rows
    node.startup_cost = child.startup_cost
    node.total_cost = child.total_cost + child_rows * cost.cpu_operator_cost
    node.plan_rows = max(1, int(round(out_rows)))


def _plan_view_select(stmt: ast.Select, catalog: Catalog) -> P.Project:
    """Plan a SELECT over a pg_stat_* virtual table.

    Views are never index-backed (and carry no statistics, so their
    nodes stay uncosted); the pipeline is the seq-scan fallback shape
    (scan → filter → sort/aggregate → limit) over a
    :class:`~repro.pgsim.plan.VirtualScan` leaf.
    """
    view = catalog.view(stmt.table)
    node: P.PlanNode = P.VirtualScan(view)
    aggregate = _single_aggregate(stmt.targets)
    if aggregate is not None:
        if stmt.order_by is not None:
            raise PlanningError("ORDER BY is not supported with aggregates")
        if stmt.where is not None:
            node = P.Filter(node, stmt.where)
        func, arg = aggregate
        agg: P.PlanNode = P.Aggregate(node, func, arg)
        if stmt.limit is not None:
            agg = P.Limit(agg, stmt.limit)
        return _mark_batch(_project(agg, stmt.targets, view, aggregated=True), catalog)
    if stmt.where is not None:
        node = P.Filter(node, stmt.where)
    if stmt.order_by is not None:
        node = P.Sort(node, stmt.order_by.expr, stmt.order_by.ascending)
    if stmt.limit is not None:
        node = P.Limit(node, stmt.limit)
    return _mark_batch(_project(node, stmt.targets, view), catalog)


def _mark_batch(project: P.Project, catalog: Catalog) -> P.Project:
    """Flag a finished plan for the batch executor when the GUC is on."""
    if not catalog.get_bool("enable_batch_exec"):
        return project
    project.batch = True
    node: P.PlanNode | None = project.child
    while node is not None:
        if isinstance(node, (P.SeqScan, P.IndexScan, P.VirtualScan, P.PreFilterScan)):
            node.batch = True
        node = getattr(node, "child", None)
    return project


def _single_aggregate(
    targets: tuple[ast.SelectTarget, ...]
) -> tuple[str, ast.Expr | None] | None:
    """Detect ``SELECT count(*)``-style single-aggregate queries."""
    if len(targets) != 1:
        return None
    expr = targets[0].expr
    if not isinstance(expr, ast.FuncCall):
        return None
    name = expr.name.lower()
    if name not in ("count", "sum", "min", "max", "avg"):
        return None
    if name == "count" and expr.args and isinstance(expr.args[0], ast.Star):
        return "count", None
    if len(expr.args) != 1:
        raise PlanningError(f"{name}() takes exactly one argument")
    return name, expr.args[0]


def _project(
    node: P.PlanNode,
    targets: tuple[ast.SelectTarget, ...],
    table: Any,  # TableInfo, StatView or None; only column_names() is used
    aggregated: bool = False,
) -> P.Project:
    columns: list[str] = []
    for i, target in enumerate(targets):
        if target.alias:
            columns.append(target.alias)
        elif isinstance(target.expr, ast.Star):
            if table is None:
                raise PlanningError("SELECT * requires a FROM table")
            columns.extend(table.column_names())
        elif isinstance(target.expr, ast.ColumnRef):
            columns.append(target.expr.name)
        elif isinstance(target.expr, ast.FuncCall):
            columns.append(target.expr.name.lower())
        else:
            columns.append(f"column{i + 1}")
    return P.Project(node, targets, columns, aggregated=aggregated)


def explain_plan(node: P.PlanNode, costs: bool = True) -> str:
    """Render an EXPLAIN listing for a plan tree."""
    return "\n".join(node.explain_lines(costs=costs))
