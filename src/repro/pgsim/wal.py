"""Minimal write-ahead log with redo recovery.

pgsim keeps the WAL deliberately small — full-page images plus commit
records — because the paper's experiments never exercise crash
recovery; the log exists so the substrate is an honest database (and
so recovery is testable), not to reproduce PostgreSQL's record zoo.

Protocol:

- every page mutation appends a :data:`REC_PAGE_IMAGE` record *before*
  the buffer manager may write the page back (enforced by the caller
  via LSN stamping);
- a transaction's changes become durable at its :data:`REC_COMMIT`;
- :func:`replay` scans the log and applies page images belonging to
  committed transactions, in order.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

from repro.pgsim.storage import DiskManager

REC_PAGE_IMAGE = 1
REC_COMMIT = 2
REC_CHECKPOINT = 3
REC_INSERT = 4
REC_DELETE = 5

_REC_HEADER = struct.Struct("<QBIH")  # lsn, type, xid, rel name length


@dataclass(slots=True)
class WalRecord:
    """One decoded WAL record."""

    lsn: int
    rec_type: int
    xid: int
    rel: str = ""
    blkno: int = 0
    payload: bytes = b""


class WriteAheadLog:
    """Append-only log of serialized records.

    With ``path=None`` the log lives only in memory (the default for
    in-memory databases).  With a path, :meth:`flush` appends the
    durable prefix to the file with an fsync, and an existing file is
    loaded on open — so a file-backed database recovers committed work
    after a crash (see :meth:`repro.pgsim.database.PgSimDatabase`).
    """

    #: Framing: 4-byte little-endian record length before each record.
    _FRAME = struct.Struct("<I")

    def __init__(self, path: str | Path | None = None) -> None:
        self._records: list[bytes] = []
        self._next_lsn = 1
        self.flushed_lsn = 0
        self._durable_count = 0
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        raw = self.path.read_bytes()
        pos = 0
        while pos + self._FRAME.size <= len(raw):
            (length,) = self._FRAME.unpack_from(raw, pos)
            pos += self._FRAME.size
            if pos + length > len(raw):
                break  # torn tail write: ignore, like real WAL replay
            self._records.append(raw[pos : pos + length])
            pos += length
        self._durable_count = len(self._records)
        if self._records:
            last_lsn = _REC_HEADER.unpack_from(self._records[-1], 0)[0]
            self._next_lsn = last_lsn + 1
            self.flushed_lsn = last_lsn

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------
    def log_page_image(self, xid: int, rel: str, blkno: int, image: bytes) -> int:
        """Record a full page image; returns the assigned LSN."""
        return self._append(REC_PAGE_IMAGE, xid, rel, blkno, image)

    def log_insert(self, xid: int, rel: str, blkno: int, tuple_bytes: bytes) -> int:
        """Record a heap insert (payload = serialized tuple)."""
        return self._append(REC_INSERT, xid, rel, blkno, tuple_bytes)

    def log_delete(self, xid: int, rel: str, blkno: int, offset_number: int) -> int:
        """Record a heap delete (payload = 2-byte offset number)."""
        return self._append(REC_DELETE, xid, rel, blkno, struct.pack("<H", offset_number))

    def log_commit(self, xid: int) -> int:
        """Record a transaction commit and flush the log."""
        lsn = self._append(REC_COMMIT, xid, "", 0, b"")
        self.flush()
        return lsn

    def log_checkpoint(self) -> int:
        """Record a checkpoint boundary."""
        return self._append(REC_CHECKPOINT, 0, "", 0, b"")

    def flush(self) -> None:
        """Make everything appended so far durable."""
        self.flushed_lsn = self._next_lsn - 1
        if self.path is None or self._durable_count == len(self._records):
            return
        with self.path.open("ab") as f:
            for record in self._records[self._durable_count :]:
                f.write(self._FRAME.pack(len(record)))
                f.write(record)
            f.flush()
            os.fsync(f.fileno())
        self._durable_count = len(self._records)

    def _append(self, rec_type: int, xid: int, rel: str, blkno: int, payload: bytes) -> int:
        lsn = self._next_lsn
        self._next_lsn += 1
        rel_bytes = rel.encode("utf-8")
        record = (
            _REC_HEADER.pack(lsn, rec_type, xid, len(rel_bytes))
            + rel_bytes
            + struct.pack("<I", blkno)
            + payload
        )
        self._records.append(record)
        return lsn

    # ------------------------------------------------------------------
    # read back
    # ------------------------------------------------------------------
    def records(self) -> list[WalRecord]:
        """Decode all records in append order."""
        out: list[WalRecord] = []
        for raw in self._records:
            lsn, rec_type, xid, rel_len = _REC_HEADER.unpack_from(raw, 0)
            pos = _REC_HEADER.size
            rel = raw[pos : pos + rel_len].decode("utf-8")
            pos += rel_len
            (blkno,) = struct.unpack_from("<I", raw, pos)
            pos += 4
            out.append(
                WalRecord(
                    lsn=lsn,
                    rec_type=rec_type,
                    xid=xid,
                    rel=rel,
                    blkno=blkno,
                    payload=raw[pos:],
                )
            )
        return out

    def __len__(self) -> int:
        return len(self._records)


def replay(wal: WriteAheadLog, disk: DiskManager) -> int:
    """Redo recovery: re-apply durable, committed changes to ``disk``.

    Classic redo rules:

    - only records with ``lsn <= wal.flushed_lsn`` whose transaction's
      commit record is also durable are considered;
    - a record is skipped when the on-disk page's LSN already covers it
      (``page.lsn >= record.lsn``), so redo is idempotent;
    - untouched (all-zero) blocks are formatted on first redo.

    Returns the number of records applied.
    """
    from repro.pgsim.page import Page  # local import avoids a cycle

    records = [r for r in wal.records() if r.lsn <= wal.flushed_lsn]
    committed = {r.xid for r in records if r.rec_type == REC_COMMIT}
    applied = 0
    for rec in records:
        if rec.rec_type in (REC_COMMIT, REC_CHECKPOINT):
            continue
        if rec.xid not in committed:
            continue
        if not disk.relation_exists(rec.rel):
            disk.create_relation(rec.rel)
        while disk.n_blocks(rec.rel) <= rec.blkno:
            disk.extend(rec.rel, bytes(disk.page_size))

        if rec.rec_type == REC_PAGE_IMAGE:
            existing = Page(bytearray(disk.read_block(rec.rel, rec.blkno)))
            if _page_initialized(existing) and existing.lsn >= rec.lsn:
                continue
            disk.write_block(rec.rel, rec.blkno, rec.payload)
            applied += 1
            continue

        raw = bytearray(disk.read_block(rec.rel, rec.blkno))
        page = Page(raw) if _page_initialized(Page(raw)) else Page.init(disk.page_size)
        if page.lsn >= rec.lsn:
            continue
        if rec.rec_type == REC_INSERT:
            page.insert_item(rec.payload)
        elif rec.rec_type == REC_DELETE:
            (offset_number,) = struct.unpack("<H", rec.payload)
            page.delete_item(offset_number)
        else:
            raise ValueError(f"unknown WAL record type: {rec.rec_type}")
        page.lsn = rec.lsn
        page.update_checksum()
        disk.write_block(rec.rel, rec.blkno, bytes(page.buf))
        applied += 1
    return applied


def _page_initialized(page) -> bool:
    """A zeroed (never formatted) block has lower == 0."""
    return page.lower != 0
