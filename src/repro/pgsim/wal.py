"""Minimal write-ahead log with redo recovery.

pgsim keeps the WAL deliberately small — full-page images plus commit
records — because the paper's experiments never exercise crash
recovery; the log exists so the substrate is an honest database (and
so recovery is testable), not to reproduce PostgreSQL's record zoo.

Protocol:

- every page mutation appends a :data:`REC_PAGE_IMAGE` record *before*
  the buffer manager may write the page back (enforced by the caller
  via LSN stamping);
- a transaction's first write is preceded by a :data:`REC_BEGIN`, its
  changes become durable at its :data:`REC_COMMIT`, and an in-process
  rollback appends a :data:`REC_ABORT` (advisory: an abort record that
  never reaches disk is indistinguishable from a crash, and recovery
  rolls both back);
- :func:`replay` redoes *all* durable data records — committed or not,
  so line-pointer offsets line up — then physically purges tuples
  belonging to transactions without a durable commit record;
- a checkpoint (:meth:`WriteAheadLog.log_checkpoint` after the buffer
  pool is flushed) establishes a durable horizon behind which
  :meth:`WriteAheadLog.truncate_before` may discard the log; its
  payload carries the xid allocator position and the in-progress xid
  list, because truncation can discard a still-open transaction's
  records after its dirty pages were flushed.

Failure semantics: :attr:`WriteAheadLog.flushed_lsn` only advances
after the append *and* fsync succeed, so an I/O failure can never make
:func:`replay` treat unpersisted records as durable.  A failed flush
poisons the log (:class:`WalPanicError` on further use) — after a
failed fsync the kernel may have dropped the dirty pages, so retrying
in-process proves nothing; the instance must be abandoned and recovery
run from the files (PostgreSQL reached the same conclusion after
*fsyncgate*).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Sequence

from repro.common.obs import (
    EV_WAL_SYNC,
    EV_WAL_WRITE,
    CounterDeltaMixin,
    WaitEventStats,
)
from repro.pgsim.faults import NO_FAULTS, FaultInjector
from repro.pgsim.storage import DiskManager
from repro.pgsim.xact import FIRST_NORMAL_XID, losers_after_replay

REC_PAGE_IMAGE = 1
REC_COMMIT = 2
REC_CHECKPOINT = 3
REC_INSERT = 4
REC_DELETE = 5
REC_BEGIN = 6
REC_ABORT = 7
REC_UPDATE = 8

_REC_HEADER = struct.Struct("<QBIH")  # lsn, type, xid, rel name length


class WalPanicError(RuntimeError):
    """The WAL suffered a flush failure and refuses further work.

    Recovery path: discard this instance and reopen the database; the
    on-disk log is intact up to the last *successful* fsync.
    """


@dataclass(slots=True)
class WalRecord:
    """One decoded WAL record."""

    lsn: int
    rec_type: int
    xid: int
    rel: str = ""
    blkno: int = 0
    payload: bytes = b""


@dataclass(slots=True)
class WalStats(CounterDeltaMixin):
    """Cumulative WAL activity counters (``pg_stat_wal``).

    ``records``/``bytes_written`` advance at append time (the record
    is in the log, durable or not); ``flushes`` counts :meth:`flush`
    calls that found work to make durable, and ``records_flushed`` /
    ``bytes_flushed`` advance as the durable horizon does.
    """

    records: int = 0
    bytes_written: int = 0
    flushes: int = 0
    records_flushed: int = 0
    bytes_flushed: int = 0


class WriteAheadLog:
    """Append-only log of serialized records.

    With ``path=None`` the log lives only in memory (the default for
    in-memory databases).  With a path, :meth:`flush` appends the
    durable prefix to the file with an fsync, and an existing file is
    loaded on open — so a file-backed database recovers committed work
    after a crash (see :meth:`repro.pgsim.database.PgSimDatabase`).

    Args:
        path: log file location, or ``None`` for an in-memory log.
        faults: fault injector through which all file I/O flows
            (defaults to real, unbroken I/O).
        waits: wait-event accumulator for ``WALWrite``/``WALSync``
            blocked time (the database facade shares one instance with
            the buffer manager).
    """

    #: Framing: 4-byte little-endian record length before each record.
    _FRAME = struct.Struct("<I")

    def __init__(
        self,
        path: str | Path | None = None,
        faults: FaultInjector | None = None,
        waits: WaitEventStats | None = None,
    ) -> None:
        self._records: list[bytes] = []
        self._next_lsn = 1
        self.flushed_lsn = 0
        self._durable_count = 0
        self._panicked = False
        self.stats = WalStats()
        # Appended-but-not-yet-flushed accounting for ``stats`` (kept
        # separately from ``_durable_count`` because in-memory logs
        # never advance that).
        self._pending_records = 0
        self._pending_bytes = 0
        #: Pages already full-page-imaged since the last checkpoint.
        self._fpw_done: set[tuple[str, int]] = set()
        self.faults = faults if faults is not None else NO_FAULTS
        self.waits = waits if waits is not None else WaitEventStats()
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        raw = self.path.read_bytes()
        pos = 0
        last_lsn = 0
        while pos + self._FRAME.size <= len(raw):
            (length,) = self._FRAME.unpack_from(raw, pos)
            pos += self._FRAME.size
            if pos + length > len(raw):
                break  # torn tail write: ignore, like real WAL replay
            record = raw[pos : pos + length]
            pos += length
            lsn = _REC_HEADER.unpack_from(record, 0)[0]
            if lsn <= last_lsn:
                # Duplicate append from a flush retried after a partial
                # failure: the LSN sequence is strictly increasing, so
                # anything that does not advance it was already loaded.
                continue
            self._records.append(record)
            last_lsn = lsn
        self._durable_count = len(self._records)
        if self._records:
            self._next_lsn = last_lsn + 1
            self.flushed_lsn = last_lsn

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------
    def log_page_image(self, xid: int, rel: str, blkno: int, image: bytes) -> int:
        """Record a full page image; returns the assigned LSN."""
        return self._append(REC_PAGE_IMAGE, xid, rel, blkno, image)

    def ensure_page_image(self, xid: int, rel: str, blkno: int, page) -> int | None:
        """Full-page write: image a page's first post-checkpoint change.

        A torn page write cannot be repaired from incremental records —
        redo compares against the page's (now garbage) LSN — so, like
        PostgreSQL with ``full_page_writes=on``, the first modification
        of a page after a checkpoint logs the complete page and stands
        in for the incremental record.  Returns the image's LSN (the
        page is stamped with it), or ``None`` if the page is already
        covered — the caller then logs its incremental record as usual.

        In-memory logs skip this entirely: without a file there is no
        torn write to protect against.
        """
        key = (rel, blkno)
        if self.path is None or key in self._fpw_done:
            return None
        self._check_panic()
        # Stamp LSN + checksum first so the captured image is exactly
        # the durable state replay will restore.
        page.lsn = self._next_lsn
        page.update_checksum()
        lsn = self._append(REC_PAGE_IMAGE, xid, rel, blkno, bytes(page.buf))
        self._fpw_done.add(key)
        return lsn

    def log_insert(self, xid: int, rel: str, blkno: int, tuple_bytes: bytes) -> int:
        """Record a heap insert (payload = serialized tuple)."""
        return self._append(REC_INSERT, xid, rel, blkno, tuple_bytes)

    def log_delete(self, xid: int, rel: str, blkno: int, offset_number: int) -> int:
        """Record a heap delete (payload = 2-byte offset number)."""
        return self._append(REC_DELETE, xid, rel, blkno, struct.pack("<H", offset_number))

    def log_update(
        self, xid: int, rel: str, blkno: int, old_offset: int, tuple_bytes: bytes
    ) -> int:
        """Record a same-page heap update.

        Payload = 2-byte old offset number + the serialized new tuple.
        Both halves land on one page, so the single-block record format
        carries a delete (xmax stamp on the old version) and an insert
        (the new version) atomically; a cross-page update is logged as
        separate delete + insert records instead.
        """
        payload = struct.pack("<H", old_offset) + tuple_bytes
        return self._append(REC_UPDATE, xid, rel, blkno, payload)

    def log_begin(self, xid: int) -> int:
        """Record a transaction start (no flush; rides the next one).

        Appended lazily, just before the transaction's first data
        record — read-only transactions never touch the log.
        """
        return self._append(REC_BEGIN, xid, "", 0, b"")

    def log_abort(self, xid: int) -> int:
        """Record a rollback (no flush — see the module docstring).

        Whether or not this record ever reaches disk, recovery rolls
        the transaction back: its data records have no commit record.
        The record exists for log legibility, not correctness.
        """
        return self._append(REC_ABORT, xid, "", 0, b"")

    def log_commit(self, xid: int) -> int:
        """Record a transaction commit and flush the log."""
        lsn = self._append(REC_COMMIT, xid, "", 0, b"")
        self.flush()
        return lsn

    def log_checkpoint(self, next_xid: int = 0, in_progress: Sequence[int] = ()) -> int:
        """Record a checkpoint boundary and make it durable.

        The payload carries the durable horizon, the xid allocator
        position, and the in-progress xid list at checkpoint time.
        The open-transaction list is what lets recovery roll back a
        transaction whose data records were truncated away after a
        mid-transaction checkpoint flushed its dirty pages — without
        it, such a transaction would look bulk-loaded (committed).
        A checkpoint record that is itself not flushed would be useless
        to recovery, so this flushes like :meth:`log_commit`.  The
        caller is responsible for having flushed dirty pages *first*
        (see :meth:`repro.pgsim.database.PgSimDatabase.checkpoint`).
        """
        payload = struct.pack(
            "<QQI", self.flushed_lsn, next_xid, len(in_progress)
        ) + b"".join(struct.pack("<I", x) for x in in_progress)
        lsn = self._append(REC_CHECKPOINT, 0, "", 0, payload)
        self.flush()
        # Pages are durable as of this checkpoint: the next change to
        # each must log a fresh full-page image.
        self._fpw_done.clear()
        return lsn

    def flush(self) -> None:
        """Make everything appended so far durable.

        ``flushed_lsn`` advances only after the file append and fsync
        both succeed; on failure the log panics (see module docstring).
        """
        self._check_panic()
        if self.path is None:
            self.flushed_lsn = self._next_lsn - 1
            self._note_flushed()
            return
        if self._durable_count == len(self._records):
            self.flushed_lsn = self._next_lsn - 1
            return
        try:
            with self.path.open("ab") as f:
                write_start = perf_counter()
                for record in self._records[self._durable_count :]:
                    self.faults.write("wal.append", f, self._FRAME.pack(len(record)) + record)
                sync_start = perf_counter()
                self.waits.record(EV_WAL_WRITE, sync_start - write_start)
                self.faults.fsync("wal.fsync", f)
                self.waits.record(EV_WAL_SYNC, perf_counter() - sync_start)
        except Exception:
            self._panicked = True
            raise
        self._durable_count = len(self._records)
        self.flushed_lsn = self._next_lsn - 1
        self._note_flushed()

    def _note_flushed(self) -> None:
        """Move appended-but-unflushed accounting to the flushed side."""
        if not self._pending_records:
            return
        self.stats.flushes += 1
        self.stats.records_flushed += self._pending_records
        self.stats.bytes_flushed += self._pending_bytes
        self._pending_records = 0
        self._pending_bytes = 0

    def truncate_before(self, lsn: int) -> int:
        """Discard records with an LSN below ``lsn``; returns the count.

        The caller must ensure every discarded record is already
        reflected in durable pages (i.e. call this only after a
        checkpoint flushed the buffer pool).  Pending records are
        flushed first so the rewritten log is self-contained.  The
        rewrite is atomic — new log to a temp file, fsync, rename — so
        a crash mid-truncation leaves either the old or the new log,
        both of which recover correctly.
        """
        self.flush()
        keep_from = 0
        for keep_from, record in enumerate(self._records):
            if _REC_HEADER.unpack_from(record, 0)[0] >= lsn:
                break
        else:
            keep_from = len(self._records)
        if keep_from == 0:
            return 0
        dropped = keep_from
        kept = self._records[keep_from:]
        if self.path is not None:
            tmp = self.path.with_name(self.path.name + ".tmp")
            try:
                with tmp.open("wb") as f:
                    for record in kept:
                        self.faults.write("wal.truncate", f, self._FRAME.pack(len(record)) + record)
                    self.faults.fsync("wal.fsync", f)
            except Exception:
                self._panicked = True
                raise
            os.replace(tmp, self.path)
            self._fsync_dir()
        self._records = kept
        self._durable_count = len(self._records)
        return dropped

    def _fsync_dir(self) -> None:
        """Persist the rename of the rewritten log file."""
        assert self.path is not None
        dir_fd = os.open(self.path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def _append(self, rec_type: int, xid: int, rel: str, blkno: int, payload: bytes) -> int:
        self._check_panic()
        lsn = self._next_lsn
        self._next_lsn += 1
        rel_bytes = rel.encode("utf-8")
        record = (
            _REC_HEADER.pack(lsn, rec_type, xid, len(rel_bytes))
            + rel_bytes
            + struct.pack("<I", blkno)
            + payload
        )
        self._records.append(record)
        self.stats.records += 1
        self.stats.bytes_written += len(record)
        self._pending_records += 1
        self._pending_bytes += len(record)
        return lsn

    def _check_panic(self) -> None:
        if self._panicked:
            raise WalPanicError(
                "WAL is in a failed state after a flush error; "
                "abandon this instance and recover from disk"
            )

    # ------------------------------------------------------------------
    # read back
    # ------------------------------------------------------------------
    def records(self) -> list[WalRecord]:
        """Decode all records in append order."""
        out: list[WalRecord] = []
        for raw in self._records:
            lsn, rec_type, xid, rel_len = _REC_HEADER.unpack_from(raw, 0)
            pos = _REC_HEADER.size
            rel = raw[pos : pos + rel_len].decode("utf-8")
            pos += rel_len
            (blkno,) = struct.unpack_from("<I", raw, pos)
            pos += 4
            out.append(
                WalRecord(
                    lsn=lsn,
                    rec_type=rec_type,
                    xid=xid,
                    rel=rel,
                    blkno=blkno,
                    payload=raw[pos:],
                )
            )
        return out

    def disk_size(self) -> int:
        """On-disk log size in bytes (0 for in-memory logs)."""
        if self.path is None or not self.path.exists():
            return 0
        return self.path.stat().st_size

    def __len__(self) -> int:
        return len(self._records)


def checkpoint_fields(payload: bytes) -> tuple[int, int, tuple[int, ...]]:
    """Decode a checkpoint payload: (flushed_lsn, next_xid, in_progress).

    Accepts the legacy 8-byte payload (durable horizon only) for logs
    written before checkpoints carried transaction state.
    """
    if len(payload) < 20:
        (flushed,) = struct.unpack_from("<Q", payload, 0)
        return flushed, 0, ()
    flushed, next_xid, n = struct.unpack_from("<QQI", payload, 0)
    xids = struct.unpack_from(f"<{n}I", payload, 20) if n else ()
    return flushed, next_xid, tuple(xids)


def next_xid_after(wal: WriteAheadLog) -> int:
    """First unused xid implied by the log (for post-recovery restart).

    The max over every record's xid and the last checkpoint's allocator
    position; reusing a recovered xid would let a new transaction's
    tuples alias a purged (or committed) one's.
    """
    nxt = FIRST_NORMAL_XID
    for rec in wal.records():
        if rec.rec_type == REC_CHECKPOINT:
            __, ckpt_next, in_progress = checkpoint_fields(rec.payload)
            nxt = max(nxt, ckpt_next)
            for xid in in_progress:
                nxt = max(nxt, xid + 1)
        else:
            nxt = max(nxt, rec.xid + 1)
    return nxt


def replay(wal: WriteAheadLog, disk: DiskManager) -> int:
    """Redo recovery: re-apply durable changes, then roll back losers.

    Redo rules:

    - only records with ``lsn <= wal.flushed_lsn`` are considered;
    - **all** data records are redone, committed or not: an uncommitted
      insert consumed a line pointer, so skipping it would shift every
      later record's offsets on that page.  Deletes redo by stamping
      ``xmax`` (not by killing the line pointer), so an uncommitted
      delete is reversible;
    - a record is skipped when the on-disk page's LSN already covers it
      (``page.lsn >= record.lsn``), so redo is idempotent;
    - untouched (all-zero) blocks are formatted on first redo.

    Then the undo-by-purge pass: a transaction that wrote durable data
    (a data record, or membership in the last checkpoint's in-progress
    list) without a durable commit record is a *loser*.  Every heap
    tuple a loser inserted is physically removed, and every ``xmax``
    stamp a loser left is cleared — after recovery, no trace remains
    and the fresh transaction manager may treat every surviving xid as
    committed.

    A truncated log (see :meth:`WriteAheadLog.truncate_before`) starts
    at a checkpoint record; everything before it is already in the
    pages, which the LSN check confirms.

    Returns the number of records applied.
    """
    from repro.pgsim.page import Page  # local import avoids a cycle

    records = [r for r in wal.records() if r.lsn <= wal.flushed_lsn]
    committed = {r.xid for r in records if r.rec_type == REC_COMMIT}
    seen_xids: set[int] = set()
    ckpt_in_progress: tuple[int, ...] = ()
    data_rels: set[str] = set()
    applied = 0
    for rec in records:
        if rec.rec_type == REC_CHECKPOINT:
            # Only the latest checkpoint's open-transaction list counts:
            # anything open at an earlier one either finished (commit
            # record, or loser via missing commit) or is still listed.
            __, __, ckpt_in_progress = checkpoint_fields(rec.payload)
            continue
        if rec.rec_type in (REC_COMMIT, REC_BEGIN, REC_ABORT):
            continue
        seen_xids.add(rec.xid)
        data_rels.add(rec.rel)
        if not disk.relation_exists(rec.rel):
            disk.create_relation(rec.rel)
        while disk.n_blocks(rec.rel) <= rec.blkno:
            disk.extend(rec.rel, bytes(disk.page_size))

        if rec.rec_type == REC_PAGE_IMAGE:
            existing = Page(bytearray(disk.read_block(rec.rel, rec.blkno)))
            # A torn on-disk page (bad checksum) is replaced no matter
            # what its LSN field claims — the field itself is garbage.
            if _page_intact(existing) and existing.lsn >= rec.lsn:
                continue
            disk.write_block(rec.rel, rec.blkno, rec.payload)
            applied += 1
            continue

        raw = bytearray(disk.read_block(rec.rel, rec.blkno))
        page = Page(raw) if _page_initialized(Page(raw)) else Page.init(disk.page_size)
        if page.lsn >= rec.lsn:
            continue
        if rec.rec_type == REC_INSERT:
            page.insert_item(rec.payload)
        elif rec.rec_type == REC_DELETE:
            (offset_number,) = struct.unpack("<H", rec.payload)
            off, length = page._pointer(offset_number)
            if length != 0:
                # Stamp the deleter's xid; the purge pass (or, post-
                # recovery, MVCC visibility) decides the tuple's fate.
                struct.pack_into("<I", page.buf, off + 4, rec.xid)
        elif rec.rec_type == REC_UPDATE:
            (offset_number,) = struct.unpack_from("<H", rec.payload, 0)
            off, length = page._pointer(offset_number)
            if length != 0:
                struct.pack_into("<I", page.buf, off + 4, rec.xid)
            page.insert_item(rec.payload[2:])
        else:
            raise ValueError(f"unknown WAL record type: {rec.rec_type}")
        page.lsn = rec.lsn
        page.update_checksum()
        disk.write_block(rec.rel, rec.blkno, bytes(page.buf))
        applied += 1

    losers = losers_after_replay(seen_xids, ckpt_in_progress, committed)
    _purge_losers(disk, losers, data_rels)
    return applied


def _purge_losers(disk: DiskManager, losers: set[int], extra_rels: set[str]) -> int:
    """Physically roll back loser transactions on every heap relation.

    Scans all ``*.heap`` relations on disk — not just those named in
    the surviving records, because a mid-transaction checkpoint may
    have flushed loser tuples to relations whose records were then
    truncated away.  Returns the number of pages rewritten.
    """
    from repro.pgsim.page import Page  # local import avoids a cycle
    from repro.pgsim.tuple_format import tuple_header

    if not losers:
        return 0
    rels = {rel for rel in disk.list_relations() if rel.endswith(".heap")}
    rels |= {rel for rel in extra_rels if rel.endswith(".heap")}
    purged = 0
    for rel in sorted(rels):
        if not disk.relation_exists(rel):
            continue
        for blkno in range(disk.n_blocks(rel)):
            page = Page(bytearray(disk.read_block(rel, blkno)))
            if not _page_initialized(page):
                continue
            changed = False
            for offset_number in page.live_items():
                xmin, xmax = tuple_header(page.get_item_view(offset_number))
                if xmin in losers:
                    page.delete_item(offset_number)
                    changed = True
                elif xmax in losers:
                    off, __ = page._pointer(offset_number)
                    struct.pack_into("<I", page.buf, off + 4, 0)
                    changed = True
            if changed:
                page.update_checksum()
                disk.write_block(rel, blkno, bytes(page.buf))
                purged += 1
    return purged


def _page_initialized(page) -> bool:
    """A zeroed (never formatted) block has lower == 0."""
    return page.lower != 0


def _page_intact(page) -> bool:
    """Initialized and passing its checksum (i.e. not a torn write)."""
    if not _page_initialized(page):
        return False
    try:
        page.verify_checksum()
    except Exception:
        return False
    return True
