"""Index access-method interface (PostgreSQL's ``IndexAmRoutine``).

The paper notes that for a new index "to be compatible with the
existing SQL query plan, the index implementation has to follow
certain rules": implement ``build()``, ``insert()``, ``delete()`` and
``scan()`` through the ``IndexAmRoutine`` interface, and lay its pages
out so the buffer manager can serve them (Sec. II-E).  This module is
that contract: the PASE and pgvector index types subclass
:class:`IndexAmRoutine` and register themselves in :data:`AM_REGISTRY`
so ``CREATE INDEX ... USING <am>`` can find them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.common.obs import NULL_PROGRESS, NULL_VACUUM_PROGRESS, IndexScanStats
from repro.common.profiling import NULL_PROFILER
from repro.common.types import IndexSizeInfo
from repro.pgsim.buffer import BufferManager
from repro.pgsim.catalog import Catalog
from repro.pgsim.heapam import TID, HeapTable


@dataclass(slots=True)
class ScanBatch:
    """One batch of index-scan candidates, nearest-first.

    The batched counterpart of the ``(tid, distance)`` stream that
    :meth:`IndexAmRoutine.scan` yields: three parallel NumPy arrays so
    the executor can consume a whole result set without one Python
    round trip per candidate (the paper's RC#3 interface cost).
    """

    blknos: np.ndarray  #: int64 heap block numbers
    offsets: np.ndarray  #: int64 1-based heap offsets
    distances: np.ndarray  #: float64 distances, ascending

    def __len__(self) -> int:
        return int(self.blknos.shape[0])

    def tids(self) -> list[TID]:
        return [
            TID(int(b), int(o))
            for b, o in zip(self.blknos.tolist(), self.offsets.tolist())
        ]

    def pairs(self) -> list[tuple[TID, float]]:
        """The batch as ``(tid, distance)`` pairs (tuple-stream form)."""
        return list(zip(self.tids(), self.distances.tolist()))

    @classmethod
    def empty(cls) -> "ScanBatch":
        return cls(
            blknos=np.empty(0, dtype=np.int64),
            offsets=np.empty(0, dtype=np.int64),
            distances=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def from_pairs(cls, pairs: Iterator[tuple[TID, float]]) -> "ScanBatch":
        materialized = list(pairs)
        if not materialized:
            return cls.empty()
        return cls(
            blknos=np.array([t.blkno for t, __ in materialized], dtype=np.int64),
            offsets=np.array([t.offset for t, __ in materialized], dtype=np.int64),
            distances=np.array([d for __, d in materialized], dtype=np.float64),
        )


def topk_batch(tid_keys: np.ndarray, distances: np.ndarray, k: int) -> ScanBatch:
    """Select the k nearest candidates from packed-TID/distance arrays.

    ``tid_keys`` uses the AMs' ``(blkno << 16) | offset`` packing.  Ties
    break toward the smallest key — the same (distance, id) order the
    tuple-path heaps produce — so both executor paths agree exactly.
    """
    tid_keys = np.asarray(tid_keys, dtype=np.int64)
    distances = np.asarray(distances, dtype=np.float64)
    order = np.lexsort((tid_keys, distances))
    if k < order.shape[0]:
        order = order[:k]
    keys = tid_keys[order]
    return ScanBatch(
        blknos=keys >> 16,
        offsets=keys & 0xFFFF,
        distances=distances[order],
    )


class IndexAmRoutine(abc.ABC):
    """One index instance bound to (table, column).

    Subclasses own their page layout; pgsim only requires the
    lifecycle below.  ``amname`` identifies the AM in SQL
    (``CREATE INDEX ... USING <amname>``).
    """

    amname: str = ""
    #: alternative SQL names for the AM (PASE exposes e.g.
    #: ``ivfflat_fun``, the name used in the paper's CREATE INDEX).
    aliases: tuple[str, ...] = ()
    #: True when the AM implements :meth:`amsearch_filtered` — in-filter
    #: traversal with the predicate pushed *inside* the index scan.  AMs
    #: that leave this False degrade to the post-filter strategy (the
    #: planner never generates an in-filter path for them).
    amcanfilter: bool = False

    def __init__(
        self,
        index_name: str,
        table: HeapTable,
        column_index: int,
        buffer: BufferManager,
        catalog: Catalog,
        options: dict[str, Any],
    ) -> None:
        self.index_name = index_name
        self.table = table
        self.column_index = column_index
        self.buffer = buffer
        self.catalog = catalog
        self.options = dict(options)
        #: Cumulative scan/candidate counters (``pg_stat_indexes``).
        #: Subclasses bump ``candidates`` once per tuple they compute a
        #: distance for; the default :meth:`get_batch` inherits the
        #: counts from the :meth:`scan` it wraps.
        self.scan_stats = IndexScanStats()
        #: Section profiler for build/scan breakdowns.  Harnesses (and
        #: EXPLAIN (ANALYZE, TRACE)) replace this with a live one.
        self.profiler = NULL_PROFILER
        #: Build-progress reporter (``pg_stat_progress_create_index``);
        #: the executor installs a live one around :meth:`build`.
        self.progress = NULL_PROGRESS
        #: Vacuum-progress reporter (``pg_stat_progress_vacuum``); the
        #: executor installs a live one around :meth:`ambulkdelete`, and
        #: AMs tick ``tick_index_entries`` as they reclaim entries.
        self.vacuum_progress = NULL_VACUUM_PROGRESS

    # ------------------------------------------------------------------
    # lifecycle (ambuild / aminsert / ambulkdelete / amgettuple)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self) -> None:
        """Build the index over the table's current contents."""

    @abc.abstractmethod
    def insert(self, tid: TID, value: Any) -> None:
        """Index one newly inserted heap tuple."""

    @abc.abstractmethod
    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        """Ordered scan: yield ``(tid, distance)`` nearest-first.

        This is the ``amgettuple`` path the executor pulls from for
        ``ORDER BY vec <-> q LIMIT k`` plans.
        """

    def get_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched scan: the k nearest candidates as one :class:`ScanBatch`.

        The ``amgetbatch`` counterpart of :meth:`scan`: instead of one
        ``(tid, distance)`` per executor pull, the whole candidate set
        comes back in NumPy arrays.  The default implementation wraps
        :meth:`scan`, so every AM supports the batch executor path;
        vector AMs override it with genuinely vectorized versions.
        """
        return ScanBatch.from_pairs(self.scan(query, k))

    def delete(self, tid: TID) -> None:
        """Unindex a heap tuple (default: not supported)."""
        raise NotImplementedError(f"{self.amname} does not support deletes")

    def ambulkdelete(self, dead_tids: set[TID]) -> int:
        """Physically reclaim entries pointing at vacuumed heap tuples.

        Called by ``VACUUM`` after the heap pass with the TIDs it
        removed.  Until then searches merely *skip* dead entries via
        snapshot checks on the heap; this hook is where an AM compacts
        its structures (IVF list rewrite, HNSW neighbor repair) so dead
        entries stop costing distance computations.  Returns the number
        of index entries removed.  The default is a no-op: an AM that
        does nothing here stays correct, just slower under churn.
        """
        return 0

    # ------------------------------------------------------------------
    # planner contract (amcostestimate / amrescan)
    # ------------------------------------------------------------------
    def amcostestimate(self, ntuples: float, fetch_k: int, cost: Any) -> tuple[float, float]:
        """Estimate ``(startup, total)`` cost of an ordered k-NN scan.

        ``ntuples`` is the planner's row estimate for the base table,
        ``fetch_k`` the number of candidates the executor will request,
        and ``cost`` a :class:`repro.pgsim.paths.CostParams`.  pgsim's
        ordered scans materialize their whole candidate set before the
        first tuple comes back, so startup equals total.  The default
        assumes an exhaustive scan of the index (every indexed tuple
        gets a distance computation); AMs that prune — IVF probing a
        cluster subset, HNSW walking ``ef_search`` beams — override
        this with their actual candidate counts.
        """
        total = float(ntuples) * (cost.cpu_index_tuple_cost + cost.cpu_operator_cost)
        return total, total

    def amrescan_continue(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        """Continue an ordered scan at a larger ``k`` (over-fetch rescan).

        The executor's adaptive over-fetch loop calls this when the
        first ``scan()`` did not yield enough predicate survivors: same
        query, geometrically larger ``k``.  The contract is merely that
        the result is the ordered prefix of size ``k`` — the default
        re-runs :meth:`scan` from scratch; AMs may override to reuse
        per-query state (e.g. IVF's ranked centroid order) across
        continuations.
        """
        return self.scan(query, k)

    def amrescan_continue_batch(self, query: np.ndarray, k: int) -> ScanBatch:
        """Batched counterpart of :meth:`amrescan_continue`."""
        return self.get_batch(query, k)

    # ------------------------------------------------------------------
    # in-filter contract (amsearch_filtered)
    # ------------------------------------------------------------------
    #: Candidates the last :meth:`amsearch_filtered`/``_batch`` call
    #: evaluated the predicate mask against (feeds the executor's
    #: actual-selectivity measurement for ``pg_stat_estimation_errors``).
    last_filtered_examined: int = 0

    def amsearch_filtered(
        self, query: np.ndarray, k: int, mask_fn: Any
    ) -> Iterator[tuple[TID, float]]:
        """In-filter ordered scan: yield the k nearest *matching* tuples.

        ``mask_fn`` takes a sequence of candidate TIDs and returns a
        boolean array — True where the heap row is visible and satisfies
        the pushed-down predicate.  The AM applies it *inside* its
        traversal: IVF list scans mask candidates before the distance
        top-k; HNSW neighbor expansion keeps routing through masked-out
        nodes but never admits them to the result heap.  When fewer than
        ``k`` candidates survive the AM widens its own search (more
        probe lists, larger ef) until k match or the index is exhausted.
        Only called when :attr:`amcanfilter` is True.
        """
        raise NotImplementedError(f"{self.amname} does not support in-filter search")

    def amsearch_filtered_batch(self, query: np.ndarray, k: int, mask_fn: Any) -> ScanBatch:
        """Batched counterpart of :meth:`amsearch_filtered`.

        The default wraps the tuple form; vectorized AMs override it.
        """
        return ScanBatch.from_pairs(self.amsearch_filtered(query, k, mask_fn))

    def amestimate_candidates(self, ntuples: float, fetch_k: int) -> float:
        """Candidates one scan pass examines (planner's in-filter model).

        The in-filter path charges the predicate mask per *examined*
        candidate (an attribute fetch + qual eval each), which for list-
        or beam-pruned AMs is far more than the ``fetch_k`` results
        returned.  The default assumes an exhaustive scan; pruning AMs
        override with the same candidate count their ``amcostestimate``
        uses.
        """
        return float(ntuples)

    @abc.abstractmethod
    def size_info(self) -> IndexSizeInfo:
        """Byte-level size accounting (drives the Figs. 11-13 benches)."""

    # ------------------------------------------------------------------
    # helpers shared by vector AMs
    # ------------------------------------------------------------------
    def relation_name(self, fork: str) -> str:
        """Page-file name for one of this index's forks."""
        return f"{self.index_name}.{fork}"

    def create_fork(self, fork: str) -> str:
        """Create (or reuse) a page file for a fork; returns its name."""
        rel = self.relation_name(fork)
        if not self.buffer.disk.relation_exists(rel):
            self.buffer.disk.create_relation(rel)
        return rel


#: amname -> IndexAmRoutine subclass.  PASE/pgvector register here at
#: import time; ``CREATE INDEX ... USING <amname>`` looks the AM up.
AM_REGISTRY: dict[str, type[IndexAmRoutine]] = {}


def register_am(cls: type[IndexAmRoutine]) -> type[IndexAmRoutine]:
    """Class decorator adding an AM (and its aliases) to the registry."""
    if not cls.amname:
        raise ValueError(f"{cls.__name__} must set amname")
    for name in (cls.amname, *cls.aliases):
        if name in AM_REGISTRY:
            raise ValueError(f"access method {name!r} already registered")
        AM_REGISTRY[name] = cls
    return cls


def lookup_am(amname: str) -> type[IndexAmRoutine]:
    """Resolve an AM by name.

    Raises:
        KeyError: with the known AM names listed.
    """
    try:
        return AM_REGISTRY[amname]
    except KeyError:
        known = ", ".join(sorted(AM_REGISTRY)) or "(none)"
        raise KeyError(f"unknown access method {amname!r}; known: {known}") from None
