"""Index access-method interface (PostgreSQL's ``IndexAmRoutine``).

The paper notes that for a new index "to be compatible with the
existing SQL query plan, the index implementation has to follow
certain rules": implement ``build()``, ``insert()``, ``delete()`` and
``scan()`` through the ``IndexAmRoutine`` interface, and lay its pages
out so the buffer manager can serve them (Sec. II-E).  This module is
that contract: the PASE and pgvector index types subclass
:class:`IndexAmRoutine` and register themselves in :data:`AM_REGISTRY`
so ``CREATE INDEX ... USING <am>`` can find them.
"""

from __future__ import annotations

import abc
from typing import Any, Iterator

import numpy as np

from repro.common.types import IndexSizeInfo
from repro.pgsim.buffer import BufferManager
from repro.pgsim.catalog import Catalog
from repro.pgsim.heapam import TID, HeapTable


class IndexAmRoutine(abc.ABC):
    """One index instance bound to (table, column).

    Subclasses own their page layout; pgsim only requires the
    lifecycle below.  ``amname`` identifies the AM in SQL
    (``CREATE INDEX ... USING <amname>``).
    """

    amname: str = ""
    #: alternative SQL names for the AM (PASE exposes e.g.
    #: ``ivfflat_fun``, the name used in the paper's CREATE INDEX).
    aliases: tuple[str, ...] = ()

    def __init__(
        self,
        index_name: str,
        table: HeapTable,
        column_index: int,
        buffer: BufferManager,
        catalog: Catalog,
        options: dict[str, Any],
    ) -> None:
        self.index_name = index_name
        self.table = table
        self.column_index = column_index
        self.buffer = buffer
        self.catalog = catalog
        self.options = dict(options)

    # ------------------------------------------------------------------
    # lifecycle (ambuild / aminsert / ambulkdelete / amgettuple)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build(self) -> None:
        """Build the index over the table's current contents."""

    @abc.abstractmethod
    def insert(self, tid: TID, value: Any) -> None:
        """Index one newly inserted heap tuple."""

    @abc.abstractmethod
    def scan(self, query: np.ndarray, k: int) -> Iterator[tuple[TID, float]]:
        """Ordered scan: yield ``(tid, distance)`` nearest-first.

        This is the ``amgettuple`` path the executor pulls from for
        ``ORDER BY vec <-> q LIMIT k`` plans.
        """

    def delete(self, tid: TID) -> None:
        """Unindex a heap tuple (default: not supported)."""
        raise NotImplementedError(f"{self.amname} does not support deletes")

    @abc.abstractmethod
    def size_info(self) -> IndexSizeInfo:
        """Byte-level size accounting (drives the Figs. 11-13 benches)."""

    # ------------------------------------------------------------------
    # helpers shared by vector AMs
    # ------------------------------------------------------------------
    def relation_name(self, fork: str) -> str:
        """Page-file name for one of this index's forks."""
        return f"{self.index_name}.{fork}"

    def create_fork(self, fork: str) -> str:
        """Create (or reuse) a page file for a fork; returns its name."""
        rel = self.relation_name(fork)
        if not self.buffer.disk.relation_exists(rel):
            self.buffer.disk.create_relation(rel)
        return rel


#: amname -> IndexAmRoutine subclass.  PASE/pgvector register here at
#: import time; ``CREATE INDEX ... USING <amname>`` looks the AM up.
AM_REGISTRY: dict[str, type[IndexAmRoutine]] = {}


def register_am(cls: type[IndexAmRoutine]) -> type[IndexAmRoutine]:
    """Class decorator adding an AM (and its aliases) to the registry."""
    if not cls.amname:
        raise ValueError(f"{cls.__name__} must set amname")
    for name in (cls.amname, *cls.aliases):
        if name in AM_REGISTRY:
            raise ValueError(f"access method {name!r} already registered")
        AM_REGISTRY[name] = cls
    return cls


def lookup_am(amname: str) -> type[IndexAmRoutine]:
    """Resolve an AM by name.

    Raises:
        KeyError: with the known AM names listed.
    """
    try:
        return AM_REGISTRY[amname]
    except KeyError:
        known = ", ".join(sorted(AM_REGISTRY)) or "(none)"
        raise KeyError(f"unknown access method {amname!r}; known: {known}") from None
