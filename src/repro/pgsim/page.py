"""Slotted pages with PostgreSQL-style headers and line pointers.

A page is a fixed-size ``bytearray``::

    +----------------------+  0
    | page header (24 B)   |
    +----------------------+  24
    | line pointers ...    |  grow downward from 'lower'
    +----------------------+  lower
    | free space           |
    +----------------------+  upper
    | tuples ... (packed)  |  grow upward toward 'upper'
    +----------------------+  special
    | special space        |  index-AM private area
    +----------------------+  page_size

The paper's RC#4 (HNSW space blow-up) is a direct consequence of this
layout plus PASE's one-adjacency-list-per-page policy, so the layout
is implemented faithfully: 24-byte header, 4-byte line pointers,
upper/lower free-space accounting, optional special space, and a
checksum over the payload.
"""

from __future__ import annotations

import struct
import zlib

from repro.pgsim.constants import (
    LINE_POINTER_SIZE,
    MIN_PAGE_SIZE,
    PAGE_HEADER_SIZE,
)

_HEADER = struct.Struct("<QHHHHHHI")  # lsn, checksum, flags, lower, upper, special, version, prune_xid
_LP = struct.Struct("<HH")  # offset, length

#: Page layout version written into every header.
PAGE_VERSION = 4

#: Flag bit: page has at least one deleted (dead) line pointer.
FLAG_HAS_DEAD = 0x0001


class PageCorruptError(RuntimeError):
    """Raised when a page fails structural or checksum validation."""


class PageFullError(RuntimeError):
    """Raised when an item does not fit into the page's free space."""


class Page:
    """View over one page buffer; mutations write through to the buffer."""

    __slots__ = ("buf", "page_size")

    def __init__(self, buf: bytearray) -> None:
        if len(buf) < MIN_PAGE_SIZE:
            raise ValueError(f"page buffer too small: {len(buf)} bytes")
        self.buf = buf
        self.page_size = len(buf)

    # ------------------------------------------------------------------
    # initialization
    # ------------------------------------------------------------------
    @classmethod
    def init(cls, page_size: int, special_size: int = 0) -> "Page":
        """Format a fresh page with empty item area.

        Args:
            special_size: bytes reserved at the page tail for the
                owning access method (PostgreSQL's "special space").
        """
        if page_size < MIN_PAGE_SIZE:
            raise ValueError(f"page_size must be >= {MIN_PAGE_SIZE}, got {page_size}")
        if special_size < 0 or special_size > page_size - PAGE_HEADER_SIZE - LINE_POINTER_SIZE:
            raise ValueError(f"special_size {special_size} does not fit in page")
        buf = bytearray(page_size)
        page = cls(buf)
        special = page_size - special_size
        _HEADER.pack_into(buf, 0, 0, 0, 0, PAGE_HEADER_SIZE, special, special, PAGE_VERSION, 0)
        return page

    # ------------------------------------------------------------------
    # header accessors
    # ------------------------------------------------------------------
    @property
    def lsn(self) -> int:
        """WAL position of the last change to this page."""
        return _HEADER.unpack_from(self.buf, 0)[0]

    @lsn.setter
    def lsn(self, value: int) -> None:
        struct.pack_into("<Q", self.buf, 0, value)

    @property
    def flags(self) -> int:
        return struct.unpack_from("<H", self.buf, 10)[0]

    @flags.setter
    def flags(self, value: int) -> None:
        struct.pack_into("<H", self.buf, 10, value)

    @property
    def lower(self) -> int:
        """End of the line-pointer array."""
        return struct.unpack_from("<H", self.buf, 12)[0]

    @lower.setter
    def lower(self, value: int) -> None:
        struct.pack_into("<H", self.buf, 12, value)

    @property
    def upper(self) -> int:
        """Start of the tuple area."""
        return struct.unpack_from("<H", self.buf, 14)[0]

    @upper.setter
    def upper(self, value: int) -> None:
        struct.pack_into("<H", self.buf, 14, value)

    @property
    def special(self) -> int:
        """Start of the special space."""
        return struct.unpack_from("<H", self.buf, 16)[0]

    @property
    def version(self) -> int:
        return struct.unpack_from("<H", self.buf, 18)[0]

    # ------------------------------------------------------------------
    # item management
    # ------------------------------------------------------------------
    @property
    def item_count(self) -> int:
        """Number of line pointers, including dead ones."""
        return (self.lower - PAGE_HEADER_SIZE) // LINE_POINTER_SIZE

    @property
    def free_space(self) -> int:
        """Usable bytes for one more item (pointer included)."""
        gap = self.upper - self.lower
        return max(gap - LINE_POINTER_SIZE, 0)

    def insert_item(self, item: bytes) -> int:
        """Append an item; returns its 1-based offset number.

        Raises:
            PageFullError: if the item plus a line pointer don't fit.
        """
        need = len(item)
        if need == 0:
            raise ValueError("cannot insert an empty item")
        if need > self.free_space:
            raise PageFullError(
                f"item of {need} bytes does not fit (free={self.free_space})"
            )
        new_upper = self.upper - need
        self.buf[new_upper : new_upper + need] = item
        _LP.pack_into(self.buf, self.lower, new_upper, need)
        self.lower += LINE_POINTER_SIZE
        self.upper = new_upper
        return self.item_count

    def get_item(self, offset_number: int) -> bytes:
        """Fetch an item by 1-based offset number.

        Raises:
            IndexError: for out-of-range offsets.
            PageCorruptError: for dead (deleted) items.
        """
        off, length = self._pointer(offset_number)
        if length == 0:
            raise PageCorruptError(f"item {offset_number} is dead")
        return bytes(self.buf[off : off + length])

    def get_item_view(self, offset_number: int) -> memoryview:
        """Zero-copy view of an item (valid while the page is pinned)."""
        off, length = self._pointer(offset_number)
        if length == 0:
            raise PageCorruptError(f"item {offset_number} is dead")
        return memoryview(self.buf)[off : off + length]

    def delete_item(self, offset_number: int) -> None:
        """Mark an item dead; space is reclaimed by :meth:`defragment`."""
        idx = self._pointer_pos(offset_number)
        _LP.pack_into(self.buf, idx, 0, 0)
        self.flags |= FLAG_HAS_DEAD

    def is_dead(self, offset_number: int) -> bool:
        """True if the line pointer was deleted."""
        __, length = self._pointer(offset_number)
        return length == 0

    def live_items(self) -> list[int]:
        """Offset numbers of all live items, in order."""
        return [i for i in range(1, self.item_count + 1) if not self.is_dead(i)]

    def defragment(self) -> int:
        """Compact the tuple area, dropping dead items; returns bytes freed.

        Live items keep their offset numbers (pointers are rewritten in
        place), matching PostgreSQL's page pruning contract.
        """
        items: list[tuple[int, bytes]] = []
        for i in range(1, self.item_count + 1):
            off, length = self._pointer(i)
            if length:
                items.append((i, bytes(self.buf[off : off + length])))
        before = self.upper
        upper = self.special
        for i, data in items:
            upper -= len(data)
            self.buf[upper : upper + len(data)] = data
            _LP.pack_into(self.buf, self._pointer_pos(i), upper, len(data))
        self.upper = upper
        self.flags &= ~FLAG_HAS_DEAD
        return upper - before

    # ------------------------------------------------------------------
    # special space
    # ------------------------------------------------------------------
    def read_special(self) -> bytes:
        """Copy of the access method's special space."""
        return bytes(self.buf[self.special :])

    def write_special(self, data: bytes) -> None:
        """Overwrite the special space (must match its size)."""
        size = self.page_size - self.special
        if len(data) != size:
            raise ValueError(f"special space is {size} bytes, got {len(data)}")
        self.buf[self.special :] = data

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def compute_checksum(self) -> int:
        """CRC-16-ish checksum over everything but the checksum field."""
        crc = zlib.crc32(self.buf[:8])
        crc = zlib.crc32(self.buf[10:], crc)
        return crc & 0xFFFF

    def update_checksum(self) -> None:
        """Stamp the current checksum (called before disk write-back)."""
        struct.pack_into("<H", self.buf, 8, self.compute_checksum())

    def verify_checksum(self) -> None:
        """Validate the stored checksum (zero means "never stamped").

        Raises:
            PageCorruptError: on mismatch.
        """
        stored = struct.unpack_from("<H", self.buf, 8)[0]
        if stored == 0:
            return
        if stored != self.compute_checksum():
            raise PageCorruptError("page checksum mismatch")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pointer_pos(self, offset_number: int) -> int:
        if not 1 <= offset_number <= self.item_count:
            raise IndexError(
                f"offset number {offset_number} out of range 1..{self.item_count}"
            )
        return PAGE_HEADER_SIZE + (offset_number - 1) * LINE_POINTER_SIZE

    def _pointer(self, offset_number: int) -> tuple[int, int]:
        return _LP.unpack_from(self.buf, self._pointer_pos(offset_number))
