"""Planner statistics: the ANALYZE command and selectivity estimation.

This is pgsim's ``pg_statistic``/``analyze.c`` layer.  ``ANALYZE
[table]`` scans the heap and records, per table, ``reltuples`` and
``relpages`` (the ``pg_class`` fields) and, per scalar column, the
``pg_stats`` triple the PostgreSQL planner lives on:

* ``n_distinct`` — number of distinct non-null values,
* most-common values (MCVs) with their frequencies,
* an equi-depth histogram over the values *not* covered by the MCVs.

Vector columns (``float4[]``) are skipped, exactly as PostgreSQL's
default typanalyze skips types with no ordering operator it can use.

The second half of the module is clause selectivity estimation
(``restrictinfo.c``/``selfuncs.c`` in miniature): given a WHERE tree
and a table's statistics, estimate the fraction of rows that satisfy
it.  The path layer (:mod:`repro.pgsim.paths`) uses this both to cost
seq-scan quals and to size the adaptive over-fetch for filters pushed
into an ordered index scan.
"""

from __future__ import annotations

import bisect
import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.pgsim.catalog import Catalog, TableInfo
from repro.pgsim.expr import evaluate, is_constant
from repro.pgsim.sql import ast
from repro.pgsim.tuple_format import TypeOid

#: Default selectivities when no statistics apply (PostgreSQL's
#: selfuncs.h defaults).
DEFAULT_EQ_SEL = 0.005
DEFAULT_RANGE_SEL = 1.0 / 3.0
DEFAULT_UNK_SEL = 0.25

#: Rows kept in ANALYZE's joint-selectivity sample (a stride sample of
#: the scalar columns, consulted when a WHERE clause touches two or
#: more columns and the independence assumption would otherwise apply).
SAMPLE_TARGET = 300

#: Column types ANALYZE collects value statistics for.
_SCALAR_TYPES = {
    TypeOid.INT4,
    TypeOid.INT8,
    TypeOid.FLOAT4,
    TypeOid.FLOAT8,
    TypeOid.TEXT,
}


@dataclass
class ColumnStats:
    """``pg_stats`` row for one column."""

    null_frac: float
    n_distinct: int
    #: Most-common values, most frequent first.
    mcv_values: list[Any] = field(default_factory=list)
    #: Fraction of all rows holding each corresponding MCV.
    mcv_freqs: list[float] = field(default_factory=list)
    #: Equi-depth histogram bounds over the non-MCV values
    #: (``len(bounds) - 1`` equal-mass buckets); empty when the column
    #: had too few distinct non-MCV values to bucket.
    histogram_bounds: list[Any] = field(default_factory=list)
    #: Physical-order correlation (``pg_stats.correlation``): Spearman
    #: rank correlation between a value and its heap position, in
    #: [-1, 1].  Near ±1 means the column is laid out in value order —
    #: a skew signal for the filtered-search strategy crossover (a
    #: predicate on a correlated column concentrates its matches in a
    #: few IVF lists / graph regions instead of spreading uniformly).
    correlation: float = 0.0

    def mcv_mass(self) -> float:
        """Total row fraction covered by the MCV list."""
        return sum(self.mcv_freqs)


@dataclass
class TableStats:
    """``pg_class`` + ``pg_stats`` snapshot for one table."""

    reltuples: float
    relpages: int
    last_analyze: float
    columns: dict[str, ColumnStats] = field(default_factory=dict)
    #: Heap ``n_dead_tup`` at ANALYZE time.  Deaths *since* then are
    #: ``heap.n_dead_tup - dead_at_analyze``; :func:`table_shape`
    #: discounts them so a bulk DELETE doesn't leave the planner
    #: costing scans over rows that no longer exist.
    dead_at_analyze: float = 0.0
    #: Stride sample of the scalar columns (row dicts, heap order) for
    #: joint-selectivity estimation of multi-column predicates.
    sample: list[dict[str, Any]] = field(default_factory=list)


def analyze_table(table: TableInfo, catalog: Catalog) -> TableStats:
    """Scan ``table`` and attach fresh statistics to its catalog entry.

    Reads every live tuple (pgsim tables are small enough that we skip
    PostgreSQL's row sampling), computes per-column stats, and stores
    the result on ``table.stats``.
    """
    target = int(catalog.get_setting("default_statistics_target"))
    scalar_cols = [
        (i, col) for i, col in enumerate(table.columns) if col.type_oid in _SCALAR_TYPES
    ]
    values_by_col: list[list[Any]] = [[] for _ in table.columns]
    nulls_by_col = [0 for _ in table.columns]
    scalar_rows: list[dict[str, Any]] = []
    ntuples = 0
    for _tid, values in table.heap.scan():
        ntuples += 1
        for i, col in scalar_cols:
            value = values[i]
            if value is None:
                nulls_by_col[i] += 1
            else:
                values_by_col[i].append(value)
        scalar_rows.append({col.name: values[i] for i, col in scalar_cols})
    stats = TableStats(
        reltuples=float(ntuples),
        relpages=max(table.heap.n_blocks(), 1),
        last_analyze=time.time(),
        dead_at_analyze=float(table.heap.n_dead_tup),
        sample=_stride_sample(scalar_rows),
    )
    for i, col in scalar_cols:
        col_stats = _column_stats(values_by_col[i], nulls_by_col[i], ntuples, target)
        col_stats.correlation = _correlation(values_by_col[i])
        stats.columns[col.name] = col_stats
    table.stats = stats
    return stats


def _stride_sample(rows: list[dict[str, Any]]) -> list[dict[str, Any]]:
    """Every ``stride``-th row, capped near :data:`SAMPLE_TARGET`.

    Deterministic (no RNG state to manage) and order-preserving; the
    stride makes the sample span the whole heap, so physically
    clustered values are represented proportionally.
    """
    if not rows:
        return []
    stride = max(1, len(rows) // SAMPLE_TARGET)
    return rows[::stride]


def _correlation(values: list[Any]) -> float:
    """Spearman rank correlation of value order vs heap order.

    This is ``pg_stats.correlation`` computed over the full column
    (pgsim skips row sampling): rank each value (average ranks on
    ties), then Pearson-correlate the ranks against the physical scan
    positions.  Returns 0.0 when the column is constant or too small.
    """
    n = len(values)
    if n < 2:
        return 0.0
    try:
        order = sorted(range(n), key=values.__getitem__)
    except TypeError:
        return 0.0
    ranks = [0.0] * n
    i = 0
    while i < n:
        j = i
        while j + 1 < n and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j) / 2.0
        for t in range(i, j + 1):
            ranks[order[t]] = avg
        i = j + 1
    mean_pos = (n - 1) / 2.0
    mean_rank = sum(ranks) / n
    num = sum((p - mean_pos) * (r - mean_rank) for p, r in enumerate(ranks))
    den_pos = sum((p - mean_pos) ** 2 for p in range(n))
    den_rank = sum((r - mean_rank) ** 2 for r in ranks)
    if den_pos <= 0.0 or den_rank <= 0.0:
        return 0.0
    return num / math.sqrt(den_pos * den_rank)


def _column_stats(values: list[Any], nulls: int, ntuples: int, target: int) -> ColumnStats:
    """Compute one column's ``pg_stats`` row from its non-null values."""
    if ntuples == 0 or not values:
        return ColumnStats(null_frac=1.0 if ntuples else 0.0, n_distinct=0)
    counts = Counter(values)
    null_frac = nulls / ntuples
    n_distinct = len(counts)
    # MCVs: values that appear more than once, most frequent first,
    # capped at the statistics target.  A unique column gets no MCVs
    # (every value is equally "common"), matching PostgreSQL.
    mcv_values: list[Any] = []
    mcv_freqs: list[float] = []
    for value, count in counts.most_common(target):
        if count <= 1:
            break
        mcv_values.append(value)
        mcv_freqs.append(count / ntuples)
    # Equi-depth histogram over the non-MCV values.
    mcv_set = set(mcv_values)
    rest = sorted(v for v in values if v not in mcv_set)
    bounds: list[Any] = []
    if len(rest) >= 2:
        buckets = min(target, len(rest) - 1)
        bounds = [rest[(len(rest) - 1) * b // buckets] for b in range(buckets + 1)]
    return ColumnStats(
        null_frac=null_frac,
        n_distinct=n_distinct,
        mcv_values=mcv_values,
        mcv_freqs=mcv_freqs,
        histogram_bounds=bounds,
    )


def table_shape(table: TableInfo) -> tuple[float, int]:
    """``(reltuples, relpages)`` — from stats if analyzed, else live heap.

    PostgreSQL similarly falls back to the relation's current physical
    size when it has never been analyzed.  ANALYZE-time ``reltuples``
    goes stale the moment rows die, so deaths since the last ANALYZE
    (tracked via the heap's ``n_dead_tup``) are discounted — a bulk
    DELETE is reflected in cost estimates immediately, without waiting
    for the next ANALYZE (PostgreSQL leans on autovacuum's
    ``n_dead_tup`` bookkeeping for the same reason).
    """
    if table.stats is not None:
        died_since = max(0.0, float(table.heap.n_dead_tup) - table.stats.dead_at_analyze)
        return max(0.0, table.stats.reltuples - died_since), table.stats.relpages
    return float(table.heap.tuple_count), max(table.heap.n_blocks(), 1)


# ----------------------------------------------------------------------
# clause selectivity
# ----------------------------------------------------------------------
def clause_selectivity(expr: ast.Expr | None, table: TableInfo) -> float:
    """Estimated fraction of ``table``'s rows satisfying ``expr``.

    Composes like PostgreSQL's ``clauselist_selectivity`` under an
    attribute-independence assumption: AND multiplies, OR adds minus
    the overlap, NOT complements.  Unestimatable leaves fall back to
    :data:`DEFAULT_UNK_SEL`.

    Exception to independence: a boolean combination touching two or
    more distinct columns is estimated from ANALYZE's row sample when
    one is available — evaluating the predicate over the sampled rows
    captures cross-column correlation that multiplying per-column
    fractions cannot (the skew case the filtered-search strategy
    crossover depends on).
    """
    if expr is None:
        return 1.0
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("and", "or"):
            joint = _sampled_joint_selectivity(expr, table)
            if joint is not None:
                return joint
        if expr.op == "and":
            return _clamp(
                clause_selectivity(expr.left, table) * clause_selectivity(expr.right, table)
            )
        if expr.op == "or":
            s1 = clause_selectivity(expr.left, table)
            s2 = clause_selectivity(expr.right, table)
            return _clamp(s1 + s2 - s1 * s2)
        return _comparison_selectivity(expr, table)
    if isinstance(expr, ast.UnaryOp) and expr.op == "not":
        return _clamp(1.0 - clause_selectivity(expr.operand, table))
    if isinstance(expr, ast.Literal):
        if expr.value is True:
            return 1.0
        if expr.value in (False, None):
            return 0.0
    return DEFAULT_UNK_SEL


def _sampled_joint_selectivity(expr: ast.Expr, table: TableInfo) -> float | None:
    """Joint selectivity of a multi-column clause from the row sample.

    Returns None (caller falls back to independence) when no sample is
    available, the clause references fewer than two distinct columns
    (per-column MCV/histogram stats resolve finer than a ~300-row
    sample), a referenced column is missing from the sample (non-scalar
    type), or evaluation fails on the sample rows.
    """
    stats = table.stats
    if stats is None or not stats.sample:
        return None
    columns = _referenced_columns(expr)
    if len(columns) < 2 or not columns.issubset(stats.sample[0].keys()):
        return None
    try:
        matched = sum(1 for row in stats.sample if evaluate(expr, row) is True)
    except Exception:
        return None
    # Add-half smoothing: an empty sample count estimates "rare", not
    # "impossible" — the over-fetch sizing divides by this number.
    return _clamp((matched + 0.5) / (len(stats.sample) + 1.0))


def _referenced_columns(expr: ast.Expr | None) -> set[str]:
    """Distinct column names referenced anywhere in ``expr``."""
    if expr is None:
        return set()
    if isinstance(expr, ast.ColumnRef):
        return {expr.name}
    columns: set[str] = set()
    if isinstance(expr, ast.BinaryOp):
        columns |= _referenced_columns(expr.left)
        columns |= _referenced_columns(expr.right)
    elif isinstance(expr, ast.UnaryOp):
        columns |= _referenced_columns(expr.operand)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            columns |= _referenced_columns(arg)
    return columns


def _comparison_selectivity(expr: ast.BinaryOp, table: TableInfo) -> float:
    """Selectivity of ``column <op> constant`` (either operand order)."""
    split = _split_column_constant(expr)
    if split is None:
        return DEFAULT_UNK_SEL
    column, op, value = split
    col_stats = table.stats.columns.get(column) if table.stats is not None else None
    if op in ("=", "<>", "!="):
        sel = _eq_selectivity(col_stats, value)
        return _clamp(1.0 - sel) if op in ("<>", "!=") else sel
    if op in ("<", "<=", ">", ">="):
        return _range_selectivity(col_stats, op, value)
    return DEFAULT_UNK_SEL


def _split_column_constant(expr: ast.BinaryOp) -> tuple[str, str, Any] | None:
    """Normalize to ``(column, op, constant)``; None if not that shape."""
    flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "<>": "<>", "!=": "!="}
    if isinstance(expr.left, ast.ColumnRef) and is_constant(expr.right):
        return expr.left.name, expr.op, evaluate(expr.right, {})
    if isinstance(expr.right, ast.ColumnRef) and is_constant(expr.left):
        op = flipped.get(expr.op)
        if op is None:
            return None
        return expr.right.name, op, evaluate(expr.left, {})
    return None


def _eq_selectivity(col_stats: ColumnStats | None, value: Any) -> float:
    """``column = constant`` via MCVs, else spread over the distincts."""
    if col_stats is None or col_stats.n_distinct == 0:
        return DEFAULT_EQ_SEL
    for mcv, freq in zip(col_stats.mcv_values, col_stats.mcv_freqs):
        if _values_equal(mcv, value):
            return _clamp(freq)
    rest_distinct = col_stats.n_distinct - len(col_stats.mcv_values)
    if rest_distinct <= 0:
        # Every value is in the MCV list and ours was not among them.
        return 0.0
    rest_mass = 1.0 - col_stats.null_frac - col_stats.mcv_mass()
    return _clamp(rest_mass / rest_distinct)


def _range_selectivity(col_stats: ColumnStats | None, op: str, value: Any) -> float:
    """``column < constant`` and friends, combining MCVs and histogram.

    The histogram only covers rows *not* in the MCV list, so the
    qualifying fraction is the qualifying MCV mass plus the histogram
    fraction scaled by the histogram's share of the rows (PostgreSQL's
    ``mcv_selectivity`` + ``ineq_histogram_selectivity`` combination).
    """
    if col_stats is None:
        return DEFAULT_RANGE_SEL
    mcv_below = _mcv_mass_below(col_stats, value)
    if mcv_below is None:
        return DEFAULT_RANGE_SEL  # value not comparable with the MCVs
    bounds = col_stats.histogram_bounds
    hist_frac = _histogram_fraction_below(bounds, value)
    if hist_frac is None and len(bounds) >= 2:
        return DEFAULT_RANGE_SEL  # value not comparable with the bounds
    if hist_frac is None and not col_stats.mcv_values:
        return DEFAULT_RANGE_SEL  # no usable statistics at all
    nonnull = 1.0 - col_stats.null_frac
    hist_mass = max(0.0, nonnull - col_stats.mcv_mass())
    # Un-histogrammed leftover mass with no bounds: assume half
    # qualifies (a one-distinct-value remainder, vanishingly rare).
    below = mcv_below + (0.5 if hist_frac is None else hist_frac) * hist_mass
    sel = below if op in ("<", "<=") else nonnull - below
    return _clamp(sel)


def _histogram_fraction_below(bounds: list[Any], value: Any) -> float | None:
    """Fraction of histogrammed values ``< value`` (None if no histogram)."""
    if len(bounds) < 2:
        return None
    try:
        if value <= bounds[0]:
            return 0.0
        if value >= bounds[-1]:
            return 1.0
        bucket = bisect.bisect_right(bounds, value) - 1
        lo, hi = bounds[bucket], bounds[bucket + 1]
        try:
            frac_in = (value - lo) / (hi - lo) if hi > lo else 0.5
        except TypeError:  # non-numeric (text) — assume mid-bucket
            frac_in = 0.5
        return (bucket + frac_in) / (len(bounds) - 1)
    except TypeError:
        # value not comparable with the histogram's type
        return None


def _mcv_mass_below(col_stats: ColumnStats, value: Any) -> float | None:
    """Absolute row fraction held by MCVs ``< value``.

    0.0 when there are no MCVs (vacuously nothing below); None when the
    value does not compare against the MCV type.
    """
    try:
        return sum(
            freq
            for mcv, freq in zip(col_stats.mcv_values, col_stats.mcv_freqs)
            if mcv < value
        )
    except TypeError:
        return None


def _values_equal(a: Any, b: Any) -> bool:
    """Equality that tolerates int/float crossings but not 1 == True."""
    if isinstance(a, bool) != isinstance(b, bool):
        return False
    try:
        return bool(a == b)
    except TypeError:
        return False


def _clamp(sel: float) -> float:
    """Clamp a selectivity into [0, 1]."""
    return min(1.0, max(0.0, sel))
