"""Client sessions: per-connection transaction state over one database.

A :class:`Session` is pgsim's connection object — what a backend
process is to PostgreSQL.  N sessions (typically one per client
thread) share one :class:`~repro.pgsim.database.PgSimDatabase`; each
holds its own open transaction and snapshot, so concurrent clients get
snapshot isolation: readers never block writers across statements, a
rolled-back transaction leaves no trace visible to anyone else, and
write-write conflicts surface as
:class:`~repro.pgsim.xact.SerializationError` (retry, like SQLSTATE
40001).

Statement *execution* is serialized by the database's statement lock
(pgsim is pure Python, so the GIL would serialize the CPU work
anyway); time spent waiting for it is recorded under the
``SessionStatementLock`` wait event, which is exactly the contention
figure the concurrent-mixed benchmark reports.

Transaction-control semantics follow PostgreSQL:

- ``BEGIN`` pins the snapshot for the whole block (repeatable read);
  a nested ``BEGIN`` is a warning, not an error.
- A failed statement poisons the block: further statements raise
  *"current transaction is aborted"* until ``ROLLBACK`` (or ``COMMIT``,
  which then rolls back and reports ``ROLLBACK``).
- ``COMMIT``/``ROLLBACK`` outside a block warn and do nothing.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.common.obs import EV_STATEMENT_LOCK
from repro.pgsim.executor import ExecutionError
from repro.pgsim.plan import QueryResult
from repro.pgsim.sql import ast, parse_sql
from repro.pgsim.stats import normalize_sql
from repro.pgsim.xact import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pgsim.database import PgSimDatabase


class Session:
    """One client connection to a shared database.

    Not thread-safe itself — use one session per client thread, the
    way one libpq connection serves one client.  The database-level
    statement lock makes cross-session interleaving safe.
    """

    def __init__(self, db: "PgSimDatabase", name: str = "session") -> None:
        self.db = db
        self.name = name
        #: Open explicit transaction (``BEGIN`` ... ``COMMIT`` block).
        self._txn: Transaction | None = None

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    # ------------------------------------------------------------------
    # SQL entry points (same surface as the database facade)
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        """Run one or more statements; returns the last result."""
        results = self.execute_all(sql)
        if not results:
            raise ValueError("no SQL statements to execute")
        return results[-1]

    def query(self, sql: str) -> list[tuple[Any, ...]]:
        """Run a query and return its rows."""
        return self.execute(sql).rows

    def execute_all(self, sql: str) -> list[QueryResult]:
        """Run statements and return every result."""
        db = self.db
        statements = parse_sql(sql)
        track = db._tracking_enabled()
        normalized = normalize_sql(sql) if track else []
        results: list[QueryResult] = []
        for i, stmt in enumerate(statements):
            # Non-blocking fast path: only actual contention between
            # sessions is recorded as blocked time.
            if not db._statement_lock.acquire(blocking=False):
                wait_start = time.perf_counter()
                db._statement_lock.acquire()
                db.waits.record(EV_STATEMENT_LOCK, time.perf_counter() - wait_start)
            try:
                if track:
                    baseline = db.stats.begin()
                    start = time.perf_counter()
                result = self._execute_one(stmt)
                if track:
                    elapsed = time.perf_counter() - start
                    result.stats = db.stats.finish(baseline, elapsed)
                    if i < len(normalized):
                        db.stats.record_statement(normalized[i], elapsed, len(result.rows))
                db._log_ddl(stmt)
                results.append(result)
                # Autovacuum hook: with the GUC on, check dead-tuple
                # thresholds after each statement while still holding
                # the statement lock (a vacuum never interleaves with
                # another session's statement).
                if not isinstance(stmt, ast.Vacuum) and db._autovacuum_enabled():
                    db.executor.maybe_autovacuum()
            finally:
                db._statement_lock.release()
        return results

    def close(self) -> None:
        """End the session, rolling back any open transaction."""
        if self._txn is not None:
            txn, self._txn = self._txn, None
            with self.db._statement_lock:
                self.db.executor.abort_transaction(txn)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # statement handling (caller holds the statement lock)
    # ------------------------------------------------------------------
    def _execute_one(self, stmt: ast.Statement) -> QueryResult:
        executor = self.db.executor
        if isinstance(stmt, ast.Begin):
            if self._txn is not None:
                return QueryResult(
                    command="BEGIN",
                    warnings=["there is already a transaction in progress"],
                )
            txn = executor.xact.begin()
            # Snapshot pinned for the whole block (repeatable read).
            txn.snapshot = executor.xact.snapshot(txn.xid)
            self._txn = txn
            return QueryResult(command="BEGIN")
        if isinstance(stmt, ast.Commit):
            if self._txn is None:
                return QueryResult(
                    command="COMMIT",
                    warnings=["there is no transaction in progress"],
                )
            txn, self._txn = self._txn, None
            if txn.failed:
                # PostgreSQL: COMMIT of a failed block rolls back and
                # reports ROLLBACK as the command tag.
                executor.abort_transaction(txn)
                return QueryResult(command="ROLLBACK")
            executor.commit_transaction(txn)
            return QueryResult(command="COMMIT")
        if isinstance(stmt, ast.Rollback):
            if self._txn is None:
                return QueryResult(
                    command="ROLLBACK",
                    warnings=["there is no transaction in progress"],
                )
            txn, self._txn = self._txn, None
            executor.abort_transaction(txn)
            return QueryResult(command="ROLLBACK")
        if self._txn is not None:
            if self._txn.failed:
                raise ExecutionError(
                    "current transaction is aborted, "
                    "commands ignored until end of transaction block"
                )
            try:
                return executor.execute_statement(stmt, txn=self._txn)
            except BaseException:
                self._txn.failed = True
                raise
        return executor.execute_statement(stmt)
