"""Client sessions: per-connection transaction state over one database.

A :class:`Session` is pgsim's connection object — what a backend
process is to PostgreSQL.  N sessions (typically one per client
thread) share one :class:`~repro.pgsim.database.PgSimDatabase`; each
holds its own open transaction and snapshot, so concurrent clients get
snapshot isolation: readers never block writers across statements, a
rolled-back transaction leaves no trace visible to anyone else, and
write-write conflicts surface as
:class:`~repro.pgsim.xact.SerializationError` (retry, like SQLSTATE
40001).

Statement *execution* is serialized by the database's statement lock
(pgsim is pure Python, so the GIL would serialize the CPU work
anyway); time spent waiting for it is recorded under the
``SessionStatementLock`` wait event, which is exactly the contention
figure the concurrent-mixed benchmark reports.

Transaction-control semantics follow PostgreSQL:

- ``BEGIN`` pins the snapshot for the whole block (repeatable read);
  a nested ``BEGIN`` is a warning, not an error.
- A failed statement poisons the block: further statements raise
  *"current transaction is aborted"* until ``ROLLBACK`` (or ``COMMIT``,
  which then rolls back and reports ``ROLLBACK``).
- ``COMMIT``/``ROLLBACK`` outside a block warn and do nothing.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any

from repro.common.obs import EV_STATEMENT_LOCK
from repro.pgsim.executor import ExecutionError
from repro.pgsim.plan import QueryResult
from repro.pgsim.slowlog import SlowQueryRecord
from repro.pgsim.sql import ast, parse_sql
from repro.pgsim.stats import normalize_sql
from repro.pgsim.xact import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pgsim.database import PgSimDatabase


class Session:
    """One client connection to a shared database.

    Not thread-safe itself — use one session per client thread, the
    way one libpq connection serves one client.  The database-level
    statement lock makes cross-session interleaving safe.
    """

    def __init__(self, db: "PgSimDatabase", name: str | None = None) -> None:
        self.db = db
        #: Backend id — unique and monotonic per database, like a
        #: PostgreSQL backend pid.  Minted here so two sessions never
        #: collide in ``pg_stat_activity`` even with the same name.
        self.backend_id = db.activity.next_backend_id()
        self.name = name if name is not None else f"session-{self.backend_id}"
        self._activity = db.activity.register(self.backend_id, self.name)
        #: Open explicit transaction (``BEGIN`` ... ``COMMIT`` block).
        self._txn: Transaction | None = None

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    # ------------------------------------------------------------------
    # SQL entry points (same surface as the database facade)
    # ------------------------------------------------------------------
    def execute(self, sql: str) -> QueryResult:
        """Run one or more statements; returns the last result."""
        results = self.execute_all(sql)
        if not results:
            raise ValueError("no SQL statements to execute")
        return results[-1]

    def query(self, sql: str) -> list[tuple[Any, ...]]:
        """Run a query and return its rows."""
        return self.execute(sql).rows

    def execute_all(self, sql: str) -> list[QueryResult]:
        """Run statements and return every result."""
        db = self.db
        statements = parse_sql(sql)
        track = db._tracking_enabled()
        log_ms = db.executor._duration_setting_ms("log_min_duration_statement")
        normalized = normalize_sql(sql)
        activity = self._activity
        results: list[QueryResult] = []
        for i, stmt in enumerate(statements):
            query_text = (
                normalized[i] if i < len(normalized) else f"<{type(stmt).__name__}>"
            )
            # Lock-free monitoring path: a SELECT over a virtual view
            # runs without the statement lock, so ``pg_stat_activity``
            # answers even while another session's statement is in
            # flight (the scenario monitoring exists for).
            if self._txn is None and isinstance(stmt, ast.Select):
                activity.begin_statement(query_text, time.time())
                start = time.perf_counter()
                fast = db.executor.try_execute_virtual(stmt)
                if fast is not None:
                    elapsed = time.perf_counter() - start
                    if track:
                        db.stats.record_statement(query_text, elapsed, len(fast.rows))
                    if log_ms is not None and elapsed * 1e3 >= log_ms:
                        self._record_slow(query_text, elapsed * 1e3, fast, None)
                    activity.end_statement(False, None)
                    results.append(fast)
                    continue
                # Not a pure view read: fall through to the locked path
                # (begin_statement below re-arms the activity record).
            activity.begin_statement(query_text, time.time())
            # Non-blocking fast path: only actual contention between
            # sessions is recorded as blocked time.
            if not db._statement_lock.acquire(blocking=False):
                activity.wait_event = EV_STATEMENT_LOCK
                wait_start = time.perf_counter()
                db._statement_lock.acquire()
                waited = time.perf_counter() - wait_start
                db.waits.record(EV_STATEMENT_LOCK, waited)
                activity.note_lock_wait(waited)
                activity.wait_event = None
            try:
                # Key for the estimation accumulator (the executor has
                # no raw SQL of its own); stale values are harmless —
                # only instrumented runs read it.
                db.executor.current_query = query_text
                measure = track or log_ms is not None
                elapsed = None
                if track:
                    baseline = db.stats.begin()
                if measure:
                    start = time.perf_counter()
                result = self._execute_one(stmt)
                if measure:
                    elapsed = time.perf_counter() - start
                if track:
                    result.stats = db.stats.finish(baseline, elapsed)
                    db.stats.record_statement(query_text, elapsed, len(result.rows))
                self._maybe_log_slow(query_text, elapsed, result, log_ms)
                db._log_ddl(stmt)
                results.append(result)
                # Autovacuum hook: with the GUC on, check dead-tuple
                # thresholds after each statement while still holding
                # the statement lock (a vacuum never interleaves with
                # another session's statement).
                if not isinstance(stmt, ast.Vacuum) and db._autovacuum_enabled():
                    db.executor.maybe_autovacuum()
            finally:
                activity.end_statement(
                    self._txn is not None,
                    self._txn.xid if self._txn is not None else None,
                )
                db._statement_lock.release()
        return results

    # ------------------------------------------------------------------
    # slow-query logging (log_min_duration_statement / auto_explain)
    # ------------------------------------------------------------------
    def _maybe_log_slow(
        self,
        query_text: str,
        elapsed: float | None,
        result: QueryResult,
        log_ms: float | None,
    ) -> None:
        """Log the statement if it crossed a duration threshold.

        Two triggers, both PostgreSQL's: ``log_min_duration_statement``
        logs the statement line, and an auto_explain capture (armed by
        the executor when ``auto_explain_log_min_duration`` crossed)
        attaches the EXPLAIN (ANALYZE, BUFFERS) plan text and RC
        attribution.  The capture is popped here even when unused so a
        stale plan never leaks onto the next statement's record.
        """
        capture = self.db.executor.take_plan_capture()
        if elapsed is not None:
            elapsed_ms = elapsed * 1e3
        elif capture is not None:
            elapsed_ms = capture["elapsed_ms"]
        else:
            return
        if capture is None and (log_ms is None or elapsed_ms < log_ms):
            return
        self._record_slow(query_text, elapsed_ms, result, capture)

    def _record_slow(
        self,
        query_text: str,
        elapsed_ms: float,
        result: QueryResult,
        capture: dict | None,
    ) -> None:
        db = self.db
        if db.slowlog is None:
            return
        db._sync_slowlog_sink()
        wait_events: dict = {}
        stats = getattr(result, "stats", None)
        if stats is not None:
            wait_events = stats.wait_events.as_dict()
        db.slowlog.record(
            SlowQueryRecord(
                logged_at=time.time(),
                backend_id=self.backend_id,
                session=self.name,
                kind="statement",
                query=query_text,
                elapsed_ms=elapsed_ms,
                rows=len(result.rows),
                plan=capture["plan"] if capture is not None else None,
                rc=capture["rc"] if capture is not None else None,
                wait_events=wait_events,
                strategy=capture.get("strategy") if capture is not None else None,
            )
        )

    def close(self) -> None:
        """End the session, rolling back any open transaction."""
        if self._txn is not None:
            txn, self._txn = self._txn, None
            with self.db._statement_lock:
                self.db.executor.abort_transaction(txn)
        self.db.activity.deregister(self.backend_id)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # statement handling (caller holds the statement lock)
    # ------------------------------------------------------------------
    def _execute_one(self, stmt: ast.Statement) -> QueryResult:
        executor = self.db.executor
        if isinstance(stmt, ast.Begin):
            if self._txn is not None:
                return QueryResult(
                    command="BEGIN",
                    warnings=["there is already a transaction in progress"],
                )
            txn = executor.xact.begin()
            # Snapshot pinned for the whole block (repeatable read).
            txn.snapshot = executor.xact.snapshot(txn.xid)
            self._txn = txn
            return QueryResult(command="BEGIN")
        if isinstance(stmt, ast.Commit):
            if self._txn is None:
                return QueryResult(
                    command="COMMIT",
                    warnings=["there is no transaction in progress"],
                )
            txn, self._txn = self._txn, None
            if txn.failed:
                # PostgreSQL: COMMIT of a failed block rolls back and
                # reports ROLLBACK as the command tag.
                executor.abort_transaction(txn)
                return QueryResult(command="ROLLBACK")
            executor.commit_transaction(txn)
            return QueryResult(command="COMMIT")
        if isinstance(stmt, ast.Rollback):
            if self._txn is None:
                return QueryResult(
                    command="ROLLBACK",
                    warnings=["there is no transaction in progress"],
                )
            txn, self._txn = self._txn, None
            executor.abort_transaction(txn)
            return QueryResult(command="ROLLBACK")
        if self._txn is not None:
            if self._txn.failed:
                raise ExecutionError(
                    "current transaction is aborted, "
                    "commands ignored until end of transaction block"
                )
            try:
                return executor.execute_statement(stmt, txn=self._txn)
            except BaseException:
                self._txn.failed = True
                raise
        return executor.execute_statement(stmt)
