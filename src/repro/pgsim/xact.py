"""Transaction manager: xid allocation, commit log, and MVCC snapshots.

pgsim's tuples have carried ``xmin``/``xmax`` headers since the first
heap commit, but nothing ever consulted them against a snapshot — any
two logical clients saw each other's uncommitted work.  This module is
the missing piece: a per-database :class:`TransactionManager` playing
the role of PostgreSQL's xid allocator + clog + ProcArray, plus the
:class:`Snapshot` value and the ``HeapTupleSatisfiesMVCC``-style
predicate (:func:`tuple_visible`) the heap AM evaluates per tuple.

Commit-state model (the "clog"): an xid is **aborted** if ``abort()``
was called for it, **in progress** while its :class:`Transaction` is
registered, and **committed** otherwise.  Treating unknown xids as
committed is the frozen-xid rule collapsed to its limit: bootstrap
rows (xid 1), rows bulk-loaded outside the manager, and rows recovered
from a truncated WAL all carry xids the manager never saw — every one
of them is committed, because crash recovery physically rolls losers
back (see :func:`repro.pgsim.wal.replay`) and in-process aborts are
recorded here.

Concurrency model: N sessions share one database from separate
threads.  Statement *execution* is serialized by the database's
statement lock (pgsim is pure Python; the GIL would serialize it
anyway), so MVCC buys what it buys in PostgreSQL: readers never block
writers *across statements* — a session holding a week-old snapshot
inside ``BEGIN`` costs writers nothing but vacuum horizon.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pgsim.heapam import HeapTable

#: xid stamped on bootstrap / bulk-loaded rows (always committed).
BOOTSTRAP_XID = 1

#: First xid the manager hands out on a fresh database.
FIRST_NORMAL_XID = 2


class SerializationError(RuntimeError):
    """Write-write conflict under snapshot isolation.

    Raised when a transaction tries to delete (or update) a tuple whose
    deleter is still in progress or committed after the snapshot was
    taken.  PostgreSQL under REPEATABLE READ raises SQLSTATE 40001 with
    the same message; pgsim differs only in never blocking first (the
    no-wait flavour), which a retry loop handles identically.
    """

    def __init__(self) -> None:
        super().__init__("could not serialize access due to concurrent update")


@dataclass(frozen=True, slots=True)
class Snapshot:
    """An MVCC snapshot: which transactions' effects are visible.

    Follows PostgreSQL's ``SnapshotData``: a transaction's effects are
    visible iff it committed, *and* it is not in ``xip`` (in progress at
    snapshot time), *and* its xid is below ``xmax`` (assigned before the
    snapshot).  ``xid`` is the owner's own transaction id (0 for a
    read-only statement snapshot); the owner always sees its own
    uncommitted changes.
    """

    #: Oldest xid still in progress when the snapshot was taken; every
    #: xid below this is definitively committed or aborted (the vacuum
    #: horizon contribution).
    xmin: int
    #: First xid *not* yet assigned at snapshot time; ``>= xmax`` means
    #: "started after us", hence invisible.
    xmax: int
    #: Transactions in progress at snapshot time (excluding the owner).
    xip: frozenset[int]
    #: Owning transaction's xid (0 = none).
    xid: int = 0


@dataclass(eq=False)
class Transaction:
    """One open transaction: identity, snapshot, and undo bookkeeping.

    ``snapshot`` is ``None`` for autocommit statements (the executor
    takes a fresh snapshot per statement) and pinned at ``BEGIN`` for
    explicit transactions (per-transaction snapshots — REPEATABLE READ).
    The per-table insert/delete tallies exist so an abort can reverse
    the heap's optimistic ``tuple_count``/``n_dead_tup`` accounting.
    """

    xid: int
    snapshot: Snapshot | None = None
    #: True once a BEGIN record hit the WAL (i.e. the txn wrote data);
    #: read-only transactions commit without touching the log.
    wrote_wal: bool = False
    #: Set by the session when a statement inside the transaction
    #: failed: further statements are rejected until ROLLBACK.
    failed: bool = False
    inserted: dict[Any, int] = field(default_factory=dict)
    deleted: dict[Any, int] = field(default_factory=dict)

    def note_insert(self, heap: "HeapTable") -> None:
        self.inserted[heap] = self.inserted.get(heap, 0) + 1

    def note_delete(self, heap: "HeapTable") -> None:
        self.deleted[heap] = self.deleted.get(heap, 0) + 1


class TransactionManager:
    """xid allocator + commit log + in-progress registry for one database.

    Thread-safe: sessions on different threads allocate xids and take
    snapshots under one internal lock (statement execution itself is
    serialized by the database's statement lock, but transaction
    lifetimes span statements and so interleave freely).
    """

    def __init__(self, next_xid: int = FIRST_NORMAL_XID) -> None:
        self._lock = threading.Lock()
        self._next_xid = next_xid
        self._aborted: set[int] = set()
        #: xid -> in-progress Transaction.
        self._txns: dict[int, Transaction] = {}
        #: Cumulative counters (``pg_stat_database``-ish).
        self.commits = 0
        self.aborts = 0

    # ------------------------------------------------------------------
    # xid allocation and lifecycle
    # ------------------------------------------------------------------
    @property
    def next_xid(self) -> int:
        return self._next_xid

    def advance_to(self, next_xid: int) -> None:
        """Move the allocator past recovered xids (recovery only).

        Every xid below the recovered horizon is either committed or
        physically purged from the pages, so the fresh manager may
        treat all of them as committed (the unknown-is-committed rule).
        """
        with self._lock:
            if next_xid > self._next_xid:
                self._next_xid = next_xid

    def begin(self) -> Transaction:
        """Start a transaction: allocate an xid, register in-progress."""
        with self._lock:
            xid = self._next_xid
            self._next_xid += 1
            txn = Transaction(xid=xid)
            self._txns[xid] = txn
            return txn

    def commit(self, txn: Transaction) -> None:
        """Mark ``txn`` committed (caller already made its WAL durable)."""
        with self._lock:
            self._txns.pop(txn.xid, None)
            self.commits += 1

    def abort(self, txn: Transaction) -> None:
        """Mark ``txn`` aborted and reverse its optimistic heap counts.

        Rollback is O(1) in page terms, exactly like PostgreSQL: the
        tuples stay where they are, stamped with an xid the clog now
        calls aborted, and vacuum reclaims them later.  Only the
        in-memory counters need fixing up here: aborted inserts become
        dead tuples, aborted deletes come back to life.
        """
        with self._lock:
            self._aborted.add(txn.xid)
            self._txns.pop(txn.xid, None)
            self.aborts += 1
        for heap, n in txn.inserted.items():
            heap.tuple_count -= n
            heap.n_dead_tup += n
        for heap, n in txn.deleted.items():
            heap.tuple_count += n
            heap.n_dead_tup = max(0, heap.n_dead_tup - n)

    # ------------------------------------------------------------------
    # commit-log queries
    # ------------------------------------------------------------------
    def is_aborted(self, xid: int) -> bool:
        return xid in self._aborted

    def is_in_progress(self, xid: int) -> bool:
        return xid in self._txns

    def is_committed(self, xid: int) -> bool:
        """Unknown xids are committed (see the module docstring)."""
        return xid not in self._aborted and xid not in self._txns

    def in_progress_xids(self) -> list[int]:
        """Open transactions, oldest first (checkpoint records these)."""
        with self._lock:
            return sorted(self._txns)

    # ------------------------------------------------------------------
    # undo bookkeeping (called by the heap AM)
    # ------------------------------------------------------------------
    def note_insert(self, xid: int, heap: Any) -> None:
        """Record one insert by ``xid`` into ``heap`` (for abort undo)."""
        txn = self._txns.get(xid)
        if txn is not None:
            txn.note_insert(heap)

    def note_delete(self, xid: int, heap: Any) -> None:
        """Record one delete by ``xid`` in ``heap`` (for abort undo)."""
        txn = self._txns.get(xid)
        if txn is not None:
            txn.note_delete(heap)

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self, xid: int = 0) -> Snapshot:
        """Take a snapshot of the current commit state.

        Args:
            xid: the taking transaction's own xid (excluded from
                ``xip``; its changes are always visible to itself).
        """
        with self._lock:
            xip = frozenset(x for x in self._txns if x != xid)
            xmin = min(xip) if xip else self._next_xid
            return Snapshot(xmin=xmin, xmax=self._next_xid, xip=xip, xid=xid)

    def safe_horizon(self) -> int:
        """Oldest xid any open transaction (or its snapshot) can see.

        Vacuum may only reclaim a deleted tuple when its deleter's xid
        is below this: every snapshot that could still consider the
        deleter invisible has ``snapshot.xmin <= deleter``, and every
        open transaction's own xid bounds the snapshots it may yet take.
        """
        with self._lock:
            horizon = self._next_xid
            for xid, txn in self._txns.items():
                horizon = min(horizon, xid)
                if txn.snapshot is not None:
                    horizon = min(horizon, txn.snapshot.xmin)
            return horizon


# ----------------------------------------------------------------------
# tuple visibility (HeapTupleSatisfiesMVCC)
# ----------------------------------------------------------------------
def tuple_visible(
    xact: TransactionManager | None,
    snapshot: Snapshot | None,
    xmin: int,
    xmax: int,
) -> bool:
    """Is a tuple with headers ``(xmin, xmax)`` visible?

    With ``snapshot=None`` the check degrades to latest-committed
    visibility (inserter committed, no committed deleter) — what every
    pre-MVCC caller of the heap AM meant, and still the right semantics
    for ANALYZE and index builds.  With ``xact=None`` (a standalone
    heap, no transaction manager) every xid counts as committed, which
    reproduces the historical ``xmax != 0`` dead test exactly.
    """
    if snapshot is None:
        if xact is not None and not xact.is_committed(xmin):
            return False
        if xmax == 0:
            return True
        return xact is not None and not xact.is_committed(xmax)

    # --- insertion visible under the snapshot? ---
    if snapshot.xid and xmin == snapshot.xid:
        pass  # our own insert: visible even though uncommitted
    elif xmin >= snapshot.xmax or xmin in snapshot.xip:
        return False  # inserter started after, or still ran at, snapshot time
    elif xact is not None and not xact.is_committed(xmin):
        return False  # inserter aborted (or is an unseen in-progress txn)

    # --- deletion visible under the snapshot? ---
    if xmax == 0:
        return True
    if snapshot.xid and xmax == snapshot.xid:
        return False  # we deleted it ourselves
    if xmax >= snapshot.xmax or xmax in snapshot.xip:
        return True  # deleter not yet visible to us: row still live
    return xact is not None and not xact.is_committed(xmax)


def losers_after_replay(
    seen_xids: Iterable[int],
    checkpoint_in_progress: Iterable[int],
    committed_xids: Iterable[int],
) -> set[int]:
    """Transactions recovery must roll back.

    A loser is any xid that wrote durable data (a WAL data record, or
    membership in the last checkpoint's in-progress list — its records
    may have been truncated away after its dirty pages were flushed)
    without a durable commit record.
    """
    committed = set(committed_xids)
    return (set(seen_xids) | set(checkpoint_in_progress)) - committed
