"""Buffer manager: the page indirection behind the paper's RC#2.

Every tuple access in pgsim goes through this layer: look up the
``(relation, block)`` in the frame table, pin the frame, decode the
wanted tuple out of the page, unpin.  Faiss-style engines skip all of
this and dereference a pointer — the paper measures that difference as
the ``Tuple Access`` rows of Tables III/V and Fig. 8.

The implementation is a faithful miniature of PostgreSQL's shared
buffers: fixed capacity, pin counts, usage counters with clock-sweep
eviction, dirty-page write-back with checksum stamping, and hit/miss
statistics.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Iterator

from repro.common.obs import (
    EV_BUFFER_READ,
    EV_DATA_FILE_READ,
    EV_LWLOCK_BUFFER_CLOCK,
    CounterDeltaMixin,
    WaitEventStats,
)
from repro.pgsim.constants import DEFAULT_BUFFER_POOL_PAGES
from repro.pgsim.page import Page
from repro.pgsim.storage import DiskManager

#: Usage count ceiling, as in PostgreSQL's clock sweep.
MAX_USAGE_COUNT = 5


class BufferPoolExhaustedError(RuntimeError):
    """Raised when every frame is pinned and a new page is needed."""


class Frame:
    """One buffer-pool slot holding a page image."""

    __slots__ = ("rel", "blkno", "page", "pin_count", "dirty", "usage")

    def __init__(self, rel: str, blkno: int, page: Page) -> None:
        self.rel = rel
        self.blkno = blkno
        self.page = page
        self.pin_count = 0
        self.dirty = False
        self.usage = 1


@dataclass(slots=True)
class BufferStats(CounterDeltaMixin):
    """Access statistics (the reproduction's ``pg_stat_io``).

    Counters only ever increase; consumers that need a window take a
    ``snapshot()`` before and ``delta()`` after (see
    :class:`repro.common.obs.CounterDeltaMixin`) instead of resetting,
    so concurrent readers cannot double-count.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class BufferManager:
    """Fixed-capacity page cache with clock-sweep replacement."""

    def __init__(
        self,
        disk: DiskManager,
        capacity: int = DEFAULT_BUFFER_POOL_PAGES,
        wal=None,
        waits: WaitEventStats | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.disk = disk
        self.capacity = capacity
        #: Wait-event accumulator.  Only miss/eviction paths are timed
        #: (``DataFileRead``, ``BufferRead``, ``LWLockBufferClock``);
        #: the hit path stays untimed so the hot loop pays nothing.
        #: The database facade passes a shared instance so buffer and
        #: WAL waits land in one ``pg_stat_wait_events`` accumulator.
        self.waits = waits if waits is not None else WaitEventStats()
        #: Optional :class:`repro.pgsim.wal.WriteAheadLog`.  When set,
        #: eviction enforces a no-steal policy: a dirty page whose LSN
        #: is past the durable WAL horizon holds effects of an
        #: in-flight statement, and writing it out would let
        #: uncommitted tuples survive a crash (redo-only recovery
        #: cannot erase what is already in the pages).
        self.wal = wal
        self.stats = BufferStats()
        self._frames: dict[tuple[str, int], Frame] = {}
        self._clock_keys: list[tuple[str, int]] = []
        self._hand = 0

    # ------------------------------------------------------------------
    # pin/unpin
    # ------------------------------------------------------------------
    def pin(self, rel: str, blkno: int) -> Frame:
        """Pin a page into the pool, reading from disk on a miss."""
        key = (rel, blkno)
        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            frame.pin_count += 1
            if frame.usage < MAX_USAGE_COUNT:
                frame.usage += 1
            return frame
        self.stats.misses += 1
        miss_start = perf_counter()
        evict_seconds = 0.0
        if len(self._frames) >= self.capacity:
            self._evict_one()
            evict_end = perf_counter()
            evict_seconds = evict_end - miss_start
            self.waits.record(EV_LWLOCK_BUFFER_CLOCK, evict_seconds)
        read_start = perf_counter()
        data = self.disk.read_block(rel, blkno)
        read_seconds = perf_counter() - read_start
        self.waits.record(EV_DATA_FILE_READ, read_seconds)
        page = Page(bytearray(data))
        page.verify_checksum()
        frame = Frame(rel, blkno, page)
        frame.pin_count = 1
        self._frames[key] = frame
        self._clock_keys.append(key)
        # Remaining miss handling (checksum verify, frame install):
        # blocked time that a pointer dereference would not pay.
        self.waits.record(
            EV_BUFFER_READ, perf_counter() - miss_start - evict_seconds - read_seconds
        )
        return frame

    def unpin(self, frame: Frame, dirty: bool = False) -> None:
        """Release a pin, optionally marking the page dirty."""
        if frame.pin_count <= 0:
            raise RuntimeError(f"frame ({frame.rel}, {frame.blkno}) is not pinned")
        frame.pin_count -= 1
        if dirty:
            frame.dirty = True

    @contextmanager
    def page(self, rel: str, blkno: int, dirty: bool = False) -> Iterator[Page]:
        """Scoped pin: ``with buffer.page(rel, blk) as page: ...``."""
        frame = self.pin(rel, blkno)
        try:
            yield frame.page
        finally:
            self.unpin(frame, dirty=dirty)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def new_page(self, rel: str, special_size: int = 0) -> tuple[int, Frame]:
        """Allocate a fresh formatted page at the end of ``rel``.

        Returns ``(blkno, pinned frame)``; the frame is already marked
        dirty and must be unpinned by the caller.
        """
        page = Page.init(self.disk.page_size, special_size=special_size)
        blkno = self.disk.extend(rel, bytes(page.buf))
        key = (rel, blkno)
        if len(self._frames) >= self.capacity:
            evict_start = perf_counter()
            self._evict_one()
            self.waits.record(EV_LWLOCK_BUFFER_CLOCK, perf_counter() - evict_start)
        frame = Frame(rel, blkno, page)
        frame.pin_count = 1
        frame.dirty = True
        self._frames[key] = frame
        self._clock_keys.append(key)
        return blkno, frame

    # ------------------------------------------------------------------
    # write-back
    # ------------------------------------------------------------------
    def flush_frame(self, frame: Frame) -> None:
        """Write one dirty frame back to disk (checksum stamped)."""
        if not frame.dirty:
            return
        frame.page.update_checksum()
        self.disk.write_block(frame.rel, frame.blkno, bytes(frame.page.buf))
        frame.dirty = False
        self.stats.dirty_writebacks += 1

    def flush_all(self) -> None:
        """Write back every dirty frame (checkpoint)."""
        for frame in self._frames.values():
            self.flush_frame(frame)

    def drop_relation(self, rel: str) -> None:
        """Invalidate all cached frames of a dropped relation."""
        keys = [k for k in self._frames if k[0] == rel]
        for key in keys:
            frame = self._frames[key]
            if frame.pin_count:
                raise RuntimeError(f"cannot drop {rel!r}: block {key[1]} is pinned")
            del self._frames[key]
        self._clock_keys = [k for k in self._clock_keys if k[0] != rel]
        self._hand = 0

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def _evict_one(self) -> None:
        """Clock sweep: find an unpinned frame with zero usage, evict it."""
        if not self._clock_keys:
            raise BufferPoolExhaustedError("buffer pool is empty but full?")
        sweeps = 0
        # Worst case each unpinned frame needs MAX_USAGE_COUNT
        # decrements before it becomes a victim.
        max_sweeps = (MAX_USAGE_COUNT + 1) * len(self._clock_keys) + 1
        while sweeps < max_sweeps:
            if self._hand >= len(self._clock_keys):
                self._hand = 0
            key = self._clock_keys[self._hand]
            frame = self._frames[key]
            if frame.pin_count == 0 and not self._holds_uncommitted(frame):
                if frame.usage > 0:
                    frame.usage -= 1
                else:
                    self.flush_frame(frame)
                    del self._frames[key]
                    # Swap-remove to keep the ring compact.  The frame
                    # swapped in from the tail must not be inspected at
                    # this hand position next sweep — that would give it
                    # an out-of-turn usage decrement and starve the
                    # frames between the hand and the tail — so the hand
                    # advances past it.
                    last = self._clock_keys.pop()
                    if last != key:
                        self._clock_keys[self._hand] = last
                        self._hand += 1
                    self.stats.evictions += 1
                    return
            self._hand += 1
            sweeps += 1
        raise BufferPoolExhaustedError(
            f"all {len(self._clock_keys)} buffer frames are pinned or hold "
            "uncommitted changes (statement working set exceeds the pool)"
        )

    def _holds_uncommitted(self, frame: Frame) -> bool:
        """No-steal check (see ``wal`` in :meth:`__init__`).

        pgsim flushes the WAL only at commit boundaries, so a page LSN
        past the durable horizon means exactly one thing: the current,
        not-yet-committed statement touched this page.
        """
        return frame.dirty and self.wal is not None and frame.page.lsn > self.wal.flushed_lsn

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def cached_pages(self) -> int:
        """Number of pages currently resident."""
        return len(self._frames)

    def pinned_pages(self) -> int:
        """Number of frames with a positive pin count (leak detector)."""
        return sum(1 for f in self._frames.values() if f.pin_count > 0)
